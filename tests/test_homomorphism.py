"""Tests for repro.data.homomorphism."""

from repro.data.homomorphism import (
    are_isomorphic,
    find_homomorphism,
    has_homomorphism,
    homomorphisms,
    is_homomorphism,
    is_isomorphism,
)
from repro.data.instance import Instance, fact


def path(n, relation="E"):
    return Instance([fact(relation, f"a{i}", f"a{i+1}") for i in range(n)])


def test_identity_is_homomorphism():
    instance = path(3)
    identity = {e: e for e in instance.domain}
    assert is_homomorphism(identity, instance, instance)
    assert is_isomorphism(identity, instance, instance)


def test_path_maps_into_longer_path():
    assert has_homomorphism(path(2), path(4))
    assert find_homomorphism(path(2), path(4)) is not None


def test_longer_path_does_not_map_into_shorter_cycle_free_path():
    # A directed path of length 3 cannot map into a directed path of length 1.
    assert not has_homomorphism(path(3), path(1))


def test_homomorphism_count_path_into_path():
    # The directed path with 1 edge maps into a path with 3 edges in 3 ways.
    assert len(list(homomorphisms(path(1), path(3)))) == 3


def test_collapse_homomorphism():
    # A 2-edge path maps onto a single "back-and-forth" pair only if target has it.
    source = path(2)
    target = Instance([fact("E", "u", "v"), fact("E", "v", "u")])
    assert has_homomorphism(source, target)


def test_is_homomorphism_rejects_wrong_mapping():
    source = path(1)
    target = path(2)
    assert not is_homomorphism({"a0": "a0", "a1": "a2"}, source, target)


def test_isomorphism_detection():
    a = path(3)
    b = a.rename({"a0": "x0", "a1": "x1", "a2": "x2", "a3": "x3"})
    assert are_isomorphic(a, b)
    assert not are_isomorphic(a, path(2))


def test_non_isomorphic_same_size():
    # Same number of facts and elements, different shape.
    star = Instance([fact("E", "c", "l1"), fact("E", "c", "l2"), fact("E", "c", "l3")])
    line = path(3)
    assert len(star) == len(line) and star.domain_size == line.domain_size
    assert not are_isomorphic(star, line)
