"""Tests for path decompositions and pathwidth."""

import pytest

from repro.errors import DecompositionError
from repro.structure.graph import (
    Graph,
    complete_graph,
    cycle_graph,
    grid_graph,
    path_graph,
)
from repro.structure.path_decomposition import (
    PathDecomposition,
    greedy_path_order,
    path_decomposition,
    path_decomposition_from_order,
    path_decomposition_from_tree,
    pathwidth,
)
from repro.structure.tree_decomposition import tree_decomposition


def test_pathwidth_of_path_is_one():
    assert pathwidth(path_graph(10)) == 1


def test_pathwidth_of_cycle_is_two():
    assert pathwidth(cycle_graph(6)) == 2


def test_pathwidth_of_clique():
    assert pathwidth(complete_graph(5)) == 4


def test_pathwidth_exact_small():
    assert pathwidth(path_graph(6), exact=True) == 1
    assert pathwidth(cycle_graph(5), exact=True) == 2


def test_pathwidth_at_least_treewidth():
    for graph in (path_graph(6), cycle_graph(7), grid_graph(3, 3), complete_graph(4)):
        assert pathwidth(graph) >= tree_decomposition(graph).width - 1  # heuristics both ways
        assert pathwidth(graph) >= 1 or len(graph) <= 1


def test_path_decomposition_validates():
    for graph in (path_graph(7), grid_graph(3, 3), cycle_graph(6)):
        decomposition = path_decomposition(graph)
        decomposition.validate(graph)


def test_path_decomposition_from_order_width():
    graph = path_graph(5)
    decomposition = path_decomposition_from_order(graph, list(range(5)))
    assert decomposition.width == 1


def test_path_decomposition_from_order_requires_full_order():
    with pytest.raises(DecompositionError):
        path_decomposition_from_order(path_graph(4), [0, 1])


def test_vertex_order_covers_vertices():
    graph = grid_graph(2, 4)
    decomposition = path_decomposition(graph)
    assert set(decomposition.vertex_order()) == set(graph.vertices)


def test_greedy_path_order_is_permutation():
    graph = grid_graph(3, 3)
    order = greedy_path_order(graph)
    assert sorted(map(repr, order)) == sorted(map(repr, graph.vertices))


def test_to_tree_decomposition():
    graph = cycle_graph(5)
    decomposition = path_decomposition(graph)
    tree = decomposition.to_tree_decomposition()
    tree.validate(graph)
    assert tree.is_path_decomposition()


def test_path_decomposition_from_tree_is_valid():
    graph = grid_graph(3, 3)
    tree = tree_decomposition(graph)
    path = path_decomposition_from_tree(tree)
    path.validate(graph)


def test_invalid_path_decomposition_detected():
    graph = path_graph(3)
    bad = PathDecomposition([frozenset({0, 1}), frozenset({2}), frozenset({1, 2})])
    with pytest.raises(DecompositionError):
        bad.validate(graph)
    assert not bad.is_valid_for(graph)


def test_empty_graph_pathwidth():
    assert pathwidth(Graph()) == -1 or pathwidth(Graph()) == 0
