"""Oracle tests for the structure layer.

Every tree/path decomposition the library produces — heuristic or exact, on
generated graph families and random partial k-trees — is validated against
the *independent* checker of :mod:`repro.testing.decompositions` (coverage,
edge coverage, connectivity, bag-tree shape), and the reported widths are
cross-checked against the exponential ``treewidth_dp_oracle`` on small
graphs.  The checker itself is exercised on deliberately corrupted
decompositions: an oracle that cannot fail verifies nothing.
"""

import pytest

from repro.data.gaifman import gaifman_graph
from repro.generators import (
    grid_instance,
    labelled_partial_ktree_instance,
    random_tree_instance,
    rst_chain_instance,
)
from repro.structure import (
    PathDecomposition,
    TreeDecomposition,
    path_decomposition,
    tree_decomposition,
    treewidth,
    treewidth_dp_oracle,
)
from repro.structure.graph import (
    Graph,
    complete_graph,
    cycle_graph,
    grid_graph,
    path_graph,
)
from repro.testing import decomposition_errors, is_valid_decomposition

SMALL_GRAPHS = [
    ("path-5", path_graph(5)),
    ("cycle-6", cycle_graph(6)),
    ("complete-4", complete_graph(4)),
    ("grid-3x3", grid_graph(3, 3)),
    ("empty", Graph()),
]


@pytest.mark.parametrize("name,graph", SMALL_GRAPHS, ids=[n for n, _ in SMALL_GRAPHS])
def test_tree_decompositions_valid_per_independent_checker(name, graph):
    for exact in (False, True):
        decomposition = tree_decomposition(graph, exact=exact)
        assert is_valid_decomposition(decomposition, graph), decomposition_errors(
            decomposition, graph
        )


@pytest.mark.parametrize("name,graph", SMALL_GRAPHS, ids=[n for n, _ in SMALL_GRAPHS])
def test_path_decompositions_valid_per_independent_checker(name, graph):
    decomposition = path_decomposition(graph)
    assert is_valid_decomposition(decomposition, graph), decomposition_errors(
        decomposition, graph
    )


@pytest.mark.parametrize("seed", range(8))
def test_generated_instance_decompositions_valid(seed):
    for instance in (
        labelled_partial_ktree_instance(8, 2, seed=seed),
        random_tree_instance(7, seed=seed),
        grid_instance(2, 3),
        rst_chain_instance(3),
    ):
        graph = gaifman_graph(instance)
        tree = tree_decomposition(graph)
        path = path_decomposition(graph)
        assert is_valid_decomposition(tree, graph), decomposition_errors(tree, graph)
        assert is_valid_decomposition(path, graph), decomposition_errors(path, graph)


@pytest.mark.parametrize("name,graph", SMALL_GRAPHS, ids=[n for n, _ in SMALL_GRAPHS])
def test_heuristic_width_upper_bounds_dp_oracle(name, graph):
    exact_width = treewidth_dp_oracle(graph)
    assert treewidth(graph, exact=True) == exact_width
    assert tree_decomposition(graph, exact=True).width == exact_width
    assert tree_decomposition(graph).width >= exact_width
    assert path_decomposition(graph).width >= exact_width


@pytest.mark.parametrize("seed", range(6))
def test_ktree_decomposition_width_matches_dp_oracle(seed):
    graph = gaifman_graph(labelled_partial_ktree_instance(8, 2, seed=seed))
    exact_width = treewidth_dp_oracle(graph)
    assert exact_width <= 2
    assert tree_decomposition(graph, exact=True).width == exact_width


# -- the checker must reject corrupted decompositions --------------------------


def _valid_tree_decomposition():
    graph = path_graph(4)
    return graph, tree_decomposition(graph)


def test_checker_rejects_missing_vertex():
    graph, decomposition = _valid_tree_decomposition()
    bags = {node: frozenset(v for v in bag if v != 0) for node, bag in decomposition.bags.items()}
    broken = TreeDecomposition(bags=bags, children=dict(decomposition.children), root=decomposition.root)
    errors = decomposition_errors(broken, graph)
    assert any("in no bag" in e for e in errors)
    assert not is_valid_decomposition(broken, graph)


def test_checker_rejects_uncovered_edge():
    graph, decomposition = _valid_tree_decomposition()
    bags = {
        node: frozenset([1] if bag == frozenset({0, 1}) else bag)
        for node, bag in decomposition.bags.items()
    }
    bags[max(bags) + 1] = frozenset({0})
    children = {node: list(kids) for node, kids in decomposition.children.items()}
    children[decomposition.root] = children.get(decomposition.root, []) + [max(bags)]
    broken = TreeDecomposition(bags=bags, children=children, root=decomposition.root)
    errors = decomposition_errors(broken, graph)
    assert any("covered by no bag" in e for e in errors)


def test_checker_rejects_disconnected_occurrences():
    graph = path_graph(5)
    # Vertex 0 appears in two bags that are not adjacent in the path.
    broken = PathDecomposition(
        [frozenset({0, 1}), frozenset({1, 2}), frozenset({2, 3, 0}), frozenset({3, 4})]
    )
    errors = decomposition_errors(broken, graph)
    assert any("not connected" in e for e in errors)
    assert not is_valid_decomposition(broken, graph)


def test_checker_rejects_disconnected_bag_tree():
    graph = path_graph(3)
    broken = TreeDecomposition(
        bags={0: frozenset({0, 1}), 1: frozenset({1, 2}), 2: frozenset({1})},
        children={0: [1]},  # bag 2 unreachable
        root=0,
    )
    # Bypass the parent-map autofill for the orphan by declaring it explicitly.
    errors = decomposition_errors(broken, graph)
    assert any("not connected" in e for e in errors)


def test_checker_agrees_with_production_validator_on_valid_input():
    for seed in range(4):
        instance = labelled_partial_ktree_instance(7, 2, seed=seed)
        graph = gaifman_graph(instance)
        decomposition = tree_decomposition(graph)
        assert decomposition.is_valid_for(graph)
        assert is_valid_decomposition(decomposition, graph)


def test_checker_accepts_empty_graph_and_decomposition():
    assert is_valid_decomposition(PathDecomposition([]), Graph())
    assert is_valid_decomposition(tree_decomposition(Graph()), Graph())
