"""Tests for lifted inference (safe plans)."""

from fractions import Fraction

import pytest

from repro.data.instance import Instance, fact
from repro.data.tid import ProbabilisticInstance
from repro.generators import random_probabilities, random_rst_instance, rst_chain_instance
from repro.probability.brute_force import brute_force_probability
from repro.probability.safe_plans import UnsafeQueryError, is_liftable, safe_plan_probability
from repro.queries import hierarchical_example, parse_cq, parse_ucq, threshold_two_query, unsafe_rst


def test_hierarchical_cq_matches_brute_force():
    query = hierarchical_example()
    instance = random_rst_instance(4, 8, seed=21)
    tid = random_probabilities(instance, seed=21)
    assert safe_plan_probability(query, tid) == brute_force_probability(query, tid)


def test_single_atom_query():
    query = parse_cq("R(x)")
    instance = Instance([fact("R", "a"), fact("R", "b")])
    tid = ProbabilisticInstance(instance, {fact("R", "a"): Fraction(1, 2), fact("R", "b"): Fraction(1, 3)})
    assert safe_plan_probability(query, tid) == 1 - Fraction(1, 2) * Fraction(2, 3)


def test_two_atom_join_hierarchical():
    query = parse_cq("S(x, y), U(x, z)")
    instance = Instance(
        [fact("S", "a", "b"), fact("S", "a", "c"), fact("U", "a", "d"), fact("S", "e", "b"), fact("U", "e", "d")]
    )
    tid = random_probabilities(instance, seed=3)
    assert safe_plan_probability(query, tid) == brute_force_probability(query, tid)


def test_unsafe_rst_rejected():
    instance = rst_chain_instance(2)
    tid = ProbabilisticInstance.uniform(instance, Fraction(1, 2))
    with pytest.raises(UnsafeQueryError):
        safe_plan_probability(unsafe_rst(), tid)


def test_disequality_query_rejected():
    instance = Instance([fact("R", "a"), fact("R", "b")])
    tid = ProbabilisticInstance.uniform(instance, Fraction(1, 2))
    with pytest.raises(UnsafeQueryError):
        safe_plan_probability(threshold_two_query(), tid)


def test_union_of_disjoint_relation_disjuncts():
    query = parse_ucq("R(x) | T(y)")
    instance = Instance([fact("R", "a"), fact("T", "b")])
    tid = ProbabilisticInstance.uniform(instance, Fraction(1, 2))
    assert safe_plan_probability(query, tid) == brute_force_probability(query, tid)


def test_is_liftable():
    assert is_liftable(hierarchical_example())
    assert is_liftable(parse_ucq("R(x) | T(y)"))
    assert not is_liftable(unsafe_rst())
    assert not is_liftable(threshold_two_query())
    # The PR 8 bug fix: R(x), R(y) cores to R(x) under minimization, so the
    # (legal, safe) query is liftable — the seed wrongly rejected it as an
    # unsafe self-join.
    assert is_liftable(parse_cq("R(x), R(y)"))
    assert is_liftable(parse_ucq("R(x) | R(y)"))


def test_redundant_self_join_cores_to_single_atom():
    query = parse_cq("R(x), R(y)")
    instance = Instance([fact("R", "a"), fact("R", "b"), fact("R", "c")])
    tid = ProbabilisticInstance.uniform(instance, Fraction(1, 2))
    expected = brute_force_probability(query, tid)
    assert safe_plan_probability(query, tid) == expected
    assert expected == 1 - Fraction(1, 8)


def test_redundant_union_disjuncts_minimized():
    query = parse_ucq("R(x) | R(y)")
    instance = Instance([fact("R", "a"), fact("R", "b")])
    tid = ProbabilisticInstance(
        instance, {fact("R", "a"): Fraction(1, 2), fact("R", "b"): Fraction(1, 3)}
    )
    assert safe_plan_probability(query, tid) == brute_force_probability(query, tid)


def test_query_false_on_empty_relation():
    query = hierarchical_example()
    instance = Instance([fact("S", "a", "b")], signature=query.signature())
    tid = ProbabilisticInstance.uniform(instance, Fraction(1, 2))
    assert safe_plan_probability(query, tid) == 0
