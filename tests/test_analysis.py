"""Tests for the static invariant checker (repro.analysis).

Each rule is exercised against a fixture package with a seeded violation and
the finding is asserted at its exact file/line; the suite also covers inline
suppressions (valid and justification-less), per-module config overrides,
pyproject discovery, the CLI, and — the actual gate — a run over ``src/repro``
that must come back clean.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.analysis import (
    AnalysisConfig,
    analyze,
    config_from_mapping,
    discover_config,
    load_config,
    rule_ids,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"


def write_package(root: Path, name: str = "pkg", **modules: str) -> Path:
    package_dir = root / name
    package_dir.mkdir(parents=True, exist_ok=True)
    (package_dir / "__init__.py").write_text("")
    for module_name, source in modules.items():
        (package_dir / f"{module_name}.py").write_text(textwrap.dedent(source))
    return package_dir


def line_of(source: str, needle: str) -> int:
    for number, line in enumerate(textwrap.dedent(source).splitlines(), start=1):
        if needle in line:
            return number
    raise AssertionError(f"{needle!r} not found in fixture source")


def findings_for(result, rule_id):
    return [f for f in result.findings if f.rule == rule_id]


KERNEL_CONFIG = AnalysisConfig(package="pkg", kernel_modules=("pkg.kernel",))


class TestREC001:
    def test_direct_recursion_in_kernel_flagged_at_def_line(self, tmp_path):
        source = """
            def walk(node):
                for child in node.children:
                    walk(child)
                return node
        """
        pkg = write_package(tmp_path, kernel=source)
        result = analyze([pkg], config=KERNEL_CONFIG, select=["REC001"])
        findings = findings_for(result, "REC001")
        assert len(findings) == 1
        assert findings[0].line == line_of(source, "def walk")
        assert findings[0].path.endswith("kernel.py")
        assert "calls itself" in findings[0].message

    def test_mutual_recursion_reachable_from_kernel(self, tmp_path):
        helper = """
            def even(n):
                return True if n == 0 else odd(n - 1)

            def odd(n):
                return False if n == 0 else even(n - 1)
        """
        kernel = """
            from pkg.helper import even

            def kernel_entry(n):
                return even(n)
        """
        pkg = write_package(tmp_path, kernel=kernel, helper=helper)
        result = analyze([pkg], config=KERNEL_CONFIG, select=["REC001"])
        lines = {(f.path.rsplit("/", 1)[-1], f.line) for f in findings_for(result, "REC001")}
        assert lines == {
            ("helper.py", line_of(helper, "def even")),
            ("helper.py", line_of(helper, "def odd")),
        }
        messages = {f.message for f in findings_for(result, "REC001")}
        assert any("mutually recursive" in m for m in messages)

    def test_unreachable_recursion_not_flagged(self, tmp_path):
        helper = """
            def lonely(n):
                return lonely(n - 1) if n else 0
        """
        kernel = """
            def kernel_entry():
                return 1
        """
        pkg = write_package(tmp_path, kernel=kernel, helper=helper)
        result = analyze([pkg], config=KERNEL_CONFIG, select=["REC001"])
        assert findings_for(result, "REC001") == []

    def test_reference_module_recursion_is_allowlisted(self, tmp_path):
        reference = """
            def oracle(node):
                return sum(oracle(c) for c in node.children) + 1
        """
        kernel = """
            from pkg.reference import oracle

            def kernel_entry(node):
                return oracle(node)
        """
        pkg = write_package(tmp_path, kernel=kernel, reference=reference)
        result = analyze([pkg], config=KERNEL_CONFIG, select=["REC001"])
        assert findings_for(result, "REC001") == []

    def test_tree_walker_method_recursion_detected(self, tmp_path):
        source = """
            class Node:
                def walk(self):
                    for child in self.children:
                        yield from child.walk()
                    yield self
        """
        pkg = write_package(tmp_path, kernel=source)
        result = analyze([pkg], config=KERNEL_CONFIG, select=["REC001"])
        findings = findings_for(result, "REC001")
        assert len(findings) == 1
        assert findings[0].line == line_of(source, "def walk")

    def test_subscript_receiver_method_recursion_detected(self, tmp_path):
        # 'self.children[0]._evaluate()' — the receiver is a Subscript, not a
        # Name, so the same-class heuristic must fire on opaque receivers too.
        source = """
            class Expression:
                def _evaluate(self):
                    if self.kind == "leaf":
                        return self.value
                    return self.children[0]._evaluate() + self.children[1]._evaluate()
        """
        pkg = write_package(tmp_path, kernel=source)
        result = analyze([pkg], config=KERNEL_CONFIG, select=["REC001"])
        findings = findings_for(result, "REC001")
        assert len(findings) == 1
        assert findings[0].line == line_of(source, "def _evaluate")

    def test_same_method_name_on_unrelated_class_is_not_recursion(self, tmp_path):
        # Query.variables() iterating atom.variables() must not be a self-edge:
        # Atom is unrelated to Query, so the same-class heuristic stays quiet.
        source = """
            class Atom:
                def variables(self):
                    return self.args

            class Query:
                def variables(self):
                    seen = []
                    for atom in self.atoms:
                        seen.extend(atom.variables())
                    return seen
        """
        pkg = write_package(tmp_path, kernel=source)
        result = analyze([pkg], config=KERNEL_CONFIG, select=["REC001"])
        assert findings_for(result, "REC001") == []


EXACT_CONFIG = config_from_mapping(
    {
        "package": "pkg",
        "rules": {
            "EXACT001": {
                "exact-modules": ["pkg.exact"],
                "allow-functions": ["pkg.exact:fast_path"],
            }
        },
    }
)


class TestEXACT001:
    def test_float_literal_cast_math_and_division_flagged(self, tmp_path):
        source = """
            import math
            from fractions import Fraction

            def probability(n: int, d: int):
                bad_literal = 0.5
                bad_cast = float(n)
                bad_math = math.sqrt(n)
                bad_division = n / d
                return Fraction(n, d)
        """
        pkg = write_package(tmp_path, exact=source)
        result = analyze([pkg], config=EXACT_CONFIG, select=["EXACT001"])
        lines = sorted(f.line for f in findings_for(result, "EXACT001"))
        assert lines == [
            line_of(source, "bad_literal"),
            line_of(source, "bad_cast"),
            line_of(source, "bad_math"),
            line_of(source, "bad_division"),
        ]

    def test_exact_fraction_division_and_int_safe_math_pass(self, tmp_path):
        source = """
            import math
            from fractions import Fraction

            def probability(numerator: Fraction, d: int):
                scaled = numerator / d
                support = math.isqrt(d)
                return scaled, support, d // 2
        """
        pkg = write_package(tmp_path, exact=source)
        result = analyze([pkg], config=EXACT_CONFIG, select=["EXACT001"])
        assert findings_for(result, "EXACT001") == []

    def test_allow_function_and_its_nested_defs_exempt(self, tmp_path):
        source = """
            def fast_path(values):
                def level(x):
                    return float(x) * 0.5
                return sum(level(v) for v in values)
        """
        pkg = write_package(tmp_path, exact=source)
        result = analyze([pkg], config=EXACT_CONFIG, select=["EXACT001"])
        assert findings_for(result, "EXACT001") == []


class TestPICKLE001:
    def test_lambda_and_nested_function_submissions_flagged(self, tmp_path):
        source = """
            def run(pool, shards):
                def local_runner(shard):
                    return shard

                bad_lambda = pool.map(lambda s: s, shards)
                bad_nested = pool.map(local_runner, shards)
                return bad_lambda, bad_nested
        """
        pkg = write_package(tmp_path, engine=source)
        result = analyze([pkg], config=KERNEL_CONFIG, select=["PICKLE001"])
        lines = sorted(f.line for f in findings_for(result, "PICKLE001"))
        assert lines == [
            line_of(source, "bad_lambda"),
            line_of(source, "bad_nested"),
        ]

    def test_initializer_keyword_and_payload_lambda_flagged(self, tmp_path):
        source = """
            def start(context, options):
                def init_worker(opts):
                    pass

                return context.Pool(
                    initializer=init_worker,
                    initargs=(lambda: options,),
                )
        """
        pkg = write_package(tmp_path, engine=source)
        result = analyze([pkg], config=KERNEL_CONFIG, select=["PICKLE001"])
        lines = sorted(f.line for f in findings_for(result, "PICKLE001"))
        assert lines == [
            line_of(source, "initializer=init_worker"),
            line_of(source, "initargs=(lambda"),
        ]

    def test_module_level_runner_passes(self, tmp_path):
        source = """
            def runner(shard):
                return shard

            def run(pool, shards):
                return pool.map(runner, shards)
        """
        pkg = write_package(tmp_path, engine=source)
        result = analyze([pkg], config=KERNEL_CONFIG, select=["PICKLE001"])
        assert findings_for(result, "PICKLE001") == []


class TestDET001:
    def test_bare_repr_sort_key_flagged(self, tmp_path):
        source = """
            def order(values):
                return sorted(values, key=repr)
        """
        pkg = write_package(tmp_path, mod=source)
        result = analyze([pkg], config=KERNEL_CONFIG, select=["DET001"])
        findings = findings_for(result, "DET001")
        assert len(findings) == 1
        assert findings[0].line == line_of(source, "key=repr")

    def test_lambda_id_sort_key_and_cache_repr_flagged(self, tmp_path):
        source = """
            def lookup(cache, values, node):
                ordered = values.sort(key=lambda v: id(v))
                cached = cache[repr(node)]
                fallback = cache.get(tuple(set(values)))
                return ordered, cached, fallback
        """
        pkg = write_package(tmp_path, mod=source)
        result = analyze([pkg], config=KERNEL_CONFIG, select=["DET001"])
        lines = sorted(f.line for f in findings_for(result, "DET001"))
        assert lines == [
            line_of(source, "key=lambda"),
            line_of(source, "cache[repr(node)]"),
            line_of(source, "tuple(set(values))"),
        ]

    def test_blessed_structural_key_not_flagged(self, tmp_path):
        source = """
            def order(values, cache, node):
                ordered = sorted(values, key=lambda v: (type(v).__name__, repr(v)))
                cached = cache[(type(node).__name__, repr(node))]
                return ordered, cached
        """
        pkg = write_package(tmp_path, mod=source)
        result = analyze([pkg], config=KERNEL_CONFIG, select=["DET001"])
        assert findings_for(result, "DET001") == []

    def test_reference_module_exempt(self, tmp_path):
        source = """
            def order(values):
                return sorted(values, key=repr)
        """
        pkg = write_package(tmp_path, reference=source)
        result = analyze([pkg], config=KERNEL_CONFIG, select=["DET001"])
        assert findings_for(result, "DET001") == []


class TestSLOTS001:
    def test_unslotted_node_dataclass_flagged(self, tmp_path):
        source = """
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class DecisionNode:
                variable: int
        """
        pkg = write_package(tmp_path, kernel=source)
        result = analyze([pkg], config=KERNEL_CONFIG, select=["SLOTS001"])
        findings = findings_for(result, "SLOTS001")
        assert len(findings) == 1
        assert findings[0].line == line_of(source, "class DecisionNode")
        assert "slots=True" in findings[0].message

    def test_unfrozen_structure_node_flagged(self, tmp_path):
        source = """
            from dataclasses import dataclass

            @dataclass(slots=True)
            class AndGate:
                children: tuple
        """
        pkg = write_package(tmp_path, kernel=source)
        result = analyze([pkg], config=KERNEL_CONFIG, select=["SLOTS001"])
        findings = findings_for(result, "SLOTS001")
        assert len(findings) == 1
        assert "frozen=True" in findings[0].message

    def test_slotted_frozen_node_and_non_kernel_module_pass(self, tmp_path):
        kernel = """
            from dataclasses import dataclass

            @dataclass(frozen=True, slots=True)
            class DecisionNode:
                variable: int
        """
        other = """
            from dataclasses import dataclass

            @dataclass
            class HelperNode:
                value: int
        """
        pkg = write_package(tmp_path, kernel=kernel, other=other)
        result = analyze([pkg], config=KERNEL_CONFIG, select=["SLOTS001"])
        assert findings_for(result, "SLOTS001") == []


class TestEXCEPT001:
    CONFIG = AnalysisConfig(
        package="pkg", rules={"EXCEPT001": {"modules": ("pkg.engine",)}}
    )

    def test_broad_handler_flagged_at_except_line(self, tmp_path):
        source = """
            def run(task):
                try:
                    return task()
                except Exception:
                    return None
        """
        pkg = write_package(tmp_path, engine=source)
        result = analyze([pkg], config=self.CONFIG, select=["EXCEPT001"])
        findings = findings_for(result, "EXCEPT001")
        assert len(findings) == 1
        assert findings[0].line == line_of(source, "except Exception")
        assert "Exception" in findings[0].message

    def test_bare_except_and_tuple_catch_flagged(self, tmp_path):
        source = """
            def run(task):
                try:
                    return task()
                except (ValueError, BaseException):
                    pass
                try:
                    return task()
                except:
                    return None
        """
        pkg = write_package(tmp_path, engine=source)
        result = analyze([pkg], config=self.CONFIG, select=["EXCEPT001"])
        findings = findings_for(result, "EXCEPT001")
        assert len(findings) == 2
        assert "BaseException" in findings[0].message
        assert "bare except" in findings[1].message

    def test_typed_handlers_and_other_modules_pass(self, tmp_path):
        engine = """
            def run(task):
                try:
                    return task()
                except (ValueError, OSError):
                    return None
        """
        other = """
            def best_effort(task):
                try:
                    return task()
                except Exception:
                    return None
        """
        pkg = write_package(tmp_path, engine=engine, other=other)
        result = analyze([pkg], config=self.CONFIG, select=["EXCEPT001"])
        assert findings_for(result, "EXCEPT001") == []

    def test_justified_suppression_silences(self, tmp_path):
        source = """
            def run(task):
                try:
                    return task()
                # repro-analysis: allow(EXCEPT001): reports any failure to the parent
                except Exception:
                    return None
        """
        pkg = write_package(tmp_path, engine=source)
        result = analyze([pkg], config=self.CONFIG, select=["EXCEPT001"])
        assert findings_for(result, "EXCEPT001") == []
        assert [f.rule for f in result.suppressed] == ["EXCEPT001"]

    AUDIT_CONFIG = AnalysisConfig(
        package="pkg",
        rules={
            "EXCEPT001": {
                "modules": ("pkg.engine",),
                "audit-modules": ("pkg.store",),
                "audit-names": ("OSError",),
            }
        },
    )

    def test_audited_oserror_without_justification_flagged(self, tmp_path):
        store = """
            def persist(path, blob):
                try:
                    path.write_bytes(blob)
                except OSError:
                    return False
                return True
        """
        pkg = write_package(tmp_path, store=store)
        result = analyze([pkg], config=self.AUDIT_CONFIG, select=["EXCEPT001"])
        findings = findings_for(result, "EXCEPT001")
        assert len(findings) == 1
        assert findings[0].line == line_of(store, "except OSError")
        assert "OSError" in findings[0].message

    def test_audited_oserror_with_justification_passes(self, tmp_path):
        store = """
            def persist(path, blob):
                try:
                    path.write_bytes(blob)
                # repro-analysis: allow(EXCEPT001): write-behind is best-effort by contract
                except OSError:
                    return False
                return True
        """
        pkg = write_package(tmp_path, store=store)
        result = analyze([pkg], config=self.AUDIT_CONFIG, select=["EXCEPT001"])
        assert findings_for(result, "EXCEPT001") == []
        assert [f.rule for f in result.suppressed] == ["EXCEPT001"]

    def test_audit_ignores_subtypes_and_unaudited_modules(self, tmp_path):
        # Catching the precise subtype already documents the expectation;
        # the same handler outside the audited modules is idiomatic.
        store = """
            def read(path):
                try:
                    return path.read_bytes()
                except FileNotFoundError:
                    return None
        """
        engine = """
            def read(path):
                try:
                    return path.read_bytes()
                except OSError:
                    return None
        """
        pkg = write_package(tmp_path, store=store, engine=engine)
        result = analyze([pkg], config=self.AUDIT_CONFIG, select=["EXCEPT001"])
        assert findings_for(result, "EXCEPT001") == []


class TestSuppressions:
    SOURCE = """
        # repro-analysis: allow(REC001): depth bounded by the pattern size (<= 4)
        def walk(node):
            return walk(node.child)
    """

    def test_justified_suppression_silences_and_is_reported_as_suppressed(self, tmp_path):
        pkg = write_package(tmp_path, kernel=self.SOURCE)
        result = analyze([pkg], config=KERNEL_CONFIG, select=["REC001"])
        assert result.findings == ()
        assert len(result.suppressed) == 1
        assert result.suppressed[0].rule == "REC001"

    def test_suppression_without_justification_is_sup001_and_does_not_suppress(
        self, tmp_path
    ):
        source = """
            # repro-analysis: allow(REC001)
            def walk(node):
                return walk(node.child)
        """
        pkg = write_package(tmp_path, kernel=source)
        result = analyze([pkg], config=KERNEL_CONFIG, select=["REC001"])
        rules = sorted(f.rule for f in result.findings)
        assert rules == ["REC001", "SUP001"]
        sup = findings_for(result, "SUP001")[0]
        assert sup.line == line_of(source, "allow(REC001)")

    def test_suppression_for_other_rule_does_not_cover(self, tmp_path):
        source = """
            # repro-analysis: allow(DET001): not this rule
            def walk(node):
                return walk(node.child)
        """
        pkg = write_package(tmp_path, kernel=source)
        result = analyze([pkg], config=KERNEL_CONFIG, select=["REC001"])
        assert len(findings_for(result, "REC001")) == 1


class TestConfig:
    def test_per_module_override_disables_rule(self, tmp_path):
        source = """
            def order(values):
                return sorted(values, key=repr)
        """
        config = config_from_mapping(
            {
                "package": "pkg",
                "per-module": {"pkg.legacy": {"disable": ["DET001"]}},
            }
        )
        pkg = write_package(tmp_path, legacy=source, fresh=source)
        result = analyze([pkg], config=config, select=["DET001"])
        modules = {f.module for f in findings_for(result, "DET001")}
        assert modules == {"pkg.fresh"}

    def test_globally_disabled_rule_does_not_run(self, tmp_path):
        source = """
            def order(values):
                return sorted(values, key=repr)
        """
        config = config_from_mapping({"package": "pkg", "disable": ["DET001"]})
        pkg = write_package(tmp_path, mod=source)
        result = analyze([pkg], config=config)
        assert "DET001" not in result.rules_run

    def test_pyproject_discovery_reads_tool_table(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text(
            textwrap.dedent(
                """
                [tool.repro-analysis]
                package = "pkg"
                kernel-modules = ["pkg.kernel"]

                [tool.repro-analysis.rules.REC001]
                root-modules = ["pkg.kernel"]
                """
            )
        )
        pkg = write_package(tmp_path, kernel="x = 1\n")
        config = discover_config([pkg])
        assert config.kernel_modules == ("pkg.kernel",)
        assert config.options_for("REC001")["root_modules"] == ["pkg.kernel"]
        assert config.source == tmp_path / "pyproject.toml"

    def test_repo_pyproject_parses(self):
        config = load_config(REPO_ROOT / "pyproject.toml")
        assert "repro.booleans.obdd" in config.kernel_modules


class TestCLI:
    @staticmethod
    def run_cli(*arguments: str, cwd: Path):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(SRC)
        return subprocess.run(
            [sys.executable, "-m", "repro.analysis", *arguments],
            capture_output=True,
            text=True,
            cwd=cwd,
            env=env,
            timeout=60,
        )

    def test_findings_give_exit_1_and_json_report(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text(
            '[tool.repro-analysis]\npackage = "pkg"\nkernel-modules = ["pkg.kernel"]\n'
        )
        write_package(tmp_path, kernel="def walk(n):\n    return walk(n - 1)\n")
        completed = self.run_cli("pkg", "--format", "json", cwd=tmp_path)
        assert completed.returncode == 1
        document = json.loads(completed.stdout)
        assert [f["rule"] for f in document["findings"]] == ["REC001"]
        assert document["findings"][0]["line"] == 1

    def test_clean_package_exits_0(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text(
            '[tool.repro-analysis]\npackage = "pkg"\n'
        )
        write_package(tmp_path, mod="def add(a, b):\n    return a + b\n")
        completed = self.run_cli("pkg", "--strict", cwd=tmp_path)
        assert completed.returncode == 0, completed.stdout + completed.stderr
        assert "0 findings" in completed.stdout

    def test_list_rules_names_all_six(self, tmp_path):
        completed = self.run_cli("--list-rules", cwd=tmp_path)
        assert completed.returncode == 0
        for rule_id in (
            "REC001",
            "EXACT001",
            "EXCEPT001",
            "PICKLE001",
            "DET001",
            "SLOTS001",
        ):
            assert rule_id in completed.stdout


class TestSelfGate:
    """The tier-1 gate: the analyzer runs clean over this repository."""

    def test_src_repro_has_zero_findings(self):
        result = analyze([SRC / "repro"])
        assert set(result.rules_run) == set(rule_ids())
        assert result.modules_analyzed > 90
        details = "\n".join(
            f"{f.location()}: {f.rule} {f.message}" for f in result.findings
        )
        assert result.ok, f"repro.analysis found violations:\n{details}"

    def test_every_repo_suppression_is_justified(self):
        result = analyze([SRC / "repro"])
        assert not [f for f in result.findings if f.rule == "SUP001"]
        # Bounded-depth walkers in the structural front-end and query
        # matcher, the deliberate broad handlers on the crash-recovery
        # paths (worker loop survival, platform-variant tracker cleanup),
        # and the artifact store's audited OSError degradation decisions.
        suppressed_modules = {f.module for f in result.suppressed}
        assert suppressed_modules <= {
            "repro.queries.matching",
            "repro.structure.clique_width",
            "repro.structure.elimination",
            "repro.structure.minors",
            "repro.engine.parallel",
            "repro.engine.shm",
            "repro.store.format",
            "repro.store.store",
        }
