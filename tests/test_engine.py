"""Tests for the indexed, cached compilation engine (repro.engine)."""

from fractions import Fraction

import pytest

from repro.data.instance import Instance, fact
from repro.data.tid import ProbabilisticInstance
from repro.engine import CacheStats, CompilationEngine, default_engine
from repro.errors import CompilationError, ProbabilityError
from repro.generators import labelled_partial_ktree_instance, rst_bipartite_instance
from repro.probability.evaluation import probability
from repro.provenance.compile_obdd import compile_query_to_obdd
from repro.provenance.lineage import lineage_of
from repro.queries import parse_ucq, qp, unsafe_rst


@pytest.fixture()
def ktree_tid():
    instance = labelled_partial_ktree_instance(12, 2, seed=3)
    return ProbabilisticInstance.uniform(instance, Fraction(1, 2))


def test_cached_compilation_identical_to_cold(ktree_tid):
    engine = CompilationEngine()
    instance = ktree_tid.instance
    cold = compile_query_to_obdd(unsafe_rst(), instance)
    warm_first = engine.compile(unsafe_rst(), instance)
    warm_second = engine.compile(unsafe_rst(), instance)
    assert warm_second is warm_first
    assert warm_first.size == cold.size
    assert warm_first.width == cold.width
    assert warm_first.order == cold.order
    valuation = ktree_tid.valuation()
    assert warm_first.probability(valuation) == cold.probability(valuation)


def test_cached_probability_identical_to_cold(ktree_tid):
    engine = CompilationEngine()
    for method in ("auto", "obdd", "dnnf"):
        cold = probability(unsafe_rst(), ktree_tid, method=method)
        warm = engine.probability(unsafe_rst(), ktree_tid, method=method)
        again = engine.probability(unsafe_rst(), ktree_tid, method=method)
        assert warm == cold == again, method
    assert engine.stats["probability"].hits > 0


def test_probability_entry_point_accepts_engine(ktree_tid):
    engine = CompilationEngine()
    value = probability(unsafe_rst(), ktree_tid, engine=engine)
    assert value == probability(unsafe_rst(), ktree_tid)
    assert engine.stats["probability"].misses == 1
    probability(unsafe_rst(), ktree_tid, engine=engine)
    assert engine.stats["probability"].hits == 1


def test_lineage_and_compile_entry_points_accept_engine(ktree_tid):
    engine = CompilationEngine()
    instance = ktree_tid.instance
    first = lineage_of(unsafe_rst(), instance, engine=engine)
    second = lineage_of(unsafe_rst(), instance, engine=engine)
    assert second is first
    compiled = compile_query_to_obdd(unsafe_rst(), instance, engine=engine)
    assert compile_query_to_obdd(unsafe_rst(), instance, engine=engine) is compiled


def test_fingerprint_is_content_based():
    left = Instance([fact("E", "a", "b")])
    right = Instance([fact("E", "a", "b")])
    assert left.fingerprint == right.fingerprint
    grown = left.with_facts([fact("E", "b", "c")])
    assert grown.fingerprint != left.fingerprint
    # TID fingerprints also depend on the probabilities.
    half = ProbabilisticInstance.uniform(left, Fraction(1, 2))
    third = ProbabilisticInstance.uniform(left, Fraction(1, 3))
    assert half.fingerprint != third.fingerprint
    assert half.fingerprint == ProbabilisticInstance.uniform(right, Fraction(1, 2)).fingerprint


def test_derived_instance_does_not_reuse_cache(ktree_tid):
    engine = CompilationEngine()
    instance = ktree_tid.instance
    engine.compile(unsafe_rst(), instance)
    grown = instance.with_facts([fact("S", "fresh-a", "fresh-b")])
    compiled = engine.compile(unsafe_rst(), grown)
    assert engine.stats["obdd"].misses == 2
    assert set(compiled.order) == set(grown.facts)


def test_structural_artifacts_cached(ktree_tid):
    engine = CompilationEngine()
    instance = ktree_tid.instance
    assert engine.gaifman(instance) is engine.gaifman(instance)
    assert engine.tree_decomposition_of(instance) is engine.tree_decomposition_of(instance)
    assert engine.path_decomposition_of(instance) is engine.path_decomposition_of(instance)
    assert engine.fact_order(instance) == engine.fact_order(instance)
    assert engine.stats["structure"].hits > 0
    with pytest.raises(CompilationError):
        engine.fact_order(instance, kind="zigzag")


def test_compile_many_and_probability_many(ktree_tid):
    engine = CompilationEngine()
    instance = ktree_tid.instance
    queries = [unsafe_rst(), qp(instance.signature), unsafe_rst()]
    compiled = engine.compile_many(queries, instance)
    assert len(compiled) == 3
    assert compiled[0] is compiled[2]
    values = engine.probability_many(queries, ktree_tid)
    assert values[0] == values[2] == probability(unsafe_rst(), ktree_tid)
    assert values[1] == probability(qp(instance.signature), ktree_tid)


def test_read_once_method_still_rejects_shared_facts():
    instance = rst_bipartite_instance(2)
    tid = ProbabilisticInstance.uniform(instance, Fraction(1, 2))
    engine = CompilationEngine()
    with pytest.raises(ProbabilityError):
        engine.probability(unsafe_rst(), tid, method="read_once")


def test_lru_eviction_bounds_live_instances():
    engine = CompilationEngine(max_instances=2)
    instances = [Instance([fact("E", f"a{i}", f"b{i}")]) for i in range(4)]
    for instance in instances:
        engine.gaifman(instance)
    assert len(engine._artifacts) == 2
    engine.clear()
    assert len(engine._artifacts) == 0
    assert engine.stats["structure"].total == 0
    with pytest.raises(CompilationError):
        CompilationEngine(max_instances=0)


def test_lru_eviction_bounds_queries_per_instance():
    engine = CompilationEngine(max_queries_per_instance=2)
    instance = Instance([fact("E", "a", "b"), fact("E", "b", "c"), fact("R", "a")])
    queries = [parse_ucq(text) for text in ("E(x, y)", "R(x)", "E(x, y), E(y, z)")]
    for query in queries:
        engine.compile(query, instance)
    slot = engine._artifacts[instance.fingerprint]
    assert len(slot.compiled) == 2
    assert len(slot.lineages) == 2
    # The evicted (oldest) query simply recompiles and stays correct.
    recompiled = engine.compile(queries[0], instance)
    assert engine.stats["obdd"].misses == 4
    assert recompiled.size == engine.compile(queries[0], instance).size
    with pytest.raises(CompilationError):
        CompilationEngine(max_queries_per_instance=0)


def test_lru_eviction_bounds_probability_entries(ktree_tid):
    engine = CompilationEngine(max_probability_entries=2)
    queries = [parse_ucq(text) for text in ("R(x)", "T(x)", "R(x), S(x, y)")]
    values = [engine.probability(q, ktree_tid) for q in queries]
    assert len(engine._probabilities) == 2
    # The evicted (oldest) entry recomputes to the same value: a miss, not a bug.
    assert engine.probability(queries[0], ktree_tid) == values[0]
    assert engine.stats["probability"].misses == 4
    with pytest.raises(CompilationError):
        CompilationEngine(max_probability_entries=0)


def test_lru_eviction_respects_recency(ktree_tid):
    engine = CompilationEngine(max_probability_entries=2)
    queries = [parse_ucq(text) for text in ("R(x)", "T(x)", "R(x), S(x, y)")]
    engine.probability(queries[0], ktree_tid)
    engine.probability(queries[1], ktree_tid)
    engine.probability(queries[0], ktree_tid)  # touch: [0] becomes most recent
    engine.probability(queries[2], ktree_tid)  # evicts [1], not [0]
    hits_before = engine.stats["probability"].hits
    engine.probability(queries[0], ktree_tid)
    assert engine.stats["probability"].hits == hits_before + 1


def test_clear_mid_batch_keeps_results_correct(ktree_tid):
    engine = CompilationEngine()
    queries = [unsafe_rst(), qp(ktree_tid.instance.signature)]
    before = engine.probability_many(queries, ktree_tid)
    engine.clear()
    assert len(engine._artifacts) == 0 and len(engine._probabilities) == 0
    assert all(stats.total == 0 for stats in engine.stats.values())
    after = engine.probability_many(queries, ktree_tid)
    assert after == before
    # The rerun was all misses (nothing survived the clear)...
    assert engine.stats["probability"].hits == 0
    # ...and the caches warmed back up.
    assert engine.probability_many(queries, ktree_tid) == before
    assert engine.stats["probability"].hits == len(queries)


def test_merged_parallel_stats_equal_sum_of_worker_stats(ktree_tid):
    from repro.engine import ParallelEngine, merge_cache_stats

    queries = [unsafe_rst(), qp(ktree_tid.instance.signature), unsafe_rst(), unsafe_rst()]
    parallel = ParallelEngine(workers=2)
    parallel.probability_many(queries, ktree_tid)
    report = parallel.last_report
    assert report.items == len(queries)
    merged = report.stats
    for name in merged:
        assert merged[name].hits == sum(stats[name].hits for stats in report.worker_stats)
        assert merged[name].misses == sum(
            stats[name].misses for stats in report.worker_stats
        )
    # Every item was evaluated exactly once across the fleet.
    assert merged["probability"].total == len(queries)
    assert merge_cache_stats(report.worker_stats)["probability"].total == len(queries)


def test_cache_stats_formatting():
    stats = CacheStats(hits=3, misses=1)
    assert stats.total == 4
    assert stats.hit_rate == 0.75
    assert "3 hits" in str(stats)
    assert (CacheStats(1, 2) + CacheStats(3, 4)) == CacheStats(4, 6)
    copied = stats.copy()
    copied.record(hit=True)
    assert stats.hits == 3 and copied.hits == 4


def test_default_engine_is_a_singleton():
    assert default_engine() is default_engine()
    assert isinstance(default_engine(), CompilationEngine)
