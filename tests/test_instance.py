"""Tests for repro.data.instance."""

import pytest

from repro.data.instance import Fact, Instance, fact, graph_instance
from repro.data.signature import Signature
from repro.errors import InstanceError, SignatureError


def make_instance():
    return Instance([fact("R", "a"), fact("S", "a", "b"), fact("T", "b")])


def test_size_and_domain():
    instance = make_instance()
    assert len(instance) == 3
    assert instance.domain == ("a", "b")
    assert instance.domain_size == 2


def test_signature_inferred():
    instance = make_instance()
    assert instance.signature.arity("R") == 1
    assert instance.signature.arity("S") == 2


def test_explicit_signature_checked():
    with pytest.raises(SignatureError):
        Instance([fact("R", "a", "b")], Signature.of(R=1))
    with pytest.raises(SignatureError):
        Instance([fact("Z", "a")], Signature.of(R=1))


def test_inconsistent_arity_detected():
    with pytest.raises(SignatureError):
        Instance([fact("R", "a"), fact("R", "a", "b")])


def test_facts_of_and_containing():
    instance = make_instance()
    assert instance.facts_of("S") == (fact("S", "a", "b"),)
    assert instance.facts_of("Z") == ()
    assert set(instance.facts_containing("a")) == {fact("R", "a"), fact("S", "a", "b")}


def test_duplicate_facts_collapse():
    instance = Instance([fact("R", "a"), fact("R", "a")])
    assert len(instance) == 1


def test_subinstance_and_membership():
    instance = make_instance()
    sub = instance.subinstance([fact("R", "a")])
    assert len(sub) == 1
    assert fact("R", "a") in instance
    assert sub.is_subinstance_of(instance)
    with pytest.raises(InstanceError):
        instance.subinstance([fact("R", "zzz")])


def test_restrict_domain():
    instance = make_instance()
    restricted = instance.restrict_domain({"a"})
    assert set(restricted.facts) == {fact("R", "a")}


def test_rename_with_dict_and_callable():
    instance = make_instance()
    renamed = instance.rename({"a": "x"})
    assert fact("S", "x", "b") in renamed
    renamed2 = instance.rename(lambda e: e.upper())
    assert fact("T", "B") in renamed2


def test_union_and_disjoint_union():
    left = Instance([fact("R", "a")])
    right = Instance([fact("R", "a"), fact("R", "b")])
    union = left.union(right)
    assert len(union) == 2
    disjoint = left.disjoint_union(right)
    assert len(disjoint) == 3
    assert disjoint.domain_size == 3


def test_all_subinstances_count():
    instance = make_instance()
    assert sum(1 for _ in instance.all_subinstances()) == 8


def test_all_subinstances_guard():
    big = Instance([fact("R", f"a{i}") for i in range(30)])
    with pytest.raises(InstanceError):
        list(big.all_subinstances())


def test_fact_helpers():
    f = fact("S", "a", "b")
    assert f.arity == 2
    assert f.elements() == ("a", "b")
    assert fact("S", "a", "a").elements() == ("a",)
    assert f.rename({"a": "z"}) == fact("S", "z", "b")
    assert str(f) == "S(a, b)"


def test_graph_instance_symmetric_and_loops():
    g = graph_instance([("u", "v")])
    assert len(g) == 2  # both orientations
    directed = graph_instance([("u", "v")], symmetric=False)
    assert len(directed) == 1
    with pytest.raises(InstanceError):
        graph_instance([("u", "u")])


def test_instance_equality_and_ordering_stability():
    a = Instance([fact("R", "a"), fact("R", "b")])
    b = Instance([fact("R", "b"), fact("R", "a")])
    assert a == b
    assert a.facts == b.facts


def test_fingerprint_stability_and_sensitivity():
    instance = make_instance()
    # Stable across construction order and processes (pure content digest).
    shuffled = Instance([fact("T", "b"), fact("R", "a"), fact("S", "a", "b")])
    assert instance.fingerprint == shuffled.fingerprint
    assert len(instance.fingerprint) == 64
    # Sensitive to facts and to the signature.
    assert instance.with_facts([fact("R", "b")]).fingerprint != instance.fingerprint
    wider = Instance(instance.facts, instance.signature.extend(Signature.of(U=1)))
    assert wider.fingerprint != instance.fingerprint


def test_facts_with_value_index():
    instance = Instance(
        [fact("S", "a", "b"), fact("S", "a", "c"), fact("S", "b", "c"), fact("R", "a")]
    )
    assert set(instance.facts_with_value("S", 0, "a")) == {
        fact("S", "a", "b"),
        fact("S", "a", "c"),
    }
    assert instance.facts_with_value("S", 1, "a") == ()
    assert instance.facts_with_value("missing", 0, "a") == ()


def test_facts_matching_joins_on_bound_positions():
    instance = Instance(
        [fact("S", "a", "b"), fact("S", "a", "c"), fact("S", "b", "c"), fact("R", "a")]
    )
    assert instance.facts_matching("S", {}) == instance.facts_of("S")
    assert set(instance.facts_matching("S", {0: "a"})) == {
        fact("S", "a", "b"),
        fact("S", "a", "c"),
    }
    assert instance.facts_matching("S", {0: "a", 1: "c"}) == (fact("S", "a", "c"),)
    assert instance.facts_matching("S", {0: "a", 1: "z"}) == ()
    assert instance.facts_matching("missing", {0: "a"}) == ()
