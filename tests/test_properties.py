"""Tests for structural query properties (hierarchical, ranked, inversion-free)."""

import pytest

from repro.errors import QueryError
from repro.data.instance import Instance, fact
from repro.queries import (
    attribute_orders,
    hierarchical_example,
    inversion_free_example,
    is_hierarchical,
    is_inversion_free,
    is_ranked_instance,
    is_ranked_query,
    is_safe_self_join_free_cq,
    parse_cq,
    parse_ucq,
    unsafe_rst,
)


def test_hierarchical_examples():
    assert is_hierarchical(hierarchical_example())
    assert is_hierarchical(parse_cq("R(x), S(x, y), U(x, y)"))
    assert not is_hierarchical(unsafe_rst())
    assert not is_hierarchical(parse_cq("S(x, y), R(x), T(y)"))


def test_hierarchical_ucq_checks_every_disjunct():
    query = parse_ucq("R(x), S(x, y) | R(x), S(x, y), T(y)")
    assert not is_hierarchical(query)


def test_ranked_query():
    assert is_ranked_query(parse_cq("S(x, y), U(y, z)"))
    assert not is_ranked_query(parse_cq("S(x, y), S(y, x)"))
    assert not is_ranked_query(parse_cq("S(x, x)"))


def test_ranked_instance():
    ranked = Instance([fact("S", "a", "b"), fact("S", "b", "c")])
    assert is_ranked_instance(ranked)
    cyclic = Instance([fact("S", "a", "b"), fact("S", "b", "a")])
    assert not is_ranked_instance(cyclic)
    loop = Instance([fact("S", "a", "a")])
    assert not is_ranked_instance(loop)


def test_attribute_orders_hierarchical():
    orders = attribute_orders(hierarchical_example())
    assert orders["S"] == (0, 1)
    orders2 = attribute_orders(inversion_free_example())
    assert orders2["S"] == (0, 1)


def test_attribute_orders_reject_non_hierarchical():
    with pytest.raises(QueryError):
        attribute_orders(unsafe_rst())


def test_attribute_orders_reject_unranked():
    with pytest.raises(QueryError):
        attribute_orders(parse_cq("S(x, y), S(y, x)"))


def test_is_inversion_free():
    assert is_inversion_free(hierarchical_example())
    assert is_inversion_free(inversion_free_example())
    assert not is_inversion_free(unsafe_rst())


def test_inversion_example_with_conflicting_orders():
    # Disjunct 1 wants S's first position outermost, disjunct 2 the second:
    # a classic inversion.
    query = parse_ucq("R(x), S(x, y) | T(y), S(x, y)")
    assert not is_inversion_free(query)


def test_safe_self_join_free_cq():
    assert is_safe_self_join_free_cq(hierarchical_example())
    assert not is_safe_self_join_free_cq(unsafe_rst())
    with pytest.raises(QueryError):
        is_safe_self_join_free_cq(parse_cq("R(x), R(y)"))
