"""Tests for d-DNNFs."""

from fractions import Fraction

import pytest

from repro.booleans.dnnf import DNNF, dnnf_from_obdd
from repro.booleans.formula import threshold_2_circuit
from repro.booleans.obdd import OBDD
from repro.errors import LineageError


def simple_ddnnf():
    """(x AND y) OR (NOT x AND z) — deterministic (disjuncts disagree on x)."""
    dnnf = DNNF()
    left = dnnf.conjunction([dnnf.literal("x"), dnnf.literal("y")])
    right = dnnf.conjunction([dnnf.literal("x", False), dnnf.literal("z")])
    dnnf.set_output(dnnf.disjunction([left, right]))
    return dnnf


def test_evaluate():
    dnnf = simple_ddnnf()
    assert dnnf.evaluate({"x": True, "y": True, "z": False})
    assert dnnf.evaluate({"x": False, "y": False, "z": True})
    assert not dnnf.evaluate({"x": True, "y": False, "z": True})


def test_decomposability_enforced():
    dnnf = DNNF()
    with pytest.raises(LineageError):
        dnnf.conjunction([dnnf.literal("x"), dnnf.literal("x", False)])


def test_determinism_checks():
    assert simple_ddnnf().check_determinism()
    bad = DNNF()
    bad.set_output(bad.disjunction([bad.literal("x"), bad.literal("y")]))
    assert not bad.check_determinism()


def test_probability():
    dnnf = simple_ddnnf()
    probability = dnnf.probability({"x": Fraction(1, 2), "y": Fraction(1, 2), "z": Fraction(1, 2)})
    assert probability == Fraction(1, 2)


def test_probability_requires_all_variables():
    dnnf = simple_ddnnf()
    with pytest.raises(LineageError):
        dnnf.probability({"x": Fraction(1, 2)})


def test_model_count():
    dnnf = simple_ddnnf()
    assert dnnf.model_count() == 4
    assert dnnf.model_count(all_variables={"x", "y", "z", "extra"}) == 8


def test_constants_and_trivial_connectives():
    dnnf = DNNF()
    dnnf.set_output(dnnf.conjunction([]))
    assert dnnf.evaluate({})
    dnnf2 = DNNF()
    dnnf2.set_output(dnnf2.disjunction([]))
    assert not dnnf2.evaluate({})


def test_to_circuit_equivalence():
    dnnf = simple_ddnnf()
    circuit = dnnf.to_circuit()
    for mask in range(8):
        valuation = {"x": bool(mask & 1), "y": bool(mask & 2), "z": bool(mask & 4)}
        assert dnnf.evaluate(valuation) == circuit.evaluate(valuation)


def test_dnnf_from_obdd_equivalence_and_properties():
    names = [f"x{i}" for i in range(5)]
    circuit = threshold_2_circuit(names)
    manager = OBDD(names)
    root = manager.build_from_circuit(circuit)
    dnnf = dnnf_from_obdd(manager, root)
    assert dnnf.check_decomposability()
    assert dnnf.check_determinism()
    for mask in range(1 << len(names)):
        valuation = {name: bool(mask >> i & 1) for i, name in enumerate(names)}
        assert dnnf.evaluate(valuation) == circuit.evaluate(valuation)
    probability = dnnf.probability({name: Fraction(1, 2) for name in names})
    assert probability == manager.probability(root, {name: Fraction(1, 2) for name in names})


def test_dnnf_from_obdd_terminal_cases():
    manager = OBDD(["x"])
    dnnf_true = dnnf_from_obdd(manager, manager.terminal(True))
    assert dnnf_true.evaluate({})
    dnnf_false = dnnf_from_obdd(manager, manager.terminal(False))
    assert not dnnf_false.evaluate({})


def test_size_and_reachable():
    dnnf = simple_ddnnf()
    assert dnnf.size >= 7
    assert set(dnnf.reachable()) <= set(range(dnnf.size))
    assert dnnf.variables() == frozenset({"x", "y", "z"})
