"""Tests for OBDDs."""

from fractions import Fraction

import pytest

from repro.booleans.circuit import BooleanCircuit
from repro.booleans.formula import parity_circuit, threshold_2_circuit
from repro.booleans.obdd import FALSE_NODE, OBDD, TRUE_NODE, minimal_obdd_width
from repro.errors import CompilationError, LineageError


def all_valuations(names):
    for mask in range(1 << len(names)):
        yield {name: bool(mask >> i & 1) for i, name in enumerate(names)}


def test_literal_and_terminals():
    manager = OBDD(["x", "y"])
    x = manager.literal("x")
    assert manager.evaluate(x, {"x": True})
    assert not manager.evaluate(x, {"x": False})
    assert manager.evaluate(TRUE_NODE, {})
    assert not manager.evaluate(FALSE_NODE, {})
    not_x = manager.literal("x", positive=False)
    assert manager.evaluate(not_x, {"x": False})


def test_unknown_variable_rejected():
    manager = OBDD(["x"])
    with pytest.raises(LineageError):
        manager.literal("z")
    with pytest.raises(LineageError):
        OBDD(["x", "x"])


def test_apply_and_or_not():
    manager = OBDD(["x", "y"])
    x, y = manager.literal("x"), manager.literal("y")
    conj = manager.apply_and(x, y)
    disj = manager.apply_or(x, y)
    neg = manager.apply_not(x)
    for valuation in all_valuations(["x", "y"]):
        assert manager.evaluate(conj, valuation) == (valuation["x"] and valuation["y"])
        assert manager.evaluate(disj, valuation) == (valuation["x"] or valuation["y"])
        assert manager.evaluate(neg, valuation) == (not valuation["x"])


def test_reduction_identical_children_collapse():
    manager = OBDD(["x"])
    assert manager.make_node(0, TRUE_NODE, TRUE_NODE) == TRUE_NODE


def test_hash_consing():
    manager = OBDD(["x", "y"])
    a = manager.make_node(0, FALSE_NODE, TRUE_NODE)
    b = manager.make_node(0, FALSE_NODE, TRUE_NODE)
    assert a == b


def test_restrict():
    manager = OBDD(["x", "y"])
    x, y = manager.literal("x"), manager.literal("y")
    conj = manager.apply_and(x, y)
    restricted = manager.restrict(conj, "x", True)
    assert restricted == y
    assert manager.restrict(conj, "x", False) == FALSE_NODE


def test_probability():
    manager = OBDD(["x", "y"])
    disj = manager.apply_or(manager.literal("x"), manager.literal("y"))
    probability = manager.probability(disj, {"x": Fraction(1, 2), "y": Fraction(1, 3)})
    assert probability == 1 - Fraction(1, 2) * Fraction(2, 3)


def test_probability_missing_variable():
    manager = OBDD(["x"])
    with pytest.raises(LineageError):
        manager.probability(manager.literal("x"), {})


def test_model_count():
    names = ["a", "b", "c"]
    manager = OBDD(names)
    disj = manager.disjunction(manager.literal(v) for v in names)
    assert manager.model_count(disj) == 7
    assert manager.model_count(TRUE_NODE) == 8
    assert manager.model_count(FALSE_NODE) == 0
    single = manager.literal("b")
    assert manager.model_count(single) == 4


def test_size_and_width_of_conjunction():
    names = [f"x{i}" for i in range(6)]
    manager = OBDD(names)
    conj = manager.conjunction(manager.literal(v) for v in names)
    assert manager.size(conj) == 6
    assert manager.width(conj) <= 2


def test_width_of_parity_is_constant():
    names = [f"x{i}" for i in range(8)]
    manager = OBDD(names)
    root = manager.build_from_circuit(parity_circuit(names))
    assert manager.width(root) == 2
    assert manager.size(root) <= 2 * len(names)


def test_build_from_circuit_equivalence():
    names = [f"x{i}" for i in range(5)]
    circuit = threshold_2_circuit(names)
    manager = OBDD(names)
    root = manager.build_from_circuit(circuit)
    for valuation in all_valuations(names):
        assert manager.evaluate(root, valuation) == circuit.evaluate(valuation)


def test_build_from_circuit_missing_variable():
    circuit = BooleanCircuit()
    circuit.set_output(circuit.variable("z"))
    manager = OBDD(["x"])
    with pytest.raises(CompilationError):
        manager.build_from_circuit(circuit)


def test_build_from_clauses():
    manager = OBDD(["a", "b", "c"])
    root = manager.build_from_clauses([["a", "b"], ["c"]])
    for valuation in all_valuations(["a", "b", "c"]):
        expected = (valuation["a"] and valuation["b"]) or valuation["c"]
        assert manager.evaluate(root, valuation) == expected


def test_minimal_obdd_width_over_orders():
    # x0*y0 + x1*y1 has width 3 in the interleaved order and more in the bad order.
    names = ["x0", "x1", "y0", "y1"]

    def build(manager: OBDD) -> int:
        return manager.disjunction(
            [
                manager.apply_and(manager.literal("x0"), manager.literal("y0")),
                manager.apply_and(manager.literal("x1"), manager.literal("y1")),
            ]
        )

    best = minimal_obdd_width(names, build)
    interleaved = OBDD(["x0", "y0", "x1", "y1"])
    assert best <= interleaved.width(build(interleaved))


def test_terminal_helper():
    manager = OBDD([])
    assert manager.terminal(True) == TRUE_NODE
    assert manager.terminal(False) == FALSE_NODE
