"""Tests for OBDD compilation of query lineages (Theorems 6.5 and 6.7)."""

from fractions import Fraction

from repro.data.instance import Instance, fact
from repro.data.tid import ProbabilisticInstance
from repro.generators import (
    directed_path_instance,
    grid_instance,
    rst_bipartite_instance,
    rst_chain_instance,
    s_grid_instance,
)
from repro.provenance.compile_obdd import (
    compile_circuit_to_obdd,
    compile_query_to_dnnf,
    compile_query_to_obdd,
    obdd_width_of_query,
)
from repro.provenance.lineage import brute_force_lineage_table
from repro.queries import parse_cq, qp, unsafe_rst
from repro.booleans.formula import threshold_2_circuit


def test_compiled_obdd_equivalent_to_lineage():
    instance = rst_bipartite_instance(2)
    compiled = compile_query_to_obdd(unsafe_rst(), instance)
    for world, expected in brute_force_lineage_table(unsafe_rst(), instance).items():
        valuation = {f: (f in world) for f in instance}
        assert compiled.evaluate(valuation) == expected


def test_compiled_obdd_probability_matches_brute_force():
    instance = rst_chain_instance(2)
    tid = ProbabilisticInstance.uniform(instance, Fraction(1, 3))
    compiled = compile_query_to_obdd(unsafe_rst(), instance)
    from repro.probability.brute_force import brute_force_probability

    assert compiled.probability(tid.valuation()) == brute_force_probability(unsafe_rst(), tid)


def test_obdd_constant_width_on_paths_for_qp():
    # Theorem 6.7 shape: constant width on a bounded-pathwidth family.
    widths = [
        obdd_width_of_query(qp(), directed_path_instance(n), use_path_decomposition=True)
        for n in (4, 8, 12)
    ]
    assert max(widths) == min(widths)


def test_obdd_width_grows_on_grids_for_qp():
    # Theorem 8.1 shape: width grows with the grid side.
    widths = [obdd_width_of_query(qp(), grid_instance(n, n)) for n in (2, 3, 4)]
    assert widths[0] < widths[1] < widths[2]


def test_rst_trivial_on_s_grids():
    # Section 8.2: the unsafe RST query has trivial OBDDs on S-grids.
    widths = [obdd_width_of_query(unsafe_rst(), s_grid_instance(n, n)) for n in (2, 3, 4)]
    assert max(widths) == 1


def test_compile_circuit_to_obdd():
    names = [f"x{i}" for i in range(5)]
    circuit = threshold_2_circuit(names)
    compiled = compile_circuit_to_obdd(circuit)
    assert compiled.width <= 3
    assert compiled.size <= 2 * len(names)


def test_compile_query_to_dnnf_agrees_with_obdd():
    instance = rst_bipartite_instance(2)
    tid = ProbabilisticInstance.uniform(instance, Fraction(1, 2))
    compiled = compile_query_to_obdd(unsafe_rst(), instance)
    dnnf = compile_query_to_dnnf(unsafe_rst(), instance)
    valuation = {f: Fraction(1, 2) for f in dnnf.variables()}
    assert dnnf.probability(valuation) == compiled.probability(tid.valuation())


def test_explicit_order_is_respected():
    instance = Instance([fact("R", "a"), fact("R", "b")])
    query = parse_cq("R(x)")
    order = list(reversed(instance.facts))
    compiled = compile_query_to_obdd(query, instance, order=order)
    assert compiled.order == tuple(order)


def test_empty_lineage_compiles_to_false():
    instance = Instance([fact("R", "a")])
    compiled = compile_query_to_obdd(unsafe_rst(), instance)
    assert compiled.size == 0
    assert not compiled.evaluate({f: True for f in instance})
