"""Tests for conjunctive two-way regular path queries (repro.queries.rpq)."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.instance import Fact, Instance, fact
from repro.data.signature import Signature
from repro.data.tid import ProbabilisticInstance
from repro.errors import QueryError
from repro.generators.grids import grid_instance
from repro.generators.lines import directed_path_instance
from repro.probability.brute_force import brute_force_property_probability
from repro.queries.atoms import Disequality, var
from repro.queries.rpq import (
    NFA,
    c2rpq,
    c2rpq_homomorphisms,
    c2rpq_lineage,
    c2rpq_matches,
    c2rpq_minimal_matches,
    c2rpq_satisfied,
    concat,
    epsilon,
    optional,
    parse_regex,
    path_atom,
    plus,
    reachability_query,
    regex_to_nfa,
    rpq_pairs,
    rpq_witness_paths,
    star,
    symbol,
    two_incident_paths_query,
    union,
)


# -- regular expressions and parsing -------------------------------------------------


def test_parse_regex_symbols_and_inverse():
    node = parse_regex("E")
    assert node.kind == "symbol"
    assert node.payload == ("E", False)
    node = parse_regex("E-")
    assert node.payload == ("E", True)


def test_parse_regex_operators_and_str_roundtrip():
    node = parse_regex("E.(F|G-)*")
    assert node.kind == "concat"
    text = str(node)
    reparsed = parse_regex(text.replace("ε", ""))
    assert str(reparsed) == text


def test_parse_regex_plus_and_optional():
    node = parse_regex("E+")
    assert node.kind == "concat"  # E . E*
    node = parse_regex("E?")
    assert node.kind == "union"


def test_parse_regex_implicit_concatenation():
    explicit = parse_regex("E.F")
    implicit = parse_regex("E F")
    assert str(explicit) == str(implicit)


def test_parse_regex_errors():
    with pytest.raises(QueryError):
        parse_regex("")
    with pytest.raises(QueryError):
        parse_regex("(E")
    with pytest.raises(QueryError):
        parse_regex("E)")
    with pytest.raises(QueryError):
        parse_regex("*E")
    with pytest.raises(QueryError):
        parse_regex("E @ F")


def test_constructor_helpers():
    assert concat().kind == "epsilon"
    assert concat(symbol("E")).kind == "symbol"
    assert union(symbol("E")).kind == "symbol"
    with pytest.raises(QueryError):
        union()
    assert optional(symbol("E")).kind == "union"
    assert str(epsilon()) == "ε"


# -- NFA construction ------------------------------------------------------------------


def test_nfa_accepts_simple_words():
    nfa = regex_to_nfa(parse_regex("E.F"))
    assert nfa.accepts_word([("E", False), ("F", False)])
    assert not nfa.accepts_word([("E", False)])
    assert not nfa.accepts_word([("F", False), ("E", False)])


def test_nfa_accepts_star_and_union():
    nfa = regex_to_nfa(parse_regex("(E|F)*"))
    assert nfa.accepts_word([])
    assert nfa.accepts_word([("E", False), ("F", False), ("E", False)])
    assert not nfa.accepts_word([("G", False)])


def test_nfa_inverse_symbols_are_distinct_letters():
    nfa = regex_to_nfa(parse_regex("E-"))
    assert nfa.accepts_word([("E", True)])
    assert not nfa.accepts_word([("E", False)])
    assert nfa.labels() == {("E", True)}


# -- path evaluation --------------------------------------------------------------------


def _path(n: int) -> Instance:
    """A directed path with n vertices a1..an (n - 1 edge facts)."""
    return directed_path_instance(n - 1)


def test_rpq_pairs_single_edge():
    instance = _path(3)  # a1 -> a2 -> a3
    pairs = rpq_pairs(instance, "E")
    assert ("a1", "a2") in pairs and ("a2", "a3") in pairs
    assert ("a1", "a3") not in pairs


def test_rpq_pairs_transitive_closure():
    instance = _path(4)
    pairs = rpq_pairs(instance, "E+")
    assert ("a1", "a4") in pairs
    assert ("a4", "a1") not in pairs
    # E* additionally contains the identity pairs.
    star_pairs = rpq_pairs(instance, "E*")
    assert all((element, element) in star_pairs for element in instance.domain)


def test_rpq_pairs_two_way_navigation():
    instance = _path(3)
    pairs = rpq_pairs(instance, "E-.E-")
    assert ("a3", "a1") in pairs
    both_ways = rpq_pairs(instance, "(E|E-)+")
    # The underlying undirected path is connected.
    assert ("a1", "a3") in both_ways and ("a3", "a1") in both_ways


def test_rpq_pairs_on_grid_respects_direction():
    instance = grid_instance(2, 2)
    forward = rpq_pairs(instance, "E.E")
    assert any(source != target for source, target in forward)


def test_rpq_witness_paths_are_fact_simple_and_correct():
    instance = _path(4)
    witnesses = list(rpq_witness_paths(instance, "E+", "a1", "a3"))
    assert len(witnesses) == 1
    only = witnesses[0]
    assert only == frozenset({fact("E", "a1", "a2"), fact("E", "a2", "a3")})


def test_rpq_witness_paths_respect_max_facts():
    instance = _path(5)
    assert list(rpq_witness_paths(instance, "E+", "a1", "a5", max_facts=2)) == []
    assert list(rpq_witness_paths(instance, "E+", "a1", "a3", max_facts=2))


def test_rpq_witness_paths_empty_path_when_nullable():
    instance = _path(3)
    witnesses = list(rpq_witness_paths(instance, "E*", "a2", "a2"))
    assert frozenset() in witnesses


# -- C2RPQ≠ queries ------------------------------------------------------------------------


def test_c2rpq_requires_atoms_and_valid_disequalities():
    with pytest.raises(QueryError):
        c2rpq([])
    with pytest.raises(QueryError):
        c2rpq([path_atom("E", "x", "y")], [Disequality(var("x"), var("z"))])


def test_c2rpq_variables_size_and_str():
    query = two_incident_paths_query()
    assert {v.name for v in query.variables()} == {"x", "y", "z"}
    assert query.size == 5
    assert "!=" in str(query)
    assert "(" in str(query.atoms[0])


def test_reachability_query_satisfaction():
    query = reachability_query()
    assert c2rpq_satisfied(_path(3), query)
    isolated = Instance([fact("E", "a", "a")], Signature([("E", 2)]))
    # Self-loop: x and y must differ, no pair of distinct reachable elements.
    assert not c2rpq_satisfied(isolated, query)


def test_c2rpq_homomorphisms_enumeration():
    query = reachability_query()
    assignments = list(c2rpq_homomorphisms(query, _path(3)))
    pairs = {(a[var("x")], a[var("y")]) for a in assignments}
    assert pairs == {("a1", "a2"), ("a2", "a3"), ("a1", "a3")}


def test_c2rpq_homomorphism_same_variable_loop():
    query = c2rpq([path_atom("E+", "x", "x")])
    assert not c2rpq_satisfied(_path(3), query)
    cycle = Instance(
        [fact("E", "a", "b"), fact("E", "b", "a")], Signature([("E", 2)])
    )
    assert c2rpq_satisfied(cycle, query)


def test_c2rpq_matches_and_minimal_matches():
    instance = _path(3)
    query = reachability_query()
    matches = c2rpq_matches(query, instance)
    minimal = c2rpq_minimal_matches(query, instance)
    assert frozenset({fact("E", "a1", "a2")}) in minimal
    assert all(any(m <= match for m in minimal) for match in matches)
    # The two-edge witness a1 -> a3 is *not* minimal: it strictly contains a single edge witness.
    assert frozenset({fact("E", "a1", "a2"), fact("E", "a2", "a3")}) not in minimal


def test_two_incident_paths_query_detects_incident_edges():
    path3 = _path(3)  # two incident edges
    assert c2rpq_satisfied(path3, two_incident_paths_query())
    single = _path(2)
    assert not c2rpq_satisfied(single, two_incident_paths_query())


def test_two_incident_paths_query_subdivision_invariance():
    # Subdividing each edge does not change whether two incident edges exist
    # (on a path, there are always two incident facts once there are >= 2 facts).
    subdivided = _path(5)
    assert c2rpq_satisfied(subdivided, two_incident_paths_query())


def test_c2rpq_lineage_agrees_with_boolean_semantics():
    instance = _path(4)
    query = reachability_query()
    lineage = c2rpq_lineage(query, instance)
    for world in instance.all_subinstances():
        expected = c2rpq_satisfied(world, query)
        assert lineage.evaluate(world.facts) == expected


def test_c2rpq_lineage_probability_matches_brute_force():
    instance = _path(4)
    query = two_incident_paths_query()
    lineage = c2rpq_lineage(query, instance)
    tid = ProbabilisticInstance.uniform(instance, Fraction(1, 2))
    expected = brute_force_property_probability(
        lambda world: c2rpq_satisfied(world, query), tid
    )
    circuit = lineage.to_circuit()
    total = Fraction(0)
    for world, weight in tid.possible_worlds():
        if circuit.evaluate({f: f in set(world.facts) for f in instance.facts}):
            total += weight
    assert total == expected


@settings(max_examples=25, deadline=None)
@given(n=st.integers(min_value=2, max_value=5))
def test_reachability_pairs_match_transitive_closure(n):
    """E+ pairs on a directed path are exactly the i<j pairs."""
    instance = directed_path_instance(n)  # vertices a1..a(n+1)
    pairs = rpq_pairs(instance, "E+")
    expected = {
        (f"a{i}", f"a{j}") for i in range(1, n + 2) for j in range(i + 1, n + 2)
    }
    assert pairs == expected


@settings(max_examples=20, deadline=None)
@given(
    edges=st.lists(
        st.tuples(st.integers(min_value=0, max_value=3), st.integers(min_value=0, max_value=3)),
        min_size=1,
        max_size=6,
    )
)
def test_two_way_star_is_symmetric_connectivity(edges):
    """(E|E-)+ relates exactly the pairs in the same weakly-connected component."""
    facts = [fact("E", f"v{u}", f"v{v}") for u, v in edges if u != v]
    if not facts:
        return
    instance = Instance(facts, Signature([("E", 2)]))
    pairs = rpq_pairs(instance, "(E|E-)+")
    # Symmetry of the two-way closure.
    assert all((b, a) in pairs for a, b in pairs)
