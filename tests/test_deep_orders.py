"""Deep-variable-order regression tests (tier-1).

The seed knowledge-compilation core was recursive: compiling or evaluating a
line instance of length >= 2000 overflowed the interpreter stack through the
``apply`` / probability walks.  The iterative kernels must handle depth
bounded only by memory, stay exact, and agree with the closed form: for the
two-consecutive-edges query on a directed path, the satisfying worlds are the
complement of the binary strings with no two adjacent ones, counted by a
Fibonacci number.
"""

import sys
from fractions import Fraction

import pytest

from repro.booleans.reference import build_from_clauses_fold
from repro.data.tid import ProbabilisticInstance
from repro.generators.lines import directed_path_instance
from repro.provenance.compile_obdd import compile_lineage_to_obdd
from repro.provenance.lineage import lineage_of
from repro.queries.parser import parse_ucq

LENGTH = 2000


def fibonacci(index: int) -> int:
    """F(index) with F(1) = F(2) = 1."""
    a, b = 1, 1
    for _ in range(index - 2):
        a, b = b, a + b
    return b


@pytest.fixture(scope="module")
def deep_line():
    instance = directed_path_instance(LENGTH)
    query = parse_ucq("E(x,y), E(y,z)")
    lineage = lineage_of(query, instance)
    order = sorted(instance.facts, key=lambda f: int(f.arguments[0][1:]))
    compiled = compile_lineage_to_obdd(lineage, order)
    tid = ProbabilisticInstance.uniform(instance, Fraction(1, 2))
    return instance, lineage, compiled, tid


def test_deep_line_compiles_without_recursion_error(deep_line):
    instance, lineage, compiled, _ = deep_line
    assert lineage.clause_count == LENGTH - 1
    assert compiled.size > 0
    # Pathwidth-1 family: the width must stay constant (remember "previous
    # edge present" and "already satisfied"), not grow with the length.
    assert compiled.width == 3


def test_deep_line_probability_matches_closed_form(deep_line):
    _, _, compiled, tid = deep_line
    no_adjacent_pair = fibonacci(LENGTH + 2)
    expected = 1 - Fraction(no_adjacent_pair, 1 << LENGTH)
    assert compiled.probability(tid.valuation()) == expected
    assert compiled.model_count() == (1 << LENGTH) - no_adjacent_pair


def test_deep_line_float_fast_path(deep_line):
    _, _, compiled, tid = deep_line
    exact = compiled.probability(tid.valuation())
    fast = compiled.probability(tid.valuation(), exact=False)
    assert isinstance(fast, float)
    assert abs(fast - float(exact)) < 1e-9


def test_deep_line_dnnf_route_agrees(deep_line):
    _, _, compiled, tid = deep_line
    dnnf = compiled.to_dnnf()
    valuation = {fact: tid.probability_of(fact) for fact in dnnf.variables()}
    assert dnnf.probability(valuation) == compiled.probability(tid.valuation())


def test_deep_line_negation_restriction_and_evaluation(deep_line):
    instance, _, compiled, _ = deep_line
    manager = compiled.manager
    negated = manager.apply_not(compiled.root)
    assert manager.apply_not(negated) == compiled.root
    first = compiled.order[0]
    without_first = manager.restrict(compiled.root, first, False)
    with_first = manager.restrict(compiled.root, first, True)
    assert manager.restrict(compiled.root, first, False) == without_first  # cached
    assert without_first != with_first
    # A world with exactly one adjacent pair satisfies the query...
    pair = {compiled.order[5]: True, compiled.order[6]: True}
    assert compiled.evaluate(pair)
    # ... and a world with every other edge does not.
    alternating = {fact: index % 2 == 0 for index, fact in enumerate(compiled.order)}
    assert not compiled.evaluate(alternating)


def test_seed_fold_overflows_where_trie_succeeds(deep_line):
    """The regression being guarded: the seed recursive fold cannot do this."""
    _, lineage, compiled, _ = deep_line
    from repro.booleans.obdd import OBDD

    limit = sys.getrecursionlimit()
    sys.setrecursionlimit(1000)
    try:
        fresh = OBDD(list(compiled.order))
        with pytest.raises(RecursionError):
            build_from_clauses_fold(fresh, [sorted(c, key=str) for c in lineage.clauses])
    finally:
        sys.setrecursionlimit(limit)


def test_deep_line_full_front_end_pipeline(deep_line):
    """PR-5 acceptance: query → fused tree encoding → automaton provenance →
    probability, end to end, on the length-2000 line.

    The seed front-end cannot do this at all (its encoding builder recurses
    to the decomposition depth and its validation replay is quadratic); the
    fused pipeline runs the whole chain and agrees with the Fibonacci closed
    form through both the provenance d-DNNF and the state dynamic program.
    """
    from repro.provenance.automata import automaton_probability
    from repro.provenance.automaton_provenance import provenance
    from repro.provenance.tree_encoding import fused_tree_encoding
    from repro.provenance.ucq_automaton import ucq_automaton

    instance, _, _, tid = deep_line
    query = parse_ucq("E(x,y), E(y,z)")
    encoding = fused_tree_encoding(instance)
    # Line Gaifman graph: the encoding follows a width-1 decomposition, one
    # node per bag (every bag carries exactly one of the 2000 edge facts).
    assert encoding.width == 1
    assert len(encoding.facts_in_order()) == LENGTH

    automaton = ucq_automaton(query)
    expected = 1 - Fraction(fibonacci(LENGTH + 2), 1 << LENGTH)
    assert automaton_probability(automaton, encoding, tid) == expected

    result = provenance(automaton, encoding)
    valuation = {f: tid.probability_of(f) for f in result.dnnf.variables()}
    assert result.dnnf.probability(valuation) == expected
    # The freed gate tables keep the peak live-gate footprint constant-size
    # on a path-shaped encoding, instead of linear in the 2000-node tree.
    assert 0 < result.peak_live_gates <= 16
