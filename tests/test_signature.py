"""Tests for repro.data.signature."""

import pytest

from repro.data.signature import GRAPH_SIGNATURE, Relation, Signature
from repro.errors import SignatureError


def test_relation_requires_positive_arity():
    with pytest.raises(SignatureError):
        Relation("R", 0)


def test_relation_requires_name():
    with pytest.raises(SignatureError):
        Relation("", 2)


def test_signature_of_keyword_constructor():
    signature = Signature.of(R=1, S=2)
    assert signature.arity("R") == 1
    assert signature.arity("S") == 2
    assert len(signature) == 2


def test_signature_rejects_conflicting_arities():
    with pytest.raises(SignatureError):
        Signature([("R", 1), ("R", 2)])


def test_signature_duplicate_consistent_declaration_is_fine():
    signature = Signature([("R", 2), ("R", 2)])
    assert len(signature) == 1


def test_graph_signature():
    assert GRAPH_SIGNATURE.arity("E") == 2
    assert GRAPH_SIGNATURE.is_arity_two()
    assert GRAPH_SIGNATURE.binary_relations()[0].name == "E"


def test_max_arity_and_arity_two():
    signature = Signature.of(R=1, S=2, U=3)
    assert signature.max_arity == 3
    assert not signature.is_arity_two()


def test_unary_and_binary_partition():
    signature = Signature.of(R=1, S=2, T=1)
    assert [r.name for r in signature.unary_relations()] == ["R", "T"]
    assert [r.name for r in signature.binary_relations()] == ["S"]


def test_contains_and_getitem():
    signature = Signature.of(R=1)
    assert "R" in signature
    assert "S" not in signature
    with pytest.raises(SignatureError):
        signature["S"]


def test_extend_and_restrict():
    signature = Signature.of(R=1)
    extended = signature.extend([("S", 2)])
    assert "S" in extended and "R" in extended
    restricted = extended.restrict(["S"])
    assert "R" not in restricted
    with pytest.raises(SignatureError):
        extended.restrict(["Z"])


def test_equality_and_hash():
    assert Signature.of(R=1, S=2) == Signature([("S", 2), ("R", 1)])
    assert hash(Signature.of(R=1)) == hash(Signature.of(R=1))


def test_relation_str():
    assert str(Relation("R", 2)) == "R/2"
