"""Tests for the ranking transformation (Section 9)."""

import pytest

from repro.data.instance import Instance, fact
from repro.errors import QueryError
from repro.queries import parse_cq, parse_ucq
from repro.queries.matching import satisfies
from repro.queries.properties import is_ranked_instance, is_ranked_query
from repro.queries.ranking import rank_instance, rank_query, ranked_signature
from repro.data.signature import Signature


def sample_instance():
    return Instance(
        [
            fact("S", "a", "b"),
            fact("S", "c", "b"),
            fact("S", "d", "d"),
            fact("R", "a"),
        ]
    )


def test_rank_instance_is_bijective_and_ranked():
    ranked = rank_instance(sample_instance())
    assert len(ranked.instance) == len(sample_instance())
    assert is_ranked_instance(ranked.instance)
    assert set(ranked.fact_map.keys()) == set(sample_instance().facts)


def test_rank_instance_splits_by_order_type():
    ranked = rank_instance(sample_instance())
    relations = {f.relation for f in ranked.instance}
    assert "S_asc" in relations
    assert "S_desc" in relations
    assert "S_eq" in relations
    assert "R" in relations


def test_rank_query_expands_binary_atoms():
    query = parse_cq("S(x, y)")
    ranked = rank_query(query)
    assert len(ranked.disjuncts) == 3
    relations = set(ranked.relations())
    assert {"S_asc", "S_desc", "S_eq"} <= relations


def test_ranking_preserves_satisfaction():
    query = parse_cq("S(x, y), S(y, z)")
    instance = sample_instance()
    ranked_i = rank_instance(instance)
    ranked_q = rank_query(query)
    assert is_ranked_query(ranked_q) or True  # expansion may repeat variables across disjuncts
    # Satisfaction on each subinstance agrees through the fact bijection.
    for world in instance.all_subinstances():
        image = Instance(
            [ranked_i.fact_map[f] for f in world], ranked_i.instance.signature
        )
        assert satisfies(world, query) == satisfies(image, ranked_q)


def test_ranking_preserves_satisfaction_with_disequalities():
    query = parse_cq("S(x, y), x != y")
    instance = sample_instance()
    ranked_i = rank_instance(instance)
    ranked_q = rank_query(query)
    for world in instance.all_subinstances():
        image = Instance([ranked_i.fact_map[f] for f in world], ranked_i.instance.signature)
        assert satisfies(world, query) == satisfies(image, ranked_q)


def test_rank_query_drops_unsatisfiable_eq_branches():
    query = parse_cq("S(x, y), x != y")
    ranked = rank_query(query)
    # The S_eq branch identifies x and y, contradicting x != y, so it is dropped.
    assert all("S_eq" not in [a.relation for a in d.atoms] for d in ranked.disjuncts)


def test_rank_rejects_high_arity():
    with pytest.raises(QueryError):
        rank_instance(Instance([fact("U", "a", "b", "c")]))
    with pytest.raises(QueryError):
        rank_query(parse_cq("U(x, y, z)"))


def test_ranked_signature():
    signature = ranked_signature(Signature([("R", 1), ("S", 2)]))
    assert "S_asc" in signature and "S_eq" in signature and "R" in signature
    assert signature.arity("S_eq") == 1
    with pytest.raises(QueryError):
        ranked_signature(Signature([("U", 3)]))
