"""Smoke tests that run the lightweight example scripts end to end.

Only the examples with sub-second workloads are exercised here (the heavier
ones — approximate inference on the hard bipartite family, the dichotomy tour
— are exercised by the benchmark suite instead); the goal is to keep the
examples from drifting out of sync with the public API.
"""

import runpy
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


@pytest.mark.parametrize(
    "script",
    [
        "quickstart.py",
        "provenance_semirings.py",
        "regular_path_queries.py",
        "engine_sessions.py",
        "differential_testing.py",
    ],
)
def test_example_runs_to_completion(script, capsys):
    runpy.run_path(str(EXAMPLES / script), run_name="__main__")
    output = capsys.readouterr().out
    assert output.strip(), f"{script} produced no output"
