"""End-to-end integration tests mirroring the paper's headline claims."""

from fractions import Fraction

from repro.data.gaifman import instance_pathwidth, instance_treewidth
from repro.data.signature import Signature
from repro.data.tid import ProbabilisticInstance
from repro.generators import (
    directed_path_instance,
    grid_instance,
    probabilistic_xml_instance,
    random_probabilities,
    random_ranked_instance,
    s_grid_instance,
)
from repro.probability import brute_force_probability, probability
from repro.provenance import (
    compile_query_to_obdd,
    nonempty_automaton,
    provenance_dnnf,
    tree_encoding,
    ucq_lineage_dnnf,
)
from repro.queries import inversion_free_example, is_intricate, qp, unsafe_rst
from repro.unfold import unfold_instance, verify_unfolding


def test_theorem_32_pipeline_on_probabilistic_xml():
    """Probabilistic-XML-style instance: lineage + probability of an MSO property."""
    document = probabilistic_xml_instance(3, fanout=2)
    assert instance_treewidth(document) == 1
    encoding = tree_encoding(document)
    automaton = nonempty_automaton("paragraph")
    dnnf = provenance_dnnf(automaton, encoding)
    assert dnnf.check_decomposability()
    valuation = {f: Fraction(9, 10) for f in dnnf.variables()}
    result = dnnf.probability(valuation)
    assert 0 < result < 1


def test_theorem_42_upper_bound_consistency():
    """All evaluation routes agree on a treelike instance (Theorem 4.2 upper bound)."""
    instance = directed_path_instance(4)
    tid = random_probabilities(instance, seed=17)
    expected = brute_force_probability(qp(), tid)
    assert probability(qp(), tid, method="obdd") == expected
    assert probability(qp(), tid, method="automaton") == expected


def test_theorem_81_dichotomy_shape():
    """q_p OBDD width: constant on a path family, growing on the grid family."""
    path_widths = [
        compile_query_to_obdd(qp(), directed_path_instance(n), use_path_decomposition=True).width
        for n in (4, 8, 12)
    ]
    grid_widths = [compile_query_to_obdd(qp(), grid_instance(n, n)).width for n in (2, 3, 4)]
    assert max(path_widths) == min(path_widths)
    assert grid_widths[-1] > grid_widths[0]
    assert grid_widths[-1] > max(path_widths)


def test_meta_dichotomy_classification():
    """Theorem 8.7 / Proposition 8.8: q_p is intricate, the RST query is not."""
    assert is_intricate(qp())
    rst_signature = Signature([("R", 1), ("S", 2), ("T", 1)])
    assert not is_intricate(unsafe_rst(), rst_signature)
    # and indeed the RST query is trivial on the S-grid family (Section 8.2)
    assert compile_query_to_obdd(unsafe_rst(), s_grid_instance(3, 3)).width == 1


def test_section_9_unfolding_pipeline():
    """Inversion-free query: unfolding preserves lineage and bounds tree-depth."""
    query = inversion_free_example()
    instance = random_ranked_instance(
        Signature([("R", 1), ("S", 2), ("T", 1)]), 6, 14, seed=23
    )
    unfolding = unfold_instance(query, instance)
    report = verify_unfolding(unfolding, query)
    assert all(report.values())
    assert instance_pathwidth(unfolding.unfolded) <= 1
    # Probability computed on the unfolded instance equals the original.
    tid = random_probabilities(instance, seed=23)
    unfolded_tid = ProbabilisticInstance(
        unfolding.unfolded,
        {unfolding.unfolded_fact(f): tid.probability_of(f) for f in instance},
    )
    assert probability(query, tid) == probability(query, unfolded_tid)


def test_ucq_dnnf_on_treelike_instance_agrees_with_brute_force():
    instance = directed_path_instance(5)
    dnnf = ucq_lineage_dnnf(qp(), instance)
    tid = ProbabilisticInstance.uniform(instance, Fraction(1, 2))
    valuation = {f: Fraction(1, 2) for f in dnnf.variables()}
    assert dnnf.probability(valuation) == brute_force_probability(qp(), tid)
