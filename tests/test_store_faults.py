"""Chaos-disk tests: deterministic disk faults against the artifact store.

Every test arms a :class:`~repro.testing.faults.FaultInjector` with the disk
fault kinds, points a real engine at a store carrying the plan, and asserts
three things at once: the faults actually fired (no tokens left), every
answer is still an *exact* Fraction (checked against a store-less serial
engine, and — for the headline sweep — the differential
:class:`~repro.testing.ProbabilityOracle`), and the store ends consistent
(damage quarantined, ``verify`` clean, no temp files left behind).
"""

import glob
from fractions import Fraction

import pytest

from repro.data.tid import ProbabilisticInstance
from repro.engine import CompilationEngine, ParallelEngine
from repro.generators import labelled_partial_ktree_instance
from repro.queries import hierarchical_example, parse_ucq, unsafe_rst
from repro.store import ArtifactStore
from repro.testing import DISK_FAULT_KINDS, FaultInjector, ProbabilityOracle

pytestmark = pytest.mark.chaos


@pytest.fixture(scope="module")
def tid():
    return ProbabilisticInstance.uniform(
        labelled_partial_ktree_instance(8, 2, seed=11), Fraction(1, 2)
    )


@pytest.fixture(scope="module")
def queries():
    return [unsafe_rst(), hierarchical_example(), parse_ucq("R(x), S(x, y)")]


@pytest.fixture(scope="module")
def expected(tid, queries):
    engine = CompilationEngine()
    return [engine.probability(query, tid, method="columnar") for query in queries]


@pytest.fixture()
def injector():
    with FaultInjector() as active:
        yield active


def tmp_files(root) -> list[str]:
    return glob.glob(str(root / "objects" / "*" / ".tmp-*"))


def assert_consistent(root) -> None:
    """The post-fault invariant: a verify sweep handles any lingering damage
    (quarantining it, never serving it), after which the store is fully
    clean and no in-flight temp files remain."""
    report = ArtifactStore(root).verify()
    assert report.clean, report.damaged
    assert ArtifactStore(root).verify().damaged == []
    assert tmp_files(root) == []


def test_disk_kinds_are_armable(injector):
    for kind in DISK_FAULT_KINDS:
        injector.arm(kind)
        assert injector.armed(kind) == 1


def test_torn_write_is_quarantined_on_next_read(tmp_path, injector, tid, expected, queries):
    root = tmp_path / "store"
    injector.arm("disk_torn_write")
    # The writer itself still answers exactly: the torn entry only exists on
    # disk, the in-memory artifact served the query.
    writer = CompilationEngine(store=ArtifactStore(root, fault_plan=injector.plan))
    assert writer.probability(queries[0], tid, method="columnar") == expected[0]
    assert injector.armed("disk_torn_write") == 0

    # The next process finds the torn entry, quarantines it, recompiles, and
    # heals the store by writing the good artifact behind.
    reader = CompilationEngine(store=root)
    assert reader.probability(queries[0], tid, method="columnar") == expected[0]
    assert reader.stats["store"].quarantines == 1
    assert reader.stats["store"].misses == 1

    healed = CompilationEngine(store=root)
    assert healed.probability(queries[0], tid, method="columnar") == expected[0]
    assert healed.stats["store"].hits == 1
    assert_consistent(root)


def test_bit_flip_is_caught_by_the_checksum(tmp_path, injector, tid, expected, queries):
    root = tmp_path / "store"
    CompilationEngine(store=root).probability(queries[0], tid, method="columnar")

    injector.arm("disk_bit_flip")
    reader = CompilationEngine(store=ArtifactStore(root, fault_plan=injector.plan))
    assert reader.probability(queries[0], tid, method="columnar") == expected[0]
    assert injector.armed("disk_bit_flip") == 0
    assert reader.stats["store"].quarantines == 1
    assert len(ArtifactStore(root).quarantine_list()) == 1
    assert_consistent(root)


def test_disk_full_write_is_tolerated(tmp_path, injector, tid, expected, queries):
    root = tmp_path / "store"
    # Two tokens: the engine write-behinds from both the compile and the
    # columnar layer (idempotent), so a full outage needs both to fail.
    injector.arm("disk_enospc", 2)
    store = ArtifactStore(root, fault_plan=injector.plan)
    engine = CompilationEngine(store=store)
    assert engine.probability(queries[0], tid, method="columnar") == expected[0]
    assert injector.armed("disk_enospc") == 0
    assert store.counters.write_failures == 2
    assert store.counters.writes == 0
    # Nothing half-written survives the failed commits.
    assert tmp_files(root) == []
    # The same session still answers (memory cache), and a later run simply
    # recompiles and persists successfully.
    assert engine.probability(queries[0], tid, method="columnar") == expected[0]
    retry = CompilationEngine(store=root)
    assert retry.probability(queries[0], tid, method="columnar") == expected[0]
    assert retry.store.counters.writes == 1
    assert_consistent(root)


def test_transient_disk_full_heals_within_the_request(
    tmp_path, injector, tid, expected, queries
):
    # One token: the first write-behind fails, the duplicate (idempotent)
    # save from the columnar layer retries and persists the artifact anyway.
    root = tmp_path / "store"
    injector.arm("disk_enospc")
    store = ArtifactStore(root, fault_plan=injector.plan)
    engine = CompilationEngine(store=store)
    assert engine.probability(queries[0], tid, method="columnar") == expected[0]
    assert store.counters.write_failures == 1
    assert store.counters.writes == 1
    warm = CompilationEngine(store=root)
    assert warm.probability(queries[0], tid, method="columnar") == expected[0]
    assert warm.stats["store"].hits == 1
    assert_consistent(root)


def test_lock_steal_is_detected_and_reacquired(tmp_path, injector, tid, expected, queries):
    root = tmp_path / "store"
    injector.arm("lock_steal", 3)
    store = ArtifactStore(root, fault_plan=injector.plan)
    engine = CompilationEngine(store=store)
    for query, value in zip(queries, expected):
        assert engine.probability(query, tid, method="columnar") == value
    assert injector.armed("lock_steal") == 0
    assert_consistent(root)


def test_chaos_sweep_every_fault_still_exact(tmp_path, injector, tid, expected, queries):
    """The headline: all four disk faults armed at once, answers exact."""
    root = tmp_path / "store"
    injector.arm("disk_torn_write")
    injector.arm("disk_enospc")
    injector.arm("disk_bit_flip")
    injector.arm("lock_steal", 2)

    cold = CompilationEngine(store=ArtifactStore(root, fault_plan=injector.plan))
    for query, value in zip(queries, expected):
        assert cold.probability(query, tid, method="columnar") == value

    warm = CompilationEngine(store=ArtifactStore(root, fault_plan=injector.plan))
    for query, value in zip(queries, expected):
        assert warm.probability(query, tid, method="columnar") == value

    for kind in DISK_FAULT_KINDS:
        assert injector.armed(kind) == 0, kind
    assert_consistent(root)

    # Damage was quarantined, never silently served: every remaining entry
    # re-verifies, and the quarantine holds whatever the faults tore.
    final = CompilationEngine(store=root)
    for query, value in zip(queries, expected):
        assert final.probability(query, tid, method="columnar") == value


def test_oracle_checked_probabilities_with_store_faults(tmp_path, injector, tid):
    """Every backend agrees even when the engine's store is being damaged."""
    root = tmp_path / "store"
    injector.arm("disk_torn_write")
    injector.arm("disk_bit_flip")
    engine = CompilationEngine(store=ArtifactStore(root, fault_plan=injector.plan))
    oracle = ProbabilityOracle(engine=engine, karp_luby_samples=0)
    oracle.check(unsafe_rst(), tid, name="store-faults")
    oracle.check(hierarchical_example(), tid, name="store-faults-hierarchical")
    assert_consistent(root)


def test_parallel_workers_with_disk_faults(tmp_path, injector, tid, expected, queries):
    root = tmp_path / "store"
    injector.arm("disk_torn_write")
    injector.arm("disk_enospc")
    with ParallelEngine(workers=2, store=root, fault_plan=injector.plan) as pool:
        values = pool.probability_many(queries, tid, method="columnar")
    assert values == expected
    assert injector.armed("disk_torn_write") == 0
    assert injector.armed("disk_enospc") == 0
    assert_consistent(root)

    # A fresh pool reads the surviving entries back and stays exact.
    with ParallelEngine(workers=2, store=root) as pool:
        assert pool.probability_many(queries, tid, method="columnar") == expected
    assert_consistent(root)
