"""Differential tests for the structural front-end kernels (tier-1).

Three layers of cross-checking for the PR-5 rewrite:

* **property-based** (hypothesis): on random graphs, the heap-driven
  min-degree / min-fill orderings pick exactly the same vertices as the seed
  linear-scan heuristics (:mod:`repro.structure.reference`), so the widths
  they certify are never worse, and the width returned as a by-product
  equals an independent :func:`ordering_width` replay;
* **workload-based**: on the Gaifman graphs of the seeded ``random_workload``
  families, the fused decomposition→encoding pipeline validates, matches the
  seed widths, and its automaton provenance (d-DNNF, circuit, and OBDD) is
  extensionally equal to the seed construction — plus a full
  :class:`ProbabilityOracle` sweep with the ``automaton`` route running on
  the fused path;
* **unit**: co-reachability pruning on unsatisfiable properties, the
  ``peak_live_gates`` memory report, and depth-robustness of the iterative
  ``make_nice`` / encoding builders.
"""

from fractions import Fraction
from itertools import product as world_product

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.gaifman import gaifman_graph
from repro.data.tid import ProbabilisticInstance
from repro.generators import directed_path_instance
from repro.provenance.automaton_provenance import provenance, provenance_obdd
from repro.provenance.reference import (
    provenance_seed,
    reachable_states_seed,
    tree_encoding_seed,
)
from repro.provenance.automata import reachable_states
from repro.provenance.tree_encoding import fused_tree_encoding, tree_encoding
from repro.provenance.ucq_automaton import ucq_automaton
from repro.queries.parser import parse_ucq
from repro.structure.elimination import (
    best_heuristic_ordering_with_width,
    best_heuristic_sweep,
    min_degree_ordering_with_width,
    min_fill_ordering_with_width,
    ordering_width,
)
from repro.structure.graph import Graph, path_graph
from repro.structure.nice import make_nice
from repro.structure.reference import (
    best_heuristic_ordering_seed,
    min_degree_ordering_seed,
    min_fill_ordering_seed,
    ordering_width_seed,
)
from repro.structure.tree_decomposition import (
    decomposition_from_ordering,
    decomposition_from_sweep,
    tree_decomposition,
)
from repro.testing import ProbabilityOracle, is_valid_decomposition, random_workload

# -- random graph machinery ---------------------------------------------------

edges_strategy = st.lists(
    st.tuples(st.integers(min_value=0, max_value=9), st.integers(min_value=0, max_value=9)),
    min_size=0,
    max_size=24,
)


def graph_from_edges(n, edges):
    graph = Graph()
    for v in range(n):
        graph.add_vertex(v)
    for u, v in edges:
        graph.add_edge(u % n, v % n)
    return graph


# -- property-based: indexed orderings vs the seed scans ----------------------


@settings(max_examples=120, deadline=None)
@given(n=st.integers(min_value=1, max_value=10), edges=edges_strategy)
def test_indexed_orderings_match_the_seed_heuristics(n, edges):
    graph = graph_from_edges(n, edges)
    # Identical tie-breaking ⇒ identical orderings, hence identical widths:
    # the indexed kernels certify width <= (in fact ==) the seed heuristics.
    assert min_degree_ordering_with_width(graph)[0] == min_degree_ordering_seed(graph)
    assert min_fill_ordering_with_width(graph)[0] == min_fill_ordering_seed(graph)
    assert best_heuristic_ordering_with_width(graph)[0] == best_heuristic_ordering_seed(graph)


@settings(max_examples=120, deadline=None)
@given(n=st.integers(min_value=1, max_value=10), edges=edges_strategy)
def test_byproduct_width_equals_independent_replay(n, edges):
    graph = graph_from_edges(n, edges)
    for with_width in (
        min_degree_ordering_with_width,
        min_fill_ordering_with_width,
        best_heuristic_ordering_with_width,
    ):
        ordering, width = with_width(graph)
        assert width == ordering_width(graph, ordering)
        assert width == ordering_width_seed(graph, ordering)


@settings(max_examples=80, deadline=None)
@given(n=st.integers(min_value=1, max_value=10), edges=edges_strategy)
def test_fused_decomposition_is_valid_and_matches_sweep_width(n, edges):
    graph = graph_from_edges(n, edges)
    sweep = best_heuristic_sweep(graph)
    decomposition = decomposition_from_sweep(sweep)
    decomposition.validate(graph)
    assert decomposition.width == sweep.width
    # The no-validation ordering path builds the identical decomposition.
    replay = decomposition_from_ordering(graph, sweep.order, validate=False)
    assert replay.bags == decomposition.bags
    assert replay.children == decomposition.children
    assert replay.root == decomposition.root


# -- workload-based: orderings and the fused pipeline on real families --------


def test_indexed_orderings_certify_seed_widths_on_workload_families():
    for case in random_workload(24, seed=5):
        graph = gaifman_graph(case.tid.instance)
        for fast, seed_fn in (
            (min_degree_ordering_with_width, min_degree_ordering_seed),
            (min_fill_ordering_with_width, min_fill_ordering_seed),
        ):
            ordering, width = fast(graph)
            assert width <= ordering_width_seed(graph, seed_fn(graph))
            assert ordering == seed_fn(graph)


def test_fused_pipeline_decompositions_are_valid_on_workload_families():
    for case in random_workload(24, seed=6):
        graph = gaifman_graph(case.tid.instance)
        decomposition = tree_decomposition(graph)
        assert is_valid_decomposition(decomposition, graph)


def _worlds(instance):
    facts = list(instance.facts)
    for keep in world_product((False, True), repeat=len(facts)):
        yield dict(zip(facts, keep))


def test_fused_provenance_extensionally_equals_seed_construction():
    for case in random_workload(18, seed=7):
        instance = case.tid.instance
        automaton = ucq_automaton(case.query)
        seed_encoding = tree_encoding_seed(instance)
        fused_encoding = fused_tree_encoding(instance)
        fused_encoding.validate()
        assert fused_encoding.width == seed_encoding.width

        seed_result = provenance_seed(automaton, seed_encoding)
        fused_result = provenance(automaton, fused_encoding)
        valuation = {f: case.tid.probability_of(f) for f in instance}
        seed_probability = seed_result.dnnf.probability(
            {f: valuation[f] for f in seed_result.dnnf.variables()}
        )
        fused_probability = fused_result.dnnf.probability(
            {f: valuation[f] for f in fused_result.dnnf.variables()}
        )
        assert seed_probability == fused_probability
        # Pruning can only shrink the circuit and the live-gate footprint.
        assert fused_result.dnnf_size <= seed_result.dnnf_size
        assert fused_result.peak_live_gates <= seed_result.peak_live_gates
        assert fused_result.reachable_state_counts == seed_result.reachable_state_counts
        # Circuit representation: world-by-world extensional equality.
        for world in _worlds(instance):
            assert seed_result.circuit.evaluate(world) == fused_result.circuit.evaluate(world)


def test_fused_provenance_obdd_route_agrees_with_seed():
    for case in random_workload(10, seed=8):
        instance = case.tid.instance
        automaton = ucq_automaton(case.query)
        compiled = provenance_obdd(automaton, fused_tree_encoding(instance))
        seed_result = provenance_seed(automaton, tree_encoding_seed(instance))
        valuation = case.tid.valuation()
        expected = seed_result.dnnf.probability(
            {f: case.tid.probability_of(f) for f in seed_result.dnnf.variables()}
        )
        assert compiled.probability(valuation) == expected


def test_probability_oracle_passes_with_the_automaton_route():
    oracle = ProbabilityOracle(
        exact_methods=("brute_force", "obdd", "auto", "automaton"),
        karp_luby_samples=0,
    )
    oracle.check_many(random_workload(16, seed=9))


def test_reachable_states_matches_seed_pass():
    for case in random_workload(8, seed=10):
        instance = case.tid.instance
        automaton = ucq_automaton(case.query)
        encoding = tree_encoding_seed(instance)
        assert reachable_states(automaton, encoding) == reachable_states_seed(
            automaton, encoding
        )


# -- unit: pruning, memory report, and depth robustness ----------------------


def test_unsatisfiable_property_prunes_every_gate():
    instance = directed_path_instance(5)
    automaton = ucq_automaton(parse_ucq("E(x,y), E(y,z), E(z,w), E(w,u), E(u,t), E(t,s)"))
    result = provenance(automaton, fused_tree_encoding(instance))
    # Six consecutive edges never exist on a 5-edge path: everything is
    # co-unreachable from an accepting root, so no state gates are emitted.
    assert result.peak_live_gates == 0
    assert not result.dnnf.evaluate({f: True for f in instance})


def test_peak_live_gates_stays_local_on_path_encodings():
    instance = directed_path_instance(60)
    automaton = ucq_automaton(parse_ucq("E(x,y), E(y,z)"))
    result = provenance(automaton, fused_tree_encoding(instance))
    tid = ProbabilisticInstance.uniform(instance, Fraction(1, 2))
    # Path-shaped encoding: each gate table is freed once its parent is
    # built, so the peak is a small constant, not proportional to the
    # encoding (which has >= 60 nodes).
    assert 0 < result.peak_live_gates <= 16
    value = result.dnnf.probability(
        {f: tid.probability_of(f) for f in result.dnnf.variables()}
    )
    assert 0 < value < 1


def test_automaton_probability_handles_nodes_of_any_arity():
    # The DP must stay arity-generic even though produced encodings are
    # binary: a hand-built ternary node exercises the weighted-product fold.
    from repro.data.instance import Instance, fact
    from repro.provenance.automata import automaton_probability
    from repro.provenance.automata import FunctionalAutomaton
    from repro.provenance.tree_encoding import EncodingNode, TreeEncoding

    facts = [fact("R", f"a{i}") for i in range(3)]
    instance = Instance(facts)
    nodes = {
        i: EncodingNode(i, frozenset({f"a{i}"}), facts[i], ()) for i in range(3)
    }
    nodes[3] = EncodingNode(3, frozenset(), None, (0, 1, 2))
    encoding = TreeEncoding(instance, nodes, 3)
    automaton = FunctionalAutomaton(
        lambda node, present, child_states: sum(child_states) + (1 if present else 0),
        lambda state: state == 3,
        name="all-three",
    )
    tid = ProbabilisticInstance.uniform(instance, Fraction(1, 2))
    assert automaton_probability(automaton, encoding, tid) == Fraction(1, 8)


def test_make_nice_handles_deep_decompositions_iteratively():
    graph = path_graph(3000)
    nice = make_nice(tree_decomposition(graph))
    assert nice.width == 1
    assert len(nice) >= 3000


def test_fused_encoding_handles_deep_instances():
    instance = directed_path_instance(1500)
    encoding = tree_encoding(instance)
    assert encoding.width <= 2
    assert len(encoding.facts_in_order()) == 1500
