"""Property-based differential tests: every backend against the oracle.

Seeded random UCQ≠ workloads over the treelike generator families (all of
treewidth ≤ 2) are pushed through :class:`repro.testing.ProbabilityOracle`,
which cross-checks brute-force enumeration, OBDD compilation, d-DNNF
compilation, the ``auto`` dispatcher, lifted inference (when liftable), the
dissociation bounds, and the seeded Karp–Luby estimator.  The default run
covers well over 200 cases; the heavy grid family and the automaton route
ride behind ``--runslow``.
"""

import os
import random
from fractions import Fraction

import pytest

from repro.data.tid import ProbabilisticInstance
from repro.engine import CompilationEngine, ParallelEngine
from repro.testing import (
    OracleDisagreement,
    ProbabilityOracle,
    random_workload,
    workload_pairs,
)

# 5 batches x 48 cases = 240 seeded cases in the default (tier-1) run.
# DIFFERENTIAL_SEED_OFFSET shifts every batch seed: CI's scheduled sweeps set
# it from the (nightly-incrementing) run number so they cover fresh workloads,
# while push/PR runs use the fixed matrix offsets and local runs default to 0
# — both fully reproducible.
_SEED_OFFSET = int(os.environ.get("DIFFERENTIAL_SEED_OFFSET", "0")) * 10_000
BATCH_SEEDS = tuple(seed + _SEED_OFFSET for seed in (11, 23, 47, 101, 2026))
BATCH_SIZE = 48


@pytest.fixture(scope="module")
def oracle():
    return ProbabilityOracle()


@pytest.mark.parametrize("seed", BATCH_SEEDS)
def test_differential_batch_agrees_on_every_backend(seed, oracle):
    cases = random_workload(BATCH_SIZE, seed=seed)
    reports = oracle.check_many(cases)
    assert len(reports) == BATCH_SIZE
    # The workload is not degenerate: both trivial and non-trivial values occur.
    values = {report.reference for report in reports}
    assert any(0 < value < 1 for value in values)


def test_workloads_are_reproducible_from_their_seed():
    first = random_workload(10, seed=5)
    second = random_workload(10, seed=5)
    for a, b in zip(first, second):
        assert a.query == b.query
        assert a.tid.fingerprint == b.tid.fingerprint
    different = random_workload(10, seed=6)
    assert any(
        a.tid.fingerprint != b.tid.fingerprint for a, b in zip(first, different)
    )


def test_oracle_reports_safe_plan_on_liftable_cases(oracle):
    cases = random_workload(120, seed=31, max_atoms=2, max_variables=2)
    reports = oracle.check_many(cases)
    ran_safe_plan = [r for r in reports if "safe_plan" in r.exact_values]
    assert ran_safe_plan, "no liftable case in 120 draws; workload generator degenerated"
    for report in ran_safe_plan:
        assert report.exact_values["safe_plan"] == report.reference


def test_oracle_requires_an_exact_anchor():
    from repro.errors import ReproError

    with pytest.raises(ReproError):
        ProbabilityOracle(exact_methods=())


def test_oracle_detects_a_corrupted_backend(oracle):
    """The oracle must actually be able to fail: corrupt one route and watch."""
    case = next(
        c
        for c in random_workload(40, seed=13)
        if 0 < ProbabilityOracle(karp_luby_samples=0).check_case(c).reference < 1
    )
    report = oracle.check_case(case)
    report.exact_values["obdd"] = report.exact_values["obdd"] + Fraction(1, 97)
    assert report.disagreements()
    with pytest.raises(OracleDisagreement):
        report.assert_consistent()


def test_exact_routes_agree_as_fractions_not_floats(oracle):
    """Regression for Fraction-vs-float drift: backend agreement is exact
    rational equality, including probabilities floats cannot represent."""
    cases = random_workload(30, seed=77)
    for case in cases:
        # Re-valuate with denominator 21: not dyadic, so any route that
        # silently rounds through float cannot return the exact Fraction.
        generator = random.Random(case.seed)
        valuation = {
            f: Fraction(generator.randint(0, 21), 21) for f in case.tid.instance
        }
        tid = ProbabilisticInstance(case.tid.instance, valuation)
        report = oracle.check(case.query, tid, name=f"thirds[{case.seed}]")
        for method, value in report.exact_values.items():
            assert isinstance(value, Fraction), method
            assert value == report.reference


def test_differential_workload_through_parallel_engine(oracle):
    """The sharded engine agrees with the oracle-checked serial values."""
    cases = random_workload(24, seed=301)
    reports = oracle.check_many(cases)
    pairs = workload_pairs(cases)
    serial = CompilationEngine()
    parallel = ParallelEngine(workers=2)
    parallel_values = parallel.map_probability(pairs).values
    for case, report, value in zip(cases, reports, parallel_values):
        assert value == report.reference, str(case)
        assert serial.probability(case.query, case.tid) == report.reference


@pytest.mark.slow
def test_differential_heavy_grid_family(oracle):
    """Larger grids (more facts, 2^n world enumerations): slow-marked."""
    cases = random_workload(
        30, seed=404, families=("grid",), max_facts=12, max_atoms=3
    )
    reports = oracle.check_many(cases)
    assert len(reports) == 30


@pytest.mark.slow
def test_differential_with_automaton_route():
    """The tree-automaton dynamic program joins the cross-check (slow) —
    in both its object-kernel and columnar (dense-id) forms."""
    oracle = ProbabilityOracle(
        exact_methods=(
            "brute_force",
            "obdd",
            "columnar",
            "dnnf",
            "auto",
            "automaton",
            "automaton_columnar",
        )
    )
    cases = random_workload(40, seed=505, max_facts=6)
    reports = oracle.check_many(cases)
    assert all("automaton" in report.exact_values for report in reports)
    assert all("automaton_columnar" in report.exact_values for report in reports)
