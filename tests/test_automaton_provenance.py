"""Tests for the provenance d-DNNF / circuit construction (Theorems 6.3, 6.5, 6.11)."""

from fractions import Fraction

from repro.data.tid import ProbabilisticInstance
from repro.generators import grid_instance, labelled_line_instance, random_probabilities
from repro.probability.brute_force import brute_force_property_probability
from repro.provenance.automata import accepts, automaton_probability
from repro.provenance.automaton_provenance import (
    provenance,
    provenance_circuit,
    provenance_dnnf,
    provenance_obdd,
)
from repro.provenance.mso_properties import (
    incident_pair_automaton,
    parity_automaton,
    threshold_automaton,
)
from repro.provenance.tree_encoding import path_encoding, tree_encoding


def worlds_of(instance):
    return instance.all_subinstances()


def test_provenance_dnnf_is_deterministic_and_decomposable():
    instance = labelled_line_instance(4)
    encoding = tree_encoding(instance)
    dnnf = provenance_dnnf(parity_automaton("L"), encoding)
    assert dnnf.check_decomposability()
    assert dnnf.check_determinism()


def test_provenance_dnnf_equivalent_to_automaton():
    instance = labelled_line_instance(4)
    encoding = tree_encoding(instance)
    automaton = parity_automaton("L")
    dnnf = provenance_dnnf(automaton, encoding)
    for world in worlds_of(instance):
        valuation = {f: (f in set(world.facts)) for f in instance}
        restricted = {f: valuation[f] for f in dnnf.variables()}
        assert dnnf.evaluate(restricted) == accepts(automaton, encoding, world)


def test_provenance_circuit_equivalent_to_automaton():
    instance = grid_instance(2, 2)
    encoding = tree_encoding(instance)
    automaton = incident_pair_automaton()
    circuit = provenance_circuit(automaton, encoding)
    for world in worlds_of(instance):
        valuation = {f: (f in set(world.facts)) for f in instance}
        assert circuit.evaluate(valuation) == accepts(automaton, encoding, world)


def test_provenance_probability_agrees_with_state_dp_and_brute_force():
    instance = labelled_line_instance(4)
    encoding = tree_encoding(instance)
    automaton = threshold_automaton(2, "L")
    tid = random_probabilities(instance, seed=11)
    dnnf = provenance_dnnf(automaton, encoding)
    valuation = {f: tid.probability_of(f) for f in dnnf.variables()}
    expected = brute_force_property_probability(
        lambda world: len(world.facts_of("L")) >= 2, tid
    )
    assert dnnf.probability(valuation) == expected
    assert automaton_probability(automaton, encoding, tid) == expected


def test_provenance_dnnf_linear_size_growth():
    # Theorem 6.11 shape: d-DNNF size grows linearly with the instance.
    sizes = []
    for n in (8, 16, 32):
        encoding = tree_encoding(labelled_line_instance(n))
        sizes.append(provenance_dnnf(parity_automaton("L"), encoding).size)
    assert sizes[2] / sizes[1] <= 2.5
    assert sizes[1] / sizes[0] <= 2.5


def test_provenance_obdd_equivalent_and_narrow_on_paths():
    instance = labelled_line_instance(5)
    encoding = path_encoding(instance)
    automaton = parity_automaton("L")
    compiled = provenance_obdd(automaton, encoding)
    for world in worlds_of(instance):
        valuation = {f: (f in set(world.facts)) for f in instance}
        assert compiled.evaluate(valuation) == accepts(automaton, encoding, world)
    assert compiled.width <= 4


def test_provenance_result_bookkeeping():
    instance = labelled_line_instance(4)
    encoding = tree_encoding(instance)
    result = provenance(parity_automaton("L"), encoding)
    assert result.dnnf_size == result.dnnf.size
    assert result.circuit_size == result.circuit.size
    assert result.max_states_per_node <= 2


def test_provenance_of_unsatisfiable_property():
    instance = labelled_line_instance(2)
    encoding = tree_encoding(instance)
    # Threshold higher than the number of facts: never satisfied.
    automaton = threshold_automaton(10)
    dnnf = provenance_dnnf(automaton, encoding)
    for world in worlds_of(instance):
        valuation = {f: (f in set(world.facts)) for f in dnnf.variables()}
        assert not dnnf.evaluate(valuation)
