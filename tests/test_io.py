"""Tests for serialization (repro.data.io)."""

import json
from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.booleans.circuit import BooleanCircuit
from repro.data.instance import Fact, Instance, fact
from repro.data.io import (
    circuit_to_dot,
    dnnf_to_dot,
    instance_from_csv,
    instance_from_dict,
    instance_to_csv,
    instance_to_dict,
    load_instance,
    load_instance_csv,
    load_tid,
    obdd_to_dot,
    save_instance,
    save_instance_csv,
    tid_from_dict,
    tid_to_dict,
    tree_decomposition_to_dot,
)
from repro.data.signature import Signature
from repro.data.tid import ProbabilisticInstance
from repro.errors import InstanceError
from repro.generators.lines import rst_chain_instance
from repro.generators.random_instances import random_instance, random_probabilities
from repro.provenance.compile_obdd import compile_query_to_obdd
from repro.queries.library import unsafe_rst
from repro.structure.graph import path_graph
from repro.structure.tree_decomposition import tree_decomposition


# -- JSON round trips -----------------------------------------------------------------


def test_instance_dict_round_trip():
    instance = rst_chain_instance(3)
    data = instance_to_dict(instance)
    restored = instance_from_dict(data)
    assert restored == instance
    assert restored.signature == instance.signature


def test_instance_from_dict_rejects_malformed_input():
    with pytest.raises(InstanceError):
        instance_from_dict({"facts": []})
    with pytest.raises(InstanceError):
        instance_from_dict({"signature": {"R": 1}, "facts": [{"relation": "R"}]})


def test_tid_dict_round_trip_preserves_fractions():
    instance = rst_chain_instance(2)
    tid = ProbabilisticInstance.uniform(instance, Fraction(1, 3))
    data = tid_to_dict(tid)
    restored = tid_from_dict(data)
    assert restored.instance == instance
    for f in instance.facts:
        assert restored.probability_of(f) == Fraction(1, 3)
    # The JSON payload is actually JSON-serializable.
    json.dumps(data)


def test_save_and_load_json_files(tmp_path):
    instance = rst_chain_instance(2)
    tid = ProbabilisticInstance.uniform(instance, Fraction(2, 5))
    plain_path = tmp_path / "instance.json"
    tid_path = tmp_path / "tid.json"
    save_instance(instance, plain_path)
    save_instance(tid, tid_path)
    assert load_instance(plain_path) == instance
    restored = load_tid(tid_path)
    assert restored.probability_of(instance.facts[0]) == Fraction(2, 5)
    # Loading the plain file as a TID defaults every probability to 1.
    assert load_tid(plain_path).probability_of(instance.facts[0]) == 1


# -- CSV round trips ----------------------------------------------------------------------


def test_csv_round_trip_without_probabilities():
    instance = rst_chain_instance(2)
    text = instance_to_csv(instance)
    restored, probabilities = instance_from_csv(text)
    assert restored == instance
    assert probabilities == {}


def test_csv_round_trip_with_probabilities(tmp_path):
    instance = rst_chain_instance(2)
    tid = ProbabilisticInstance.uniform(instance, Fraction(1, 4))
    path = tmp_path / "tid.csv"
    save_instance_csv(tid, path)
    restored = load_instance_csv(path)
    assert restored.instance == instance
    assert all(restored.probability_of(f) == Fraction(1, 4) for f in instance.facts)


def test_csv_handles_mixed_arities_and_empty_input():
    instance = Instance(
        [fact("R", "a"), fact("S", "a", "b")], Signature([("R", 1), ("S", 2)])
    )
    text = instance_to_csv(instance)
    restored, _ = instance_from_csv(text)
    assert restored == instance
    with pytest.raises(InstanceError):
        instance_from_csv("")


def test_save_instance_csv_plain_instance(tmp_path):
    instance = rst_chain_instance(1)
    path = tmp_path / "plain.csv"
    save_instance_csv(instance, path)
    restored = load_instance_csv(path)
    assert restored.instance == instance
    assert all(restored.probability_of(f) == 1 for f in instance.facts)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=1000))
def test_json_round_trip_on_random_tids(seed):
    signature = Signature([("R", 1), ("S", 2)])
    instance = random_instance(signature, 4, 8, seed=seed)
    tid = random_probabilities(instance, seed=seed)
    restored = tid_from_dict(tid_to_dict(tid))
    assert restored.instance == instance
    assert restored.valuation() == tid.valuation()


# -- DOT exports -------------------------------------------------------------------------------


def test_circuit_to_dot_contains_gates_and_marks_output():
    circuit = BooleanCircuit()
    a, b = circuit.variable("a"), circuit.variable("b")
    circuit.set_output(circuit.disjunction([circuit.conjunction([a, b]), circuit.negation(a)]))
    dot = circuit_to_dot(circuit)
    assert dot.startswith("digraph circuit")
    assert "∧" in dot and "∨" in dot and "¬" in dot
    assert "penwidth=2" in dot


def test_obdd_and_dnnf_to_dot():
    instance = rst_chain_instance(2)
    compiled = compile_query_to_obdd(unsafe_rst(), instance)
    dot = obdd_to_dot(compiled.manager, compiled.root)
    assert dot.startswith("digraph obdd")
    assert "style=dashed" in dot
    dnnf = compiled.to_dnnf()
    dnnf_dot = dnnf_to_dot(dnnf)
    assert dnnf_dot.startswith("digraph dnnf")
    assert "∨" in dnnf_dot or "∧" in dnnf_dot


def test_tree_decomposition_to_dot():
    decomposition = tree_decomposition(path_graph(5))
    dot = tree_decomposition_to_dot(decomposition)
    assert dot.startswith("graph tree_decomposition")
    assert dot.count("--") == len(decomposition) - 1
