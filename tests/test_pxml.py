"""Tests for probabilistic XML documents (repro.data.pxml)."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.gaifman import instance_treewidth
from repro.data.pxml import (
    DeterministicDocument,
    PXMLDocument,
    PXMLNode,
    TreePattern,
    ind,
    mux,
    ordinary,
    pattern,
    pattern_lineage,
    pattern_matches,
    pattern_probability,
    pattern_probability_brute_force,
    random_pxml_document,
)
from repro.errors import InstanceError


def _simple_ind_document() -> PXMLDocument:
    """root(a) -> ind -> {b (1/2), c (1/3)}."""
    b = ordinary("nb", "b")
    c = ordinary("nc", "c")
    distribution = ind("d1", [(b, Fraction(1, 2)), (c, Fraction(1, 3))])
    root = ordinary("nr", "a", [distribution])
    return PXMLDocument(root)


def _mux_document() -> PXMLDocument:
    """root(a) -> mux -> {b (1/2), c (1/4)}; with prob 1/4 neither child exists."""
    b = ordinary("nb", "b")
    c = ordinary("nc", "c")
    chooser = mux("m1", [(b, Fraction(1, 2)), (c, Fraction(1, 4))])
    root = ordinary("nr", "a", [chooser])
    return PXMLDocument(root)


# -- node and document construction -----------------------------------------------------


def test_node_construction_constraints():
    with pytest.raises(InstanceError):
        PXMLNode("x", label=None, kind="ordinary")
    with pytest.raises(InstanceError):
        PXMLNode("x", label="a", kind="ind")
    with pytest.raises(InstanceError):
        PXMLNode("x", label="a", kind="???")
    node = ordinary("x", "a")
    assert str(node) == "a[x]"
    assert str(ind("d", [])) == "ind[d]"


def test_mux_probabilities_must_sum_to_at_most_one():
    b = ordinary("nb", "b")
    c = ordinary("nc", "c")
    with pytest.raises(InstanceError):
        mux("m", [(b, Fraction(3, 4)), (c, Fraction(1, 2))])


def test_document_requires_ordinary_root_and_unique_identifiers():
    with pytest.raises(InstanceError):
        PXMLDocument(ind("d", []))
    duplicate = ordinary("r", "a", [ordinary("x", "b"), ordinary("x", "c")])
    with pytest.raises(InstanceError):
        PXMLDocument(duplicate)


def test_document_accessors():
    document = _simple_ind_document()
    assert len(document) == 4
    assert {node.identifier for node in document.ordinary_nodes()} == {"nr", "nb", "nc"}
    assert [node.kind for node in document.distributional_nodes()] == ["ind"]
    assert not document.is_deterministic()
    assert document.uses_only_ind()
    assert not _mux_document().uses_only_ind()
    assert "ordinary" in repr(document)


# -- possible-world semantics -------------------------------------------------------------


def test_possible_worlds_of_ind_document():
    document = _simple_ind_document()
    worlds = list(document.possible_worlds())
    total = sum(probability for _, probability in worlds)
    assert total == 1
    sizes = {frozenset(world.nodes()): probability for world, probability in worlds}
    assert sizes[frozenset({"nr", "nb", "nc"})] == Fraction(1, 2) * Fraction(1, 3)
    assert sizes[frozenset({"nr"})] == Fraction(1, 2) * Fraction(2, 3)


def test_possible_worlds_of_mux_document():
    document = _mux_document()
    worlds = {frozenset(world.nodes()): probability for world, probability in document.possible_worlds()}
    assert worlds[frozenset({"nr", "nb"})] == Fraction(1, 2)
    assert worlds[frozenset({"nr", "nc"})] == Fraction(1, 4)
    assert worlds[frozenset({"nr"})] == Fraction(1, 4)
    # mux never keeps both children.
    assert frozenset({"nr", "nb", "nc"}) not in worlds


def test_deterministic_document_navigation():
    document = _simple_ind_document()
    full = max(document.possible_worlds(), key=lambda pair: len(pair[0].nodes()))[0]
    assert isinstance(full, DeterministicDocument)
    assert set(full.children_of("nr")) == {"nb", "nc"}
    assert set(full.descendants_of("nr")) == {"nb", "nc"}
    assert full.size() == 3


def test_probability_of_document_property():
    document = _simple_ind_document()
    at_least_two = document.probability_of(lambda world: world.size() >= 2)
    # P(b present) + P(c present) - P(both) = 1/2 + 1/3 - 1/6.
    assert at_least_two == Fraction(1, 2) + Fraction(1, 3) - Fraction(1, 6)


# -- relational encodings -------------------------------------------------------------------


def test_to_instance_is_treelike():
    document = random_pxml_document(depth=3, fanout=2, seed=1)
    instance = document.to_instance()
    assert instance_treewidth(instance) <= 1
    assert instance.facts_of("child")
    assert any(relation.startswith("label_") for relation in instance.signature.relation_names)


def test_to_probabilistic_instance_requires_ind_only():
    with pytest.raises(InstanceError):
        _mux_document().to_probabilistic_instance()
    tid = _simple_ind_document().to_probabilistic_instance()
    uncertain = [f for f in tid if tid.probability_of(f) != 1]
    assert len(uncertain) == 2


def test_choice_instance_and_root_path_requirements():
    document = _simple_ind_document()
    tid = document.choice_instance()
    assert len(tid.instance) == 2
    requirement = document.root_path_requirements("nb")
    assert len(requirement) == 1
    assert document.root_path_requirements("nr") == frozenset()
    with pytest.raises(InstanceError):
        _mux_document().root_path_requirements("nb")
    with pytest.raises(InstanceError):
        _mux_document().uncertain_edge_facts()


# -- tree patterns -----------------------------------------------------------------------------


def test_tree_pattern_construction_and_str():
    query = pattern("a", (pattern("b"), "child"), (pattern(None), "descendant"))
    assert query.size() == 3
    assert "//" in str(query) and "/" in str(query)
    with pytest.raises(InstanceError):
        TreePattern("a", ((TreePattern("b"), "sibling"),))


def test_pattern_matching_on_deterministic_document():
    document = PXMLDocument(
        ordinary("r", "a", [ordinary("x", "b", [ordinary("y", "c")])])
    )
    world = next(iter(document.possible_worlds()))[0]
    assert pattern_matches(world, pattern("a", (pattern("b"), "child")))
    assert pattern_matches(world, pattern("a", (pattern("c"), "descendant")))
    assert not pattern_matches(world, pattern("a", (pattern("c"), "child")))
    assert pattern_matches(world, pattern(None, (pattern("c"), "child")))
    assert not pattern_matches(world, pattern("z"))


def test_pattern_probability_brute_force_simple():
    document = _simple_ind_document()
    assert pattern_probability_brute_force(document, pattern("b")) == Fraction(1, 2)
    assert pattern_probability_brute_force(document, pattern("a")) == 1
    both = pattern("a", (pattern("b"), "child"), (pattern("c"), "child"))
    # In the collapsed world, b and c become children of the root.
    assert pattern_probability_brute_force(document, both) == Fraction(1, 6)


def test_pattern_probability_brute_force_mux():
    document = _mux_document()
    either = pattern("a", (pattern(None), "descendant"))
    assert pattern_probability_brute_force(document, either) == Fraction(3, 4)


def test_pattern_lineage_and_probability_agree_with_brute_force():
    document = _simple_ind_document()
    queries = [
        pattern("b"),
        pattern("a"),
        pattern("a", (pattern("b"), "child"), (pattern("c"), "child")),
        pattern("z"),
        pattern(None, (pattern("c"), "descendant")),
    ]
    for query in queries:
        exact = pattern_probability_brute_force(document, query)
        assert pattern_probability(document, query) == exact


def test_pattern_lineage_clauses_are_root_path_requirements():
    document = _simple_ind_document()
    lineage = pattern_lineage(document, pattern("b"))
    assert lineage.clause_count == 1
    (clause,) = lineage.clauses
    assert {f.relation for f in clause} == {"choice"}
    # Pattern on the certain root: a single empty clause (probability 1).
    certain = pattern_lineage(document, pattern("a"))
    assert certain.clauses == (frozenset(),)
    # Unsatisfiable pattern: no clauses.
    assert pattern_lineage(document, pattern("z")).clause_count == 0


def test_pattern_lineage_rejects_mux_documents():
    with pytest.raises(InstanceError):
        pattern_lineage(_mux_document(), pattern("b"))


# -- generator -----------------------------------------------------------------------------------


def test_random_pxml_document_shape_and_determinism():
    first = random_pxml_document(depth=2, fanout=2, seed=5)
    second = random_pxml_document(depth=2, fanout=2, seed=5)
    assert [node.identifier for node in first.nodes()] == [
        node.identifier for node in second.nodes()
    ]
    assert first.uses_only_ind()
    with pytest.raises(InstanceError):
        random_pxml_document(depth=-1)


def test_random_pxml_document_depth_zero_is_single_node():
    document = random_pxml_document(depth=0, seed=3)
    assert len(document) == 1
    assert document.is_deterministic()


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=500))
def test_lineage_probability_matches_brute_force_on_random_documents(seed):
    """The lineage/OBDD route and possible-world enumeration agree on random PrXML{ind}."""
    document = random_pxml_document(depth=2, fanout=2, seed=seed)
    queries = [
        pattern("a", (pattern("b"), "descendant")),
        pattern(None, (pattern("c"), "child")),
        pattern("b"),
    ]
    for query in queries:
        assert pattern_probability(document, query) == pattern_probability_brute_force(
            document, query
        )


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=500))
def test_possible_world_probabilities_sum_to_one(seed):
    document = random_pxml_document(depth=2, fanout=2, seed=seed)
    total = sum(probability for _, probability in document.possible_worlds())
    assert total == 1
