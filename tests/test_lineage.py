"""Tests for lineage computation (DNF of matches, lineage circuits)."""

from repro.data.instance import Instance, fact
from repro.generators import rst_bipartite_instance, rst_chain_instance
from repro.provenance.lineage import (
    brute_force_lineage_table,
    lineage_circuit,
    lineage_of,
)
from repro.queries import parse_cq, parse_ucq, threshold_two_query, unsafe_rst


def test_lineage_clauses_of_rst_chain():
    instance = rst_chain_instance(2)
    lineage = lineage_of(unsafe_rst(), instance)
    assert lineage.clause_count == 2
    assert all(len(clause) == 3 for clause in lineage.clauses)
    assert lineage.is_read_once_shaped()


def test_lineage_clauses_of_rst_bipartite_not_read_once():
    instance = rst_bipartite_instance(2)
    lineage = lineage_of(unsafe_rst(), instance)
    assert lineage.clause_count == 4
    assert not lineage.is_read_once_shaped()


def test_lineage_evaluation_matches_query_semantics():
    instance = rst_chain_instance(2)
    lineage = lineage_of(unsafe_rst(), instance)
    table = brute_force_lineage_table(unsafe_rst(), instance)
    for world, expected in table.items():
        assert lineage.evaluate(world) == expected


def test_lineage_circuit_is_monotone_and_equivalent():
    instance = rst_chain_instance(2)
    circuit = lineage_circuit(unsafe_rst(), instance)
    assert circuit.is_monotone()
    lineage = lineage_of(unsafe_rst(), instance)
    for world, expected in brute_force_lineage_table(unsafe_rst(), instance).items():
        valuation = {f: (f in world) for f in instance}
        assert circuit.evaluate(valuation) == expected
        assert lineage.evaluate(valuation) == expected


def test_lineage_of_threshold_query_is_threshold_function():
    instance = Instance([fact("R", "a"), fact("R", "b"), fact("R", "c")])
    lineage = lineage_of(threshold_two_query(), instance)
    assert lineage.clause_count == 3
    assert all(len(clause) == 2 for clause in lineage.clauses)
    assert lineage.evaluate([fact("R", "a"), fact("R", "b")])
    assert not lineage.evaluate([fact("R", "a")])


def test_lineage_false_when_no_match():
    instance = Instance([fact("R", "a")])
    lineage = lineage_of(unsafe_rst(), instance)
    assert lineage.clause_count == 0
    assert not lineage.evaluate(instance.facts)
    circuit = lineage.to_circuit()
    assert not circuit.evaluate({f: True for f in instance})


def test_minimal_versus_all_matches():
    instance = Instance([fact("E", "a", "b"), fact("E", "b", "c")])
    query = parse_ucq("E(x, y) | E(x, y), E(y, z)")
    minimal = lineage_of(query, instance, minimal=True)
    full = lineage_of(query, instance, minimal=False)
    assert minimal.clause_count <= full.clause_count
    for world, expected in brute_force_lineage_table(query, instance).items():
        assert minimal.evaluate(world) == expected
        assert full.evaluate(world) == expected


def test_lineage_variables_subset_of_instance():
    instance = rst_chain_instance(2)
    lineage = lineage_of(unsafe_rst(), instance)
    assert lineage.variables() <= set(instance.facts)


def test_ucq_with_disequality_lineage():
    instance = Instance([fact("E", "a", "b"), fact("E", "a", "a")])
    query = parse_cq("E(x, y), x != y")
    lineage = lineage_of(query, instance)
    assert lineage.clause_count == 1
    assert lineage.evaluate([fact("E", "a", "b")])
    assert not lineage.evaluate([fact("E", "a", "a")])
