"""Tests for the experiment sweep/report helpers (repro.experiments.scaling)."""

import pytest

from repro.experiments.harness import ScalingSeries
from repro.experiments.scaling import ExperimentReport, sweep, timed


def test_timed_returns_positive_seconds():
    measure = timed(lambda n: sum(range(n)))
    value = measure(10_000)
    assert value >= 0.0


def test_sweep_collects_one_series_per_measurement():
    series = sweep([1, 2, 4], {"square": lambda n: n * n, "double": lambda n: 2 * n})
    assert set(series) == {"square", "double"}
    assert series["square"].values == [1.0, 4.0, 16.0]
    assert series["double"].sizes == [1.0, 2.0, 4.0]


def test_report_table_and_growth_summary():
    report = ExperimentReport("toy", size_label="n")
    report.run([2, 4, 8], {"linear": lambda n: n, "constant": lambda n: 7})
    table = report.table()
    assert "linear" in table and "constant" in table
    assert table.count("\n") >= 4
    growth = report.growth_summary()
    assert growth["constant"] == "constant"
    assert growth["linear"] == "linear"


def test_report_add_and_markdown_output():
    report = ExperimentReport("markdown check", size_label="size")
    report.add("values", [(1, 1.0), (2, 4.0)])
    text = report.to_markdown()
    assert text.startswith("### markdown check")
    assert "| size | values |" in text
    assert "* values:" in text
    assert "markdown check" in str(report)


def test_report_rejects_misaligned_series():
    report = ExperimentReport("broken")
    report.add("a", [(1, 1.0), (2, 2.0)])
    report.add("b", [(1, 1.0), (3, 3.0)])
    with pytest.raises(ValueError):
        report.table()


def test_report_add_series_object_and_empty_report():
    report = ExperimentReport("empty")
    assert report.table() == "n\n-"
    series = ScalingSeries("direct")
    series.add(1, 5)
    report.add_series(series)
    assert "direct" in report.table()
