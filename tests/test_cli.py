"""Tests for the command-line interface (repro.cli)."""

from fractions import Fraction

import pytest

from repro.cli import build_parser, main
from repro.data.io import save_instance, save_instance_csv
from repro.data.tid import ProbabilisticInstance
from repro.generators.lines import rst_chain_instance
from repro.probability.evaluation import probability
from repro.queries.library import unsafe_rst


@pytest.fixture()
def tid_json(tmp_path):
    tid = ProbabilisticInstance.uniform(rst_chain_instance(2), Fraction(1, 2))
    path = tmp_path / "chain.json"
    save_instance(tid, path)
    return path, tid


@pytest.fixture()
def tid_csv(tmp_path):
    tid = ProbabilisticInstance.uniform(rst_chain_instance(2), Fraction(1, 2))
    path = tmp_path / "chain.csv"
    save_instance_csv(tid, path)
    return path, tid


def test_build_parser_requires_subcommand():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args([])


def test_info_command(tid_json, capsys):
    path, _ = tid_json
    assert main(["info", str(path)]) == 0
    output = capsys.readouterr().out
    assert "facts: 6" in output
    assert "treewidth" in output and "tree-depth" in output
    assert "uncertain facts: 6" in output


def test_info_command_on_csv(tid_csv, capsys):
    path, _ = tid_csv
    assert main(["info", str(path)]) == 0
    assert "facts: 6" in capsys.readouterr().out


def test_info_command_missing_file(capsys):
    assert main(["info", "/nonexistent/file.json"]) == 1
    assert "error:" in capsys.readouterr().err


def test_lineage_command_reports_sizes(tid_json, capsys):
    path, _ = tid_json
    assert main(["lineage", str(path), "--query", "R(x), S(x, y), T(y)"]) == 0
    output = capsys.readouterr().out
    assert "minimal matches (DNF clauses): 2" in output
    assert "OBDD size:" in output and "d-DNNF nodes:" in output


@pytest.mark.parametrize("kind", ["circuit", "obdd", "dnnf"])
def test_lineage_command_dot_output(tid_json, capsys, kind):
    path, _ = tid_json
    assert main(["lineage", str(path), "--query", "R(x), S(x, y), T(y)", "--dot", kind]) == 0
    assert "digraph" in capsys.readouterr().out


def test_probability_command_exact(tid_json, capsys):
    path, tid = tid_json
    assert main(["probability", str(path), "--query", "R(x), S(x, y), T(y)"]) == 0
    output = capsys.readouterr().out
    expected = probability(unsafe_rst(), tid)
    assert str(expected) in output


def test_probability_command_methods_agree(tid_json, capsys):
    path, tid = tid_json
    expected = probability(unsafe_rst(), tid)
    for method in ("obdd", "brute_force"):
        assert (
            main(["probability", str(path), "--query", "R(x), S(x, y), T(y)", "--method", method])
            == 0
        )
        assert str(expected) in capsys.readouterr().out
    # The RST query is the canonical unsafe query: lifted inference must refuse
    # it, and the refusal gets its own scriptable exit code.
    assert (
        main(["probability", str(path), "--query", "R(x), S(x, y), T(y)", "--method", "safe_plan"])
        == 3
    )
    assert "unsafe query" in capsys.readouterr().err


def test_probability_command_approximate(tid_json, capsys):
    path, _ = tid_json
    code = main(
        [
            "probability",
            str(path),
            "--query",
            "R(x), S(x, y), T(y)",
            "--approximate",
            "--epsilon",
            "0.2",
            "--delta",
            "0.2",
        ]
    )
    assert code == 0
    assert "estimate:" in capsys.readouterr().out


def test_convert_and_show_round_trip(tid_json, tmp_path, capsys):
    path, tid = tid_json
    target = tmp_path / "converted.csv"
    assert main(["convert", str(path), "--output", str(target)]) == 0
    capsys.readouterr()
    assert main(["show", str(target), "--format", "csv"]) == 0
    csv_output = capsys.readouterr().out
    assert "relation" in csv_output and "1/2" in csv_output
    assert main(["show", str(path), "--format", "json"]) == 0
    assert '"probabilities"' in capsys.readouterr().out


def test_convert_rejects_unknown_format(tid_json, tmp_path, capsys):
    path, _ = tid_json
    assert main(["convert", str(path), "--output", str(tmp_path / "out.xml")]) == 1
    assert "error:" in capsys.readouterr().err


def test_cli_error_on_bad_query(tid_json, capsys):
    path, _ = tid_json
    assert main(["probability", str(path), "--query", "not a query !!"]) == 1
    assert "error:" in capsys.readouterr().err


# -- resilience flags (budgets, deadlines, degradation) --------------------------


@pytest.fixture()
def dense_tid_json(tmp_path):
    """A denser treelike instance where every circuit route needs real work
    (the RST lineage is not read-once shaped, so no route evades the caps)."""
    from repro.generators import labelled_partial_ktree_instance

    tid = ProbabilisticInstance.uniform(
        labelled_partial_ktree_instance(8, 2, seed=1), Fraction(1, 2)
    )
    path = tmp_path / "ktree.json"
    save_instance(tid, path)
    return path, tid


def test_probability_timeout_exit_code(dense_tid_json, capsys):
    # The dense instance is never cached on the process-wide default engine
    # (cache hits legitimately bypass the budget), so the expired deadline
    # trips at the first route checkpoint.
    path, _ = dense_tid_json
    code = main(
        ["probability", str(path), "--query", "R(x), S(x, y), T(y)", "--timeout", "1e-9"]
    )
    assert code == 4
    assert "deadline exceeded" in capsys.readouterr().err


def test_probability_budget_exit_code(dense_tid_json, capsys):
    path, _ = dense_tid_json
    code = main(
        [
            "probability",
            str(path),
            "--query",
            "R(x), S(x, y), T(y)",
            "--budget-nodes",
            "5",
        ]
    )
    assert code == 5
    assert "budget exhausted" in capsys.readouterr().err


def test_probability_generous_budget_still_exact(tid_json, capsys):
    path, tid = tid_json
    expected = probability(unsafe_rst(), tid)
    code = main(
        [
            "probability",
            str(path),
            "--query",
            "R(x), S(x, y), T(y)",
            "--budget-nodes",
            "100000",
            "--timeout",
            "60",
        ]
    )
    assert code == 0
    assert str(expected) in capsys.readouterr().out


def test_probability_degrade_returns_bounds(dense_tid_json, capsys):
    path, _ = dense_tid_json
    code = main(
        [
            "probability",
            str(path),
            "--query",
            "R(x), S(x, y), T(y)",
            "--budget-nodes",
            "5",
            "--degrade",
        ]
    )
    assert code == 0
    output = capsys.readouterr().out
    assert "probability in [" in output and "degraded: karp_luby" in output


def test_probability_explain_reports_failover_attempts(dense_tid_json, capsys):
    path, _ = dense_tid_json
    code = main(
        [
            "probability",
            str(path),
            "--query",
            "R(x), S(x, y), T(y)",
            "--budget-nodes",
            "5",
            "--degrade",
            "--explain",
        ]
    )
    assert code == 0
    output = capsys.readouterr().out
    # Every exact route was attempted and each failure is labelled.
    assert "attempt[" in output and "BudgetExceeded" in output
