"""Tests for the Section 9 unfolding construction."""

import pytest

from repro.data.gaifman import instance_pathwidth, instance_tree_depth, instance_treewidth
from repro.data.instance import Instance, fact
from repro.data.tid import ProbabilisticInstance
from repro.errors import UnfoldingError
from repro.generators import random_probabilities, random_ranked_instance
from repro.data.signature import Signature
from repro.probability.brute_force import brute_force_probability
from repro.queries import (
    hierarchical_example,
    inversion_free_example,
    parse_cq,
    unsafe_rst,
)
from repro.unfold import (
    is_valid_unfolding,
    lineage_preserved,
    respects_query,
    unfold_instance,
    verify_unfolding,
)

RST = Signature([("R", 1), ("S", 2), ("T", 1)])


def sample_instance(seed=0, facts=12):
    return random_ranked_instance(RST, 5, facts, seed=seed)


def test_unfolding_is_valid_and_respects_query():
    query = hierarchical_example()
    instance = sample_instance(seed=1)
    unfolding = unfold_instance(query, instance)
    assert is_valid_unfolding(unfolding)
    assert respects_query(unfolding, query)
    assert lineage_preserved(unfolding, query)


def test_unfolding_tree_depth_bounded_by_arity():
    query = inversion_free_example()
    for seed in (2, 3, 4):
        instance = sample_instance(seed=seed)
        unfolding = unfold_instance(query, instance)
        assert unfolding.tree_depth_bound <= 2
        assert instance_tree_depth(unfolding.unfolded) <= 2
        forest = unfolding.elimination_forest()
        from repro.data.gaifman import gaifman_graph

        forest.validate(gaifman_graph(unfolding.unfolded))


def test_unfolding_reduces_width_on_dense_instances():
    query = hierarchical_example()
    # A dense instance: many S facts sharing elements.
    facts = [fact("S", f"a{i}", f"b{j}") for i in range(4) for j in range(4)]
    facts += [fact("R", f"a{i}") for i in range(4)]
    instance = Instance(facts, RST)
    unfolding = unfold_instance(query, instance)
    assert instance_treewidth(unfolding.unfolded) <= 1
    assert instance_pathwidth(unfolding.unfolded) <= 1
    assert instance_treewidth(instance) > 1


def test_unfolded_probability_equals_original():
    query = inversion_free_example()
    instance = sample_instance(seed=5, facts=8)
    unfolding = unfold_instance(query, instance)
    tid = random_probabilities(instance, seed=5)
    unfolded_tid = ProbabilisticInstance(
        unfolding.unfolded,
        {unfolding.unfolded_fact(f): tid.probability_of(f) for f in instance},
    )
    assert brute_force_probability(query, tid) == brute_force_probability(query, unfolded_tid)


def test_verify_unfolding_report():
    query = hierarchical_example()
    instance = sample_instance(seed=6, facts=8)
    unfolding = unfold_instance(query, instance)
    report = verify_unfolding(unfolding, query)
    assert all(report.values())


def test_non_inversion_free_query_rejected():
    with pytest.raises(UnfoldingError):
        unfold_instance(unsafe_rst(), sample_instance(seed=7))


def test_unranked_query_rejected():
    with pytest.raises(UnfoldingError):
        unfold_instance(parse_cq("S(x, y), S(y, x)"), sample_instance(seed=8))


def test_unranked_instance_rejected():
    cyclic = Instance([fact("S", "a", "b"), fact("S", "b", "a")], RST)
    with pytest.raises(UnfoldingError):
        unfold_instance(hierarchical_example(), cyclic)


def test_fact_map_round_trip():
    query = hierarchical_example()
    instance = sample_instance(seed=9, facts=6)
    unfolding = unfold_instance(query, instance)
    for f in instance:
        assert unfolding.original_fact(unfolding.unfolded_fact(f)) == f
