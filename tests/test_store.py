"""Tests for the persistent artifact store (repro.store).

Four layers, matching the store's contracts:

* the on-disk entry format — pack/verify round trips, every corruption an
  :class:`EntryDamage`, canonical query text that re-parses;
* the store itself — atomic commits, quarantine-on-damage, crash recovery,
  gc, verify/repair sweeps, lifecycle;
* the engine wiring — a *fresh* engine (a process restart, as far as the
  caches are concerned) answers from the store with zero compilations, and
  a corrupted entry costs a recompile but never exactness;
* the CLI — ``--store`` across invocations and the ``store`` maintenance
  subcommand, exit codes included.
"""

import glob
import json
import os
from fractions import Fraction

import pytest

from repro.cli import main
from repro.data.io import save_instance
from repro.data.tid import ProbabilisticInstance
from repro.engine import CompilationEngine, ParallelEngine
from repro.errors import StoreError
from repro.generators import labelled_partial_ktree_instance
from repro.generators.lines import rst_chain_instance
from repro.queries import parse_ucq, unsafe_rst
from repro.store import (
    CODEC_COLUMNAR,
    CODEC_PICKLE,
    ArtifactStore,
    canonical_query_text,
    columnar_key,
    encoding_key,
    plan_key,
)
from repro.store.format import (
    EntryDamage,
    best_effort_meta,
    pack_entry,
    parse_header,
    verify_entry,
)

KEY_A = "a" * 64
KEY_B = "b" * 64


@pytest.fixture(scope="module")
def ktree_tid():
    instance = labelled_partial_ktree_instance(10, 2, seed=5)
    return ProbabilisticInstance.uniform(instance, Fraction(1, 2))


@pytest.fixture(scope="module")
def artifact(ktree_tid):
    engine = CompilationEngine()
    return engine.columnar(unsafe_rst(), ktree_tid.instance)


def corrupt_last_byte(path: str) -> None:
    with open(path, "r+b") as handle:
        handle.seek(-1, os.SEEK_END)
        last = handle.read(1)
        handle.seek(-1, os.SEEK_END)
        handle.write(bytes((last[0] ^ 0xFF,)))


def entry_files(store: ArtifactStore) -> list[str]:
    return sorted(glob.glob(str(store.root / "objects" / "*" / "*.entry")))


def tmp_files(store: ArtifactStore) -> list[str]:
    return sorted(glob.glob(str(store.root / "objects" / "*" / ".tmp-*")))


# -- entry format ---------------------------------------------------------------


class TestEntryFormat:
    def test_pack_verify_round_trip(self):
        blob = pack_entry(KEY_A, CODEC_PICKLE, {"kind": "x"}, b"payload")
        header, meta = verify_entry(blob, expected_key=KEY_A)
        assert header.codec == CODEC_PICKLE
        assert header.key == KEY_A
        assert meta == {"kind": "x"}
        assert blob[header.payload_offset : header.payload_offset + header.payload_len] == (
            b"payload"
        )

    def test_payload_is_eight_byte_aligned(self):
        for meta in ({}, {"kind": "columnar", "query": "R(x)"}):
            blob = pack_entry(KEY_A, CODEC_PICKLE, meta, b"p")
            assert parse_header(blob).payload_offset % 8 == 0

    def test_bad_magic_version_key_and_truncation_all_damage(self):
        blob = bytearray(pack_entry(KEY_A, CODEC_PICKLE, {}, b"payload"))
        with pytest.raises(EntryDamage, match="magic"):
            verify_entry(b"XXXXXXXX" + bytes(blob[8:]))
        versioned = bytearray(blob)
        versioned[8] = 99
        with pytest.raises(EntryDamage, match="version"):
            verify_entry(bytes(versioned))
        with pytest.raises(EntryDamage, match="key echo"):
            verify_entry(bytes(blob), expected_key=KEY_B)
        with pytest.raises(EntryDamage, match="truncated"):
            verify_entry(bytes(blob[:-3]))

    def test_flipped_payload_byte_fails_checksum(self):
        blob = bytearray(pack_entry(KEY_A, CODEC_PICKLE, {}, b"payload"))
        blob[-1] ^= 0x01
        with pytest.raises(EntryDamage, match="checksum"):
            verify_entry(bytes(blob))

    def test_best_effort_meta_survives_payload_damage(self):
        blob = bytearray(
            pack_entry(KEY_A, CODEC_PICKLE, {"kind": "columnar", "query": "R(x)"}, b"payload")
        )
        blob[-1] ^= 0x01
        assert best_effort_meta(bytes(blob)) == {"kind": "columnar", "query": "R(x)"}
        assert best_effort_meta(b"garbage") == {}

    def test_canonical_query_text_round_trips(self):
        for text in ("R(x), S(x, y)", "R(x) | S(x, y), T(y)"):
            query = parse_ucq(text)
            canonical = canonical_query_text(query)
            assert canonical_query_text(parse_ucq(canonical)) == canonical

    def test_keys_are_distinct_and_deterministic(self):
        query = parse_ucq("R(x), S(x, y)")
        assert columnar_key("f1", query, False) == columnar_key("f1", query, False)
        assert columnar_key("f1", query, False) != columnar_key("f1", query, True)
        assert columnar_key("f1", query, False) != columnar_key("f2", query, False)
        assert plan_key(query) != columnar_key("f1", query, False)
        assert encoding_key("f1") != encoding_key("f2")


# -- the store ------------------------------------------------------------------


class TestArtifactStore:
    def test_columnar_round_trip(self, tmp_path, artifact, ktree_tid):
        store = ArtifactStore(tmp_path / "store")
        assert store.put_columnar(KEY_A, artifact, {"kind": "columnar"})
        loaded = store.get_columnar(KEY_A)
        assert loaded is not None
        assert list(loaded.var) == list(artifact.var)
        assert list(loaded.lo) == list(artifact.lo)
        assert list(loaded.hi) == list(artifact.hi)
        assert loaded.root == artifact.root
        assert loaded.order == artifact.order
        valuation = ktree_tid.valuation()
        assert loaded.probability(valuation) == artifact.probability(valuation)
        assert store.counters.writes == 1
        assert store.counters.hits == 1

    def test_object_round_trip_preserves_none(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        store.put_object(KEY_A, None, {"kind": "lifted_plan"})
        store.put_object(KEY_B, {"answer": Fraction(3, 7)}, {"kind": "misc"})
        assert store.get_object(KEY_A) == (True, None)
        assert store.get_object(KEY_B) == (True, {"answer": Fraction(3, 7)})
        assert store.get_object("c" * 64) == (False, None)

    def test_put_is_idempotent(self, tmp_path, artifact):
        store = ArtifactStore(tmp_path / "store")
        assert store.put_columnar(KEY_A, artifact, {})
        assert store.put_columnar(KEY_A, artifact, {})
        assert store.counters.writes == 1
        assert len(entry_files(store)) == 1

    def test_corrupted_entry_quarantined_and_reported_as_miss(self, tmp_path, artifact):
        store = ArtifactStore(tmp_path / "store")
        store.put_columnar(KEY_A, artifact, {"kind": "columnar"})
        corrupt_last_byte(entry_files(store)[0])
        assert store.get_columnar(KEY_A) is None
        assert store.counters.quarantines == 1
        assert not entry_files(store)
        records = store.quarantine_list()
        assert len(records) == 1
        assert records[0].key == KEY_A
        assert "checksum" in records[0].reason
        # The reason record is machine-readable JSON next to the entry.
        reason_files = list((store.root / "quarantine").glob("*.reason.json"))
        assert len(reason_files) == 1
        assert json.loads(reason_files[0].read_text())["key"] == KEY_A

    def test_wrong_codec_is_damage_not_crash(self, tmp_path, artifact):
        store = ArtifactStore(tmp_path / "store")
        store.put_object(KEY_A, ("not", "columnar"), {"kind": "lifted_plan"})
        assert store.get_columnar(KEY_A) is None
        assert store.counters.quarantines == 1

    def test_recover_sweeps_dead_pid_temp_files(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        shard = store.root / "objects" / "ab"
        shard.mkdir(parents=True, exist_ok=True)
        dead = shard / ".tmp-999999-1"
        dead.write_bytes(b"half a write")
        live = shard / f".tmp-{os.getpid() + 0}-7"
        # Our own pid is treated as dead (serials never recur), so fabricate
        # a live *other* pid with pid 1 (init, always running).
        other = shard / ".tmp-1-1"
        other.write_bytes(b"concurrent writer")
        live.write_bytes(b"stale own write")
        removed = store.recover()
        assert dead.name in removed
        assert live.name in removed
        assert other.exists()
        other.unlink()

    def test_startup_runs_recovery(self, tmp_path):
        root = tmp_path / "store"
        store = ArtifactStore(root)
        shard = store.root / "objects" / "cd"
        shard.mkdir(parents=True, exist_ok=True)
        (shard / ".tmp-999998-3").write_bytes(b"orphan")
        reopened = ArtifactStore(root)
        assert reopened.counters.recovered == 1
        assert not tmp_files(reopened)

    def test_stats_snapshot(self, tmp_path, artifact):
        store = ArtifactStore(tmp_path / "store")
        store.put_columnar(KEY_A, artifact, {})
        store.put_object(KEY_B, [1, 2, 3], {})
        snapshot = store.stats()
        assert snapshot.entries == 2
        assert snapshot.total_bytes > 0
        assert snapshot.quarantined == 0
        assert snapshot.as_dict()["writes"] == 2

    def test_gc_by_age_size_and_quarantine(self, tmp_path, artifact):
        store = ArtifactStore(tmp_path / "store")
        store.put_columnar(KEY_A, artifact, {})
        store.put_object(KEY_B, list(range(100)), {})
        # Age: nothing is older than an hour.
        assert store.gc(max_age_seconds=3600.0) == []
        # Size: a zero-byte budget evicts everything, oldest first.
        removed = store.gc(max_bytes=0)
        assert sorted(removed) == sorted([KEY_A, KEY_B])
        assert not entry_files(store)
        # Quarantine: damaged entries can be purged too.
        store.put_object(KEY_A, "x", {})
        corrupt_last_byte(entry_files(store)[0])
        assert store.get_object(KEY_A) == (False, None)
        assert store.stats().quarantined == 1
        store.gc(clear_quarantine=True)
        assert store.stats().quarantined == 0
        assert store.quarantine_list() == []

    def test_verify_clean_and_damaged(self, tmp_path, artifact):
        store = ArtifactStore(tmp_path / "store")
        store.put_columnar(KEY_A, artifact, {"kind": "columnar"})
        report = store.verify()
        assert report.checked == 1 and report.ok == 1 and report.clean
        corrupt_last_byte(entry_files(store)[0])
        report = store.verify()
        assert report.checked == 1 and report.ok == 0
        assert [key for key, _ in report.damaged] == [KEY_A]
        assert report.quarantined == [KEY_A]
        assert report.clean  # quarantining handled the damage

    def test_verify_repair_rewrites_in_place(self, tmp_path, artifact):
        store = ArtifactStore(tmp_path / "store")
        store.put_columnar(KEY_A, artifact, {"kind": "columnar"})
        corrupt_last_byte(entry_files(store)[0])
        report = store.verify(recompile=lambda meta: (CODEC_COLUMNAR, artifact))
        assert report.repaired == [KEY_A]
        assert store.verify().ok == 1
        loaded = store.get_columnar(KEY_A)
        assert loaded is not None and list(loaded.var) == list(artifact.var)

    def test_verify_repair_deletes_underivable(self, tmp_path, artifact):
        store = ArtifactStore(tmp_path / "store")
        store.put_columnar(KEY_A, artifact, {"kind": "columnar"})
        corrupt_last_byte(entry_files(store)[0])
        report = store.verify(recompile=lambda meta: None)
        assert [key for key, _ in report.deleted] == [KEY_A]
        assert report.clean
        assert not entry_files(store)

    def test_close_marks_store_but_keeps_loaded_artifacts(self, tmp_path, artifact):
        store = ArtifactStore(tmp_path / "store")
        store.put_columnar(KEY_A, artifact, {})
        loaded = store.get_columnar(KEY_A)
        store.close()
        with pytest.raises(StoreError):
            store.get_columnar(KEY_A)
        # The artifact owns its mapping: still readable after close.
        assert list(loaded.var) == list(artifact.var)

    def test_context_manager_and_contains(self, tmp_path, artifact):
        with ArtifactStore(tmp_path / "store") as store:
            store.put_columnar(KEY_A, artifact, {})
            assert store.contains(KEY_A)
            assert not store.contains(KEY_B)
        with pytest.raises(StoreError):
            store.contains  # attribute still there...
            store.recover()  # ...but operations refuse

    def test_no_temp_files_after_traffic(self, tmp_path, artifact):
        store = ArtifactStore(tmp_path / "store")
        for serial in range(4):
            store.put_object(f"{serial:02d}" + "e" * 62, serial, {})
        assert len(entry_files(store)) == 4
        assert tmp_files(store) == []


# -- engine wiring --------------------------------------------------------------


class TestEngineWiring:
    def test_fresh_engine_answers_from_store_with_zero_compilations(
        self, tmp_path, ktree_tid
    ):
        root = tmp_path / "store"
        cold = CompilationEngine(store=root)
        value = cold.probability(unsafe_rst(), ktree_tid, method="columnar")
        assert cold.stats["store"].misses == 1
        assert cold.store.counters.writes >= 1

        warm = CompilationEngine(store=root)
        again = warm.probability(unsafe_rst(), ktree_tid, method="columnar")
        assert again == value
        assert warm.stats["store"].hits == 1
        # The restart answered without touching the compilation pipeline.
        assert warm.stats["lineage"].misses == 0
        assert warm.stats["obdd"].misses == 0

    def test_corrupted_entry_recompiles_exactly_and_surfaces_quarantine(
        self, tmp_path, ktree_tid
    ):
        root = tmp_path / "store"
        cold = CompilationEngine(store=root)
        value = cold.probability(unsafe_rst(), ktree_tid, method="columnar")
        store = ArtifactStore(root)
        corrupt_last_byte(entry_files(store)[0])

        warm = CompilationEngine(store=root)
        again = warm.probability(unsafe_rst(), ktree_tid, method="columnar")
        assert again == value  # corruption costs a recompile, never exactness
        assert warm.stats["store"].misses == 1
        assert warm.stats["store"].quarantines == 1
        assert "quarantined" in str(warm.cache_info()["store"])
        # The recompiled artifact was written behind again.
        assert CompilationEngine(store=root).probability(
            unsafe_rst(), ktree_tid, method="columnar"
        ) == value

    def test_lifted_plan_and_none_verdict_round_trip(self, tmp_path):
        root = tmp_path / "store"
        safe = parse_ucq("R(x), S(x, y)")
        first = CompilationEngine(store=root)
        assert first.lifted_plan(safe) is not None
        assert first.lifted_plan(unsafe_rst()) is None

        second = CompilationEngine(store=root)
        assert second.lifted_plan(safe) is not None
        assert second.lifted_plan(unsafe_rst()) is None
        assert second.stats["store"].hits == 2
        assert second.stats["lifted_plan"].misses == 2  # memory misses, store hits

    def test_tree_encoding_round_trip(self, tmp_path, ktree_tid):
        root = tmp_path / "store"
        instance = ktree_tid.instance
        first = CompilationEngine(store=root)
        encoding = first.tree_encoding_of(instance)
        second = CompilationEngine(store=root)
        loaded = second.tree_encoding_of(instance)
        assert second.stats["store"].hits == 1
        assert loaded.instance is instance
        assert loaded.root == encoding.root
        assert loaded.nodes == encoding.nodes

    def test_engine_accepts_store_instance_and_path(self, tmp_path, ktree_tid):
        root = tmp_path / "store"
        opened = ArtifactStore(root)
        by_instance = CompilationEngine(store=opened)
        assert by_instance.store is opened
        by_path = CompilationEngine(store=str(root))
        assert by_path.store is not None and by_path.store.root == root

    def test_clear_resets_store_counters_view(self, tmp_path, ktree_tid):
        engine = CompilationEngine(store=tmp_path / "store")
        engine.probability(unsafe_rst(), ktree_tid, method="columnar")
        engine.clear()
        assert engine.stats["store"].hits == 0
        assert engine.stats["store"].misses == 0
        assert engine.stats["store"].quarantines == 0

    def test_parallel_workers_share_one_store(self, tmp_path, ktree_tid):
        root = tmp_path / "store"
        queries = [unsafe_rst(), parse_ucq("R(x), S(x, y)"), parse_ucq("R(x)")]
        serial = CompilationEngine()
        expected = [
            serial.probability(query, ktree_tid, method="columnar") for query in queries
        ]
        with ParallelEngine(workers=2, store=root) as warmup:
            values = warmup.probability_many(queries, ktree_tid, method="columnar")
        assert values == expected
        assert ArtifactStore(root).stats().entries >= len(queries)

        # A second pool (fresh worker processes) reads everything back.
        with ParallelEngine(workers=2, store=root) as pool:
            again = pool.probability_many(queries, ktree_tid, method="columnar")
            report = pool.last_report
        assert again == expected
        merged = report.stats
        assert merged["store"].hits == len(queries)
        assert merged["lineage"].misses == 0

    def test_parallel_store_accepts_open_store(self, tmp_path, ktree_tid):
        opened = ArtifactStore(tmp_path / "store")
        with ParallelEngine(workers=1, store=opened) as pool:
            value = pool.probability_many([unsafe_rst()], ktree_tid, method="columnar")[0]
        assert value == CompilationEngine().probability(
            unsafe_rst(), ktree_tid, method="columnar"
        )
        assert opened.stats().entries >= 1


# -- CLI ------------------------------------------------------------------------


@pytest.fixture()
def chain_json(tmp_path):
    tid = ProbabilisticInstance.uniform(rst_chain_instance(2), Fraction(1, 2))
    path = tmp_path / "chain.json"
    save_instance(tid, path)
    return path, tid


class TestCLI:
    def test_store_warm_start_across_invocations(self, chain_json, tmp_path, capsys):
        path, tid = chain_json
        root = str(tmp_path / "store")
        query = "R(x), S(x, y)"
        args = [
            "batch", str(path), "--query", query,
            "--method", "columnar", "--stats", "--store", root,
        ]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert "cache[store]: 0 hits / 1 misses" in first
        # Second invocation: a fresh engine (the CLI builds one per call)
        # answers from the store with zero compilations.
        assert main(args) == 0
        second = capsys.readouterr().out
        assert "cache[store]: 1 hits / 0 misses" in second
        assert "cache[lineage]: 0 hits / 0 misses" in second
        value_line = first.splitlines()[0]
        assert second.splitlines()[0] == value_line

    def test_probability_store_corruption_still_exact(self, chain_json, tmp_path, capsys):
        from repro.probability.evaluation import probability

        path, tid = chain_json
        root = tmp_path / "store"
        query = "R(x), S(x, y)"
        expected = probability(parse_ucq(query), tid, method="columnar")
        args = [
            "probability", str(path), "--query", query,
            "--method", "columnar", "--store", str(root),
        ]
        assert main(args) == 0
        assert str(expected) in capsys.readouterr().out
        for entry in glob.glob(str(root / "objects" / "*" / "*.entry")):
            corrupt_last_byte(entry)
        assert main(args) == 0
        assert str(expected) in capsys.readouterr().out

    def test_store_stats_and_quarantine_list(self, chain_json, tmp_path, capsys):
        path, _ = chain_json
        root = str(tmp_path / "store")
        main([
            "probability", str(path), "--query", "R(x)",
            "--method", "columnar", "--store", root,
        ])
        capsys.readouterr()
        assert main(["store", "stats", root]) == 0
        out = capsys.readouterr().out
        assert "entries: 1" in out
        assert main(["store", "quarantine-list", root]) == 0
        assert "quarantine is empty" in capsys.readouterr().out

    def test_store_verify_exit_codes_and_repair(self, chain_json, tmp_path, capsys):
        path, _ = chain_json
        root = str(tmp_path / "store")
        probability_args = [
            "probability", str(path), "--query", "R(x), S(x, y)",
            "--method", "columnar", "--store", root,
        ]
        main(probability_args)
        capsys.readouterr()
        assert main(["store", "verify", root]) == 0

        for entry in glob.glob(os.path.join(root, "objects", "*", "*.entry")):
            corrupt_last_byte(entry)
        assert main(["store", "verify", root]) == 1  # damage found -> failure code
        out = capsys.readouterr().out
        assert "damaged" in out and "quarantined" in out
        assert main(["store", "quarantine-list", root]) == 0
        assert "checksum" in capsys.readouterr().out

        # Recompile, corrupt again, repair from the source instance.
        main(probability_args)
        for entry in glob.glob(os.path.join(root, "objects", "*", "*.entry")):
            corrupt_last_byte(entry)
        capsys.readouterr()
        assert main(["store", "verify", root, "--repair", "--instance", str(path)]) == 0
        assert "repaired" in capsys.readouterr().out
        assert main(["store", "verify", root]) == 0

    def test_store_verify_repair_without_instance_deletes(
        self, chain_json, tmp_path, capsys
    ):
        path, _ = chain_json
        root = str(tmp_path / "store")
        main([
            "probability", str(path), "--query", "R(x)",
            "--method", "columnar", "--store", root,
        ])
        for entry in glob.glob(os.path.join(root, "objects", "*", "*.entry")):
            corrupt_last_byte(entry)
        capsys.readouterr()
        assert main(["store", "verify", root, "--repair"]) == 0
        assert "deleted" in capsys.readouterr().out
        assert main(["store", "verify", root]) == 0  # nothing damaged remains

    def test_store_gc_command(self, chain_json, tmp_path, capsys):
        path, _ = chain_json
        root = str(tmp_path / "store")
        main([
            "probability", str(path), "--query", "R(x)",
            "--method", "columnar", "--store", root,
        ])
        capsys.readouterr()
        assert main(["store", "gc", root, "--max-bytes", "0"]) == 0
        assert "evicted 1 entries" in capsys.readouterr().out

    def test_lineage_accepts_store(self, chain_json, tmp_path, capsys):
        path, _ = chain_json
        root = str(tmp_path / "store")
        assert main([
            "lineage", str(path), "--query", "R(x), S(x, y)", "--store", root,
        ]) == 0
        assert "OBDD size" in capsys.readouterr().out
