"""Tests for probability evaluation: all methods agree with brute force."""

from fractions import Fraction

import pytest

from repro.data.instance import Instance, fact
from repro.data.tid import ProbabilisticInstance
from repro.errors import ProbabilityError
from repro.generators import (
    random_probabilities,
    random_rst_instance,
    rst_bipartite_instance,
    rst_chain_instance,
)
from repro.probability import (
    brute_force_model_count,
    brute_force_probability,
    model_count_via_probability,
    probability,
    property_model_count,
)
from repro.queries import parse_cq, parse_ucq, qp, threshold_two_query, unsafe_rst
from repro.generators import grid_instance

METHODS = ("obdd", "dnnf", "automaton", "auto")


@pytest.mark.parametrize("method", METHODS)
def test_methods_agree_on_rst_chain(method):
    instance = rst_chain_instance(2)
    tid = random_probabilities(instance, seed=1)
    assert probability(unsafe_rst(), tid, method=method) == brute_force_probability(
        unsafe_rst(), tid
    )


@pytest.mark.parametrize("method", METHODS)
def test_methods_agree_on_rst_bipartite(method):
    instance = rst_bipartite_instance(2)
    tid = random_probabilities(instance, seed=2)
    assert probability(unsafe_rst(), tid, method=method) == brute_force_probability(
        unsafe_rst(), tid
    )


@pytest.mark.parametrize("method", ("obdd", "dnnf", "auto"))
def test_methods_agree_on_qp_grid(method):
    instance = grid_instance(2, 2)
    tid = ProbabilisticInstance.uniform(instance, Fraction(2, 5))
    assert probability(qp(), tid, method=method) == brute_force_probability(qp(), tid)


def test_probability_with_disequality_query():
    instance = Instance([fact("R", "a"), fact("R", "b"), fact("R", "c")])
    tid = ProbabilisticInstance.uniform(instance, Fraction(1, 2))
    expected = brute_force_probability(threshold_two_query(), tid)
    assert probability(threshold_two_query(), tid) == expected
    assert expected == Fraction(1, 2)


def test_read_once_method():
    instance = rst_chain_instance(3)
    tid = random_probabilities(instance, seed=4)
    assert probability(unsafe_rst(), tid, method="read_once") == brute_force_probability(
        unsafe_rst(), tid
    )


def test_read_once_method_rejects_shared_facts():
    instance = rst_bipartite_instance(2)
    tid = ProbabilisticInstance.uniform(instance, Fraction(1, 2))
    with pytest.raises(ProbabilityError):
        probability(unsafe_rst(), tid, method="read_once")


def test_unknown_method_rejected():
    instance = rst_chain_instance(1)
    tid = ProbabilisticInstance.uniform(instance)
    with pytest.raises(ProbabilityError):
        probability(unsafe_rst(), tid, method="nonsense")


def test_certain_facts_give_deterministic_answer():
    instance = rst_chain_instance(2)
    tid = ProbabilisticInstance(instance)  # all probabilities 1
    assert probability(unsafe_rst(), tid) == 1
    empty = tid.condition(kept=[], removed=list(instance.facts))
    assert probability(unsafe_rst(), empty) == 0


def test_union_query_probability():
    query = parse_ucq("R(x), S(x, y) | S(x, y), T(y)")
    instance = random_rst_instance(3, 6, seed=6)
    tid = random_probabilities(instance, seed=6)
    assert probability(query, tid) == brute_force_probability(query, tid)


def test_model_count_via_probability():
    instance = rst_chain_instance(2)
    assert model_count_via_probability(unsafe_rst(), instance) == brute_force_model_count(
        unsafe_rst(), instance
    )


def test_property_model_count_matches_enumeration():
    from repro.provenance.mso_properties import threshold_automaton

    instance = rst_chain_instance(1)
    count = property_model_count(threshold_automaton(2), instance)
    expected = sum(
        1 for world in instance.all_subinstances() if len(world) >= 2
    )
    assert count == expected


def test_probability_of_query_with_no_match_is_zero():
    instance = Instance([fact("R", "a")])
    tid = ProbabilisticInstance.uniform(instance, Fraction(1, 2))
    assert probability(unsafe_rst(), tid) == 0
