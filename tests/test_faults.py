"""Chaos tests: deterministic fault injection against the parallel engine.

Every test arms a :class:`~repro.testing.faults.FaultInjector`, runs a real
workload through a :class:`~repro.engine.parallel.ParallelEngine` carrying
the injector's plan, and asserts three things at once: the faults actually
fired (no tokens left over), the answers are still *exact* (checked against
a serial engine, and — for the headline crash test — against the
differential :class:`~repro.testing.ProbabilityOracle`), and nothing leaked
(``/dev/shm`` is clean after close, the pool is torn down).
"""

import os
from fractions import Fraction

import pytest

from repro.data.tid import ProbabilisticInstance
from repro.engine import CompilationEngine, ParallelEngine
from repro.engine.shm import live_segments
from repro.errors import ReproError, WorkerCrashError
from repro.generators import labelled_partial_ktree_instance
from repro.queries import hierarchical_example, unsafe_rst
from repro.testing import FaultInjector, FaultPlan, ProbabilityOracle, consume_token

pytestmark = pytest.mark.chaos


@pytest.fixture(scope="module")
def workload():
    tids = [
        ProbabilisticInstance.uniform(
            labelled_partial_ktree_instance(8, 2, seed=seed), Fraction(1, 2)
        )
        for seed in range(4)
    ]
    queries = [unsafe_rst(), hierarchical_example()]
    return [(query, tid) for tid in tids for query in queries]


@pytest.fixture(scope="module")
def expected(workload):
    engine = CompilationEngine()
    return [engine.probability(query, tid) for query, tid in workload]


@pytest.fixture()
def injector():
    with FaultInjector(slow_seconds=0.05) as active:
        yield active


# -- the harness itself ---------------------------------------------------------


def test_tokens_fire_exactly_once(injector):
    injector.arm("worker_kill", 2)
    assert injector.armed("worker_kill") == 2
    assert consume_token(injector.plan, "worker_kill")
    assert consume_token(injector.plan, "worker_kill")
    assert not consume_token(injector.plan, "worker_kill")
    assert injector.armed("worker_kill") == 0


def test_kinds_are_independent(injector):
    injector.arm("alloc_fail")
    assert not consume_token(injector.plan, "worker_kill")
    assert consume_token(injector.plan, "alloc_fail")


def test_unknown_kind_and_bad_count_rejected(injector):
    with pytest.raises(ReproError):
        injector.arm("power_outage")
    with pytest.raises(ReproError):
        injector.arm("worker_kill", 0)


def test_missing_token_dir_means_no_faults(tmp_path):
    plan = FaultPlan(token_dir=str(tmp_path / "never-created"))
    assert not consume_token(plan, "worker_kill")


def test_cleanup_removes_the_token_dir():
    with FaultInjector() as active:
        active.arm("slow_kernel", 3)
        token_dir = active.plan.token_dir
        assert os.path.isdir(token_dir)
    assert not os.path.isdir(token_dir)


# -- worker crashes --------------------------------------------------------------


def test_worker_kill_recovery_is_exact(injector, workload, expected):
    """The headline chaos case: seeded worker kills at 4 workers, and the
    batch still returns exactly the answers the serial engine (and the
    differential oracle) produce — with nothing left in /dev/shm."""
    injector.arm("worker_kill", 2)
    with ParallelEngine(
        workers=4, fault_plan=injector.plan, retry_backoff=0.01
    ) as parallel:
        prefix = parallel.segment_plane().prefix
        report = parallel.map_probability(workload)
    assert list(report.values) == expected
    assert injector.armed("worker_kill") == 0, "the kills never fired"
    assert live_segments(prefix) == []
    # Independent confirmation through every serial route the oracle runs.
    oracle = ProbabilityOracle(karp_luby_samples=0)
    query, tid = workload[0]
    assert report.values[0] == oracle.check(query, tid, "chaos-kill").reference


def test_worker_kill_during_shm_compile_leaves_no_orphans(injector, workload):
    """A worker killed while publishing compile artifacts leaves segments
    behind; the sweep must reclaim them without touching the survivors'."""
    injector.arm("worker_kill", 1)
    _, tid = workload[0]
    queries = [unsafe_rst(), hierarchical_example()]
    serial = CompilationEngine().compile_many(queries, tid.instance)
    pairs = [(query, tid.instance) for query in queries]
    with ParallelEngine(
        workers=2, fault_plan=injector.plan, retry_backoff=0.01
    ) as parallel:
        prefix = parallel.segment_plane().prefix
        report = parallel.map_compile(pairs, transport="shm")
        for mine, reference in zip(report.values, serial):
            assert mine.probability(tid.valuation()) == reference.probability(
                tid.valuation()
            )
    assert injector.armed("worker_kill") == 0
    assert live_segments(prefix) == []


def test_retry_exhaustion_raises_worker_crash_error(injector, workload):
    """When every retry is also killed, the run must fail with the typed
    error instead of hanging — and close() must still clean up."""
    # 2 shards x (1 + max_shard_retries) attempts: enough kills to exhaust
    # some shard no matter how the pool schedules the retries.
    injector.arm("worker_kill", 4)
    with ParallelEngine(
        workers=2, fault_plan=injector.plan, max_shard_retries=1, retry_backoff=0.0
    ) as parallel:
        prefix = parallel.segment_plane().prefix
        with pytest.raises(WorkerCrashError):
            parallel.map_probability(workload)
    assert live_segments(prefix) == []


# -- soft worker faults ----------------------------------------------------------


def test_alloc_fail_is_retried(injector, workload, expected):
    injector.arm("alloc_fail", 2)
    with ParallelEngine(
        workers=2, fault_plan=injector.plan, retry_backoff=0.0
    ) as parallel:
        values = list(parallel.map_probability(workload).values)
    assert values == expected
    assert injector.armed("alloc_fail") == 0


def test_slow_kernel_is_tolerated_without_retry(injector, workload, expected):
    injector.arm("slow_kernel", 2)  # one straggler per shard
    with ParallelEngine(workers=2, fault_plan=injector.plan) as parallel:
        report = parallel.map_probability(workload)
    assert list(report.values) == expected
    assert injector.armed("slow_kernel") == 0
    # A straggler is not an error: every shard completed exactly once.
    assert report.items == len(workload)


# -- segment sabotage ------------------------------------------------------------


@pytest.mark.parametrize("kind", ["segment_corrupt", "segment_unlink"])
def test_reweight_recovers_from_segment_sabotage(injector, workload, kind):
    """Corrupting or unlinking the published reweight artifact must surface
    as a retryable SegmentError: the parent republishes under a fresh name
    and the retried shards attach to the replacement."""
    _, tid = workload[0]
    compiled = CompilationEngine().compile(unsafe_rst(), tid.instance)
    maps = [
        {fact: Fraction(i + 1, i + 4) for fact in compiled.order} for i in range(8)
    ]
    reference = [compiled.probability(m) for m in maps]
    injector.arm(kind, 1)
    with ParallelEngine(
        workers=2, fault_plan=injector.plan, retry_backoff=0.0
    ) as parallel:
        prefix = parallel.segment_plane().prefix
        assert parallel.reweight_many(compiled, maps) == reference
    assert injector.armed(kind) == 0
    assert live_segments(prefix) == []


# -- lifecycle regression --------------------------------------------------------


def test_context_exit_releases_everything_when_body_raises(workload):
    """Regression: a body that raises mid-batch must still get the pool torn
    down and every shared-memory segment unlinked by __exit__."""
    _, tid = workload[0]
    pairs = [(query, tid.instance) for query in (unsafe_rst(), hierarchical_example())]
    with pytest.raises(RuntimeError, match="mid-batch"):
        with ParallelEngine(workers=2) as parallel:
            parallel.map_compile(pairs, transport="shm")
            prefix = parallel.segment_plane().prefix
            assert live_segments(prefix), "the batch should have published segments"
            raise RuntimeError("mid-batch failure")
    assert parallel._pool is None
    assert parallel._plane is None
    assert live_segments(prefix) == []
