"""Tests for the sharded parallel evaluation engine (repro.engine.parallel)."""

from fractions import Fraction

import pytest

from repro.cli import main
from repro.data.io import save_instance
from repro.data.tid import ProbabilisticInstance
from repro.engine import (
    CompilationEngine,
    ParallelEngine,
    available_workers,
    shard_workload,
)
from repro.errors import CompilationError
from repro.generators import labelled_partial_ktree_instance
from repro.queries import hierarchical_example, parse_ucq, qp, unsafe_rst


@pytest.fixture(scope="module")
def workload():
    tids = [
        ProbabilisticInstance.uniform(
            labelled_partial_ktree_instance(8, 2, seed=seed), Fraction(1, 2)
        )
        for seed in range(4)
    ]
    queries = [unsafe_rst(), hierarchical_example()]
    return [(query, tid) for tid in tids for query in queries]


@pytest.fixture(scope="module")
def expected(workload):
    engine = CompilationEngine()
    return [engine.probability(query, tid) for query, tid in workload]


# -- sharding ------------------------------------------------------------------


def test_shard_workload_preserves_every_item(workload):
    for shard_count in (1, 2, 3, 5, 100):
        shards = shard_workload(workload, shard_count)
        assert len(shards) <= shard_count
        indices = sorted(index for shard in shards for index, _ in shard)
        assert indices == list(range(len(workload)))


def test_shard_workload_groups_by_instance(workload):
    # 4 instances, 2 shards: each instance's items stay in one shard.
    shards = shard_workload(workload, 2)
    for shard in shards:
        fingerprints = {}
        for _, (query, tid) in shard:
            fingerprints.setdefault(tid.fingerprint, 0)
            fingerprints[tid.fingerprint] += 1
        assert all(count == 2 for count in fingerprints.values())


def test_shard_workload_splits_a_single_dominant_group(workload):
    tid = workload[0][1]
    single = [(unsafe_rst(), tid)] * 8
    shards = shard_workload(single, 4)
    assert len(shards) == 4
    assert sorted(len(shard) for shard in shards) == [2, 2, 2, 2]


def test_shard_workload_balances_load(workload):
    shards = shard_workload(workload, 3)
    sizes = sorted(len(shard) for shard in shards)
    assert sum(sizes) == len(workload)
    assert sizes[-1] - sizes[0] <= 2


def test_shard_workload_rejects_zero_shards(workload):
    with pytest.raises(CompilationError):
        shard_workload(workload, 0)


# -- execution ------------------------------------------------------------------


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_map_probability_matches_serial_engine(workers, workload, expected):
    parallel = ParallelEngine(workers=workers)
    report = parallel.map_probability(workload)
    assert list(report.values) == expected
    assert report.workers == workers
    assert report.shard_count <= workers
    assert report.items == len(workload)
    assert report.stats["probability"].total == len(workload)


def test_probability_many_single_instance(workload, expected):
    query, tid = workload[0]
    queries = [unsafe_rst(), hierarchical_example(), qp(tid.instance.signature)]
    serial = CompilationEngine().probability_many(queries, tid)
    parallel = ParallelEngine(workers=2)
    assert parallel.probability_many(queries, tid) == serial
    assert parallel.last_report is not None
    assert parallel.last_report.items == len(queries)


def test_compile_many_matches_serial_engine(workload):
    _, tid = workload[0]
    queries = [unsafe_rst(), hierarchical_example()]
    serial = CompilationEngine().compile_many(queries, tid.instance)
    parallel = ParallelEngine(workers=2).compile_many(queries, tid.instance)
    for mine, reference in zip(parallel, serial):
        assert mine.size == reference.size
        assert mine.width == reference.width
        assert mine.order == reference.order
        assert mine.probability(tid.valuation()) == reference.probability(tid.valuation())


def test_map_compile_report_carries_worker_stats(workload):
    pairs = [(query, tid.instance) for query, tid in workload]
    report = ParallelEngine(workers=2).map_compile(pairs)
    assert report.items == len(pairs)
    assert report.stats["obdd"].total == len(pairs)
    # Repeated (query, instance) pairs hit the owning worker's cache.
    doubled = ParallelEngine(workers=2).map_compile(pairs + pairs)
    assert doubled.stats["obdd"].hits >= len(pairs)


def test_pool_persists_across_calls(workload, expected):
    with ParallelEngine(workers=2) as parallel:
        cold = parallel.map_probability(workload)
        assert cold.stats["probability"].hits == 0
        pool = parallel._pool
        assert pool is not None
        warm = parallel.map_probability(workload)
        assert list(warm.values) == expected
        # Same pool object: the worker processes (and their engine caches)
        # survived the first call.  Which worker picks up which shard is up
        # to the pool, so hit counts are not asserted here — the inline test
        # below pins the cache-persistence semantics deterministically.
        assert parallel._pool is pool
        assert warm.stats["probability"].total == len(workload)
    assert parallel._pool is None  # context exit closed it


def test_inline_engine_persists_across_calls(workload, expected):
    parallel = ParallelEngine(workers=1)
    parallel.map_probability(workload)
    warm = parallel.map_probability(workload)
    assert list(warm.values) == expected
    assert warm.stats["probability"].hits == len(workload)
    parallel.close()
    assert parallel._inline_engine is None
    # Still usable after close: state is rebuilt lazily.
    assert list(parallel.map_probability(workload).values) == expected


def test_empty_workload(workload):
    parallel = ParallelEngine(workers=3)
    report = parallel.map_probability([])
    assert report.values == () and report.shard_count == 0
    assert report.workers == 3
    assert parallel.probability_many([], workload[0][1]) == []


def test_inline_regime_spawns_no_pool(workload, expected, monkeypatch):
    import multiprocessing

    def forbidden(*args, **kwargs):  # pragma: no cover - only on regression
        raise AssertionError("workers=1 must not create a multiprocessing context")

    monkeypatch.setattr(multiprocessing, "get_context", forbidden)
    parallel = ParallelEngine(workers=1)
    assert list(parallel.map_probability(workload).values) == expected


def test_close_drops_worker_caches_deterministically(workload):
    """Regression: a closed engine must not keep cached node graphs alive.

    Dead engines pinning millions of cached OBDD nodes were a measured ~2x
    drag on later GC passes; close() must make the cached artifacts
    collectable immediately, not whenever the engine object itself dies.
    """
    import gc
    import weakref

    parallel = ParallelEngine(workers=1)
    parallel.map_probability(workload)
    engine = parallel._inline_engine
    assert engine is not None
    query, tid = workload[0]
    cached = engine.compile(query, tid.instance)
    ref = weakref.ref(cached)
    del cached, engine
    parallel.close()
    gc.collect()
    assert ref() is None, "close() left a cached compiled artifact alive"


def test_map_compile_object_transport_in_pool_regime(workload):
    from repro.provenance.compile_obdd import CompiledOBDD

    _, tid = workload[0]
    queries = [unsafe_rst(), hierarchical_example()]
    with ParallelEngine(workers=2) as parallel:
        artifacts = parallel.compile_many(queries, tid.instance, transport="object")
        assert all(isinstance(artifact, CompiledOBDD) for artifact in artifacts)
        # The plane exists (workers get the prefix at pool startup) but the
        # object transport never put a segment in it.
        assert parallel.segment_plane().owned_segments() == ()


def test_map_compile_shm_transport_in_pool_regime(workload):
    from repro.booleans.columnar import ColumnarOBDD

    _, tid = workload[0]
    queries = [unsafe_rst(), hierarchical_example()]
    serial = CompilationEngine().compile_many(queries, tid.instance)
    with ParallelEngine(workers=2) as parallel:
        artifacts = parallel.compile_many(queries, tid.instance, transport="shm")
        assert all(isinstance(artifact, ColumnarOBDD) for artifact in artifacts)
        for mine, reference in zip(artifacts, serial):
            assert mine.probability(tid.valuation()) == reference.probability(
                tid.valuation()
            )


def test_map_compile_shm_transport_in_inline_regime(workload):
    """Explicit "shm" honors the columnar representation even when the
    workload collapses to the inline regime — and still creates no segment."""
    from repro.booleans.columnar import ColumnarOBDD

    _, tid = workload[0]
    reference = CompilationEngine().compile(unsafe_rst(), tid.instance)
    for parallel in (ParallelEngine(workers=1), ParallelEngine(workers=2)):
        with parallel:
            # One query -> one shard -> inline, whatever the worker count.
            artifacts = parallel.compile_many(
                [unsafe_rst()], tid.instance, transport="shm"
            )
            assert isinstance(artifacts[0], ColumnarOBDD)
            assert artifacts[0].probability(tid.valuation()) == reference.probability(
                tid.valuation()
            )
            if parallel._plane is not None:
                assert parallel._plane.owned_segments() == ()


def test_map_compile_rejects_unknown_transport(workload):
    _, tid = workload[0]
    with pytest.raises(CompilationError):
        ParallelEngine(workers=2).map_compile(
            [(unsafe_rst(), tid.instance)], transport="carrier-pigeon"
        )
    with pytest.raises(CompilationError):
        ParallelEngine(workers=2, use_shared_memory=False).map_compile(
            [(unsafe_rst(), tid.instance)], transport="shm"
        )


def test_reweight_many_matches_direct_evaluation(workload):
    _, tid = workload[0]
    compiled = CompilationEngine().compile(unsafe_rst(), tid.instance)
    maps = [
        {fact: Fraction(i + 1, i + 4) for fact in compiled.order} for i in range(7)
    ]
    expected = [compiled.probability(m) for m in maps]
    for workers in (1, 2):
        with ParallelEngine(workers=workers) as parallel:
            assert parallel.reweight_many(compiled, maps) == expected
            floats = parallel.reweight_many(compiled, maps, exact=False)
            assert all(
                abs(value - float(reference)) < 1e-9
                for value, reference in zip(floats, expected)
            )
    assert ParallelEngine(workers=2).reweight_many(compiled, []) == []


def test_inline_regime_leaves_gc_enabled(workload):
    import gc

    assert gc.isenabled()
    parallel = ParallelEngine(workers=1)
    parallel.map_probability(workload)
    parallel.compile_many([unsafe_rst()], workload[0][1].instance)
    assert gc.isenabled(), "the inline regime must never touch the caller's GC"
    parallel.close()


def test_worker_errors_propagate(workload):
    parallel = ParallelEngine(workers=2)
    bad = [(unsafe_rst(), workload[0][1])] + [("not a query", workload[1][1])]
    with pytest.raises(Exception):
        parallel.map_probability(bad)


def test_available_workers_positive():
    assert available_workers() >= 1
    with pytest.raises(CompilationError):
        ParallelEngine(workers=0)


def test_parallel_engine_default_worker_count():
    assert ParallelEngine().workers == available_workers()


# -- CLI ------------------------------------------------------------------------


def test_cli_batch_workers_flag(tmp_path, capsys, workload):
    _, tid = workload[0]
    target = tmp_path / "instance.json"
    save_instance(tid, target)
    code = main(
        [
            "batch",
            str(target),
            "--query",
            "R(x), S(x, y), T(y)",
            "--query",
            "R(x)",
            "--workers",
            "2",
            "--stats",
        ]
    )
    assert code == 0
    output = capsys.readouterr().out
    assert "R(x), S(x, y), T(y):" in output
    assert "workers:" in output and "worker[0]:" in output
    assert "cache[probability]" in output
    # The values match the single-process CLI path.
    serial = CompilationEngine()
    expected_value = serial.probability(parse_ucq("R(x)"), tid)
    assert f"R(x): {expected_value}" in output
