"""Tests for the columnar OBDD kernels (repro.booleans.columnar).

The columnar artifact is a lossless structure-of-arrays flattening of a
reduced OBDD, so every test here is differential: whatever the object
kernels (:meth:`repro.booleans.obdd.OBDD.sweep`,
:class:`repro.provenance.compile_obdd.CompiledOBDD`) answer, the columns
must answer identically — exact routes as the *same* ``Fraction``, the float
fast path within float tolerance of it.  The no-numpy fallback (forced via
``REPRO_NO_NUMPY=1``) runs the same contract on ``array('q')`` columns.
"""

import random
from fractions import Fraction

import pytest

from repro.booleans import OBDD
from repro.booleans.columnar import (
    ColumnarOBDD,
    array_backend,
    columnar_from_buffer,
    columnar_from_obdd,
)
from repro.data.tid import ProbabilisticInstance
from repro.engine import CompilationEngine
from repro.errors import CompilationError, LineageError
from repro.generators import labelled_partial_ktree_instance
from repro.probability.evaluation import METHOD_NAMES, probability
from repro.provenance.columnar_product import ucq_probability_via_columnar_automaton
from repro.queries import hierarchical_example, unsafe_rst
from repro.testing import random_workload


@pytest.fixture(scope="module")
def cases():
    return random_workload(12, seed=20260807)


@pytest.fixture(scope="module")
def compiled_cases(cases):
    engine = CompilationEngine()
    return [(case, engine.compile(case.query, case.tid.instance)) for case in cases]


# -- layout invariants ----------------------------------------------------------


def test_columnar_layout_is_topologically_sorted(compiled_cases):
    for _, compiled in compiled_cases:
        columnar = compiled.to_columnar()
        assert len(columnar) == compiled.size
        previous_level = None
        for index in range(len(columnar)):
            node_id = index + 2
            level = int(columnar.var[index])
            # Levels descend (deepest variables first), so children — which
            # sit at strictly larger levels — always have smaller ids.
            if previous_level is not None:
                assert level <= previous_level
            previous_level = level
            for child in (int(columnar.lo[index]), int(columnar.hi[index])):
                assert 0 <= child < node_id


def test_columnar_rejects_malformed_columns():
    with pytest.raises(CompilationError):
        ColumnarOBDD(("x",), [0], [0], [], root=2)
    with pytest.raises(CompilationError):
        ColumnarOBDD(("x",), [0], [0], [1], root=7)
    # Topology checks at the construction boundary (shared-memory columns
    # arrive from another process): dangling child ids, levels outside the
    # order, and unsorted levels must all fail fast, not corrupt a sweep.
    with pytest.raises(CompilationError):
        ColumnarOBDD(("x",), [0], [5], [1], root=2)
    with pytest.raises(CompilationError):
        ColumnarOBDD(("x",), [3], [0], [1], root=2)
    with pytest.raises(CompilationError):
        ColumnarOBDD(("x", "y"), [0, 1], [0, 2], [1, 1], root=3)


def test_columnar_requires_known_variables(compiled_cases):
    _, compiled = compiled_cases[0]
    columnar = compiled.to_columnar()
    with pytest.raises(LineageError):
        columnar.level_of("no-such-variable")
    if len(columnar) > 0:
        with pytest.raises(LineageError):
            columnar.probability({})


# -- exactness: the columns answer exactly what the objects answer --------------


def test_columnar_measures_match_object_kernels(compiled_cases):
    for case, compiled in compiled_cases:
        columnar = compiled.to_columnar()
        assert columnar.size == compiled.size
        assert columnar.width == compiled.width
        assert columnar.model_count() == compiled.model_count()
        assert columnar.order == compiled.order
        exact = compiled.probability(case.tid.valuation())
        assert columnar.probability(case.tid.valuation()) == exact
        assert isinstance(columnar.probability(case.tid.valuation()), Fraction)


def test_columnar_float_fast_path_matches_exact(compiled_cases):
    for case, compiled in compiled_cases:
        columnar = compiled.to_columnar()
        exact = columnar.probability(case.tid.valuation())
        fast = columnar.probability(case.tid.valuation(), exact=False)
        assert isinstance(fast, float)
        assert 0.0 <= fast <= 1.0
        assert abs(fast - float(exact)) < 1e-9


def test_columnar_evaluate_matches_object_evaluate(compiled_cases):
    rng = random.Random(7)
    for _, compiled in compiled_cases:
        columnar = compiled.to_columnar()
        for _ in range(20):
            valuation = {fact: rng.random() < 0.5 for fact in compiled.order}
            assert columnar.evaluate(valuation) == compiled.evaluate(valuation)


# -- losslessness ---------------------------------------------------------------


def test_columnar_round_trips_through_obdd(compiled_cases):
    for case, compiled in compiled_cases:
        columnar = compiled.to_columnar()
        rebuilt = type(compiled).from_columnar(columnar)
        assert rebuilt.size == compiled.size
        assert rebuilt.width == compiled.width
        assert rebuilt.order == compiled.order
        assert rebuilt.probability(case.tid.valuation()) == compiled.probability(
            case.tid.valuation()
        )
        # And back again: the second flattening produces identical columns.
        again = rebuilt.to_columnar()
        assert list(again.var) == list(columnar.var)
        assert list(again.lo) == list(columnar.lo)
        assert list(again.hi) == list(columnar.hi)
        assert again.root == columnar.root


def test_obdd_manager_adapters_round_trip():
    manager = OBDD(("a", "b", "c"))
    node = manager.apply_or(
        manager.apply_and(manager.literal("a"), manager.literal("b")),
        manager.literal("c"),
    )
    columnar = manager.to_columnar(node)
    rebuilt_manager, rebuilt_root = OBDD.from_columnar(columnar)
    for bits in range(8):
        valuation = {
            "a": bool(bits & 1),
            "b": bool(bits & 2),
            "c": bool(bits & 4),
        }
        assert manager.evaluate(node, valuation) == rebuilt_manager.evaluate(
            rebuilt_root, valuation
        )


def test_columnar_buffer_round_trip(compiled_cases):
    for case, compiled in compiled_cases:
        columnar = compiled.to_columnar()
        if len(columnar) == 0:
            continue
        buffer = bytearray(columnar.nbytes)
        columnar.write_into(buffer)
        restored = columnar_from_buffer(columnar.meta(), buffer)
        assert list(restored.var) == list(columnar.var)
        assert list(restored.lo) == list(columnar.lo)
        assert list(restored.hi) == list(columnar.hi)
        assert restored.probability(case.tid.valuation()) == columnar.probability(
            case.tid.valuation()
        )


def test_columnar_copy_detaches_from_source(compiled_cases):
    _, compiled = compiled_cases[0]
    columnar = compiled.to_columnar()
    duplicate = columnar.copy()
    assert duplicate._retain is None
    assert list(duplicate.var) == list(columnar.var)
    assert duplicate.root == columnar.root and duplicate.order == columnar.order


def test_terminal_only_artifacts():
    from repro.booleans import FALSE_NODE, TRUE_NODE

    manager = OBDD(("x",))
    for terminal, value in ((TRUE_NODE, 1), (FALSE_NODE, 0)):
        columnar = columnar_from_obdd(manager, terminal)
        assert len(columnar) == 0
        assert columnar.probability({"x": Fraction(1, 3)}) == value
        assert columnar.model_count() == value * 2
        assert columnar.evaluate({"x": True}) == bool(value)


# -- the no-numpy fallback ------------------------------------------------------


def test_fallback_backend_matches_numpy(compiled_cases, monkeypatch):
    monkeypatch.setenv("REPRO_NO_NUMPY", "1")
    assert array_backend() is None
    for case, compiled in compiled_cases:
        columnar = compiled.to_columnar()
        exact = compiled.probability(case.tid.valuation())
        assert columnar.probability(case.tid.valuation()) == exact
        fast = columnar.probability(case.tid.valuation(), exact=False)
        assert abs(fast - float(exact)) < 1e-9
        assert columnar.model_count() == compiled.model_count()
        assert columnar.width == compiled.width


# -- engine and evaluation routes ----------------------------------------------


def test_method_names_cover_columnar_routes():
    for name in ("columnar", "columnar_float", "automaton_columnar"):
        assert name in METHOD_NAMES


def test_probability_columnar_routes_agree(cases):
    for case in cases[:6]:
        exact = probability(case.query, case.tid, method="obdd")
        assert probability(case.query, case.tid, method="columnar") == exact
        fast = probability(case.query, case.tid, method="columnar_float")
        assert abs(fast - float(exact)) < 1e-9
        assert probability(case.query, case.tid, method="automaton_columnar") == exact


def test_engine_columnar_cache_hits(cases):
    engine = CompilationEngine()
    case = cases[0]
    first = engine.columnar(case.query, case.tid.instance)
    again = engine.columnar(case.query, case.tid.instance)
    assert again is first
    assert engine.stats["columnar"].hits == 1
    assert engine.stats["columnar"].misses == 1
    value = engine.probability(case.query, case.tid, method="columnar")
    assert value == engine.probability(case.query, case.tid, method="obdd")


def test_columnar_automaton_product_exact_and_float(cases):
    for case in cases[:4]:
        exact = probability(case.query, case.tid, method="automaton")
        columnar = ucq_probability_via_columnar_automaton(case.query, case.tid)
        assert columnar == exact
        fast = ucq_probability_via_columnar_automaton(case.query, case.tid, exact=False)
        assert abs(fast - float(exact)) < 1e-9


def test_columnar_vectorized_sweep_on_larger_instance():
    tid = ProbabilisticInstance.uniform(
        labelled_partial_ktree_instance(24, 2, seed=3), Fraction(1, 3)
    )
    engine = CompilationEngine()
    for query in (unsafe_rst(), hierarchical_example()):
        columnar = engine.columnar(query, tid.instance)
        compiled = engine.compile(query, tid.instance)
        exact = compiled.probability(tid.valuation())
        assert columnar.probability(tid.valuation()) == exact
        assert abs(columnar.probability(tid.valuation(), exact=False) - float(exact)) < 1e-9
