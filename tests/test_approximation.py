"""Tests for approximate probability evaluation (repro.probability.approximation)."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.instance import Instance, fact
from repro.data.signature import Signature
from repro.data.tid import ProbabilisticInstance
from repro.errors import ProbabilityError
from repro.generators.lines import rst_chain_instance
from repro.generators.random_instances import random_rst_instance
from repro.probability.approximation import (
    ApproximationResult,
    DissociationBounds,
    approximate_probability,
    dissociation_bounds,
    estimate_property_probability,
    hoeffding_sample_size,
    karp_luby_probability,
    monte_carlo_probability,
)
from repro.probability.brute_force import brute_force_probability
from repro.provenance.lineage import lineage_of
from repro.queries.library import unsafe_rst
from repro.queries.matching import satisfies
from repro.queries.parser import parse_cq


def _rst_tid(n: int, p: Fraction = Fraction(1, 2)) -> ProbabilisticInstance:
    return ProbabilisticInstance.uniform(rst_chain_instance(n), p)


# -- result containers ----------------------------------------------------------------


def test_approximation_result_error_measures():
    result = ApproximationResult(0.5, 100, "monte_carlo")
    assert result.absolute_error(Fraction(1, 2)) == pytest.approx(0.0)
    assert result.relative_error(Fraction(1, 4)) == pytest.approx(1.0)
    assert result.relative_error(0) == float("inf")
    zero = ApproximationResult(0.0, 10, "monte_carlo")
    assert zero.relative_error(0) == 0.0


def test_dissociation_bounds_container():
    bounds = DissociationBounds(Fraction(1, 4), Fraction(1, 2))
    assert bounds.contains(Fraction(1, 3))
    assert not bounds.contains(Fraction(3, 4))
    assert bounds.gap == Fraction(1, 4)


def test_dissociation_bounds_exact_membership_for_fractions():
    """Regression: exact values are compared exactly, never through float.

    1/3 + 1/10**30 rounds to the same float as 1/3, so a float round-trip
    would wrongly accept a value strictly above the upper bound."""
    upper = Fraction(1, 3)
    bounds = DissociationBounds(Fraction(0), upper)
    assert bounds.contains(upper)
    assert not bounds.contains(upper + Fraction(1, 10**30))
    assert float(upper + Fraction(1, 10**30)) == float(upper)
    # Float estimates keep their representation slack.
    assert bounds.contains(float(upper))


def test_karp_luby_underflowing_weights_degrade_gracefully():
    """Exact clause weights below float's smallest positive value must not
    crash the sampler (regression: choices() rejects all-zero weights)."""
    instance = rst_chain_instance(1)
    tiny = ProbabilisticInstance.uniform(instance, Fraction(1, 10**400))
    result = karp_luby_probability(unsafe_rst(), tiny, samples=20, seed=0)
    assert result.estimate == 0.0
    assert result.union_bound == Fraction(1, 10**400) ** 3


def test_karp_luby_union_bound_scaling_is_exact():
    """Regression: the union-bound scale factor stays an exact Fraction.

    With every clause weight 1/3 the union bound is not float-representable;
    the estimate must be (exact union bound) * counted/samples, not a float
    accumulation of rounded weights."""
    instance = rst_chain_instance(1)
    tid = ProbabilisticInstance.uniform(instance, Fraction(1, 3))
    result = karp_luby_probability(unsafe_rst(), tid, samples=50, seed=0)
    union_bound = Fraction(1, 3) ** 3  # one clause: R(a), S(a, b), T(b)
    assert any(
        result.estimate == float(union_bound * Fraction(counted, 50))
        for counted in range(51)
    )


def test_hoeffding_sample_size_monotone_in_parameters():
    loose = hoeffding_sample_size(0.2, 0.2)
    tight = hoeffding_sample_size(0.05, 0.05)
    assert tight > loose
    with pytest.raises(ProbabilityError):
        hoeffding_sample_size(0.0, 0.1)
    with pytest.raises(ProbabilityError):
        hoeffding_sample_size(0.1, 1.5)


# -- Monte-Carlo -----------------------------------------------------------------------


def test_monte_carlo_close_to_exact_on_rst_chain():
    tid = _rst_tid(3)
    query = unsafe_rst()
    exact = brute_force_probability(query, tid)
    estimate = monte_carlo_probability(query, tid, samples=4000, seed=7)
    assert estimate.method == "monte_carlo"
    assert estimate.samples == 4000
    assert estimate.absolute_error(exact) < 0.05


def test_monte_carlo_accepts_precomputed_lineage():
    tid = _rst_tid(2)
    lineage = lineage_of(unsafe_rst(), tid.instance)
    estimate = monte_carlo_probability(lineage, tid, samples=2000, seed=3)
    exact = brute_force_probability(unsafe_rst(), tid)
    assert estimate.absolute_error(exact) < 0.06


def test_monte_carlo_rejects_bad_inputs():
    tid = _rst_tid(2)
    with pytest.raises(ProbabilityError):
        monte_carlo_probability(unsafe_rst(), tid, samples=0)
    with pytest.raises(ProbabilityError):
        monte_carlo_probability("not a query", tid)


def test_monte_carlo_deterministic_under_seed():
    tid = _rst_tid(3)
    first = monte_carlo_probability(unsafe_rst(), tid, samples=500, seed=11)
    second = monte_carlo_probability(unsafe_rst(), tid, samples=500, seed=11)
    assert first.estimate == second.estimate


def test_monte_carlo_certain_and_impossible_queries():
    instance = rst_chain_instance(2)
    certain = ProbabilisticInstance.uniform(instance, Fraction(1))
    impossible = ProbabilisticInstance.uniform(instance, Fraction(0))
    assert monte_carlo_probability(unsafe_rst(), certain, samples=50).estimate == 1.0
    assert monte_carlo_probability(unsafe_rst(), impossible, samples=50).estimate == 0.0


# -- Karp-Luby --------------------------------------------------------------------------


def test_karp_luby_close_to_exact_on_rst_chain():
    tid = _rst_tid(3)
    query = unsafe_rst()
    exact = brute_force_probability(query, tid)
    estimate = karp_luby_probability(query, tid, samples=4000, seed=13)
    assert estimate.method == "karp_luby"
    assert estimate.relative_error(exact) < 0.1


def test_karp_luby_handles_tiny_probabilities_better_than_monte_carlo():
    tid = _rst_tid(2, Fraction(1, 50))
    query = unsafe_rst()
    exact = brute_force_probability(query, tid)
    karp = karp_luby_probability(query, tid, samples=3000, seed=1)
    assert exact > 0
    assert karp.relative_error(exact) < 0.25


def test_karp_luby_empty_and_certain_lineages():
    instance = Instance([fact("R", "a")], Signature([("R", 1), ("S", 2), ("T", 1)]))
    tid = ProbabilisticInstance.uniform(instance, Fraction(1, 2))
    # The RST query has no match at all on this instance: probability 0.
    result = karp_luby_probability(unsafe_rst(), tid, samples=100)
    assert result.estimate == 0.0
    # All probabilities zero: the union bound collapses to 0.
    zero_tid = ProbabilisticInstance.uniform(rst_chain_instance(2), Fraction(0))
    assert karp_luby_probability(unsafe_rst(), zero_tid, samples=100).estimate == 0.0


def test_karp_luby_rejects_bad_sample_count():
    with pytest.raises(ProbabilityError):
        karp_luby_probability(unsafe_rst(), _rst_tid(2), samples=-5)


def test_karp_luby_single_clause_is_nearly_exact():
    tid = _rst_tid(1, Fraction(1, 3))
    query = unsafe_rst()
    exact = brute_force_probability(query, tid)
    estimate = karp_luby_probability(query, tid, samples=2000, seed=5)
    assert estimate.relative_error(exact) < 0.1


# -- dissociation bounds -------------------------------------------------------------------


def test_dissociation_bounds_bracket_exact_probability():
    tid = _rst_tid(3)
    query = unsafe_rst()
    exact = brute_force_probability(query, tid)
    bounds = dissociation_bounds(query, tid)
    assert bounds.lower <= exact <= bounds.upper


def test_dissociation_bounds_exact_for_disjoint_clauses():
    # On the RST chain the minimal matches are pairwise disjoint, so the
    # independent-or upper bound is exact.
    tid = _rst_tid(4, Fraction(1, 3))
    exact = brute_force_probability(unsafe_rst(), tid)
    bounds = dissociation_bounds(unsafe_rst(), tid)
    assert bounds.upper == exact
    assert bounds.lower == Fraction(1, 3) ** 3


def test_dissociation_bounds_on_shared_fact_lineage():
    # R(a), S(a,b1), S(a,b2), T(b1), T(b2): the two matches share the R fact,
    # so the independent-or bound is strictly above the exact probability.
    instance = Instance(
        [
            fact("R", "a"),
            fact("S", "a", "b1"),
            fact("S", "a", "b2"),
            fact("T", "b1"),
            fact("T", "b2"),
        ],
        Signature([("R", 1), ("S", 2), ("T", 1)]),
    )
    tid = ProbabilisticInstance.uniform(instance, Fraction(1, 2))
    exact = brute_force_probability(unsafe_rst(), tid)
    bounds = dissociation_bounds(unsafe_rst(), tid)
    assert bounds.lower <= exact <= bounds.upper
    assert bounds.upper > exact


def test_dissociation_bounds_empty_lineage():
    instance = Instance([fact("R", "a")], Signature([("R", 1), ("S", 2), ("T", 1)]))
    tid = ProbabilisticInstance.uniform(instance, Fraction(1, 2))
    bounds = dissociation_bounds(unsafe_rst(), tid)
    assert bounds.lower == 0 and bounds.upper == 0


# -- wrappers -----------------------------------------------------------------------------


def test_approximate_probability_dispatch_and_errors():
    tid = _rst_tid(2)
    karp = approximate_probability(unsafe_rst(), tid, epsilon=0.2, delta=0.2, method="karp_luby")
    naive = approximate_probability(unsafe_rst(), tid, epsilon=0.2, delta=0.2, method="monte_carlo")
    assert karp.samples == naive.samples == hoeffding_sample_size(0.2, 0.2)
    with pytest.raises(ProbabilityError):
        approximate_probability(unsafe_rst(), tid, method="magic")


def test_estimate_property_probability_non_monotone_property():
    instance = rst_chain_instance(2)
    tid = ProbabilisticInstance.uniform(instance, Fraction(1, 2))
    # "The world has an even number of facts" is not monotone.
    result = estimate_property_probability(
        lambda world: len(world) % 2 == 0, tid, samples=3000, seed=2
    )
    exact = Fraction(1, 2)  # parity of a binomial(6, 1/2) count is uniform
    assert abs(result.estimate - float(exact)) < 0.05
    with pytest.raises(ProbabilityError):
        estimate_property_probability(lambda world: True, tid, samples=0)


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    numerator=st.integers(min_value=1, max_value=3),
)
def test_karp_luby_and_bounds_are_consistent_on_random_instances(seed, numerator):
    """Estimates stay within (slightly widened) dissociation bounds on random inputs."""
    instance = random_rst_instance(4, 8, seed=seed)
    tid = ProbabilisticInstance.uniform(instance, Fraction(numerator, 4))
    query = unsafe_rst()
    if not satisfies(instance, query):
        return
    bounds = dissociation_bounds(query, tid)
    estimate = karp_luby_probability(query, tid, samples=1200, seed=seed)
    assert float(bounds.lower) - 0.1 <= estimate.estimate <= float(bounds.upper) + 0.1
