"""Tests for Boolean formulas and the Section 7 constructions."""

import pytest

from repro.booleans.circuit import BooleanCircuit
from repro.booleans.formula import (
    Formula,
    circuit_to_formula,
    minimal_formula_size,
    parity_circuit,
    parity_formula,
    threshold_2_circuit,
    threshold_2_formula,
)
from repro.errors import LineageError


def variables(n):
    return [f"x{i}" for i in range(n)]


def all_valuations(names):
    for mask in range(1 << len(names)):
        yield {name: bool(mask >> i & 1) for i, name in enumerate(names)}


def test_formula_evaluation_and_sizes():
    formula = Formula.disjunction(
        [Formula.conjunction([Formula.var("a"), Formula.var("b")]), Formula.negation(Formula.var("c"))]
    )
    assert formula.evaluate({"a": True, "b": True, "c": True})
    assert formula.evaluate({"a": False, "b": False, "c": False})
    assert not formula.evaluate({"a": False, "b": True, "c": True})
    assert formula.leaf_size == 3
    assert formula.variables() == {"a", "b", "c"}
    assert not formula.is_monotone()


def test_formula_to_circuit_round_trip():
    formula = threshold_2_formula(variables(5))
    circuit = formula.to_circuit()
    for valuation in all_valuations(variables(5)):
        assert formula.evaluate(valuation) == circuit.evaluate(valuation)


def test_threshold_formula_correct():
    names = variables(6)
    formula = threshold_2_formula(names)
    assert formula.is_monotone()
    for valuation in all_valuations(names):
        expected = sum(valuation.values()) >= 2
        assert formula.evaluate(valuation) == expected


def test_threshold_circuit_correct_and_linear():
    names = variables(7)
    circuit = threshold_2_circuit(names)
    for valuation in all_valuations(names):
        assert circuit.evaluate(valuation) == (sum(valuation.values()) >= 2)
    sizes = [threshold_2_circuit(variables(n)).size for n in (10, 20, 40)]
    # Linear growth: doubling n roughly doubles the size.
    assert sizes[2] / sizes[1] == pytest.approx(2.0, rel=0.2)
    assert sizes[1] / sizes[0] == pytest.approx(2.0, rel=0.25)


def test_parity_formula_correct_and_quadratic_shape():
    names = variables(5)
    formula = parity_formula(names)
    for valuation in all_valuations(names):
        assert formula.evaluate(valuation) == (sum(valuation.values()) % 2 == 1)
    small = parity_formula(variables(8)).leaf_size
    large = parity_formula(variables(16)).leaf_size
    # Quadratic: doubling n should roughly quadruple the leaf size.
    assert 3.0 <= large / small <= 5.0


def test_parity_circuit_correct_and_linear():
    names = variables(6)
    circuit = parity_circuit(names)
    for valuation in all_valuations(names):
        assert circuit.evaluate(valuation) == (sum(valuation.values()) % 2 == 1)
    small = parity_circuit(variables(10)).size
    large = parity_circuit(variables(20)).size
    assert large <= 2.5 * small


def test_threshold_formula_superlinear_versus_circuit():
    # The conciseness gap of Section 7: formulas grow faster than circuits.
    formula_sizes = [threshold_2_formula(variables(n)).leaf_size for n in (16, 64)]
    circuit_sizes = [threshold_2_circuit(variables(n)).size for n in (16, 64)]
    assert formula_sizes[1] / formula_sizes[0] > circuit_sizes[1] / circuit_sizes[0]


def test_circuit_to_formula_expansion():
    circuit = parity_circuit(variables(4))
    formula = circuit_to_formula(circuit)
    for valuation in all_valuations(variables(4)):
        assert formula.evaluate(valuation) == circuit.evaluate(valuation)


def test_circuit_to_formula_budget():
    circuit = parity_circuit(variables(18))
    with pytest.raises(LineageError):
        circuit_to_formula(circuit, max_size=50)


def test_minimal_formula_size_tiny_functions():
    # AND of two variables needs 2 leaves; XOR of two needs 4 (over the binary basis).
    assert minimal_formula_size(["a", "b"], lambda v: v["a"] and v["b"]) == 2
    assert minimal_formula_size(["a", "b"], lambda v: v["a"] != v["b"]) == 4
    assert (
        minimal_formula_size(["a", "b", "c"], lambda v: sum(v.values()) >= 2, monotone=True) >= 4
    )


def test_minimal_formula_size_constant():
    assert minimal_formula_size(["a"], lambda v: True) == 0


def test_minimal_formula_size_budget_exceeded():
    with pytest.raises(LineageError):
        minimal_formula_size(
            ["a", "b", "c", "d"], lambda v: sum(v.values()) % 2 == 1, max_leaves=5
        )


def test_formula_str():
    formula = Formula.conjunction([Formula.var("x"), Formula.negation(Formula.var("y"))])
    assert "x" in str(formula) and "~" in str(formula)
