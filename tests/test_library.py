"""Tests for the paper's named queries."""

import pytest

from repro.data.instance import Instance, fact
from repro.data.signature import Signature
from repro.errors import QueryError
from repro.queries import (
    hierarchical_example,
    inversion_free_example,
    parse_cq,
    path_query,
    qd,
    qp,
    satisfies,
    threshold_two_query,
    two_incident_same_direction,
    unsafe_rst,
)


def test_unsafe_rst_shape():
    query = unsafe_rst()
    assert query.size == 3
    assert not query.is_self_join_free() or query.is_self_join_free()
    assert query.relations() == ("R", "S", "T")


def test_threshold_two_query_semantics():
    query = threshold_two_query()
    assert not satisfies(Instance([fact("R", "a")]), query)
    assert satisfies(Instance([fact("R", "a"), fact("R", "b")]), query)


def test_qp_detects_incident_pairs():
    query = qp()
    two_incident = Instance([fact("E", "a", "b"), fact("E", "b", "c")])
    assert satisfies(two_incident, query)
    shared_source = Instance([fact("E", "a", "b"), fact("E", "a", "c")])
    assert satisfies(shared_source, query)
    shared_target = Instance([fact("E", "b", "a"), fact("E", "c", "a")])
    assert satisfies(shared_target, query)
    matching = Instance([fact("E", "a", "b"), fact("E", "c", "d")])
    assert not satisfies(matching, query)
    single = Instance([fact("E", "a", "b")])
    assert not satisfies(single, query)


def test_qp_on_multi_relation_signature():
    signature = Signature([("E", 2), ("F", 2)])
    query = qp(signature)
    mixed = Instance([fact("E", "a", "b"), fact("F", "b", "c")], signature)
    assert satisfies(mixed, query)
    disjoint = Instance([fact("E", "a", "b"), fact("F", "c", "d")], signature)
    assert not satisfies(disjoint, query)


def test_qp_requires_binary_relation():
    with pytest.raises(QueryError):
        qp(Signature([("R", 1)]))


def test_qp_ignores_single_self_loop():
    # A single fact E(a, a) is one fact, not two incident facts.
    assert not satisfies(Instance([fact("E", "a", "a")]), qp())
    # But a self-loop plus another incident fact is a violation.
    assert satisfies(Instance([fact("E", "a", "a"), fact("E", "a", "b")]), qp())


def test_qd_semantics():
    query = qd()
    disjoint = Instance([fact("E", "a", "b"), fact("E", "c", "d")])
    assert satisfies(disjoint, query)
    incident = Instance([fact("E", "a", "b"), fact("E", "b", "c")])
    assert not satisfies(incident, query)
    assert not query.is_connected()


def test_path_query():
    query = path_query(3)
    assert len(query.atoms) == 3
    instance = Instance([fact("E", "a", "b"), fact("E", "b", "c"), fact("E", "c", "d")])
    assert satisfies(instance, query)
    with pytest.raises(QueryError):
        path_query(0)


def test_two_incident_same_direction():
    query = two_incident_same_direction()
    assert satisfies(Instance([fact("E", "a", "b"), fact("E", "b", "c")]), query)
    assert not satisfies(Instance([fact("E", "a", "b"), fact("E", "c", "b")]), query)


def test_named_safe_queries_are_hierarchical():
    from repro.queries.properties import is_hierarchical

    assert is_hierarchical(hierarchical_example())
    assert is_hierarchical(inversion_free_example())
