"""Tests for binary and nice tree decompositions."""

from repro.structure.graph import cycle_graph, grid_graph, path_graph
from repro.structure.nice import NiceNodeKind, binarize, make_nice
from repro.structure.tree_decomposition import tree_decomposition


def test_binarize_preserves_width_and_validity():
    graph = grid_graph(3, 3)
    decomposition = tree_decomposition(graph)
    binary = binarize(decomposition)
    binary.validate(graph)
    assert binary.width == decomposition.width
    assert all(len(kids) <= 2 for kids in binary.children.values())


def test_binarize_on_star_shaped_decomposition():
    # A star graph's min-degree decomposition has a bag with many children.
    from repro.structure.graph import Graph

    star = Graph([(0, i) for i in range(1, 8)])
    decomposition = tree_decomposition(star)
    binary = binarize(decomposition)
    binary.validate(star)
    assert all(len(kids) <= 2 for kids in binary.children.values())


def test_make_nice_structure_and_width():
    for graph in (path_graph(5), cycle_graph(6), grid_graph(3, 3)):
        decomposition = tree_decomposition(graph)
        nice = make_nice(decomposition)
        nice.validate()
        assert nice.width == decomposition.width
        root = nice.nodes[nice.root]
        assert root.bag == frozenset()


def test_make_nice_node_kinds():
    graph = cycle_graph(5)
    nice = make_nice(tree_decomposition(graph))
    kinds = {node.kind for node in nice.nodes.values()}
    assert NiceNodeKind.LEAF in kinds
    assert NiceNodeKind.INTRODUCE in kinds
    assert NiceNodeKind.FORGET in kinds


def test_make_nice_post_order_is_consistent():
    graph = grid_graph(2, 3)
    nice = make_nice(tree_decomposition(graph))
    order = nice.post_order()
    seen = set()
    for identifier in order:
        for child in nice.nodes[identifier].children:
            assert child in seen
        seen.add(identifier)
    assert order[-1] == nice.root
