"""Cross-checks of the subset-DP treewidth oracle against the exact solver.

The DP oracle (:func:`repro.structure.elimination.treewidth_dp_oracle`) shares
no elimination machinery with the branch-and-bound search of
:func:`exists_ordering_of_width`, so agreement between the two is strong
evidence both are correct — this is the oracle that pinned down the k-tree
generator bug (width-(k+1) graphs from a generator documenting width k).
"""

import random

import pytest

from repro.structure.elimination import exists_ordering_of_width, treewidth_dp_oracle
from repro.structure.graph import (
    Graph,
    complete_graph,
    cycle_graph,
    grid_graph,
    path_graph,
)
from repro.structure.tree_decomposition import treewidth


def random_graph(n: int, edge_probability: float, seed: int) -> Graph:
    generator = random.Random(seed)
    graph = Graph()
    for i in range(n):
        graph.add_vertex(i)
    for i in range(n):
        for j in range(i + 1, n):
            if generator.random() < edge_probability:
                graph.add_edge(i, j)
    return graph


def test_dp_oracle_on_known_families():
    assert treewidth_dp_oracle(Graph()) == -1
    assert treewidth_dp_oracle(path_graph(1)) == 0
    assert treewidth_dp_oracle(path_graph(6)) == 1
    assert treewidth_dp_oracle(cycle_graph(6)) == 2
    assert treewidth_dp_oracle(complete_graph(5)) == 4
    assert treewidth_dp_oracle(grid_graph(3, 3)) == 3


def test_dp_oracle_agrees_with_exists_ordering_on_small_random_graphs():
    for seed in range(25):
        generator = random.Random(1000 + seed)
        n = generator.randint(1, 8)
        graph = random_graph(n, generator.uniform(0.15, 0.6), seed)
        width = treewidth_dp_oracle(graph)
        assert exists_ordering_of_width(graph, width), (seed, width)
        assert width == 0 or not exists_ordering_of_width(graph, width - 1), (seed, width)
        assert width == treewidth(graph, exact=True), (seed, width)


@pytest.mark.slow
def test_dp_oracle_agrees_with_exact_solver_on_larger_graphs():
    for seed in range(10):
        generator = random.Random(2000 + seed)
        n = generator.randint(9, 12)
        graph = random_graph(n, generator.uniform(0.2, 0.5), seed)
        assert treewidth_dp_oracle(graph) == treewidth(graph, exact=True), seed
