"""Tests for the shared-memory segment lifecycle (repro.engine.shm).

The contract under test: every segment a :class:`SegmentPlane` creates (or
adopts from a worker) is provably reclaimed — ``close()`` and context exit
unlink the owned segments, the prefix sweep reclaims segments orphaned by a
crashed worker, garbage collection of an unclosed plane reclaims them too,
and the ``workers=1`` inline regime never creates a segment in the first
place.
"""

import gc
import os
from fractions import Fraction

import pytest

from repro.data.tid import ProbabilisticInstance
from repro.engine import CompilationEngine, ParallelEngine
from repro.engine import shm as shm_module
from repro.engine.shm import (
    SegmentHandle,
    SegmentPlane,
    attach_segment,
    live_segments,
    publish_segment,
)
from repro.generators import labelled_partial_ktree_instance
from repro.queries import hierarchical_example, unsafe_rst


@pytest.fixture(scope="module")
def columnar_artifact():
    tid = ProbabilisticInstance.uniform(
        labelled_partial_ktree_instance(8, 2, seed=11), Fraction(1, 2)
    )
    engine = CompilationEngine()
    return engine.columnar(unsafe_rst(), tid.instance), tid


# -- publish / attach -----------------------------------------------------------


def test_publish_attach_round_trip(columnar_artifact):
    columnar, tid = columnar_artifact
    with SegmentPlane() as plane:
        handle = plane.publish(columnar)
        assert handle.name is not None
        assert handle.node_count == len(columnar)
        assert handle.nbytes == columnar.nbytes
        attached = attach_segment(handle)
        assert list(attached.var) == list(columnar.var)
        assert list(attached.lo) == list(columnar.lo)
        assert list(attached.hi) == list(columnar.hi)
        assert attached.probability(tid.valuation()) == columnar.probability(tid.valuation())
        del attached


def test_terminal_only_artifact_needs_no_segment():
    from repro.booleans import TRUE_NODE
    from repro.booleans.columnar import ColumnarOBDD

    trivial = ColumnarOBDD(("x",), [], [], [], TRUE_NODE)
    with SegmentPlane() as plane:
        handle = plane.publish(trivial)
        assert handle.name is None
        assert plane.owned_segments() == ()
        assert live_segments(plane.prefix) == []
        attached = attach_segment(handle)
        assert len(attached) == 0
        assert attached.probability({"x": Fraction(1, 2)}) == 1


def test_handles_are_picklable(columnar_artifact):
    import pickle

    columnar, _ = columnar_artifact
    with SegmentPlane() as plane:
        handle = plane.publish(columnar)
        clone = pickle.loads(pickle.dumps(handle))
        assert clone == handle
        assert isinstance(clone, SegmentHandle)


# -- reclamation ----------------------------------------------------------------


def test_close_unlinks_owned_segments(columnar_artifact):
    columnar, _ = columnar_artifact
    plane = SegmentPlane()
    handle = plane.publish(columnar)
    assert live_segments(plane.prefix) == [handle.name]
    plane.close()
    assert live_segments(plane.prefix) == []
    assert plane.owned_segments() == ()


def test_context_exit_unlinks_segments(columnar_artifact):
    columnar, _ = columnar_artifact
    with SegmentPlane() as plane:
        plane.publish(columnar)
        plane.publish(columnar)
        assert len(live_segments(plane.prefix)) == 2
    assert live_segments(plane.prefix) == []


def test_adopted_worker_segments_are_unlinked_on_close(columnar_artifact):
    columnar, tid = columnar_artifact
    plane = SegmentPlane()
    # A worker publishes under a plane-derived name and hands the handle back.
    name = plane.worker_name(os.getpid(), 1)
    handle = publish_segment(columnar, name)
    adopted = plane.adopt(handle)
    assert adopted.probability(tid.valuation()) == columnar.probability(tid.valuation())
    assert live_segments(plane.prefix) == [name]
    del adopted
    plane.close()
    assert live_segments(plane.prefix) == []


def test_crash_orphans_are_swept_on_close(columnar_artifact):
    columnar, _ = columnar_artifact
    plane = SegmentPlane()
    # Simulate a worker that published under the plane's prefix and died
    # before handing the handle back: nobody adopted it.
    orphan_name = plane.worker_name(99999, 7)
    publish_segment(columnar, orphan_name)
    assert live_segments(plane.prefix) == [orphan_name]
    plane.close()
    assert live_segments(plane.prefix) == []


def test_session_id_scopes_the_orphan_sweep(columnar_artifact):
    """Two planes sharing a base prefix never reclaim each other's segments."""
    columnar, _ = columnar_artifact
    base = f"repro-scope-{os.getpid()}"
    first = SegmentPlane(prefix=base)
    second = SegmentPlane(prefix=base)
    assert first.base_prefix == second.base_prefix == base
    assert first.session_id != second.session_id
    assert first.prefix != second.prefix
    try:
        live_handle = second.publish(columnar)
        # Closing the first plane sweeps orphans under *its* session-scoped
        # prefix only; the second plane's live segment must survive.
        first.close()
        assert live_segments(second.prefix) == [live_handle.name]
        attached = attach_segment(live_handle)
        assert list(attached.var) == list(columnar.var)
        del attached
    finally:
        second.close()
    assert live_segments(base) == []


def test_garbage_collected_plane_reclaims_segments(columnar_artifact):
    columnar, _ = columnar_artifact
    plane = SegmentPlane()
    prefix = plane.prefix
    plane.publish(columnar)
    assert len(live_segments(prefix)) == 1
    del plane
    gc.collect()
    assert live_segments(prefix) == []


def test_close_is_idempotent(columnar_artifact):
    columnar, _ = columnar_artifact
    plane = SegmentPlane()
    plane.publish(columnar)
    plane.close()
    plane.close()
    assert live_segments(plane.prefix) == []


# -- the parallel engine's use of the plane -------------------------------------


@pytest.fixture(scope="module")
def workload():
    tids = [
        ProbabilisticInstance.uniform(
            labelled_partial_ktree_instance(8, 2, seed=seed), Fraction(1, 2)
        )
        for seed in range(2)
    ]
    return [unsafe_rst(), hierarchical_example()], tids


def test_pool_compile_segments_reclaimed_after_close(workload):
    queries, tids = workload
    engine = ParallelEngine(workers=2)
    artifacts = engine.compile_many(queries, tids[0].instance)
    prefix = engine.segment_plane().prefix
    assert len(live_segments(prefix)) > 0
    assert set(engine.segment_plane().owned_segments()) == set(live_segments(prefix))
    del artifacts
    engine.close()
    assert live_segments(prefix) == []


def test_pool_reweight_segments_reclaimed_after_context_exit(workload):
    queries, tids = workload
    compiled = CompilationEngine().compile(queries[0], tids[0].instance)
    maps = [
        {fact: Fraction(i + 1, i + 5) for fact in compiled.order} for i in range(8)
    ]
    with ParallelEngine(workers=2) as engine:
        values = engine.reweight_many(compiled, maps)
        prefix = engine.segment_plane().prefix
        assert len(live_segments(prefix)) == 1
    assert values == [compiled.probability(m) for m in maps]
    assert live_segments(prefix) == []


def test_inline_regime_never_creates_segments(workload, monkeypatch):
    queries, tids = workload

    def forbidden(*args, **kwargs):  # pragma: no cover - only on regression
        raise AssertionError("workers=1 must never touch shared memory")

    monkeypatch.setattr(shm_module.shared_memory, "SharedMemory", forbidden)
    engine = ParallelEngine(workers=1)
    artifacts = engine.compile_many(queries, tids[0].instance)
    assert all(type(artifact).__name__ == "CompiledOBDD" for artifact in artifacts)
    maps = [{fact: Fraction(1, 3) for fact in artifacts[0].order}]
    assert engine.reweight_many(artifacts[0], maps) == [
        artifacts[0].probability(maps[0])
    ]
    assert engine._plane is None
    engine.close()


def test_fallback_backend_attach_copies_and_closes(columnar_artifact, monkeypatch):
    monkeypatch.setenv("REPRO_NO_NUMPY", "1")
    columnar, tid = columnar_artifact
    detached = columnar.copy()
    with SegmentPlane() as plane:
        handle = plane.publish(detached)
        attached = attach_segment(handle)
        # No numpy: the columns were copied out, nothing retains the mapping.
        assert attached._retain is None
        assert attached.probability(tid.valuation()) == detached.probability(tid.valuation())
    assert live_segments(plane.prefix) == []
