"""Tests for the compiled lifted-inference tier and the dichotomy router.

Covers UCQ minimization (cores, redundant disjuncts, Möbius cancellation),
plan construction and the is_liftable iff-contract, the iterative executor
against brute force and the recursive reference, and the engine's routing:
``method="auto"`` picking the lifted plan on safe queries (including past
the circuit fact limit) and a circuit route on unsafe ones.
"""

from fractions import Fraction

import pytest

from repro.data.instance import Fact, Instance, fact
from repro.data.tid import ProbabilisticInstance
from repro.engine import CompilationEngine, ParallelEngine, RouteCostModel
from repro.errors import UnsafeQueryError
from repro.probability.brute_force import brute_force_probability
from repro.probability.evaluation import probability
from repro.probability.lifted import (
    GroundNode,
    InclusionExclusionNode,
    JoinNode,
    ProjectNode,
    are_equivalent,
    core,
    homomorphism_exists,
    implies,
    inclusion_exclusion_terms,
    is_liftable,
    lifted_plan,
    lifted_probability,
    minimize_disjuncts,
    try_lifted_plan,
)
from repro.probability.safe_plans import safe_plan_probability
from repro.queries import hierarchical_example, parse_cq, parse_ucq, unsafe_rst
from repro.testing import ProbabilityOracle, random_safe_workload, random_workload


# -- minimization -------------------------------------------------------------


def test_homomorphism_exists_basic():
    # R(x),S(x,y) maps into R(a),S(a,b) shapes and vice versa.
    assert homomorphism_exists(parse_cq("R(x)"), parse_cq("R(x), R(y)"))
    assert homomorphism_exists(parse_cq("R(x), R(y)"), parse_cq("R(x)"))
    # S(x,y) maps into S(x,x) (merge both variables onto x)...
    assert homomorphism_exists(parse_cq("S(x, y)"), parse_cq("S(x, x)"))
    # ...but S(x,x) has no image inside S(x,y) (no repeated-argument atom).
    assert not homomorphism_exists(parse_cq("S(x, x)"), parse_cq("S(x, y)"))
    assert not homomorphism_exists(parse_cq("R(x)"), parse_cq("T(x)"))


def test_implies_and_equivalence():
    assert implies(parse_cq("R(x), S(x, y)"), parse_cq("R(x)"))
    assert not implies(parse_cq("R(x)"), parse_cq("R(x), S(x, y)"))
    assert are_equivalent(parse_cq("R(x), R(y)"), parse_cq("R(x)"))
    assert not are_equivalent(parse_cq("R(x)"), parse_cq("S(x, y)"))


def test_core_drops_redundant_atoms():
    cored = core(parse_cq("R(x), R(y)"))
    assert len(cored.atoms) == 1
    assert cored.atoms[0].relation == "R"
    # S(x,y), S(y,z) has no proper core (the two atoms are not collapsible).
    assert len(core(parse_cq("S(x, y), S(y, z)")).atoms) == 2
    # S(x,y), S(x,z) collapses: map z to y.
    assert len(core(parse_cq("S(x, y), S(x, z)")).atoms) == 1


def test_minimize_disjuncts_drops_implied():
    disjuncts = minimize_disjuncts(parse_ucq("R(x) | R(y)"))
    assert len(disjuncts) == 1
    # The stronger disjunct R(x),S(x,y) implies R(x): only R(x) survives.
    disjuncts = minimize_disjuncts(parse_ucq("R(x), S(x, y) | R(x)"))
    assert len(disjuncts) == 1
    assert disjuncts[0].atoms == parse_cq("R(x)").atoms


def test_inclusion_exclusion_cancellation():
    # R(x) | T(y): three terms (R, T, R∧T with coefficient -1).
    terms = inclusion_exclusion_terms(minimize_disjuncts(parse_ucq("R(x) | T(y)")))
    coefficients = sorted(coefficient for coefficient, _ in terms)
    assert coefficients == [-1, 1, 1]
    # R(x) | R(y) minimizes to one disjunct: a single +1 term.
    terms = inclusion_exclusion_terms(minimize_disjuncts(parse_ucq("R(x) | R(y)")))
    assert len(terms) == 1
    assert terms[0][0] == 1


# -- plans --------------------------------------------------------------------


def test_plan_shape_hierarchical():
    plan = lifted_plan(hierarchical_example())
    assert isinstance(plan.root, InclusionExclusionNode)
    assert plan.term_count == 1
    coefficient, node = plan.root.terms[0]
    assert coefficient == 1
    assert isinstance(node, ProjectNode)  # project on x
    assert plan.node_count() >= 3


def test_plan_shape_ground_after_binding():
    plan = lifted_plan(parse_cq("R(x)"))
    (_, node), = plan.root.terms
    assert isinstance(node, ProjectNode)
    assert isinstance(node.child, GroundNode)


def test_plan_join_of_independent_components():
    plan = lifted_plan(parse_cq("R(x), T(y)"))
    (_, node), = plan.root.terms
    assert isinstance(node, JoinNode)
    assert len(node.children) == 2


def test_unsafe_queries_have_no_plan():
    assert try_lifted_plan(unsafe_rst()) is None
    with pytest.raises(UnsafeQueryError):
        lifted_plan(unsafe_rst())


# -- the is_liftable iff-contract --------------------------------------------


def test_redundant_disjunct_regression_family():
    """The PR 8 bugfix family: homomorphically-redundant UCQs are legal and
    both the verdict and both evaluators agree on them."""
    instance = Instance(
        [fact("R", "a"), fact("R", "b"), fact("S", "a", "b"), fact("S", "b", "b")]
    )
    tid = ProbabilisticInstance.uniform(instance, Fraction(1, 2))
    for text in (
        "R(x), R(y)",
        "R(x) | R(y)",
        "R(x), S(x, y) | R(u), S(u, v)",
        "R(x) | R(x), S(x, y)",
        "S(x, y), S(x, z)",
    ):
        query = parse_ucq(text) if "|" in text else parse_cq(text)
        assert is_liftable(query), text
        expected = brute_force_probability(query, tid)
        assert lifted_probability(query, tid) == expected, text
        assert safe_plan_probability(query, tid) == expected, text


def test_verdict_agrees_with_evaluation_on_random_workload():
    """is_liftable(q) is True iff both lifted evaluators succeed — the
    acceptance criterion of ISSUE 8, swept over the random workload."""
    for case in random_workload(40, seed=11):
        liftable = is_liftable(case.query)
        for evaluate in (lifted_probability, safe_plan_probability):
            if liftable:
                value = evaluate(case.query, case.tid)
                assert value == brute_force_probability(case.query, case.tid), str(case)
            else:
                with pytest.raises(UnsafeQueryError):
                    evaluate(case.query, case.tid)


def test_verdict_is_instance_independent():
    """Regression: the seed's recursive evaluator discovered unsafety only
    during recursion, so an empty candidate column could silently skip an
    unsafe subquery.  Both evaluators must raise even on instances whose
    data never reaches the unsafe branch."""
    query = parse_cq("R(x), S(x, y), T(x, z), U(x, y, z)")
    assert not is_liftable(query)
    sparse = Instance(
        [fact("R", "a"), fact("S", "a", "b")], signature=query.signature()
    )
    tid = ProbabilisticInstance.uniform(sparse, Fraction(1, 2))
    with pytest.raises(UnsafeQueryError):
        lifted_probability(query, tid)
    with pytest.raises(UnsafeQueryError):
        safe_plan_probability(query, tid)


def test_oracle_over_safe_workload():
    """Every safe-workload query runs through every exact route plus both
    lifted routes; the generator's liftability guarantee is asserted too."""
    cases = random_safe_workload(20, seed=5)
    assert all(is_liftable(case.query) for case in cases)
    oracle = ProbabilityOracle(karp_luby_samples=0)
    reports = oracle.check_many(cases)
    assert all("safe_plan" in r.exact_values for r in reports)
    assert all("safe_plan_reference" in r.exact_values for r in reports)


# -- engine routing -----------------------------------------------------------


def _small_tid():
    facts = [fact("R", "a"), fact("R", "b"), fact("S", "a", "x"), fact("S", "b", "y")]
    return ProbabilisticInstance.uniform(Instance(facts), Fraction(1, 2))


def _unsafe_tid():
    instance = Instance(
        [fact("R", "a"), fact("S", "a", "b"), fact("T", "b")],
        signature=unsafe_rst().signature(),
    )
    return ProbabilisticInstance.uniform(instance, Fraction(1, 3))


def test_auto_routes_safe_query_through_lifted_plan():
    engine = CompilationEngine()
    tid = _small_tid()
    query = hierarchical_example()
    decision = engine.choose_route(query, tid)
    assert decision.liftable
    assert decision.method == "safe_plan"
    value = engine.probability(query, tid, "auto")
    assert value == brute_force_probability(query, tid)
    assert engine.route_mix() == {"safe_plan": 1}
    # The cached entry does not re-route.
    engine.probability(query, tid, "auto")
    assert engine.route_mix() == {"safe_plan": 1}


def test_auto_routes_unsafe_query_to_circuit():
    engine = CompilationEngine()
    tid = _unsafe_tid()
    decision = engine.choose_route(unsafe_rst(), tid)
    assert not decision.liftable
    assert decision.method in ("obdd", "columnar", "dnnf", "automaton")
    value = engine.probability(unsafe_rst(), tid, "auto")
    assert value == brute_force_probability(unsafe_rst(), tid)
    assert engine.route_mix() == {decision.method: 1}


def test_circuit_routes_gated_past_fact_limit():
    engine = CompilationEngine(circuit_fact_limit=2)
    tid = _small_tid()
    decision = engine.choose_route(hierarchical_example(), tid)
    assert decision.method == "safe_plan"
    assert set(decision.infeasible) == {"obdd", "columnar", "dnnf", "automaton"}
    assert [route for route, _ in decision.estimates] == ["safe_plan"]


def test_cached_artifact_unlocks_gated_circuit_route():
    engine = CompilationEngine(circuit_fact_limit=2)
    tid = _unsafe_tid()
    # Unsafe query on a too-big instance: nothing feasible, best-effort OBDD.
    decision = engine.choose_route(unsafe_rst(), tid)
    assert decision.method == "obdd"
    assert decision.estimates == ()
    # Once the OBDD is compiled and cached, the route becomes feasible.
    engine.compile(unsafe_rst(), tid.instance)
    decision = engine.choose_route(unsafe_rst(), tid)
    assert "obdd" not in decision.infeasible
    assert any(route == "obdd" for route, _ in decision.estimates)


def test_engine_safe_plan_method_and_plan_cache():
    engine = CompilationEngine()
    tid = _small_tid()
    query = hierarchical_example()
    value = engine.probability(query, tid, "safe_plan")
    assert value == brute_force_probability(query, tid)
    assert engine.stats["lifted_plan"].misses == 1
    engine.probability(parse_cq("R(x), S(x, y)"), tid, "safe_plan")
    # Same UCQ content -> probability-cache hit, no second plan build.
    assert engine.stats["lifted_plan"].misses == 1
    with pytest.raises(UnsafeQueryError):
        engine.probability(unsafe_rst(), tid, "safe_plan")
    # The unsafe verdict is cached as None.
    assert engine.lifted_plan(unsafe_rst()) is None
    assert engine.stats["lifted_plan"].hits >= 1


def test_engine_clear_resets_router_state():
    engine = CompilationEngine()
    engine.probability(hierarchical_example(), _small_tid(), "auto")
    assert engine.route_mix()
    engine.clear()
    assert engine.route_mix() == {}
    assert engine.stats["lifted_plan"].total == 0


def test_route_cost_model_learns():
    model = RouteCostModel()
    before = model.predict("safe_plan", 1000)
    model.observe("safe_plan", 1000, 10.0)
    after = model.predict("safe_plan", 1000)
    assert after > before
    assert model.rate("never_seen") is None
    snapshot = model.snapshot()
    assert "safe_plan" in snapshot and "obdd" in snapshot


def test_parallel_report_carries_route_mix():
    with ParallelEngine(workers=1) as parallel:
        report = parallel.map_probability(
            [
                (hierarchical_example(), _small_tid()),
                (unsafe_rst(), _unsafe_tid()),
            ]
        )
        mix = report.route_mix
        assert mix.get("safe_plan") == 1
        assert sum(mix.values()) == 2


def test_one_shot_auto_prefers_lifted_plan():
    tid = _small_tid()
    value = probability(hierarchical_example(), tid, method="auto")
    assert value == brute_force_probability(hierarchical_example(), tid)
    # Unsafe queries still flow through the circuit path.
    value = probability(unsafe_rst(), _unsafe_tid(), method="auto")
    assert value == brute_force_probability(unsafe_rst(), _unsafe_tid())


def test_lifted_scales_past_circuit_limit():
    """A mid-size version of BENCH_lifted's gate inside tier-1: the router
    picks the lifted plan unaided above the circuit fact limit and the value
    matches the closed form."""
    k, m = 40, 30
    facts = [Fact("R", (f"a{i}",)) for i in range(k)]
    facts.extend(Fact("S", (f"a{i}", f"b{j}")) for i in range(k) for j in range(m))
    tid = ProbabilisticInstance.uniform(Instance(facts), Fraction(1, 2))
    engine = CompilationEngine(circuit_fact_limit=100)
    decision = engine.choose_route(hierarchical_example(), tid)
    assert decision.method == "safe_plan"
    assert set(decision.infeasible) == {"obdd", "columnar", "dnnf", "automaton"}
    p = Fraction(1, 2)
    expected = 1 - (1 - p * (1 - (1 - p) ** m)) ** k
    assert engine.probability(hierarchical_example(), tid, "auto") == expected
    assert engine.route_mix() == {"safe_plan": 1}
