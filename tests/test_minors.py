"""Tests for topological minors, subdivisions, and the grid-like constructions."""

from repro.structure.graph import Graph, cycle_graph, grid_graph, path_graph
from repro.structure.minors import (
    embed_grid_in_grid,
    find_topological_minor,
    is_subdivision_of,
    skewed_grid,
    subdivide,
    wall_graph,
)
from repro.structure.tree_decomposition import treewidth


def triangle():
    return cycle_graph(3)


def test_subdivide_preserves_vertex_names_and_grows():
    graph = triangle()
    once = subdivide(graph, 1)
    assert set(graph.vertices) <= set(once.vertices)
    assert len(once) == len(graph) + graph.edge_count()
    assert once.edge_count() == 2 * graph.edge_count()


def test_is_subdivision_of_accepts_subdivisions():
    graph = cycle_graph(4)
    assert is_subdivision_of(subdivide(graph, 1), graph)
    assert is_subdivision_of(subdivide(graph, 3), graph)
    assert is_subdivision_of(graph, graph)


def test_is_subdivision_of_rejects_other_graphs():
    assert not is_subdivision_of(path_graph(5), cycle_graph(3))


def test_find_topological_minor_triangle_in_subdivided_triangle():
    host = subdivide(triangle(), 2)
    embedding = find_topological_minor(triangle(), host)
    assert embedding is not None
    assert embedding.validate(triangle(), host)


def test_find_topological_minor_triangle_in_grid():
    host = grid_graph(3, 3)
    embedding = find_topological_minor(triangle(), host, max_path_length=4)
    assert embedding is not None
    assert embedding.validate(triangle(), host)


def test_find_topological_minor_fails_when_impossible():
    # A triangle is not a topological minor of a tree.
    assert find_topological_minor(triangle(), path_graph(6)) is None


def test_embed_grid_in_grid():
    embedding = embed_grid_in_grid(3, 5, 5)
    assert embedding is not None
    assert embedding.validate(grid_graph(3, 3), grid_graph(5, 5))
    assert embed_grid_in_grid(4, 3, 3) is None


def test_wall_graph_degree_and_treewidth_growth():
    wall = wall_graph(4, 6)
    assert wall.max_degree() <= 3
    assert treewidth(wall_graph(5, 8)) > treewidth(wall_graph(2, 8)) - 1


def test_skewed_grid_treewidth_grows():
    assert treewidth(skewed_grid(5)) >= treewidth(skewed_grid(3))
    assert treewidth(skewed_grid(4)) >= 3


def test_embedding_used_vertices():
    host = subdivide(triangle(), 1)
    embedding = find_topological_minor(triangle(), host)
    used = embedding.all_used_vertices()
    assert set(triangle().vertices) <= {v for v in used if v in set(host.vertices)}
