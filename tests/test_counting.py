"""Tests for the counting substrate: matchings, Hamiltonian cycles, match counting."""

import pytest

from repro.counting import (
    count_dominating_sets_brute_force,
    count_hamiltonian_cycles,
    count_independent_sets,
    count_independent_sets_brute_force,
    count_independent_sets_treewidth_dp,
    count_matchings,
    count_matchings_brute_force,
    count_matchings_of_instance,
    count_matchings_treewidth_dp,
    count_matchings_via_lineage,
    is_matching,
)
from repro.generators import (
    cubic_planar_graph,
    directed_path_instance,
    grid_instance,
    prism_graph,
    random_tree_instance,
)
from repro.structure.graph import Graph, complete_graph, cycle_graph, grid_graph, path_graph


def test_is_matching():
    graph = path_graph(4)
    assert is_matching(graph, [(0, 1), (2, 3)])
    assert not is_matching(graph, [(0, 1), (1, 2)])
    assert not is_matching(graph, [(0, 2)])  # not an edge
    assert is_matching(graph, [])


def test_matchings_of_paths_are_fibonacci():
    # The number of matchings of P_n (n vertices) is the Fibonacci number F(n+1).
    expected = {2: 2, 3: 3, 4: 5, 5: 8, 6: 13}
    for n, value in expected.items():
        assert count_matchings_brute_force(path_graph(n)) == value
        assert count_matchings_treewidth_dp(path_graph(n)) == value


def test_matchings_of_cycles():
    # Matchings of C_n are Lucas numbers: C_3 -> 4, C_4 -> 7, C_5 -> 11, C_6 -> 18.
    expected = {3: 4, 4: 7, 5: 11, 6: 18}
    for n, value in expected.items():
        assert count_matchings_treewidth_dp(cycle_graph(n)) == value


def test_matchings_methods_agree_on_small_graphs():
    for graph in (complete_graph(4), grid_graph(2, 3), cubic_planar_graph(0), prism_graph(3)):
        brute = count_matchings_brute_force(graph)
        assert count_matchings_treewidth_dp(graph) == brute
        assert count_matchings_via_lineage(graph) == brute


def test_count_matchings_dispatch():
    graph = cycle_graph(4)
    assert count_matchings(graph, "brute_force") == 7
    assert count_matchings(graph, "treewidth") == 7
    assert count_matchings(graph, "lineage") == 7
    with pytest.raises(ValueError):
        count_matchings(graph, "nope")


def test_count_matchings_of_instance():
    instance = grid_instance(2, 2)
    graph = grid_graph(2, 2)
    assert count_matchings_of_instance(instance) == count_matchings_brute_force(graph)


def test_empty_graph_has_one_matching():
    assert count_matchings_treewidth_dp(Graph()) == 1


def test_hamiltonian_cycle_counts():
    assert count_hamiltonian_cycles(complete_graph(4)) == 3
    assert count_hamiltonian_cycles(cycle_graph(5)) == 1
    assert count_hamiltonian_cycles(path_graph(4)) == 0
    assert count_hamiltonian_cycles(prism_graph(3)) == 3
    with pytest.raises(ValueError):
        count_hamiltonian_cycles(complete_graph(12))


def test_independent_set_counts_agree():
    for instance in (directed_path_instance(5), random_tree_instance(7, seed=2), grid_instance(2, 3)):
        brute = count_independent_sets_brute_force(instance)
        assert count_independent_sets_treewidth_dp(instance) == brute
        assert count_independent_sets(instance) == brute


def test_independent_sets_of_path_are_fibonacci():
    # Independent sets of a path with n vertices: F(n+2).
    assert count_independent_sets(directed_path_instance(4)) == 13  # 5 vertices
    assert count_independent_sets(directed_path_instance(5)) == 21  # 6 vertices


def test_dominating_sets_brute_force():
    instance = directed_path_instance(3)  # path on 4 vertices
    assert count_dominating_sets_brute_force(instance) == sum(
        1
        for mask in range(16)
        if _dominates(mask)
    )


def _dominates(mask):
    chosen = {i for i in range(4) if mask >> i & 1}
    return all(i in chosen or (i - 1 in chosen) or (i + 1 in chosen) for i in range(4))


def test_counting_dispatch_errors():
    with pytest.raises(ValueError):
        count_independent_sets(directed_path_instance(3), method="nope")
