"""Differential tests for the iterative compilation kernels (tier-1).

Three layers of cross-checking for the PR-4 rewrite:

* **property-based** (hypothesis): on random monotone DNFs, the trie-driven
  construction and the seed apply-fold produce the *same reduced root id* in
  the same manager, and the fused sweep agrees with the seed recursive walks
  (probability, model count, width) on random dyadic probabilities;
* **workload-based**: the same equivalences on real lineages from the seeded
  ``random_workload`` families, plus a full :class:`ProbabilityOracle` sweep
  (brute force / OBDD / d-DNNF / auto / safe plans / bounds) running on the
  new kernels;
* **unit**: the manager-level restrict cache, the balanced n-ary combine,
  and the float fast path with its exact fallback.
"""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.booleans.obdd import FALSE_NODE, TRUE_NODE, OBDD
from repro.booleans.reference import (
    build_from_clauses_fold,
    model_count_recursive,
    probability_recursive,
    width_by_cuts,
)
from repro.engine import CompilationEngine
from repro.probability.evaluation import probability
from repro.testing import ProbabilityOracle, random_workload

VARIABLES = [f"v{i}" for i in range(8)]

clauses_strategy = st.lists(
    st.sets(st.sampled_from(VARIABLES), min_size=1, max_size=4).map(lambda s: tuple(sorted(s))),
    min_size=0,
    max_size=8,
)
probabilities_strategy = st.fixed_dictionaries(
    {v: st.integers(min_value=0, max_value=8).map(lambda k: Fraction(k, 8)) for v in VARIABLES}
)


@settings(max_examples=80, deadline=None)
@given(clauses=clauses_strategy)
def test_trie_and_fold_build_the_same_reduced_root(clauses):
    manager = OBDD(VARIABLES)
    fold_root = build_from_clauses_fold(manager, clauses)
    trie_root = manager.build_from_clauses(clauses)
    # Reduced OBDDs are canonical per (function, order); with hash-consing in
    # one shared manager the two constructions must intern the same node.
    assert trie_root == fold_root


@settings(max_examples=60, deadline=None)
@given(clauses=clauses_strategy, probabilities=probabilities_strategy)
def test_sweep_agrees_with_seed_recursive_walks(clauses, probabilities):
    manager = OBDD(VARIABLES)
    root = manager.build_from_clauses(clauses)
    result = manager.sweep(root, probabilities, model_count=True, width=True)
    if root > TRUE_NODE:
        assert result.probability == probability_recursive(manager, root, probabilities)
    else:
        assert result.probability == Fraction(1 if root == TRUE_NODE else 0)
    assert result.model_count == model_count_recursive(manager, root)
    assert result.width == width_by_cuts(manager, root)
    assert result.size == len(manager.reachable_nodes(root))


@settings(max_examples=40, deadline=None)
@given(clauses=clauses_strategy, probabilities=probabilities_strategy)
def test_float_fast_path_tracks_the_exact_kernel(clauses, probabilities):
    manager = OBDD(VARIABLES)
    root = manager.build_from_clauses(clauses)
    exact = manager.sweep(root, probabilities).probability
    fast = manager.sweep(root, probabilities, exact=False).probability
    assert isinstance(fast, float)
    assert abs(fast - float(exact)) < 1e-9


def test_trie_matches_fold_on_workload_lineages():
    engine = CompilationEngine()
    for case in random_workload(25, seed=20260727):
        lineage = engine.lineage(case.query, case.tid.instance)
        order = engine.fact_order(case.tid.instance)
        manager = OBDD(list(order))
        fold_root = build_from_clauses_fold(
            manager, [sorted(c, key=str) for c in lineage.clauses]
        )
        trie_root = manager.build_from_clauses(lineage.clauses)
        assert trie_root == fold_root
        valuation = case.tid.valuation()
        result = manager.sweep(trie_root, valuation, model_count=True, width=True)
        if trie_root > TRUE_NODE:
            assert result.probability == probability_recursive(manager, trie_root, valuation)
        assert result.model_count == model_count_recursive(manager, trie_root)
        assert result.width == width_by_cuts(manager, trie_root)


def test_probability_oracle_passes_on_the_new_kernels():
    oracle = ProbabilityOracle()
    reports = oracle.check_many(random_workload(15, seed=424242))
    assert len(reports) == 15
    for report in reports:
        assert not report.disagreements()


def test_restrict_uses_a_manager_level_cache():
    manager = OBDD(["a", "b", "c"])
    root = manager.build_from_clauses([("a", "b"), ("b", "c")])
    assert not manager._restrict_cache
    restricted = manager.restrict(root, "b", True)
    assert manager._restrict_cache
    entries = dict(manager._restrict_cache)
    assert manager.restrict(root, "b", True) == restricted
    assert manager._restrict_cache == entries  # served from cache, no growth
    # Semantics: the cofactor agrees with evaluation under the fixed value.
    for mask in range(4):
        valuation = {"a": bool(mask & 1), "c": bool(mask & 2), "b": True}
        assert manager.evaluate(restricted, valuation) == manager.evaluate(root, valuation)


def test_balanced_nary_combine_is_equivalent_to_folding():
    manager = OBDD([f"x{i}" for i in range(7)])
    literals = [manager.literal(f"x{i}") for i in range(7)]
    conj = manager.conjunction(literals)
    disj = manager.disjunction(literals)
    fold_and = TRUE_NODE
    fold_or = FALSE_NODE
    for literal in literals:
        fold_and = manager.apply_and(fold_and, literal)
        fold_or = manager.apply_or(fold_or, literal)
    assert conj == fold_and
    assert disj == fold_or
    assert manager.conjunction([]) == TRUE_NODE
    assert manager.disjunction([]) == FALSE_NODE


def test_dnnf_evaluate_short_circuits_partial_valuations():
    from repro.booleans.dnnf import DNNF

    dnnf = DNNF()
    x = dnnf.literal("x")
    y = dnnf.literal("y")
    either = dnnf.disjunction([x, y])
    dnnf.set_output(either)
    # The outcome never depends on y, so y may be absent from the valuation
    # (demand-driven left-to-right evaluation, as in the recursive original).
    assert dnnf.evaluate({"x": True})
    both = dnnf.conjunction([dnnf.literal("x"), dnnf.literal("y")])
    assert not dnnf.evaluate({"x": False}, both)
    with pytest.raises(KeyError):
        dnnf.evaluate({"y": False})  # here x is genuinely needed


def test_obdd_float_method_is_wired_end_to_end():
    case = random_workload(1, seed=99)[0]
    exact = probability(case.query, case.tid, method="obdd")
    fast = probability(case.query, case.tid, method="obdd_float")
    assert isinstance(fast, float)
    assert abs(fast - float(exact)) < 1e-9
    engine = CompilationEngine()
    cached = engine.probability(case.query, case.tid, method="obdd_float")
    assert isinstance(cached, float)
    assert cached == pytest.approx(fast)
    # Served from the probability cache on the second call.
    assert engine.probability(case.query, case.tid, method="obdd_float") == cached
    assert engine.stats["probability"].hits >= 1
