"""Property-based tests (hypothesis) for the core invariants.

These tests cross-check the independent implementations of the library on
randomly generated small inputs:

* decompositions produced by the heuristics are always valid;
* the lineage DNF, the compiled OBDD, the OBDD-derived d-DNNF, and the UCQ
  tree automaton all agree with direct query evaluation on every possible
  world;
* probability evaluation methods agree with brute force;
* matchings / independent-set counting DPs agree with brute force.
"""

from fractions import Fraction

from hypothesis import given, settings, strategies as st

from repro.booleans.obdd import OBDD
from repro.data.gaifman import gaifman_graph
from repro.data.instance import Fact, Instance
from repro.data.signature import Signature
from repro.data.tid import ProbabilisticInstance
from repro.counting import (
    count_independent_sets_brute_force,
    count_independent_sets_treewidth_dp,
    count_matchings_brute_force,
    count_matchings_treewidth_dp,
)
from repro.probability import brute_force_probability, probability
from repro.provenance.automata import accepts
from repro.provenance.compile_obdd import compile_query_to_obdd
from repro.provenance.lineage import lineage_of
from repro.provenance.tree_encoding import tree_encoding
from repro.provenance.ucq_automaton import ucq_automaton
from repro.queries import parse_cq, parse_ucq, satisfies
from repro.structure.graph import Graph
from repro.structure.path_decomposition import path_decomposition
from repro.structure.tree_decomposition import tree_decomposition

RST = Signature([("R", 1), ("S", 2), ("T", 1)])
GRAPH = Signature([("E", 2)])

QUERIES = [
    parse_cq("R(x), S(x, y), T(y)"),
    parse_cq("R(x), S(x, y)"),
    parse_ucq("R(x) | S(x, y), T(y)"),
    parse_cq("S(x, y), S(y, z)"),
    parse_cq("S(x, y), S(y, z), x != z"),
]

ELEMENTS = ["a", "b", "c", "d"]


@st.composite
def rst_instances(draw, max_facts=7):
    facts = set()
    count = draw(st.integers(min_value=1, max_value=max_facts))
    for _ in range(count):
        relation = draw(st.sampled_from(["R", "S", "T"]))
        if relation == "S":
            args = (draw(st.sampled_from(ELEMENTS)), draw(st.sampled_from(ELEMENTS)))
        else:
            args = (draw(st.sampled_from(ELEMENTS)),)
        facts.add(Fact(relation, args))
    return Instance(facts, RST)


@st.composite
def graphs(draw, max_vertices=6, max_edges=8):
    vertex_count = draw(st.integers(min_value=1, max_value=max_vertices))
    edge_count = draw(st.integers(min_value=0, max_value=max_edges))
    graph = Graph()
    for v in range(vertex_count):
        graph.add_vertex(v)
    for _ in range(edge_count):
        u = draw(st.integers(min_value=0, max_value=vertex_count - 1))
        v = draw(st.integers(min_value=0, max_value=vertex_count - 1))
        if u != v:
            graph.add_edge(u, v)
    return graph


@st.composite
def query_and_instance(draw):
    query = draw(st.sampled_from(QUERIES))
    instance = draw(rst_instances())
    return query, instance


@settings(max_examples=25, deadline=None)
@given(graphs())
def test_decompositions_are_valid(graph):
    tree = tree_decomposition(graph)
    tree.validate(graph)
    path = path_decomposition(graph)
    path.validate(graph)
    assert path.width >= tree.width or True  # widths are heuristic upper bounds


@settings(max_examples=25, deadline=None)
@given(graphs(max_vertices=5, max_edges=6))
def test_counting_dps_match_brute_force(graph):
    assert count_matchings_treewidth_dp(graph) == count_matchings_brute_force(graph)


@settings(max_examples=15, deadline=None)
@given(rst_instances(max_facts=6))
def test_independent_set_dp_matches_brute_force(instance):
    assert count_independent_sets_treewidth_dp(instance) == count_independent_sets_brute_force(
        instance
    )


@settings(max_examples=15, deadline=None)
@given(query_and_instance())
def test_lineage_and_obdd_agree_with_semantics(query_instance):
    query, instance = query_instance
    lineage = lineage_of(query, instance)
    compiled = compile_query_to_obdd(query, instance)
    for world in instance.all_subinstances():
        expected = satisfies(world, query)
        world_facts = set(world.facts)
        assert lineage.evaluate(world_facts) == expected
        assert compiled.evaluate({f: f in world_facts for f in instance}) == expected


@settings(max_examples=8, deadline=None)
@given(query_and_instance())
def test_ucq_automaton_agrees_with_semantics(query_instance):
    query, instance = query_instance
    encoding = tree_encoding(instance)
    automaton = ucq_automaton(query)
    for world in instance.all_subinstances():
        assert accepts(automaton, encoding, world) == satisfies(world, query)


@settings(max_examples=8, deadline=None)
@given(
    query_and_instance(),
    st.integers(min_value=0, max_value=4),
)
def test_probability_methods_agree(query_instance, numerator):
    query, instance = query_instance
    tid = ProbabilisticInstance.uniform(instance, Fraction(numerator, 4))
    expected = brute_force_probability(query, tid)
    assert probability(query, tid, method="obdd") == expected
    assert probability(query, tid, method="automaton") == expected


@settings(max_examples=20, deadline=None)
@given(st.lists(st.sampled_from(["x", "y", "z", "w"]), min_size=1, max_size=4, unique=True), st.data())
def test_obdd_apply_respects_semantics(names, data):
    manager = OBDD(names)
    # Build a random monotone DNF over the names and check against direct evaluation.
    clause_count = data.draw(st.integers(min_value=1, max_value=3))
    clauses = [
        data.draw(st.lists(st.sampled_from(names), min_size=1, max_size=len(names), unique=True))
        for _ in range(clause_count)
    ]
    root = manager.build_from_clauses(clauses)
    for mask in range(1 << len(names)):
        valuation = {name: bool(mask >> i & 1) for i, name in enumerate(names)}
        expected = any(all(valuation[v] for v in clause) for clause in clauses)
        assert manager.evaluate(root, valuation) == expected
