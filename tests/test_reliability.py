"""Tests for the two-terminal reliability automaton (MSO connectivity)."""

from fractions import Fraction

from repro.data.instance import Instance, fact
from repro.data.tid import ProbabilisticInstance
from repro.generators import directed_path_instance, grid_instance, random_probabilities
from repro.probability.brute_force import brute_force_property_probability
from repro.provenance.automata import accepts
from repro.provenance.automaton_provenance import provenance_dnnf
from repro.provenance.reliability import (
    is_st_connected,
    st_connectivity_automaton,
    st_reliability,
)
from repro.provenance.tree_encoding import tree_encoding


def check_against_reference(instance, source, target):
    encoding = tree_encoding(instance)
    automaton = st_connectivity_automaton(source, target)
    for world in instance.all_subinstances():
        expected = is_st_connected(world, source, target)
        assert accepts(automaton, encoding, world) == expected, (
            f"disagreement on {world} for {source}->{target}"
        )


def test_connectivity_on_path():
    instance = directed_path_instance(4)
    check_against_reference(instance, "a1", "a5")
    check_against_reference(instance, "a2", "a4")


def test_connectivity_on_small_grid():
    instance = grid_instance(2, 2)
    check_against_reference(instance, "v0_0", "v1_1")


def test_connectivity_on_branching_instance():
    instance = Instance(
        [
            fact("E", "root", "left"),
            fact("E", "root", "right"),
            fact("E", "left", "leaf"),
            fact("E", "right", "leaf"),
        ]
    )
    check_against_reference(instance, "root", "leaf")


def test_trivial_and_unreachable_terminals():
    instance = directed_path_instance(3)
    encoding = tree_encoding(instance)
    trivial = st_connectivity_automaton("a1", "a1")
    assert accepts(trivial, encoding, [])
    missing = st_connectivity_automaton("a1", "zzz")
    assert not accepts(missing, encoding, instance.facts)


def test_reliability_matches_brute_force():
    instance = grid_instance(2, 2)
    tid = random_probabilities(instance, seed=31)
    expected = brute_force_property_probability(
        lambda world: is_st_connected(world, "v0_0", "v1_1"), tid
    )
    assert st_reliability(tid, "v0_0", "v1_1") == expected


def test_reliability_series_parallel_formula():
    # Two parallel length-2 paths from s to t, each edge with probability 1/2:
    # each path works with probability 1/4; reliability = 1 - (3/4)^2 = 7/16.
    instance = Instance(
        [
            fact("E", "s", "m1"),
            fact("E", "m1", "t"),
            fact("E", "s", "m2"),
            fact("E", "m2", "t"),
        ]
    )
    tid = ProbabilisticInstance.uniform(instance, Fraction(1, 2))
    assert st_reliability(tid, "s", "t") == Fraction(7, 16)


def test_reliability_dnnf_is_deterministic():
    instance = directed_path_instance(4)
    encoding = tree_encoding(instance)
    dnnf = provenance_dnnf(st_connectivity_automaton("a1", "a5"), encoding)
    assert dnnf.check_decomposability()
    assert dnnf.check_determinism()
    valuation = {f: Fraction(1, 2) for f in dnnf.variables()}
    assert dnnf.probability(valuation) == Fraction(1, 16)


def test_restricted_relations():
    instance = Instance(
        [fact("E", "s", "t"), fact("F", "s", "t")]
    )
    encoding = tree_encoding(instance)
    only_e = st_connectivity_automaton("s", "t", relations=["E"])
    assert accepts(only_e, encoding, [fact("E", "s", "t")])
    assert not accepts(only_e, encoding, [fact("F", "s", "t")])
