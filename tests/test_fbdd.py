"""Tests for free binary decision diagrams (repro.booleans.fbdd)."""

from fractions import Fraction
from itertools import product

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.booleans.circuit import BooleanCircuit, circuit_from_function
from repro.booleans.fbdd import (
    FBDD,
    compile_circuit_to_fbdd,
    fbdd_from_clauses,
    fbdd_from_obdd,
)
from repro.booleans.obdd import OBDD
from repro.errors import CompilationError, LineageError


def _all_valuations(variables):
    for values in product([False, True], repeat=len(variables)):
        yield dict(zip(variables, values))


def test_terminals_and_literal():
    diagram = FBDD()
    assert diagram.terminal(True) == 1
    assert diagram.terminal(False) == 0
    node = diagram.literal("x")
    assert diagram.evaluate({"x": True}, node)
    assert not diagram.evaluate({"x": False}, node)
    negative = diagram.literal("x", positive=False)
    assert diagram.evaluate({"x": False}, negative)


def test_make_node_reduction_and_sharing():
    diagram = FBDD()
    child = diagram.literal("y")
    # low == high collapses to the child.
    assert diagram.make_node("x", child, child) == child
    first = diagram.make_node("x", 0, child)
    second = diagram.make_node("x", 0, child)
    assert first == second


def test_make_node_rejects_bad_ids():
    diagram = FBDD()
    with pytest.raises(LineageError):
        diagram.make_node("x", 0, 99)


def test_node_accessor_and_table():
    diagram = FBDD()
    node = diagram.literal("x")
    variable, low, high = diagram.node(node)
    assert (variable, low, high) == ("x", 0, 1)
    with pytest.raises(LineageError):
        diagram.node(1)
    table = diagram.node_table(node)
    assert table == [(node, "x", 0, 1)]


def test_evaluate_simple_and_gate():
    diagram = FBDD()
    # x AND y built by hand: test x, then y.
    y_node = diagram.literal("y")
    root = diagram.make_node("x", 0, y_node)
    diagram.root = root
    assert diagram.evaluate({"x": True, "y": True})
    assert not diagram.evaluate({"x": True, "y": False})
    assert not diagram.evaluate({"x": False, "y": True})


def test_check_read_once_detects_violation():
    diagram = FBDD()
    inner = diagram.make_node("x", 0, 1)
    outer = diagram.make_node("x", inner, 1)
    diagram.root = outer
    assert not diagram.check_read_once()
    good = FBDD()
    good.root = good.make_node("x", 0, good.literal("y"))
    assert good.check_read_once()


def test_is_ordered_detects_order_conflict():
    # x before y on one branch, y before x on the other: free but not ordered.
    diagram = FBDD()
    y_then_x = diagram.make_node("y", 0, diagram.literal("x"))
    x_then_y = diagram.make_node("x", 0, diagram.literal("y"))
    root = diagram.make_node("z", y_then_x, x_then_y)
    diagram.root = root
    assert diagram.check_read_once()
    assert not diagram.is_ordered()
    ordered = FBDD()
    ordered.root = ordered.make_node("x", 0, ordered.literal("y"))
    assert ordered.is_ordered()


def test_probability_matches_hand_computation():
    diagram = FBDD()
    y_node = diagram.literal("y")
    diagram.root = diagram.make_node("x", 0, y_node)  # x AND y
    result = diagram.probability({"x": Fraction(1, 2), "y": Fraction(1, 3)})
    assert result == Fraction(1, 6)


def test_probability_missing_variable_raises():
    diagram = FBDD()
    diagram.root = diagram.literal("x")
    with pytest.raises(LineageError):
        diagram.probability({})


def test_model_count_or_of_two_variables():
    diagram = fbdd_from_clauses([["x"], ["y"]])
    assert diagram.model_count() == 3
    assert diagram.model_count(all_variables=["x", "y", "z"]) == 6


def test_model_count_universe_must_cover_tested_variables():
    diagram = fbdd_from_clauses([["x"], ["y"]])
    with pytest.raises(LineageError):
        diagram.model_count(all_variables=["x"])


def test_restrict_cofactors():
    diagram = fbdd_from_clauses([["x", "y"]])
    cofactor = diagram.restrict(diagram.root, "x", True)
    assert diagram.evaluate({"y": True}, cofactor)
    assert not diagram.evaluate({"y": False}, cofactor)
    assert diagram.restrict(diagram.root, "x", False) == 0


def test_negate_complements_the_function():
    diagram = fbdd_from_clauses([["x", "y"]])
    complement = diagram.negate()
    for valuation in _all_valuations(["x", "y"]):
        assert diagram.evaluate(valuation, complement) != diagram.evaluate(
            valuation, diagram.root
        )


def test_fbdd_from_obdd_preserves_function_and_order():
    obdd = OBDD(["a", "b", "c"])
    root = obdd.build_from_clauses([["a", "b"], ["b", "c"]])
    diagram = fbdd_from_obdd(obdd, root)
    assert diagram.check_read_once()
    assert diagram.is_ordered()
    for valuation in _all_valuations(["a", "b", "c"]):
        assert diagram.evaluate(valuation) == obdd.evaluate(root, valuation)


def test_compile_circuit_to_fbdd_equivalence():
    circuit = BooleanCircuit()
    a, b, c = (circuit.variable(v) for v in "abc")
    circuit.set_output(
        circuit.disjunction(
            [circuit.conjunction([a, b]), circuit.conjunction([circuit.negation(a), c])]
        )
    )
    diagram = compile_circuit_to_fbdd(circuit)
    assert diagram.check_read_once()
    for valuation in _all_valuations(["a", "b", "c"]):
        assert diagram.evaluate(valuation) == circuit.evaluate(valuation)


def test_compile_circuit_custom_variable_choice():
    circuit = BooleanCircuit()
    x, y = circuit.variable("x"), circuit.variable("y")
    circuit.set_output(circuit.conjunction([x, y]))

    chosen = []

    def choose(assignment, live):
        chosen.append(tuple(live))
        return live[-1]

    diagram = compile_circuit_to_fbdd(circuit, variable_choice=choose)
    for valuation in _all_valuations(["x", "y"]):
        assert diagram.evaluate(valuation) == circuit.evaluate(valuation)
    assert chosen and chosen[0] == ("x", "y")


def test_compile_circuit_variable_choice_must_be_live():
    circuit = BooleanCircuit()
    circuit.set_output(circuit.variable("x"))
    with pytest.raises(CompilationError):
        compile_circuit_to_fbdd(circuit, variable_choice=lambda assignment, live: "zzz")


def test_compile_circuit_requires_output():
    with pytest.raises(CompilationError):
        compile_circuit_to_fbdd(BooleanCircuit())


def test_compile_circuit_node_budget():
    circuit = BooleanCircuit()
    terms = []
    for i in range(6):
        terms.append(circuit.conjunction([circuit.variable(f"x{i}"), circuit.variable(f"y{i}")]))
    circuit.set_output(circuit.disjunction(terms))
    with pytest.raises(CompilationError):
        compile_circuit_to_fbdd(circuit, max_nodes=1)


def test_constant_circuits_compile_to_terminals():
    circuit = BooleanCircuit()
    circuit.set_output(circuit.constant(True))
    assert compile_circuit_to_fbdd(circuit).root == 1
    circuit = BooleanCircuit()
    circuit.set_output(circuit.constant(False))
    assert compile_circuit_to_fbdd(circuit).root == 0


def test_to_dnnf_equivalence_and_probability():
    diagram = fbdd_from_clauses([["x", "y"], ["z"]])
    dnnf = diagram.to_dnnf()
    probabilities = {"x": Fraction(1, 2), "y": Fraction(1, 3), "z": Fraction(1, 5)}
    assert dnnf.probability(probabilities) == diagram.probability(probabilities)
    for valuation in _all_valuations(["x", "y", "z"]):
        assert dnnf.evaluate(valuation) == diagram.evaluate(valuation)


def test_size_and_variables():
    diagram = fbdd_from_clauses([["x", "y"], ["z"]])
    assert diagram.variables() == frozenset({"x", "y", "z"})
    assert diagram.size() >= 3
    assert len(diagram) >= diagram.size()


@settings(max_examples=60, deadline=None)
@given(
    clauses=st.lists(
        st.lists(st.sampled_from(["a", "b", "c", "d"]), min_size=1, max_size=3, unique=True),
        min_size=1,
        max_size=4,
    )
)
def test_fbdd_matches_dnf_semantics(clauses):
    """fbdd_from_clauses agrees with direct DNF evaluation on every valuation."""
    diagram = fbdd_from_clauses(clauses)
    assert diagram.check_read_once()
    variables = ["a", "b", "c", "d"]
    for valuation in _all_valuations(variables):
        expected = any(all(valuation[v] for v in clause) for clause in clauses)
        assert diagram.evaluate(valuation) == expected


@settings(max_examples=40, deadline=None)
@given(
    clauses=st.lists(
        st.lists(st.sampled_from(["a", "b", "c", "d"]), min_size=1, max_size=3, unique=True),
        min_size=1,
        max_size=4,
    ),
    probabilities=st.lists(st.integers(min_value=0, max_value=4), min_size=4, max_size=4),
)
def test_fbdd_probability_matches_obdd(clauses, probabilities):
    """FBDD and OBDD probability computations agree on random monotone DNFs."""
    variables = ["a", "b", "c", "d"]
    valuation = {v: Fraction(p, 4) for v, p in zip(variables, probabilities)}
    diagram = fbdd_from_clauses(clauses)
    obdd = OBDD(variables)
    root = obdd.build_from_clauses(clauses)
    assert diagram.probability(valuation) == obdd.probability(root, valuation)
    assert diagram.model_count(all_variables=variables) == obdd.model_count(root)


def test_fbdd_from_complex_function_is_free_and_correct():
    variables = ["a", "b", "c", "d"]

    def majority(valuation):
        return sum(valuation[v] for v in variables) >= 3

    circuit = circuit_from_function(variables, majority)
    diagram = compile_circuit_to_fbdd(circuit)
    assert diagram.check_read_once()
    for valuation in _all_valuations(variables):
        assert diagram.evaluate(valuation) == majority(valuation)
