"""Tests for the instance/graph generators."""

import pytest

from repro.data.gaifman import instance_pathwidth, instance_treewidth
from repro.generators import (
    balanced_binary_tree_instance,
    caterpillar_instance,
    clique_instance,
    complete_bipartite_instance,
    cubic_planar_graph,
    directed_path_instance,
    grid_instance,
    grid_of_lines,
    labelled_line_instance,
    labelled_partial_ktree_instance,
    one_three_regular_graph,
    prism_graph,
    probabilistic_xml_instance,
    random_binary_instance,
    random_instance,
    random_line_instance,
    random_partial_ktree_instance,
    random_probabilities,
    random_tree_instance,
    rst_bipartite_instance,
    rst_chain_instance,
    s_grid_instance,
    unary_instance,
    wall_instance,
)
from repro.data.signature import Signature
from repro.queries.intricacy import line_instance


def test_directed_path_instance():
    instance = directed_path_instance(5)
    assert len(instance) == 5
    assert instance_treewidth(instance) == 1


def test_labelled_line_instance_counts():
    instance = labelled_line_instance(4)
    assert len(instance.facts_of("E")) == 3
    assert len(instance.facts_of("L")) == 4
    assert instance_treewidth(instance) == 1
    partial = labelled_line_instance(4, labelled=[True, False, True, False])
    assert len(partial.facts_of("L")) == 2


def test_unary_instance_treewidth_zero():
    instance = unary_instance(6)
    assert len(instance) == 6
    assert instance_treewidth(instance) == 0


def test_rst_chain_and_bipartite():
    chain = rst_chain_instance(3)
    assert len(chain) == 9
    assert instance_pathwidth(chain) == 1
    bipartite = rst_bipartite_instance(3)
    assert len(bipartite.facts_of("S")) == 9
    assert instance_treewidth(bipartite) >= 2


def test_grid_instance_treewidth_grows():
    small = grid_instance(2, 2)
    large = grid_instance(4, 4)
    assert instance_treewidth(large) > instance_treewidth(small)
    symmetric = grid_instance(2, 2, symmetric=True)
    assert len(symmetric) == 2 * len(small)


def test_s_grid_has_rst_signature():
    instance = s_grid_instance(3, 3)
    assert "R" in instance.signature and "T" in instance.signature
    assert len(instance.facts_of("R")) == 0


def test_complete_bipartite_and_clique():
    bipartite = complete_bipartite_instance(3, 4)
    assert len(bipartite) == 12
    clique = clique_instance(4)
    assert len(clique) == 12  # ordered pairs


def test_grid_of_lines_uses_witness_signature():
    witness = line_instance((("E", True), ("E", False)))
    tiled = grid_of_lines(witness, 3, 3)
    assert tiled.signature == witness.signature
    assert instance_treewidth(tiled) >= 2


def test_tree_generators():
    tree = balanced_binary_tree_instance(3)
    assert len(tree) == 14
    assert instance_treewidth(tree) == 1
    random_tree = random_tree_instance(10, seed=1)
    assert instance_treewidth(random_tree) == 1
    caterpillar = caterpillar_instance(4, 2)
    assert instance_pathwidth(caterpillar) <= 2


def test_probabilistic_xml_instance():
    doc = probabilistic_xml_instance(2, fanout=2)
    assert len(doc.facts_of("child")) == 6
    assert instance_treewidth(doc) == 1


def test_random_line_instance_matches_length():
    instance = random_line_instance(5, Signature([("E", 2)]), seed=2)
    assert len(instance) == 5
    assert instance_pathwidth(instance) == 1


def test_cubic_planar_graphs_are_cubic():
    for index in range(3):
        graph = cubic_planar_graph(index)
        assert graph.is_k_regular(3)


def test_prism_and_one_three_regular():
    assert prism_graph(4).is_k_regular(3)
    graph = one_three_regular_graph(5)
    assert graph.is_K_regular({1, 3})
    with pytest.raises(ValueError):
        prism_graph(2)


def test_wall_instance_and_partial_ktrees():
    wall = wall_instance(3, 4)
    assert instance_treewidth(wall) >= 2
    ktree = random_partial_ktree_instance(12, 3, seed=0)
    assert instance_treewidth(ktree) <= 3
    labelled = labelled_partial_ktree_instance(10, 2, seed=1)
    assert instance_treewidth(labelled, exact=True) <= 2
    assert "R" in labelled.signature


@pytest.mark.parametrize(
    "n,width,seed",
    [(8, 1, 0), (10, 2, 1), (12, 2, 4), (12, 3, 0), (11, 3, 7), (13, 4, 2)],
)
def test_partial_ktree_treewidth_never_exceeds_width(n, width, seed):
    # Regression for the (k+1)-tree bug: the generator used to attach each new
    # vertex to all width+1 members of a stored clique, producing exact
    # treewidth width+1.
    instance = random_partial_ktree_instance(n, width, seed=seed, edge_probability=1.0)
    assert instance_treewidth(instance, exact=True) <= width


@pytest.mark.parametrize("seed", range(4))
def test_labelled_partial_ktree_treewidth_bound(seed):
    labelled = labelled_partial_ktree_instance(10, 2, seed=seed)
    assert instance_treewidth(labelled, exact=True) <= 2


@pytest.mark.slow
def test_partial_ktree_treewidth_oracle_cross_check():
    # Exact treewidth via the independent subset-DP oracle on the Gaifman graph.
    from repro.data.gaifman import gaifman_graph
    from repro.structure.elimination import treewidth_dp_oracle

    for n, width, seed in [(10, 2, 3), (11, 3, 5), (12, 2, 8)]:
        instance = random_partial_ktree_instance(n, width, seed=seed, edge_probability=1.0)
        assert treewidth_dp_oracle(gaifman_graph(instance)) <= width


def test_random_instance_and_probabilities():
    signature = Signature([("R", 1), ("S", 2)])
    instance = random_instance(signature, 4, 8, seed=5)
    assert len(instance) <= 8
    tid = random_probabilities(instance, seed=5)
    for fact in instance:
        assert 0 <= tid.probability_of(fact) <= 1
    binary = random_binary_instance(4, 6, seed=1)
    assert binary.signature.arity("E") == 2
