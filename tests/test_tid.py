"""Tests for repro.data.tid (tuple-independent databases)."""

from fractions import Fraction

import pytest

from repro.data.instance import Instance, fact
from repro.data.tid import ProbabilisticInstance, as_probability
from repro.errors import ProbabilityError


def make_tid():
    instance = Instance([fact("R", "a"), fact("R", "b")])
    return ProbabilisticInstance(
        instance, {fact("R", "a"): Fraction(1, 2), fact("R", "b"): Fraction(1, 4)}
    )


def test_as_probability_conversions():
    assert as_probability(1) == 1
    assert as_probability("1/3") == Fraction(1, 3)
    assert as_probability((2, 4)) == Fraction(1, 2)
    assert as_probability(0.5) == Fraction(1, 2)
    with pytest.raises(ProbabilityError):
        as_probability(2)
    with pytest.raises(ProbabilityError):
        as_probability(-0.1)


def test_world_probability():
    tid = make_tid()
    world = [fact("R", "a")]
    assert tid.world_probability(world) == Fraction(1, 2) * Fraction(3, 4)
    assert tid.world_probability([]) == Fraction(1, 2) * Fraction(3, 4)
    assert tid.world_probability(tid.instance) == Fraction(1, 2) * Fraction(1, 4)


def test_possible_worlds_sum_to_one():
    tid = make_tid()
    total = sum(p for _, p in tid.possible_worlds())
    assert total == 1


def test_unknown_fact_rejected():
    tid = make_tid()
    with pytest.raises(ProbabilityError):
        tid.probability_of(fact("R", "zzz"))
    with pytest.raises(ProbabilityError):
        tid.world_probability([fact("R", "zzz")])
    with pytest.raises(ProbabilityError):
        ProbabilisticInstance(tid.instance, {fact("R", "zzz"): 1})


def test_uniform_and_default():
    instance = Instance([fact("R", "a"), fact("R", "b")])
    uniform = ProbabilisticInstance.uniform(instance)
    assert uniform.probability_of(fact("R", "a")) == Fraction(1, 2)
    certain = ProbabilisticInstance(instance)
    assert certain.probability_of(fact("R", "b")) == 1
    assert certain.certain_facts() == instance.facts


def test_condition():
    tid = make_tid()
    conditioned = tid.condition(kept=[fact("R", "a")], removed=[fact("R", "b")])
    assert conditioned.probability_of(fact("R", "a")) == 1
    assert conditioned.probability_of(fact("R", "b")) == 0
    assert conditioned.impossible_facts() == (fact("R", "b"),)


def test_from_pairs():
    tid = ProbabilisticInstance.from_pairs([(fact("R", "a"), Fraction(1, 3))])
    assert len(tid) == 1
    assert tid.probability_of(fact("R", "a")) == Fraction(1, 3)
