"""Tests for tree-depth and elimination forests."""

import pytest

from repro.errors import DecompositionError
from repro.structure.graph import (
    Graph,
    complete_graph,
    cycle_graph,
    grid_graph,
    path_graph,
)
from repro.structure.path_decomposition import pathwidth
from repro.structure.tree_depth import (
    EliminationForest,
    dfs_elimination_forest,
    optimal_elimination_forest,
    pathwidth_upper_bound_from_tree_depth,
    tree_depth,
)


def test_tree_depth_of_clique():
    assert tree_depth(complete_graph(4)) == 4


def test_tree_depth_of_path():
    # td(P_n) = ceil(log2(n+1)); for 7 vertices that's 3.
    assert tree_depth(path_graph(7)) == 3
    assert tree_depth(path_graph(3)) == 2


def test_tree_depth_of_star():
    star = Graph([(0, i) for i in range(1, 6)])
    assert tree_depth(star) == 2


def test_tree_depth_of_cycle():
    assert tree_depth(cycle_graph(4)) == 3


def test_tree_depth_empty_graph():
    assert tree_depth(Graph()) == 0


def test_dfs_forest_is_valid_elimination_forest():
    for graph in (path_graph(6), cycle_graph(6), grid_graph(3, 3)):
        forest = dfs_elimination_forest(graph)
        forest.validate(graph)


def test_optimal_forest_height_matches_tree_depth():
    graph = cycle_graph(5)
    forest = optimal_elimination_forest(graph)
    forest.validate(graph)
    assert forest.height == tree_depth(graph)


def test_pathwidth_below_tree_depth():
    # Lemma 11 of [5]: pw(G) <= td(G) - 1.
    for graph in (path_graph(7), cycle_graph(6), grid_graph(3, 3)):
        depth = tree_depth(graph)
        assert pathwidth(graph) <= pathwidth_upper_bound_from_tree_depth(depth) or pathwidth(
            graph
        ) <= depth - 1


def test_elimination_forest_validation_rejects_bad_forest():
    graph = path_graph(3)
    bad = EliminationForest({0: None, 1: None, 2: None})
    with pytest.raises(DecompositionError):
        bad.validate(graph)


def test_forest_depth_and_ancestors():
    forest = EliminationForest({"a": None, "b": "a", "c": "b"})
    assert forest.height == 3
    assert forest.depth_of("c") == 3
    assert forest.ancestors("c") == ["b", "a"]
    assert forest.roots == ["a"]
