"""Tests for tree encodings of treelike instances."""

import pytest

from repro.data.gaifman import gaifman_graph
from repro.errors import DecompositionError
from repro.generators import (
    balanced_binary_tree_instance,
    directed_path_instance,
    grid_instance,
    labelled_line_instance,
    rst_chain_instance,
)
from repro.provenance.tree_encoding import path_encoding, tree_encoding
from repro.structure.tree_decomposition import tree_decomposition


def test_tree_encoding_attaches_every_fact_once():
    instance = rst_chain_instance(3)
    encoding = tree_encoding(instance)
    attached = [node.fact for node in encoding.iter_nodes() if node.fact is not None]
    assert sorted(map(str, attached)) == sorted(map(str, instance.facts))


def test_tree_encoding_is_binary_and_valid():
    for instance in (
        directed_path_instance(6),
        labelled_line_instance(5),
        balanced_binary_tree_instance(3),
        grid_instance(3, 3),
    ):
        encoding = tree_encoding(instance)
        encoding.validate()
        assert all(len(node.children) <= 2 for node in encoding.iter_nodes())


def test_tree_encoding_width_close_to_treewidth():
    instance = grid_instance(3, 3)
    decomposition = tree_decomposition(gaifman_graph(instance))
    encoding = tree_encoding(instance, decomposition)
    assert encoding.width == decomposition.width


def test_facts_in_order_covers_all_facts():
    instance = labelled_line_instance(5)
    encoding = tree_encoding(instance)
    assert set(encoding.facts_in_order()) == set(instance.facts)


def test_post_order_children_first():
    instance = balanced_binary_tree_instance(3)
    encoding = tree_encoding(instance)
    seen = set()
    for identifier in encoding.post_order():
        for child in encoding.nodes[identifier].children:
            assert child in seen
        seen.add(identifier)


def test_path_encoding_is_a_path():
    instance = directed_path_instance(6)
    encoding = path_encoding(instance)
    encoding.validate()
    assert all(len(node.children) <= 1 for node in encoding.iter_nodes())


def test_encoding_of_empty_domain_instance():
    from repro.data.instance import Instance, fact

    instance = Instance([fact("R", "a")])
    encoding = tree_encoding(instance)
    encoding.validate()
    assert len(encoding.facts_in_order()) == 1


def test_validation_catches_mismatched_instance():
    instance = rst_chain_instance(2)
    other = rst_chain_instance(3)
    encoding = tree_encoding(instance)
    encoding.instance = other
    with pytest.raises(DecompositionError):
        encoding.validate()
