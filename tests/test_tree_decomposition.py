"""Tests for elimination orderings and tree decompositions."""

import pytest

from repro.errors import DecompositionError
from repro.structure.elimination import (
    best_heuristic_ordering,
    exact_ordering,
    exists_ordering_of_width,
    min_degree_ordering,
    min_fill_ordering,
    ordering_width,
)
from repro.structure.graph import (
    Graph,
    complete_graph,
    cycle_graph,
    grid_graph,
    path_graph,
)
from repro.structure.tree_decomposition import (
    TreeDecomposition,
    decomposition_from_ordering,
    tree_decomposition,
    treewidth,
    treewidth_lower_bound,
)


def test_ordering_width_on_path():
    graph = path_graph(6)
    order = min_degree_ordering(graph)
    assert ordering_width(graph, order) == 1


def test_ordering_width_on_clique():
    graph = complete_graph(5)
    for order in (min_degree_ordering(graph), min_fill_ordering(graph)):
        assert ordering_width(graph, order) == 4


def test_treewidth_known_values():
    assert treewidth(path_graph(8)) == 1
    assert treewidth(cycle_graph(6)) == 2
    assert treewidth(complete_graph(6)) == 5
    assert treewidth(Graph()) == -1


def test_treewidth_of_grid_heuristic_close():
    # Heuristics give an upper bound; for small grids they should be near-tight.
    assert treewidth(grid_graph(3, 3)) in (3, 4)
    assert treewidth(grid_graph(4, 4), exact=False) >= 4


def test_exact_treewidth_small_graphs():
    assert treewidth(cycle_graph(5), exact=True) == 2
    assert treewidth(grid_graph(3, 3), exact=True) == 3
    assert treewidth(complete_graph(4), exact=True) == 3


def test_exists_ordering_of_width():
    graph = cycle_graph(5)
    assert exists_ordering_of_width(graph, 2)
    assert not exists_ordering_of_width(graph, 1)


def test_exact_ordering_matches_width():
    graph = grid_graph(3, 3)
    order = exact_ordering(graph)
    assert ordering_width(graph, order) == 3


def test_decomposition_from_ordering_is_valid():
    for graph in (path_graph(6), cycle_graph(7), grid_graph(3, 4)):
        order = best_heuristic_ordering(graph)
        decomposition = decomposition_from_ordering(graph, order)
        decomposition.validate(graph)
        assert decomposition.width == ordering_width(graph, order)


def test_decomposition_from_ordering_requires_all_vertices():
    graph = path_graph(4)
    with pytest.raises(DecompositionError):
        decomposition_from_ordering(graph, [0, 1])


def test_tree_decomposition_of_disconnected_graph():
    graph = Graph([(1, 2), (3, 4)])
    decomposition = tree_decomposition(graph)
    decomposition.validate(graph)


def test_validate_catches_missing_edge_coverage():
    graph = Graph([(1, 2), (2, 3)])
    bad = TreeDecomposition(
        bags={0: frozenset({1, 2}), 1: frozenset({3})}, children={0: [1], 1: []}, root=0
    )
    with pytest.raises(DecompositionError):
        bad.validate(graph)


def test_validate_catches_disconnected_occurrences():
    graph = Graph([(1, 2), (2, 3)])
    bad = TreeDecomposition(
        bags={0: frozenset({1, 2}), 1: frozenset({2, 3}), 2: frozenset({1})},
        children={0: [1], 1: [2], 2: []},
        root=0,
    )
    with pytest.raises(DecompositionError):
        bad.validate(graph)


def test_traversals_and_relabel():
    graph = grid_graph(2, 3)
    decomposition = tree_decomposition(graph)
    topo = decomposition.topological_order()
    post = decomposition.post_order()
    assert set(topo) == set(post) == set(decomposition.nodes())
    assert topo[0] == decomposition.root
    assert post[-1] == decomposition.root
    relabeled = decomposition.relabel()
    relabeled.validate(graph)
    assert sorted(relabeled.nodes()) == list(range(len(relabeled)))


def test_dfs_vertex_order_covers_all_vertices():
    graph = grid_graph(2, 4)
    decomposition = tree_decomposition(graph)
    assert set(decomposition.dfs_vertex_order()) == set(graph.vertices)


def test_treewidth_lower_bound_is_a_lower_bound():
    for graph in (path_graph(6), cycle_graph(6), grid_graph(3, 3), complete_graph(5)):
        assert treewidth_lower_bound(graph) <= treewidth(graph, exact=len(graph) <= 9)
