"""Tests for the UCQ≠ tree automaton (the bounded-treewidth DP)."""

from fractions import Fraction

from repro.data.instance import Instance, fact
from repro.data.tid import ProbabilisticInstance
from repro.generators import (
    directed_path_instance,
    grid_instance,
    labelled_line_instance,
    random_binary_instance,
    random_probabilities,
    random_rst_instance,
    rst_chain_instance,
)
from repro.probability.brute_force import brute_force_probability
from repro.provenance.automata import accepts
from repro.provenance.tree_encoding import tree_encoding
from repro.provenance.ucq_automaton import (
    ucq_automaton,
    ucq_lineage_dnnf,
    ucq_probability_via_automaton,
)
from repro.queries import parse_cq, parse_ucq, qd, qp, satisfies, threshold_two_query, unsafe_rst


def assert_automaton_matches_semantics(query, instance):
    encoding = tree_encoding(instance)
    automaton = ucq_automaton(query)
    for world in instance.all_subinstances():
        assert accepts(automaton, encoding, world) == satisfies(world, query), (
            f"disagreement on world {world} for query {query}"
        )


def test_rst_on_chain():
    assert_automaton_matches_semantics(unsafe_rst(), rst_chain_instance(2))


def test_rst_on_random_instance():
    assert_automaton_matches_semantics(unsafe_rst(), random_rst_instance(4, 7, seed=1))


def test_path_query_on_path():
    assert_automaton_matches_semantics(parse_cq("E(x, y), E(y, z)"), directed_path_instance(4))


def test_qp_on_small_grid():
    assert_automaton_matches_semantics(qp(), grid_instance(2, 2))


def test_qp_on_path():
    assert_automaton_matches_semantics(qp(), directed_path_instance(4))


def test_qd_disconnected_query():
    assert_automaton_matches_semantics(qd(), directed_path_instance(4))


def test_threshold_query_with_disequality():
    instance = Instance([fact("R", "a"), fact("R", "b"), fact("R", "c")])
    assert_automaton_matches_semantics(threshold_two_query(), instance)


def test_union_query():
    query = parse_ucq("R(x), S(x, y) | T(y), S(x, y)")
    assert_automaton_matches_semantics(query, random_rst_instance(4, 6, seed=3))


def test_repeated_variable_atom():
    query = parse_cq("E(x, x)")
    instance = Instance([fact("E", "a", "a"), fact("E", "a", "b")])
    assert_automaton_matches_semantics(query, instance)


def test_query_with_disequality_on_binary_instance():
    query = parse_cq("E(x, y), E(y, z), x != z")
    assert_automaton_matches_semantics(query, random_binary_instance(4, 6, seed=5))


def test_ucq_lineage_dnnf_properties_and_probability():
    instance = rst_chain_instance(2)
    dnnf = ucq_lineage_dnnf(unsafe_rst(), instance)
    assert dnnf.check_decomposability()
    assert dnnf.check_determinism()
    tid = random_probabilities(instance, seed=9)
    valuation = {f: tid.probability_of(f) for f in dnnf.variables()}
    assert dnnf.probability(valuation) == brute_force_probability(unsafe_rst(), tid)


def test_ucq_probability_via_automaton_matches_brute_force():
    instance = random_rst_instance(3, 6, seed=13)
    tid = random_probabilities(instance, seed=13)
    assert ucq_probability_via_automaton(unsafe_rst(), tid) == brute_force_probability(
        unsafe_rst(), tid
    )


def test_ucq_probability_via_automaton_for_qp():
    instance = grid_instance(2, 2)
    tid = ProbabilisticInstance.uniform(instance, Fraction(1, 3))
    assert ucq_probability_via_automaton(qp(), tid) == brute_force_probability(qp(), tid)


def test_labelled_line_query():
    query = parse_cq("L(x), E(x, y), L(y)")
    assert_automaton_matches_semantics(query, labelled_line_instance(4))
