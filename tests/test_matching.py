"""Tests for query matching (homomorphisms, matches, minimal matches)."""

from repro.data.instance import Instance, fact
from repro.data.signature import Signature
from repro.generators import rst_bipartite_instance, rst_chain_instance
from repro.generators.random_instances import random_instance
from repro.queries import (
    cq_homomorphisms,
    cq_matches,
    minimal_matches,
    parse_cq,
    parse_ucq,
    qd,
    satisfies,
    threshold_two_query,
    ucq_matches,
    unsafe_rst,
)
from repro.queries.library import path_query, qp
from repro.queries.matching import cq_homomorphisms_naive


def test_homomorphisms_of_rst_on_chain():
    instance = rst_chain_instance(3)
    homs = list(cq_homomorphisms(unsafe_rst(), instance))
    assert len(homs) == 3


def test_homomorphisms_of_rst_on_bipartite():
    instance = rst_bipartite_instance(2)
    homs = list(cq_homomorphisms(unsafe_rst(), instance))
    assert len(homs) == 4


def test_matches_deduplicate():
    # Two homomorphisms with the same image yield one match.
    instance = Instance([fact("E", "a", "a2"), fact("E", "a2", "a")])
    query = parse_cq("E(x, y), E(y, x)")
    matches = list(cq_matches(query, instance))
    assert len(matches) == 1
    assert matches[0] == frozenset(instance.facts)


def test_disequality_filters_homomorphisms():
    instance = Instance([fact("R", "a"), fact("R", "b")])
    query = threshold_two_query()
    matches = list(cq_matches(query, instance))
    assert len(matches) == 1
    single = Instance([fact("R", "a")])
    assert list(cq_matches(query, single)) == []


def test_ucq_matches_union_over_disjuncts():
    instance = Instance([fact("R", "a"), fact("T", "b")])
    query = parse_ucq("R(x) | T(x)")
    assert len(ucq_matches(query, instance)) == 2


def test_minimal_matches_drop_supersets():
    # E(x,y) on a world where a match with extra facts is not minimal.
    instance = Instance([fact("E", "a", "b"), fact("E", "b", "c")])
    query = parse_ucq("E(x, y) | E(x, y), E(y, z)")
    minimal = minimal_matches(query, instance)
    assert all(len(match) == 1 for match in minimal)
    assert len(minimal) == 2


def test_satisfies():
    instance = rst_chain_instance(2)
    assert satisfies(instance, unsafe_rst())
    empty_world = instance.subinstance([])
    assert not satisfies(empty_world, unsafe_rst())


def test_satisfies_with_disequality():
    query = parse_cq("E(x, y), x != y")
    loopish = Instance([fact("E", "a", "a")])
    assert not satisfies(loopish, query)
    proper = Instance([fact("E", "a", "b")])
    assert satisfies(proper, query)


def test_repeated_variable_atom():
    query = parse_cq("E(x, x)")
    assert satisfies(Instance([fact("E", "a", "a")]), query)
    assert not satisfies(Instance([fact("E", "a", "b")]), query)


def test_match_on_larger_instance_counts():
    instance = rst_bipartite_instance(3)
    assert len(ucq_matches(unsafe_rst(), instance)) == 9
    assert len(minimal_matches(unsafe_rst(), instance)) == 9


def _canonical(homomorphisms):
    return sorted(sorted((v.name, value) for v, value in h.items()) for h in homomorphisms)


def test_none_is_a_legal_domain_element():
    # Regression: None used to double as the "unbound" sentinel, silently
    # rebinding variables already mapped to a None element.
    instance = Instance([fact("E", None, "a")])
    query = parse_cq("E(x, x)")
    assert list(cq_homomorphisms(query, instance)) == []
    assert list(cq_homomorphisms_naive(query, instance)) == []
    loop = Instance([fact("E", None, None)])
    assert list(cq_homomorphisms(query, loop)) == [
        {v: None for v in query.variables()}
    ]


def test_indexed_homomorphisms_agree_with_naive_scan():
    # The indexed join path must enumerate exactly the homomorphisms of the
    # seed linear-scan path, on queries with self-joins, disequalities,
    # repeated variables, and across random instances.
    signature = Signature([("R", 1), ("S", 2), ("T", 1), ("E", 2)])
    queries = [
        unsafe_rst(),
        qd(),
        path_query(3),
        threshold_two_query(),
        parse_cq("E(x, x)"),
        parse_cq("E(x, y), E(y, x)"),
        *qp().disjuncts,
    ]
    for seed in range(12):
        instance = random_instance(signature, 6, 16, seed=seed)
        for query in queries:
            indexed = _canonical(cq_homomorphisms(query, instance))
            naive = _canonical(cq_homomorphisms_naive(query, instance))
            assert indexed == naive, (seed, str(query))
