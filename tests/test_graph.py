"""Tests for repro.structure.graph."""

from repro.structure.graph import (
    Graph,
    complete_bipartite_graph,
    complete_graph,
    cycle_graph,
    grid_graph,
    path_graph,
)


def test_add_edge_and_degree():
    graph = Graph([(1, 2), (2, 3)])
    assert graph.degree(2) == 2
    assert graph.degree(1) == 1
    assert graph.max_degree() == 2
    assert graph.has_edge(1, 2) and graph.has_edge(2, 1)
    assert not graph.has_edge(1, 3)


def test_self_loops_ignored():
    graph = Graph()
    graph.add_edge(1, 1)
    assert 1 in graph
    assert graph.edge_count() == 0


def test_remove_vertex_and_edge():
    graph = Graph([(1, 2), (2, 3)])
    graph.remove_edge(1, 2)
    assert not graph.has_edge(1, 2)
    graph.remove_vertex(3)
    assert 3 not in graph
    assert graph.degree(2) == 0


def test_copy_is_independent():
    graph = Graph([(1, 2)])
    clone = graph.copy()
    clone.add_edge(2, 3)
    assert 3 not in graph


def test_connected_components():
    graph = Graph([(1, 2), (3, 4)])
    components = graph.connected_components()
    assert len(components) == 2
    assert not graph.is_connected()
    assert Graph([(1, 2), (2, 3)]).is_connected()


def test_tree_and_cycle_detection():
    assert path_graph(5).is_tree()
    assert not cycle_graph(4).is_tree()
    assert cycle_graph(4).has_cycle()
    assert not path_graph(5).has_cycle()
    assert Graph([(1, 2), (3, 4)]).is_forest()


def test_regularity():
    assert cycle_graph(5).is_k_regular(2)
    assert not path_graph(3).is_k_regular(2)
    assert path_graph(3).is_K_regular({1, 2})


def test_shortest_path():
    graph = grid_graph(3, 3)
    path = graph.shortest_path((0, 0), (2, 2))
    assert path is not None
    assert len(path) == 5
    assert graph.shortest_path((0, 0), (0, 0)) == [(0, 0)]
    disconnected = Graph([(1, 2), (3, 4)])
    assert disconnected.shortest_path(1, 4) is None


def test_subgraph():
    graph = complete_graph(4)
    sub = graph.subgraph({0, 1, 2})
    assert len(sub) == 3
    assert sub.edge_count() == 3


def test_named_constructors_counts():
    assert complete_graph(5).edge_count() == 10
    assert path_graph(5).edge_count() == 4
    assert cycle_graph(5).edge_count() == 5
    assert grid_graph(3, 4).edge_count() == 3 * 3 + 2 * 4
    assert complete_bipartite_graph(2, 3).edge_count() == 6


def test_networkx_roundtrip():
    graph = grid_graph(2, 3)
    roundtrip = Graph.from_networkx(graph.to_networkx())
    assert set(map(frozenset, roundtrip.edges())) == set(map(frozenset, graph.edges()))
