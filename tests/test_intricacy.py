"""Tests for line instances and the intricacy meta-dichotomy machinery (Section 8.2)."""

import pytest

from repro.data.signature import GRAPH_SIGNATURE, Signature
from repro.data.gaifman import instance_treewidth
from repro.errors import QueryError
from repro.queries import (
    all_line_instances,
    find_intricacy_counterexample,
    is_intricate,
    is_n_intricate,
    line_instance,
    middle_facts,
    parse_cq,
    parse_ucq,
    qd,
    qp,
    threshold_two_query,
    two_incident_same_direction,
    unsafe_rst,
)
from repro.queries.intricacy import non_intricate_counterexample_family

RST_SIGNATURE = Signature([("R", 1), ("S", 2), ("T", 1)])


def test_line_instance_shape():
    line = line_instance((("E", True), ("E", False), ("E", True)))
    assert len(line) == 3
    assert line.domain_size == 4
    from repro.data.instance import fact

    assert fact("E", "a1", "a2") in line
    assert fact("E", "a3", "a2") in line


def test_all_line_instances_count():
    assert sum(1 for _ in all_line_instances(3, GRAPH_SIGNATURE)) == 8
    two_relations = Signature([("E", 2), ("F", 2)])
    assert sum(1 for _ in all_line_instances(2, two_relations)) == 16


def test_all_line_instances_requires_binary_relation():
    with pytest.raises(QueryError):
        list(all_line_instances(2, Signature([("R", 1)])))


def test_middle_facts():
    line = line_instance((("E", True), ("E", True), ("E", True), ("E", True)))
    first, second = middle_facts(line)
    elements = set(first.arguments) | set(second.arguments)
    assert "a3" in first.arguments and "a3" in second.arguments
    assert len(elements) == 3
    with pytest.raises(QueryError):
        middle_facts(line_instance((("E", True),)))


def test_qp_is_intricate():
    # q_p is 0-intricate (Theorem 8.1), hence intricate.
    assert is_n_intricate(qp(), 0)
    assert is_intricate(qp())


def test_unsafe_rst_is_not_intricate():
    # Proposition 8.8 / the S-grid discussion: the unsafe RST query is not intricate.
    assert not is_intricate(unsafe_rst(), RST_SIGNATURE)
    witness = find_intricacy_counterexample(unsafe_rst(), 0, RST_SIGNATURE)
    assert witness is not None


def test_connected_cq_without_disequalities_is_not_intricate():
    # Proposition 8.8: connected CQ≠ (in particular plain CQs) are never intricate.
    assert not is_intricate(two_incident_same_direction())
    assert not is_intricate(parse_cq("E(x, y), E(y, z), E(z, w)"))


def test_query_without_binary_relations_is_not_intricate():
    assert not is_intricate(threshold_two_query())


def test_small_queries_are_not_intricate():
    assert not is_intricate(parse_cq("E(x, y)"))


def test_intricacy_enumeration_guard():
    with pytest.raises(QueryError):
        is_intricate(qd(), max_line_instances=10)


def test_qd_against_meta_dichotomy():
    # q_d is disconnected; Proposition 8.10 shows it escapes the meta-dichotomy.
    # Its |q|-intricacy check is feasible (single binary relation).
    assert not is_n_intricate(qd(), 0)


def test_non_intricate_counterexample_family():
    family = non_intricate_counterexample_family(unsafe_rst(), RST_SIGNATURE, sizes=(3, 4))
    assert len(family) == 2
    assert instance_treewidth(family[1]) > 1


def test_counterexample_family_rejected_for_intricate_query():
    with pytest.raises(QueryError):
        non_intricate_counterexample_family(qp(), sizes=(3,))
