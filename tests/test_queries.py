"""Tests for query ASTs (atoms, CQ, UCQ) and the parser."""

import pytest

from repro.errors import QueryError
from repro.queries import (
    Atom,
    ConjunctiveQuery,
    Disequality,
    UnionOfConjunctiveQueries,
    Variable,
    as_ucq,
    atom,
    cq,
    neq,
    parse_cq,
    parse_ucq,
    ucq,
    var,
)


def test_atom_helpers():
    a = atom("R", "x", "y")
    assert a.arity == 2
    assert a.variables() == (var("x"), var("y"))
    assert not a.has_repeated_variable()
    assert atom("R", "x", "x").has_repeated_variable()
    assert str(a) == "R(x, y)"


def test_variable_validation():
    with pytest.raises(QueryError):
        Variable("")


def test_disequality_validation_and_normalization():
    with pytest.raises(QueryError):
        neq("x", "x")
    d = neq("y", "x")
    assert d.normalized() == neq("x", "y")


def test_cq_requires_atoms_and_diseq_variables_bound():
    with pytest.raises(QueryError):
        ConjunctiveQuery(())
    with pytest.raises(QueryError):
        ConjunctiveQuery((atom("R", "x"),), (neq("x", "z"),))


def test_cq_size_counts_all_atoms():
    query = cq([atom("R", "x"), atom("S", "x", "y")], [neq("x", "y")])
    assert query.size == 3
    assert query.variables() == (var("x"), var("y"))
    assert query.relations() == ("R", "S")
    assert query.has_disequalities()


def test_cq_signature_inference():
    query = cq([atom("R", "x"), atom("S", "x", "y")])
    assert query.signature().arity("S") == 2
    with pytest.raises(QueryError):
        cq([atom("R", "x"), atom("R", "x", "y")]).signature()


def test_connectivity():
    connected = cq([atom("R", "x"), atom("S", "x", "y")])
    assert connected.is_connected()
    disconnected = cq([atom("R", "x"), atom("T", "y")])
    assert not disconnected.is_connected()
    components = disconnected.connected_components()
    assert len(components) == 2


def test_cross_component_disequality_rejected():
    disconnected = cq([atom("R", "x"), atom("T", "y")], [neq("x", "y")])
    with pytest.raises(QueryError):
        disconnected.connected_components()


def test_self_join_freeness():
    assert cq([atom("R", "x"), atom("S", "x", "y")]).is_self_join_free()
    assert not cq([atom("R", "x"), atom("R", "y")]).is_self_join_free()


def test_rename_variables():
    query = cq([atom("S", "x", "y")], [neq("x", "y")])
    renamed = query.rename_variables({var("x"): var("z")})
    assert renamed.atoms[0].arguments == (var("z"), var("y"))
    assert renamed.disequalities[0].left == var("z")


def test_ucq_construction_and_measures():
    query = ucq([cq([atom("R", "x")]), cq([atom("S", "x", "y")], [neq("x", "y")])])
    assert query.size == 3
    assert query.has_disequalities()
    assert not query.is_ucq()
    assert len(query) == 2
    assert query.relations() == ("R", "S")
    with pytest.raises(QueryError):
        UnionOfConjunctiveQueries(())


def test_as_ucq():
    single = cq([atom("R", "x")])
    assert isinstance(as_ucq(single), UnionOfConjunctiveQueries)
    assert as_ucq(as_ucq(single)) == as_ucq(single)
    with pytest.raises(QueryError):
        as_ucq("not a query")


def test_parse_cq():
    query = parse_cq("R(x), S(x, y), x != y")
    assert len(query.atoms) == 2
    assert len(query.disequalities) == 1
    assert query.atoms[1] == atom("S", "x", "y")


def test_parse_ucq():
    query = parse_ucq("R(x), S(x, y) | T(z)")
    assert len(query.disjuncts) == 2


def test_parse_errors():
    with pytest.raises(QueryError):
        parse_cq("R(x")
    with pytest.raises(QueryError):
        parse_cq("R()")
    with pytest.raises(QueryError):
        parse_cq("x y z")
    with pytest.raises(QueryError):
        parse_ucq("   |   ")


def test_str_representations():
    query = parse_ucq("R(x) | S(x, y), x != y")
    text = str(query)
    assert "R(x)" in text and "!=" in text
