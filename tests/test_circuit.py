"""Tests for Boolean circuits."""

import pytest

from repro.booleans.circuit import BooleanCircuit, GateKind, circuit_from_function
from repro.errors import LineageError


def xor_circuit():
    circuit = BooleanCircuit()
    x = circuit.variable("x")
    y = circuit.variable("y")
    circuit.set_output(
        circuit.disjunction(
            [
                circuit.conjunction([x, circuit.negation(y)]),
                circuit.conjunction([circuit.negation(x), y]),
            ]
        )
    )
    return circuit


def test_evaluate_xor():
    circuit = xor_circuit()
    assert circuit.evaluate({"x": True, "y": False})
    assert circuit.evaluate({"x": False, "y": True})
    assert not circuit.evaluate({"x": True, "y": True})
    assert not circuit.evaluate({"x": False, "y": False})


def test_missing_variable_raises():
    circuit = xor_circuit()
    with pytest.raises(LineageError):
        circuit.evaluate({"x": True})


def test_variable_and_constant_sharing():
    circuit = BooleanCircuit()
    assert circuit.variable("x") == circuit.variable("x")
    assert circuit.constant(True) == circuit.constant(True)
    assert circuit.constant(True) != circuit.constant(False)


def test_empty_connectives_are_constants():
    circuit = BooleanCircuit()
    circuit.set_output(circuit.conjunction([]))
    assert circuit.evaluate({})
    circuit2 = BooleanCircuit()
    circuit2.set_output(circuit2.disjunction([]))
    assert not circuit2.evaluate({})


def test_single_input_connective_collapses():
    circuit = BooleanCircuit()
    x = circuit.variable("x")
    assert circuit.conjunction([x]) == x
    assert circuit.disjunction([x]) == x


def test_monotone_detection():
    circuit = xor_circuit()
    assert not circuit.is_monotone()
    monotone = BooleanCircuit()
    monotone.set_output(monotone.conjunction([monotone.variable("x"), monotone.variable("y")]))
    assert monotone.is_monotone()


def test_pruned_removes_unreachable_gates():
    circuit = BooleanCircuit()
    x = circuit.variable("x")
    circuit.conjunction([x, circuit.variable("dead")])  # unreachable
    circuit.set_output(x)
    pruned = circuit.pruned()
    assert pruned.size < circuit.size
    assert pruned.evaluate({"x": True, "dead": False})


def test_restrict():
    circuit = xor_circuit()
    restricted = circuit.restrict({"y": True})
    assert restricted.evaluate({"x": False})
    assert not restricted.evaluate({"x": True})


def test_model_count_and_satisfying_assignments():
    circuit = xor_circuit()
    assert circuit.model_count() == 2
    assignments = list(circuit.satisfying_assignments())
    assert len(assignments) == 2


def test_equivalence_check():
    assert xor_circuit().equivalent_to(xor_circuit())
    other = BooleanCircuit()
    other.set_output(other.conjunction([other.variable("x"), other.variable("y")]))
    assert not xor_circuit().equivalent_to(other)


def test_circuit_from_function():
    circuit = circuit_from_function(["a", "b"], lambda v: v["a"] and not v["b"])
    assert circuit.evaluate({"a": True, "b": False})
    assert not circuit.evaluate({"a": True, "b": True})


def test_to_graph_and_treewidth():
    circuit = xor_circuit()
    graph = circuit.to_graph()
    assert len(graph) == circuit.size
    assert circuit.treewidth() >= 1
    assert circuit.pathwidth() >= 1


def test_gate_kind_introspection():
    circuit = xor_circuit()
    kinds = {gate.kind for _, gate in circuit.gates()}
    assert GateKind.VAR in kinds and GateKind.NOT in kinds


def test_wire_count():
    circuit = xor_circuit()
    assert circuit.wire_count() > 0
