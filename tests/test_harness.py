"""Tests for the experiment harness."""

from repro.experiments import ScalingSeries, classify_growth, format_table, run_series


def series_from(values):
    series = ScalingSeries("test")
    for size, value in values:
        series.add(size, value)
    return series


def test_loglog_slope_linear():
    series = series_from([(10, 10), (20, 20), (40, 40)])
    assert abs(series.loglog_slope() - 1.0) < 0.01


def test_loglog_slope_quadratic():
    series = series_from([(10, 100), (20, 400), (40, 1600)])
    assert abs(series.loglog_slope() - 2.0) < 0.01


def test_constant_detection():
    series = series_from([(10, 3), (20, 3), (40, 4)])
    assert series.is_roughly_constant()
    assert classify_growth(series) == "constant"


def test_classify_growth_linear_and_super():
    linear = series_from([(10, 11), (20, 21), (40, 39)])
    assert classify_growth(linear) == "linear"
    explosive = series_from([(4, 16), (5, 64), (6, 512), (7, 8192)])
    assert classify_growth(explosive) in ("super-polynomial", "polynomial (high degree) or worse")


def test_growth_ratios_and_rows():
    series = series_from([(1, 2), (2, 4), (3, 8)])
    assert series.growth_ratios() == [2.0, 2.0]
    assert series.rows() == [(1.0, 2.0), (2.0, 4.0), (3.0, 8.0)]
    assert len(series) == 3


def test_run_series():
    series = run_series("squares", [1, 2, 3], lambda n: n * n)
    assert series.values == [1.0, 4.0, 9.0]


def test_format_table():
    text = format_table(["a", "bb"], [[1, 22], [333, 4]])
    lines = text.splitlines()
    assert len(lines) == 4
    assert "a" in lines[0] and "bb" in lines[0]
    assert "333" in lines[3]


def test_degenerate_series():
    empty = ScalingSeries("empty")
    assert empty.loglog_slope() == 0.0
    assert empty.is_roughly_constant()


def test_speedup_trajectory():
    from repro.experiments import speedup_trajectory

    trajectory = ScalingSeries("parallel time (s)")
    trajectory.add(1, 4.0)
    trajectory.add(2, 2.0)
    trajectory.add(4, 0.0)
    result = speedup_trajectory(4.0, trajectory)
    assert result["1"] == 1.0
    assert result["2"] == 2.0
    assert result["4"] == float("inf")
