"""Tests for clique-width expressions (repro.structure.clique_width)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.counting.match_counting import count_independent_sets_brute_force
from repro.data.instance import Instance, fact
from repro.data.signature import Signature
from repro.errors import DecompositionError
from repro.generators.grids import graph_to_instance
from repro.structure.clique_width import (
    CliqueWidthExpression,
    clique_expression,
    cograph_expression,
    complete_bipartite_expression,
    count_edges,
    count_independent_sets,
    expression_from_graph,
    maximum_independent_set,
    path_expression,
)
from repro.structure.graph import Graph, complete_bipartite_graph, complete_graph, path_graph


# -- construction and evaluation -----------------------------------------------------


def test_create_and_union_evaluate_to_labelled_graph():
    left = CliqueWidthExpression.create(1, "a")
    right = CliqueWidthExpression.create(2, "b")
    expression = CliqueWidthExpression.union(left, right)
    graph, labelling = expression.evaluate()
    assert set(graph.vertices) == {"a", "b"}
    assert graph.edge_count() == 0
    assert labelling == {"a": 1, "b": 2}


def test_add_edges_and_relabel():
    expression = CliqueWidthExpression.add_edges(
        CliqueWidthExpression.union(
            CliqueWidthExpression.create(1, "a"), CliqueWidthExpression.create(2, "b")
        ),
        1,
        2,
    )
    graph, _ = expression.evaluate()
    assert graph.has_edge("a", "b")
    relabelled = CliqueWidthExpression.relabel(expression, 2, 1)
    _, labelling = relabelled.evaluate()
    assert set(labelling.values()) == {1}


def test_add_edges_requires_distinct_labels():
    leaf = CliqueWidthExpression.create(1, "a")
    with pytest.raises(DecompositionError):
        CliqueWidthExpression.add_edges(leaf, 1, 1)


def test_validate_rejects_duplicate_vertices_and_bad_arity():
    duplicated = CliqueWidthExpression.union(
        CliqueWidthExpression.create(1, "a"), CliqueWidthExpression.create(2, "a")
    )
    with pytest.raises(DecompositionError):
        duplicated.validate()
    bad = CliqueWidthExpression("union", children=(CliqueWidthExpression.create(1, "a"),))
    with pytest.raises(DecompositionError):
        bad.validate()
    unknown = CliqueWidthExpression("mystery")
    with pytest.raises(DecompositionError):
        unknown.validate()


def test_width_size_vertices_and_str():
    expression = clique_expression(4)
    assert expression.width == 2
    assert set(expression.vertices) == {"v0", "v1", "v2", "v3"}
    assert expression.size() >= 4
    text = str(expression)
    assert "⊕" in text and "η" in text and "ρ" in text


# -- ready-made families ----------------------------------------------------------------


@pytest.mark.parametrize("n", [1, 2, 3, 5])
def test_clique_expression_denotes_complete_graph(n):
    graph = clique_expression(n).to_graph()
    expected = complete_graph(n)
    assert len(graph.vertices) == n
    assert graph.edge_count() == expected.edge_count()


def test_clique_expression_has_width_two_despite_unbounded_treewidth():
    expression = clique_expression(6)
    assert expression.width == 2
    from repro.structure.tree_decomposition import treewidth

    assert treewidth(expression.to_graph()) == 5


@pytest.mark.parametrize("m,n", [(1, 1), (2, 3), (3, 3)])
def test_complete_bipartite_expression(m, n):
    graph = complete_bipartite_expression(m, n).to_graph()
    expected = complete_bipartite_graph(m, n)
    assert len(graph.vertices) == m + n
    assert graph.edge_count() == expected.edge_count() == m * n


def test_path_expression_denotes_path():
    graph = path_expression(5).to_graph()
    expected = path_graph(5)
    assert graph.edge_count() == expected.edge_count() == 4
    assert path_expression(5).width == 3


def test_family_constructors_reject_empty_inputs():
    with pytest.raises(DecompositionError):
        clique_expression(0)
    with pytest.raises(DecompositionError):
        complete_bipartite_expression(0, 2)
    with pytest.raises(DecompositionError):
        path_expression(0)


def test_cograph_expression_join_and_union():
    # (a join b) union (c join d): two disjoint edges.
    cotree = ("union", [("join", ["a", "b"]), ("join", ["c", "d"])])
    expression = cograph_expression(cotree)
    graph = expression.to_graph()
    assert expression.width == 2
    assert graph.edge_count() == 2
    assert len(graph.connected_components()) == 2
    with pytest.raises(DecompositionError):
        cograph_expression(("join", []))


def test_cograph_expression_join_of_three_is_triangle():
    graph = cograph_expression(("join", ["a", "b", "c"])).to_graph()
    assert graph.edge_count() == 3


# -- dynamic programming --------------------------------------------------------------------


def test_count_edges_matches_graph():
    assert count_edges(clique_expression(5)) == 10
    assert count_edges(path_expression(4)) == 3


@pytest.mark.parametrize("n", [1, 2, 3, 4, 5])
def test_maximum_independent_set_on_cliques_and_paths(n):
    assert maximum_independent_set(clique_expression(n)) == 1
    assert maximum_independent_set(path_expression(n)) == (n + 1) // 2


def test_maximum_independent_set_on_complete_bipartite():
    assert maximum_independent_set(complete_bipartite_expression(3, 5)) == 5


@pytest.mark.parametrize("n", [2, 3, 4])
def test_count_independent_sets_matches_brute_force_on_cliques(n):
    expression = clique_expression(n)
    instance = graph_to_instance(expression.to_graph())
    assert count_independent_sets(expression) == count_independent_sets_brute_force(instance)


def test_count_independent_sets_single_vertex():
    # The instance encoding drops isolated vertices, so compare against the
    # graph-level count directly: the empty set and the singleton.
    assert count_independent_sets(clique_expression(1)) == 2


def test_count_independent_sets_matches_brute_force_on_paths_and_bipartite():
    for expression in (path_expression(4), complete_bipartite_expression(2, 3)):
        instance = graph_to_instance(expression.to_graph())
        assert count_independent_sets(expression) == count_independent_sets_brute_force(instance)


def test_expression_from_graph_reference_construction():
    graph = path_graph(4)
    expression = expression_from_graph(graph)
    assert expression.to_graph().edge_count() == graph.edge_count()
    assert expression.width == 4
    with pytest.raises(DecompositionError):
        expression_from_graph(Graph())
    with pytest.raises(DecompositionError):
        expression_from_graph(complete_graph(12), max_width=8)


@settings(max_examples=25, deadline=None)
@given(
    edges=st.lists(
        st.tuples(st.integers(min_value=0, max_value=4), st.integers(min_value=0, max_value=4)),
        min_size=1,
        max_size=8,
    )
)
def test_independent_set_dp_matches_brute_force_on_random_graphs(edges):
    """The clique-width DP agrees with brute force via the trivial k-expression."""
    graph = Graph()
    for index in range(5):
        graph.add_vertex(index)
    for u, v in edges:
        if u != v:
            graph.add_edge(u, v)
    expression = expression_from_graph(graph)
    instance = graph_to_instance(graph) if graph.edge_count() else None
    dp_count = count_independent_sets(expression)
    # Brute force over all vertex subsets.
    vertices = list(graph.vertices)
    expected = 0
    for mask in range(1 << len(vertices)):
        chosen = [vertices[i] for i in range(len(vertices)) if mask >> i & 1]
        if all(not graph.has_edge(a, b) for i, a in enumerate(chosen) for b in chosen[i + 1 :]):
            expected += 1
    assert dp_count == expected
    assert maximum_independent_set(expression) == max(
        bin(mask).count("1")
        for mask in range(1 << len(vertices))
        if all(
            not graph.has_edge(vertices[i], vertices[j])
            for i in range(len(vertices))
            for j in range(i + 1, len(vertices))
            if mask >> i & 1 and mask >> j & 1
        )
    )
