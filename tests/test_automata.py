"""Tests for tree automata over encodings: model checking, reachable states, probability DP."""

from fractions import Fraction

import pytest

from repro.data.instance import Instance, fact
from repro.data.tid import ProbabilisticInstance
from repro.errors import LineageError
from repro.generators import grid_instance, labelled_line_instance, random_probabilities
from repro.probability.brute_force import brute_force_property_probability
from repro.provenance.automata import (
    accepts,
    automaton_probability,
    model_check,
    reachable_states,
    run_automaton,
)
from repro.provenance.mso_properties import (
    all_facts_present_automaton,
    fact_count_parity_automaton,
    incident_pair_automaton,
    matching_world_automaton,
    nonempty_automaton,
    parity_automaton,
    threshold_automaton,
)
from repro.provenance.tree_encoding import tree_encoding


def test_parity_automaton_model_checking():
    instance = labelled_line_instance(5)
    encoding = tree_encoding(instance)
    automaton = parity_automaton("L")
    assert model_check(automaton, encoding)  # 5 L-facts: odd
    even_world = [f for f in instance if f.relation == "E"] + list(instance.facts_of("L"))[:4]
    assert not accepts(automaton, encoding, even_world)


def test_threshold_and_nonempty_automata():
    instance = labelled_line_instance(4)
    encoding = tree_encoding(instance)
    assert model_check(threshold_automaton(2, "L"), encoding)
    assert not accepts(threshold_automaton(2, "L"), encoding, [])
    assert model_check(nonempty_automaton(), encoding)
    assert not accepts(nonempty_automaton("L"), encoding, instance.facts_of("E"))


def test_all_facts_present_automaton():
    instance = labelled_line_instance(3)
    encoding = tree_encoding(instance)
    assert model_check(all_facts_present_automaton(), encoding)
    assert not accepts(all_facts_present_automaton(), encoding, list(instance.facts)[:-1])
    assert accepts(all_facts_present_automaton("L"), encoding, instance.facts_of("L"))


def test_incident_pair_automaton_against_semantics():
    instance = grid_instance(2, 3)
    encoding = tree_encoding(instance)
    automaton = incident_pair_automaton()

    def has_incident_pair(world):
        facts = list(world)
        for i, a in enumerate(facts):
            for b in facts[i + 1 :]:
                if set(a.elements()) & set(b.elements()):
                    return True
        return False

    for world in instance.all_subinstances():
        assert accepts(automaton, encoding, world) == has_incident_pair(world)


def test_matching_world_automaton_is_complement():
    instance = grid_instance(2, 2)
    encoding = tree_encoding(instance)
    violation = incident_pair_automaton()
    matching = matching_world_automaton()
    for world in instance.all_subinstances():
        assert accepts(matching, encoding, world) == (not accepts(violation, encoding, world))


def test_run_automaton_with_mapping_world():
    instance = labelled_line_instance(3)
    encoding = tree_encoding(instance)
    world = {f: f.relation == "E" for f in instance}
    state = run_automaton(parity_automaton("L"), encoding, world)
    assert state is False


def test_reachable_states_bounded():
    instance = labelled_line_instance(6)
    encoding = tree_encoding(instance)
    reachable = reachable_states(parity_automaton("L"), encoding)
    assert all(len(states) <= 2 for states in reachable.values())


def test_automaton_probability_matches_brute_force():
    instance = labelled_line_instance(4)
    encoding = tree_encoding(instance)
    tid = random_probabilities(instance, seed=7)
    automaton = parity_automaton("L")
    expected = brute_force_property_probability(
        lambda world: len(world.facts_of("L")) % 2 == 1, tid
    )
    assert automaton_probability(automaton, encoding, tid) == expected


def test_automaton_probability_incident_pairs():
    instance = grid_instance(2, 2)
    encoding = tree_encoding(instance)
    tid = ProbabilisticInstance.uniform(instance, Fraction(1, 2))

    def has_incident_pair(world):
        facts = list(world)
        for i, a in enumerate(facts):
            for b in facts[i + 1 :]:
                if set(a.elements()) & set(b.elements()):
                    return True
        return False

    expected = brute_force_property_probability(has_incident_pair, tid)
    assert automaton_probability(incident_pair_automaton(), encoding, tid) == expected


def test_automaton_probability_requires_matching_instance():
    instance = labelled_line_instance(3)
    other = labelled_line_instance(4)
    encoding = tree_encoding(instance)
    tid = ProbabilisticInstance.uniform(other, Fraction(1, 2))
    with pytest.raises(LineageError):
        automaton_probability(parity_automaton("L"), encoding, tid)
