"""Tests for decomposition-derived fact orders."""

import pytest

from repro.data.instance import Instance, fact
from repro.errors import CompilationError
from repro.generators import directed_path_instance, grid_instance, rst_chain_instance
from repro.provenance.variable_orders import (
    default_fact_order,
    element_major_order,
    fact_order_from_path_decomposition,
    fact_order_from_tree_decomposition,
)


def test_orders_are_permutations_of_facts():
    for instance in (rst_chain_instance(3), grid_instance(3, 3), directed_path_instance(5)):
        for order in (
            fact_order_from_tree_decomposition(instance),
            fact_order_from_path_decomposition(instance),
            default_fact_order(instance),
        ):
            assert sorted(map(str, order)) == sorted(map(str, instance.facts))


def test_path_order_follows_the_path():
    instance = directed_path_instance(6)
    order = fact_order_from_path_decomposition(instance)
    # Facts along a path should be enumerated monotonically along the path
    # (up to the direction of the traversal).
    positions = [int(f.arguments[0][1:]) for f in order]
    assert positions == sorted(positions) or positions == sorted(positions, reverse=True)


def test_element_major_order():
    instance = Instance([fact("S", "a", "b"), fact("S", "b", "c"), fact("R", "a")])
    order = element_major_order(instance, ["a", "b", "c"])
    assert order[0] == fact("R", "a")
    assert order[-1] == fact("S", "b", "c")
    with pytest.raises(CompilationError):
        element_major_order(instance, ["a"])


def test_rst_chain_order_groups_chain_links():
    instance = rst_chain_instance(3)
    order = default_fact_order(instance)
    # Facts of the same chain link (a_i, b_i) should be close to each other:
    # the maximum spread of a link's three facts must be small.
    index = {f: i for i, f in enumerate(order)}
    for i in range(3):
        link = [fact("R", (f"a{i}")), fact("S", f"a{i}", f"b{i}"), fact("T", f"b{i}")]
        positions = [index[f] for f in link]
        assert max(positions) - min(positions) <= 4
