"""Tests for the semiring provenance subpackage (repro.semirings)."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.booleans.circuit import BooleanCircuit
from repro.data.instance import Fact, fact
from repro.errors import LineageError
from repro.generators.lines import rst_chain_instance, unary_instance
from repro.provenance.lineage import lineage_of
from repro.queries.library import threshold_two_query, unsafe_rst
from repro.queries.parser import parse_cq, parse_ucq
from repro.semirings import (
    BOOLEAN,
    COUNTING,
    SECURITY,
    TROPICAL,
    VITERBI,
    WHY,
    Monomial,
    ProvenancePolynomial,
    evaluate_circuit_in_semiring,
    evaluate_lineage_in_semiring,
    polynomial_semiring,
    query_provenance_polynomial,
    query_semiring_annotation,
    why_provenance,
)
from repro.semirings.semirings import Semiring, check_semiring_laws


# -- semiring laws ---------------------------------------------------------------


@pytest.mark.parametrize(
    "semiring,samples",
    [
        (BOOLEAN, [False, True]),
        (COUNTING, [0, 1, 2, 3, 7]),
        (TROPICAL, [float("inf"), 0.0, 1.0, 2.5, 10.0]),
        (VITERBI, [0.0, 0.25, 0.5, 1.0]),
        (SECURITY, [0, 1, 2, 5, 10**9]),
        (WHY, [frozenset(), why_provenance([["a"]]), why_provenance([["a", "b"], ["c"]])]),
    ],
)
def test_builtin_semirings_satisfy_laws(semiring, samples):
    check_semiring_laws(semiring, samples)


def test_polynomial_semiring_laws_on_small_sample():
    x = ProvenancePolynomial.variable("x")
    y = ProvenancePolynomial.variable("y")
    samples = [ProvenancePolynomial.zero(), ProvenancePolynomial.one(), x, y, x + y, x * y]
    check_semiring_laws(polynomial_semiring(), samples)


def test_check_semiring_laws_catches_violations():
    broken = Semiring(
        name="Broken", zero=0, one=1, plus=lambda a, b: a - b, times=lambda a, b: a * b
    )
    with pytest.raises(AssertionError):
        check_semiring_laws(broken, [0, 1, 2])


def test_semiring_sum_and_product_helpers():
    assert COUNTING.sum([1, 2, 3]) == 6
    assert COUNTING.product([2, 3, 4]) == 24
    assert COUNTING.sum([]) == 0
    assert COUNTING.product([]) == 1
    assert "Counting" in repr(COUNTING)


# -- monomials and polynomials ------------------------------------------------------


def test_monomial_construction_and_product():
    m = Monomial.of(["x", "x", "y"])
    assert m.degree == 3
    assert m.variables() == frozenset({"x", "y"})
    assert str(m) in {"x^2*y", "y*x^2"}
    n = Monomial.of({"y": 1})
    assert (m * n).degree == 4
    assert Monomial.unit().degree == 0
    with pytest.raises(LineageError):
        Monomial.of({"x": 0})


def test_polynomial_basic_algebra():
    x = ProvenancePolynomial.variable("x")
    y = ProvenancePolynomial.variable("y")
    p = (x + y) * (x + y)
    # (x + y)^2 = x^2 + 2xy + y^2
    assert p.coefficient_of(Monomial.of(["x", "x"])) == 1
    assert p.coefficient_of(Monomial.of(["x", "y"])) == 2
    assert p.coefficient_of(Monomial.of(["y", "y"])) == 1
    assert p.monomial_count == 3
    assert p.total_degree() == 2
    assert p.variables() == frozenset({"x", "y"})
    assert not p.is_zero()
    assert ProvenancePolynomial.zero().is_zero()
    assert "2*" in str(p)
    assert str(ProvenancePolynomial.zero()) == "0"


def test_polynomial_rejects_negative_coefficients():
    with pytest.raises(LineageError):
        ProvenancePolynomial.from_terms([(Monomial.unit(), -1)])


def test_polynomial_specialisation_counting_and_boolean():
    x = ProvenancePolynomial.variable("x")
    y = ProvenancePolynomial.variable("y")
    p = x * x + x * y + y
    assert p.specialize(COUNTING, {"x": 2, "y": 3}) == 4 + 6 + 3
    assert p.to_boolean_lineage({"x": False, "y": True}) is True
    assert p.to_boolean_lineage({"x": False, "y": False}) is False
    with pytest.raises(LineageError):
        p.specialize(COUNTING, {"x": 2})


def test_polynomial_images_drop_coefficients_exponents_why():
    x = ProvenancePolynomial.variable("x")
    y = ProvenancePolynomial.variable("y")
    p = x * x + x * y + x * y
    dropped = p.drop_coefficients()
    assert all(coefficient == 1 for _, coefficient in dropped.terms)
    flattened = p.drop_exponents()
    assert flattened.coefficient_of(Monomial.of(["x"])) == 1
    assert p.why() == frozenset({frozenset({"x"}), frozenset({"x", "y"})})


def test_specialisation_is_homomorphic_into_tropical():
    x = ProvenancePolynomial.variable("x")
    y = ProvenancePolynomial.variable("y")
    p, q = x + y, x * y
    valuation = {"x": 2.0, "y": 5.0}
    assert (p + q).specialize(TROPICAL, valuation) == min(
        p.specialize(TROPICAL, valuation), q.specialize(TROPICAL, valuation)
    )
    assert (p * q).specialize(TROPICAL, valuation) == p.specialize(
        TROPICAL, valuation
    ) + q.specialize(TROPICAL, valuation)


# -- circuit and lineage evaluation ---------------------------------------------------


def test_evaluate_circuit_in_counting_semiring():
    circuit = BooleanCircuit()
    a, b, c = (circuit.variable(name) for name in "abc")
    circuit.set_output(circuit.disjunction([circuit.conjunction([a, b]), c]))
    value = evaluate_circuit_in_semiring(circuit, COUNTING, {"a": 2, "b": 3, "c": 4})
    assert value == 2 * 3 + 4


def test_evaluate_circuit_rejects_negation_and_missing_annotations():
    circuit = BooleanCircuit()
    a = circuit.variable("a")
    circuit.set_output(circuit.negation(a))
    with pytest.raises(LineageError):
        evaluate_circuit_in_semiring(circuit, COUNTING, {"a": 1})
    circuit = BooleanCircuit()
    circuit.set_output(circuit.variable("a"))
    with pytest.raises(LineageError):
        evaluate_circuit_in_semiring(circuit, COUNTING, {})
    empty = BooleanCircuit()
    with pytest.raises(LineageError):
        evaluate_circuit_in_semiring(empty, COUNTING, {})


def test_evaluate_circuit_constants():
    circuit = BooleanCircuit()
    circuit.set_output(circuit.conjunction([circuit.constant(True), circuit.variable("a")]))
    assert evaluate_circuit_in_semiring(circuit, COUNTING, {"a": 5}) == 5


def test_evaluate_lineage_in_tropical_semiring():
    instance = rst_chain_instance(3)
    lineage = lineage_of(unsafe_rst(), instance)
    costs = {f: 1.0 for f in instance.facts}
    cheapest = evaluate_lineage_in_semiring(lineage, TROPICAL, costs)
    assert cheapest == 3.0  # every minimal match uses an R, an S and a T fact


def test_lineage_boolean_semiring_matches_lineage_semantics():
    instance = rst_chain_instance(3)
    lineage = lineage_of(unsafe_rst(), instance)
    annotations = {f: True for f in instance.facts}
    assert evaluate_lineage_in_semiring(lineage, BOOLEAN, annotations) is True
    annotations = {f: False for f in instance.facts}
    assert evaluate_lineage_in_semiring(lineage, BOOLEAN, annotations) is False


# -- query provenance ------------------------------------------------------------------


def test_query_provenance_polynomial_counts_homomorphisms():
    instance = unary_instance(3)  # R(a1), R(a2), R(a3)
    query = parse_cq("R(x), R(y), x != y")
    polynomial = query_provenance_polynomial(query, instance)
    # Ordered pairs of distinct elements: 6 homomorphisms, each a degree-2 monomial.
    assert sum(coefficient for _, coefficient in polynomial.terms) == 6
    assert polynomial.total_degree() == 2
    assert polynomial.specialize(COUNTING, {f: 1 for f in instance.facts}) == 6


def test_query_provenance_polynomial_handles_repeated_atom_images():
    # R(x), R(y) without disequality: the homomorphism x=y=a uses fact R(a) twice.
    instance = unary_instance(1)
    query = parse_cq("R(x), R(y)")
    polynomial = query_provenance_polynomial(query, instance)
    only_fact = instance.facts[0]
    assert polynomial.coefficient_of(Monomial.of([only_fact, only_fact])) == 1


def test_query_provenance_polynomial_of_ucq_accumulates_disjuncts():
    instance = rst_chain_instance(2)
    query = parse_ucq("R(x) | T(y)")
    polynomial = query_provenance_polynomial(query, instance)
    assert polynomial.total_degree() == 1
    r_facts = instance.facts_of("R")
    t_facts = instance.facts_of("T")
    assert sum(coefficient for _, coefficient in polynomial.terms) == len(r_facts) + len(t_facts)


def test_query_semiring_annotation_security_level():
    instance = rst_chain_instance(2)
    query = unsafe_rst()
    annotations = {}
    for f in instance.facts:
        annotations[f] = 2 if f.relation == "S" else 1
    clearance = query_semiring_annotation(query, instance, SECURITY, annotations)
    # Every witness joins an R, an S and a T fact: clearance max(1, 2, 1) = 2,
    # and + takes the min over witnesses.
    assert clearance == 2


def test_query_semiring_annotation_defaults_to_one():
    instance = rst_chain_instance(2)
    query = unsafe_rst()
    assert query_semiring_annotation(instance=instance, query=query, semiring=COUNTING, annotations={}) >= 1


def test_boolean_specialisation_agrees_with_lineage():
    instance = rst_chain_instance(3)
    query = unsafe_rst()
    polynomial = query_provenance_polynomial(query, instance)
    lineage = lineage_of(query, instance)
    # Check agreement on a few specific worlds.
    facts = list(instance.facts)
    for mask in range(0, 1 << min(len(facts), 10), 7):
        world = {f: bool(mask >> i & 1) for i, f in enumerate(facts)}
        assert polynomial.to_boolean_lineage(world) == lineage.evaluate(world)


def test_threshold_query_counting_semantics():
    instance = unary_instance(4)
    query = threshold_two_query()
    polynomial = query_provenance_polynomial(query, instance)
    # 4 * 3 ordered pairs of distinct facts.
    assert polynomial.specialize(COUNTING, {f: 1 for f in instance.facts}) == 12


@settings(max_examples=50, deadline=None)
@given(
    exponents=st.lists(st.integers(min_value=0, max_value=3), min_size=3, max_size=3),
    values=st.lists(st.integers(min_value=0, max_value=5), min_size=3, max_size=3),
)
def test_counting_specialisation_matches_direct_arithmetic(exponents, values):
    """Specialising a single monomial to COUNTING is ordinary integer arithmetic."""
    variables = ["x", "y", "z"]
    powers = {v: e for v, e in zip(variables, exponents) if e > 0}
    if powers:
        polynomial = ProvenancePolynomial.from_terms([(Monomial.of(powers), 2)])
    else:
        polynomial = ProvenancePolynomial.from_terms([(Monomial.unit(), 2)])
    valuation = dict(zip(variables, values))
    expected = 2
    for variable, power in powers.items():
        expected *= valuation[variable] ** power
    assert polynomial.specialize(COUNTING, valuation) == expected


@settings(max_examples=50, deadline=None)
@given(
    left=st.lists(st.sampled_from(["x", "y", "z"]), min_size=0, max_size=3),
    right=st.lists(st.sampled_from(["x", "y", "z"]), min_size=0, max_size=3),
    values=st.lists(st.integers(min_value=0, max_value=4), min_size=3, max_size=3),
)
def test_specialisation_is_a_homomorphism(left, right, values):
    """specialize(p * q) == specialize(p) * specialize(q), and likewise for +."""
    def poly_of(variables):
        if not variables:
            return ProvenancePolynomial.one()
        return ProvenancePolynomial.from_terms([(Monomial.of(variables), 1)])

    p, q = poly_of(left), poly_of(right)
    valuation = dict(zip(["x", "y", "z"], values))
    assert (p * q).specialize(COUNTING, valuation) == p.specialize(
        COUNTING, valuation
    ) * q.specialize(COUNTING, valuation)
    assert (p + q).specialize(COUNTING, valuation) == p.specialize(
        COUNTING, valuation
    ) + q.specialize(COUNTING, valuation)
