"""Smoke tests for the top-level public API (repro.__init__).

These tests pin down the package surface a downstream user relies on: every
name advertised in ``__all__`` must resolve, and the headline workflow of the
README quickstart must run end to end through the top-level imports alone.
"""

from fractions import Fraction

import repro


def test_all_names_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), f"repro.{name} is advertised but missing"


def test_all_is_sorted_and_unique():
    assert len(set(repro.__all__)) == len(repro.__all__)
    assert list(repro.__all__) == sorted(repro.__all__)


def test_version_is_a_string():
    assert isinstance(repro.__version__, str)
    assert repro.__version__.count(".") >= 1


def test_readme_quickstart_workflow():
    instance = repro.Instance(
        [
            repro.Fact("R", ("alice",)),
            repro.Fact("S", ("alice", "film1")),
            repro.Fact("T", ("film1",)),
        ]
    )
    query = repro.parse_cq("R(x), S(x, y), T(y)")
    lineage = repro.lineage_of(query, instance)
    assert lineage.clause_count == 1
    compiled = repro.compile_query_to_obdd(query, instance)
    tid = repro.ProbabilisticInstance.uniform(instance, Fraction(1, 2))
    assert repro.probability(query, tid) == compiled.probability(tid.valuation())
    assert repro.instance_treewidth(instance) <= 1


def test_extension_entry_points_are_wired():
    # C2RPQ≠, semirings, approximation, pXML and clique-width are reachable
    # from the package root with one call each.
    instance = repro.rst_chain_instance(2)
    polynomial = repro.query_provenance_polynomial(repro.parse_cq("R(x), S(x, y), T(y)"), instance)
    assert polynomial.monomial_count == 2
    pairs = repro.rpq_pairs(repro.grid_instance(2, 2), "E+")
    assert pairs
    tid = repro.ProbabilisticInstance.uniform(instance, Fraction(1, 2))
    bounds = repro.dissociation_bounds(repro.parse_cq("R(x), S(x, y), T(y)"), tid)
    assert 0 <= bounds.lower <= bounds.upper <= 1
    document = repro.random_pxml_document(depth=1, seed=0)
    assert 0 <= repro.pattern_probability(document, repro.pattern("a")) <= 1
    assert repro.clique_expression(3).width == 2
