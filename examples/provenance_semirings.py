"""Semiring provenance of a query: one lineage, many interpretations (Section 3, [29]).

Run with::

    python examples/provenance_semirings.py

The provenance circuits of [2] work over any commutative semiring; the Boolean
lineage used for probability evaluation is just one specialisation.  This
example annotates a small curated-database scenario and evaluates the same
query under several semirings:

* N[X]      -- the full provenance polynomial (who contributed, how often);
* Counting  -- the number of derivations;
* Tropical  -- the cost of the cheapest derivation (per-fact acquisition cost);
* Security  -- the clearance level needed to see at least one witness;
* Why(X)    -- the witness sets;
* Boolean   -- back to the lineage, and from there to probabilities.
"""

import sys
from fractions import Fraction
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.data import Fact, Instance, ProbabilisticInstance
from repro.probability import probability
from repro.queries import parse_cq
from repro.semirings import (
    COUNTING,
    SECURITY,
    TROPICAL,
    WHY,
    query_provenance_polynomial,
    query_semiring_annotation,
)


def main() -> None:
    # Curated knowledge base: sources (R), claims they support (S), reviewed claims (T).
    facts = [
        Fact("R", ("labA",)),
        Fact("R", ("labB",)),
        Fact("S", ("labA", "claim1")),
        Fact("S", ("labB", "claim1")),
        Fact("S", ("labB", "claim2")),
        Fact("T", ("claim1",)),
        Fact("T", ("claim2",)),
    ]
    instance = Instance(facts)
    query = parse_cq("R(x), S(x, y), T(y)")
    print(f"instance: {instance}")
    print(f"query: {query}\n")

    # The most general annotation: the provenance polynomial.
    polynomial = query_provenance_polynomial(query, instance)
    print(f"N[X] provenance ({polynomial.monomial_count} monomials):")
    print(f"  {polynomial}\n")

    # Specialisations.
    derivations = polynomial.specialize(COUNTING, {f: 1 for f in instance.facts})
    print(f"counting semiring (derivations): {derivations}")

    acquisition_cost = {f: (2.0 if f.relation == "S" else 1.0) for f in instance.facts}
    cheapest = query_semiring_annotation(query, instance, TROPICAL, acquisition_cost)
    print(f"tropical semiring (cheapest witness cost): {cheapest}")

    clearance = {f: (3 if "labB" in f.arguments else 1) for f in instance.facts}
    needed = query_semiring_annotation(query, instance, SECURITY, clearance)
    print(f"security semiring (clearance needed): {needed}")

    witnesses = query_semiring_annotation(
        query, instance, WHY, {f: frozenset({frozenset({f})}) for f in instance.facts}
    )
    print(f"why-provenance: {len(witnesses)} witness sets")

    # And back to probabilities through the Boolean specialisation.
    tid = ProbabilisticInstance.uniform(instance, Fraction(3, 4))
    print(f"\nP(query) with every fact at 3/4: {probability(query, tid)}")


if __name__ == "__main__":
    main()
