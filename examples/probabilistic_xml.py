"""Probabilistic XML (Section 1 use case): MSO properties on uncertain trees.

The paper motivates bounded-treewidth tractability with probabilistic XML:
a document tree whose subtrees are present independently with some
probability.  Trees have treewidth 1, so every MSO property has a linear-size
d-DNNF lineage (Theorem 6.11) and ra-linear probability evaluation
(Theorem 3.2).

Run with::

    python examples/probabilistic_xml.py
"""

import sys
from fractions import Fraction
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.data import ProbabilisticInstance, instance_treewidth
from repro.generators import probabilistic_xml_instance
from repro.provenance import (
    nonempty_automaton,
    parity_automaton,
    provenance_dnnf,
    threshold_automaton,
    tree_encoding,
)
from repro.provenance.automata import automaton_probability


def main() -> None:
    # A document with sections and paragraphs; each edge (subtree inclusion)
    # is uncertain: it survives editing with probability 4/5.
    document = probabilistic_xml_instance(depth=4, fanout=2)
    print(f"document instance: {len(document)} facts, treewidth {instance_treewidth(document)}")
    tid = ProbabilisticInstance(
        document,
        {fact: Fraction(4, 5) for fact in document.facts_of("child")},
    )
    encoding = tree_encoding(document)
    print(f"tree encoding: {len(encoding)} nodes, width {encoding.width}")

    # Three MSO-style properties of the possible worlds, given as automata:
    properties = {
        "at least one paragraph edge kept": nonempty_automaton("child"),
        "at least 5 child edges kept": threshold_automaton(5, "child"),
        "odd number of child edges kept": parity_automaton("child"),
    }
    for name, automaton in properties.items():
        probability = automaton_probability(automaton, encoding, tid)
        dnnf = provenance_dnnf(automaton, encoding)
        print(f"{name:38} probability {str(probability):>22}  d-DNNF size {dnnf.size}")

    # The d-DNNF route and the dynamic-programming route agree exactly:
    automaton = threshold_automaton(5, "child")
    dnnf = provenance_dnnf(automaton, encoding)
    valuation = {fact: tid.probability_of(fact) for fact in dnnf.variables()}
    assert dnnf.probability(valuation) == automaton_probability(automaton, encoding, tid)
    print("d-DNNF probability matches the state-space dynamic programming: OK")


if __name__ == "__main__":
    main()
