"""Engine sessions: batched, cached compilation over one instance family.

Run with::

    python examples/engine_sessions.py

A :class:`repro.engine.CompilationEngine` is a memoizing session: structural
artifacts (Gaifman graph, tree/path decompositions, fact orders) are computed
once per instance (keyed by content fingerprint), and lineages / OBDDs /
probabilities once per (query, instance).  This example runs a workload of
several queries against a bounded-treewidth instance, batched through
``probability_many`` and ``compile_many``, then shows that editing the
instance (a new fact) changes its fingerprint and transparently invalidates
the cache.
"""

import sys
from fractions import Fraction
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.data import Fact, ProbabilisticInstance
from repro.engine import CompilationEngine
from repro.generators import labelled_partial_ktree_instance
from repro.queries import parse_ucq


def main() -> None:
    instance = labelled_partial_ktree_instance(14, 2, seed=5)
    tid = ProbabilisticInstance.uniform(instance, Fraction(1, 2))
    print(f"instance: {instance!r}, fingerprint {instance.fingerprint[:12]}...")

    workload = [
        parse_ucq("R(x), S(x, y), T(y)"),
        parse_ucq("R(x), S(x, y)"),
        parse_ucq("S(x, y), T(y) | R(x), S(x, y)"),
        parse_ucq("R(x), S(x, y), T(y)"),  # repeated on purpose: served from cache
    ]

    engine = CompilationEngine()
    compiled = engine.compile_many(workload, instance)
    for query, obdd in zip(workload, compiled):
        print(f"OBDD size {obdd.size:>4}, width {obdd.width}:  {query}")

    values = engine.probability_many(workload, tid)
    for query, value in zip(workload, values):
        print(f"P = {float(value):.6f}  {query}")

    print("cache stats after the batch:")
    for name, stats in engine.cache_info().items():
        print(f"  {name:>11}: {stats}")

    # Content-based invalidation: a derived instance has a new fingerprint,
    # so nothing stale is ever served — the engine just recompiles.
    grown = instance.with_facts([Fact("S", (instance.domain[0], "fresh-element"))])
    print(f"grown instance fingerprint {grown.fingerprint[:12]}... "
          f"(differs: {grown.fingerprint != instance.fingerprint})")
    engine.compile(workload[0], grown)
    print(f"obdd cache after recompiling on the grown instance: {engine.stats['obdd']}")


if __name__ == "__main__":
    main()
