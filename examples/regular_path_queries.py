"""Regular path queries on an uncertain transport network (C2RPQ≠, Section 4).

Run with::

    python examples/regular_path_queries.py

The monotone variant of the paper's hardness result uses conjunctive two-way
regular path queries with disequalities (C2RPQ≠).  This example models a small
train network whose connections may be cancelled independently, and asks
navigational questions that plain CQs cannot express:

1. which stations can reach which others along ``rail`` connections (one-way
   and two-way closures);
2. the probability that two hubs stay connected when each link survives with
   its own probability, computed exactly through the monotone lineage of the
   reachability C2RPQ≠;
3. the "two incident paths" query -- the subdivision-invariant analogue of the
   paper's q_p -- on the same network.
"""

import sys
from fractions import Fraction
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.data import Fact, Instance, ProbabilisticInstance
from repro.probability import brute_force_property_probability
from repro.provenance import compile_lineage_to_obdd
from repro.queries import (
    c2rpq,
    c2rpq_lineage,
    c2rpq_satisfied,
    path_atom,
    rpq_pairs,
    two_incident_paths_query,
)
from repro.queries.atoms import Disequality, var


def build_network() -> Instance:
    """A small rail network: a main line with a branch and a return loop."""
    connections = [
        ("amsterdam", "utrecht"),
        ("utrecht", "arnhem"),
        ("arnhem", "nijmegen"),
        ("utrecht", "eindhoven"),
        ("eindhoven", "nijmegen"),
        ("nijmegen", "amsterdam"),  # the return loop
    ]
    return Instance([Fact("rail", pair) for pair in connections])


def main() -> None:
    network = build_network()
    print(f"network: {network}")

    # 1. Reachability pairs under one-way and two-way navigation.
    one_way = rpq_pairs(network, "rail+")
    print(f"one-way reachable pairs: {len(one_way)}")
    two_way = rpq_pairs(network, "(rail|rail-)+")
    print(f"two-way reachable pairs: {len(two_way)} (the undirected network is connected)")

    # 2. Probabilistic reachability between two hubs.
    query = c2rpq(
        [path_atom("rail+", "x", "y")],
        [Disequality(var("x"), var("y"))],
    )
    lineage = c2rpq_lineage(query, network)
    print(f"reachability lineage: {lineage.clause_count} minimal witness sets")
    tid = ProbabilisticInstance.uniform(network, Fraction(9, 10))
    compiled = compile_lineage_to_obdd(lineage)
    exact = compiled.probability(tid.valuation())
    check = brute_force_property_probability(
        lambda world: c2rpq_satisfied(world, query), tid
    )
    print(f"P(some pair of distinct stations stays connected) = {exact} (brute force: {check})")

    # 3. The subdivision-invariant analogue of q_p.
    qp_like = two_incident_paths_query("rail")
    print(f"two-incident-paths query holds on the full network: {c2rpq_satisfied(network, qp_like)}")
    single_link = Instance([Fact("rail", ("amsterdam", "utrecht"))])
    print(f"... and on a single link: {c2rpq_satisfied(single_link, qp_like)}")


if __name__ == "__main__":
    main()
