"""Safe queries through the instance lens: the unfolding of Section 9.

Inversion-free UCQs are the safe queries with constant-width OBDDs on every
instance (Theorem 9.6).  Theorem 9.7 explains this with the paper's
instance-based machinery: every (ranked) instance can be *unfolded* into an
instance of tree-depth at most arity(sigma) with literally the same lineage,
so the bounded-pathwidth results of Section 6 apply.

This example builds a dense instance, unfolds it for an inversion-free query,
verifies the lineage is preserved, and compares the widths and the
probabilities computed on both sides (also against lifted inference).

Run with::

    python examples/safe_query_unfolding.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.data import (
    ProbabilisticInstance,
    Signature,
    instance_pathwidth,
    instance_tree_depth,
    instance_treewidth,
)
from repro.generators import random_probabilities, random_ranked_instance
from repro.probability import probability, safe_plan_probability
from repro.queries import hierarchical_example, inversion_free_example, is_inversion_free
from repro.unfold import unfold_instance, verify_unfolding


def main() -> None:
    query = inversion_free_example()
    print(f"query: {query}")
    print(f"inversion-free: {is_inversion_free(query)}")

    signature = Signature([("R", 1), ("S", 2), ("T", 1)])
    instance = random_ranked_instance(signature, domain_size=7, fact_count=24, seed=42)
    print(f"instance: {len(instance)} facts, treewidth {instance_treewidth(instance)}")

    unfolding = unfold_instance(query, instance)
    unfolded = unfolding.unfolded
    print(
        "unfolded instance: treewidth"
        f" {instance_treewidth(unfolded)}, pathwidth {instance_pathwidth(unfolded)},"
        f" tree-depth {instance_tree_depth(unfolded)}"
        f" (bound from the construction: {unfolding.tree_depth_bound})"
    )
    report = verify_unfolding(unfolding, query)
    print(f"verification report: {report}")

    # Probabilities agree between the original and the unfolded instance,
    # and with lifted inference on a hierarchical query.
    tid = random_probabilities(instance, seed=42)
    unfolded_tid = ProbabilisticInstance(
        unfolded, {unfolding.unfolded_fact(f): tid.probability_of(f) for f in instance}
    )
    original_probability = probability(query, tid)
    unfolded_probability = probability(query, unfolded_tid)
    print(f"P(query) on the original instance:  {original_probability}")
    print(f"P(query) on the unfolded instance:  {unfolded_probability}")
    assert original_probability == unfolded_probability

    safe_query = hierarchical_example()
    print(
        "hierarchical query, lifted inference vs lineage:",
        safe_plan_probability(safe_query, tid),
        "=",
        probability(safe_query, tid),
    )


if __name__ == "__main__":
    main()
