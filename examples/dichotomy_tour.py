"""A tour of the paper's two dichotomies (Theorems 4.2, 8.1 and 8.7).

This example walks through the limits side of the paper:

1. treewidth-constructible families — bounded (paths, trees) vs unbounded
   (grids) — and how the same query behaves on both;
2. the OBDD-size dichotomy for the intricate UCQ≠ q_p;
3. the meta-dichotomy: classifying queries as intricate or not, and showing
   that non-intricate queries have easy unbounded-treewidth families.

Run with::

    python examples/dichotomy_tour.py
"""

import sys
from fractions import Fraction
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.data import Signature
from repro.data.tid import ProbabilisticInstance
from repro.engine import CompilationEngine
from repro.generators import directed_path_instance, grid_instance, s_grid_instance
from repro.provenance import compile_query_to_obdd
from repro.queries import (
    find_intricacy_counterexample,
    is_intricate,
    parse_cq,
    qp,
    two_incident_same_direction,
    unsafe_rst,
)

RST_SIGNATURE = Signature([("R", 1), ("S", 2), ("T", 1)])


def main() -> None:
    # One engine session serves the whole tour: Gaifman graphs,
    # decompositions, and fused tree encodings are computed once per
    # instance and shared by every compilation below.
    engine = CompilationEngine()

    print("=== 1. Two instance families ===")
    for name, family in (
        ("directed paths", [directed_path_instance(n) for n in (4, 8, 16)]),
        ("n x n grids", [grid_instance(n, n) for n in (2, 3, 4)]),
    ):
        widths = [engine.tree_decomposition_of(instance).width for instance in family]
        print(f"{name:>15}: treewidths {widths}")

    print()
    print("=== 2. The OBDD dichotomy for q_p (Theorem 8.1) ===")
    print(f"q_p = {qp()}")
    for n in (4, 8, 16):
        width = compile_query_to_obdd(
            qp(), directed_path_instance(n), use_path_decomposition=True, engine=engine
        ).width
        print(f"  path of {n:>2} facts (pathwidth 1): OBDD width {width}")
    for n in (2, 3, 4, 5):
        width = compile_query_to_obdd(qp(), grid_instance(n, n), engine=engine).width
        print(f"  {n}x{n} grid (treewidth {n}):      OBDD width {width}")

    print()
    print("=== 3. The meta-dichotomy (Theorem 8.7) ===")
    cases = [
        ("q_p", qp(), None),
        ("unsafe RST query", unsafe_rst(), RST_SIGNATURE),
        ("E(x,y), E(y,z)", two_incident_same_direction(), None),
        ("E(x,y), E(y,z), x != z", parse_cq("E(x, y), E(y, z), x != z"), None),
    ]
    for name, query, signature in cases:
        intricate = is_intricate(query, signature)
        print(f"  {name:28} intricate: {intricate}")
        if not intricate:
            witness = find_intricacy_counterexample(query, 0, signature or query.signature())
            if witness is not None:
                print(f"      witness line instance: {witness.line}")

    print()
    print("=== 4. Non-intricate queries are easy on some unbounded-treewidth family ===")
    for n in (2, 3, 4):
        s_grid = s_grid_instance(n, n)
        width = compile_query_to_obdd(unsafe_rst(), s_grid, engine=engine).width
        treewidth = engine.tree_decomposition_of(s_grid).width
        print(f"  RST query on the {n}x{n} S-grid (treewidth {treewidth}): OBDD width {width}")

    print()
    print("=== 5. The fused front-end on a deep instance (Theorems 6.3/6.11) ===")
    # The PR-5 pipeline: one elimination sweep straight to the tree encoding,
    # then the automaton-provenance state dynamic program — on an instance
    # far beyond what the seed (recursive, quadratic) front-end handled.
    deep = directed_path_instance(1000)
    encoding = engine.tree_encoding_of(deep)
    tid = ProbabilisticInstance.uniform(deep, Fraction(1, 2))
    value = engine.probability(two_incident_same_direction(), tid, method="automaton")
    print(f"  path of 1000 facts: encoding of {len(encoding)} nodes, width {encoding.width}")
    print(f"  P[E(x,y), E(y,z)] = {float(value):.6f} (exact Fraction with a 2^1000 denominator)")


if __name__ == "__main__":
    main()
