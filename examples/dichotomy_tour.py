"""A tour of the paper's two dichotomies (Theorems 4.2, 8.1 and 8.7).

This example walks through the limits side of the paper:

1. treewidth-constructible families — bounded (paths, trees) vs unbounded
   (grids) — and how the same query behaves on both;
2. the OBDD-size dichotomy for the intricate UCQ≠ q_p;
3. the meta-dichotomy: classifying queries as intricate or not, and showing
   that non-intricate queries have easy unbounded-treewidth families.

Run with::

    python examples/dichotomy_tour.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.data import Signature, instance_treewidth
from repro.generators import directed_path_instance, grid_instance, s_grid_instance
from repro.provenance import compile_query_to_obdd
from repro.queries import (
    find_intricacy_counterexample,
    is_intricate,
    parse_cq,
    qp,
    two_incident_same_direction,
    unsafe_rst,
)

RST_SIGNATURE = Signature([("R", 1), ("S", 2), ("T", 1)])


def main() -> None:
    print("=== 1. Two instance families ===")
    for name, family in (
        ("directed paths", [directed_path_instance(n) for n in (4, 8, 16)]),
        ("n x n grids", [grid_instance(n, n) for n in (2, 3, 4)]),
    ):
        widths = [instance_treewidth(instance) for instance in family]
        print(f"{name:>15}: treewidths {widths}")

    print()
    print("=== 2. The OBDD dichotomy for q_p (Theorem 8.1) ===")
    print(f"q_p = {qp()}")
    for n in (4, 8, 16):
        width = compile_query_to_obdd(qp(), directed_path_instance(n), use_path_decomposition=True).width
        print(f"  path of {n:>2} facts (pathwidth 1): OBDD width {width}")
    for n in (2, 3, 4, 5):
        width = compile_query_to_obdd(qp(), grid_instance(n, n)).width
        print(f"  {n}x{n} grid (treewidth {n}):      OBDD width {width}")

    print()
    print("=== 3. The meta-dichotomy (Theorem 8.7) ===")
    cases = [
        ("q_p", qp(), None),
        ("unsafe RST query", unsafe_rst(), RST_SIGNATURE),
        ("E(x,y), E(y,z)", two_incident_same_direction(), None),
        ("E(x,y), E(y,z), x != z", parse_cq("E(x, y), E(y, z), x != z"), None),
    ]
    for name, query, signature in cases:
        intricate = is_intricate(query, signature)
        print(f"  {name:28} intricate: {intricate}")
        if not intricate:
            witness = find_intricacy_counterexample(query, 0, signature or query.signature())
            if witness is not None:
                print(f"      witness line instance: {witness.line}")

    print()
    print("=== 4. Non-intricate queries are easy on some unbounded-treewidth family ===")
    for n in (2, 3, 4):
        width = compile_query_to_obdd(unsafe_rst(), s_grid_instance(n, n)).width
        print(f"  RST query on the {n}x{n} S-grid (treewidth {instance_treewidth(s_grid_instance(n, n))}): OBDD width {width}")


if __name__ == "__main__":
    main()
