"""Road-network reliability: counting matchings and evaluating q_p on graphs.

A city maintains a set of road segments that may each be closed for works
independently.  Two questions from the paper's toolbox:

* *Is the open network conflict-free?* — i.e. no two open segments share an
  endpoint (the open segments form a matching).  The probability of the
  complement event is exactly the probability of the paper's query q_p
  (Theorem 8.1), and the number of conflict-free configurations is the number
  of matchings of the road graph — the #P-hard quantity behind Theorem 4.2.
* *How does the cost depend on the network shape?* — on a path-shaped network
  (bounded pathwidth) everything is easy and the OBDD width is constant; on a
  grid-shaped downtown (unbounded treewidth) the OBDD width blows up.

Run with::

    python examples/road_network_reliability.py
"""

import sys
from fractions import Fraction
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.counting import count_matchings_treewidth_dp, count_matchings_via_lineage
from repro.data import ProbabilisticInstance, instance_treewidth
from repro.generators import directed_path_instance, grid_instance
from repro.probability import probability
from repro.provenance import compile_query_to_obdd
from repro.queries import qp
from repro.structure.graph import grid_graph, path_graph


def main() -> None:
    # Downtown: a 3x3 grid of intersections; suburb: a long avenue.
    downtown = grid_instance(3, 3)
    avenue = directed_path_instance(8)
    print(f"downtown treewidth: {instance_treewidth(downtown)}, avenue treewidth: {instance_treewidth(avenue)}")

    # Each segment stays open with probability 2/3.
    downtown_tid = ProbabilisticInstance.uniform(downtown, Fraction(2, 3))
    avenue_tid = ProbabilisticInstance.uniform(avenue, Fraction(2, 3))

    # Probability that two open segments conflict (share an intersection) = P(q_p).
    for name, tid in (("downtown", downtown_tid), ("avenue", avenue_tid)):
        conflict = probability(qp(), tid, method="obdd")
        print(f"P(conflict) on the {name}: {conflict} (conflict-free: {1 - conflict})")

    # Counting conflict-free configurations = counting matchings.
    print("matchings of the 3x3 downtown grid:", count_matchings_treewidth_dp(grid_graph(3, 3)))
    print("  (same number via the probabilistic reduction:", count_matchings_via_lineage(grid_graph(3, 3)), ")")
    print("matchings of the avenue:", count_matchings_treewidth_dp(path_graph(9)))

    # The dichotomy shape: OBDD width of q_p on both networks.
    avenue_width = compile_query_to_obdd(qp(), avenue, use_path_decomposition=True).width
    downtown_width = compile_query_to_obdd(qp(), downtown).width
    print(f"OBDD width of q_p: avenue (pathwidth 1) -> {avenue_width}, downtown (treewidth 3) -> {downtown_width}")
    for side in (2, 3, 4):
        width = compile_query_to_obdd(qp(), grid_instance(side, side)).width
        print(f"  q_p OBDD width on a {side}x{side} grid: {width}")


if __name__ == "__main__":
    main()
