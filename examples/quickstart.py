"""Quickstart: lineages and probabilities of a query on a treelike instance.

Run with::

    python examples/quickstart.py

This walks through the main public API:

1. build a relational instance and a tuple-independent database (TID);
2. write a conjunctive query;
3. compute its lineage, compile it to an OBDD and a d-DNNF;
4. evaluate its probability by several independent methods and check they agree.
"""

import sys
from fractions import Fraction
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.data import Fact, Instance, ProbabilisticInstance, instance_treewidth
from repro.probability import brute_force_probability, probability
from repro.provenance import compile_query_to_obdd, lineage_of, ucq_lineage_dnnf
from repro.queries import parse_cq


def main() -> None:
    # A small movie-rental style database: users, rentals, and flagged films.
    facts = [
        Fact("R", ("alice",)),
        Fact("R", ("bob",)),
        Fact("S", ("alice", "film1")),
        Fact("S", ("alice", "film2")),
        Fact("S", ("bob", "film2")),
        Fact("T", ("film1",)),
        Fact("T", ("film2",)),
    ]
    instance = Instance(facts)
    print(f"instance: {instance}")
    print(f"treewidth of the instance: {instance_treewidth(instance)}")

    # The classic query: is there an active user who rented a flagged film?
    query = parse_cq("R(x), S(x, y), T(y)")
    print(f"query: {query}")

    # Lineage: the Boolean function over facts describing how the query holds.
    lineage = lineage_of(query, instance)
    print(f"lineage has {lineage.clause_count} minimal matches:")
    for clause in lineage.clauses:
        print("   ", " AND ".join(sorted(map(str, clause))))

    # Knowledge compilation: OBDD and d-DNNF representations.
    compiled = compile_query_to_obdd(query, instance)
    print(f"OBDD size {compiled.size}, width {compiled.width}")
    dnnf = ucq_lineage_dnnf(query, instance)
    print(f"d-DNNF size {dnnf.size} (deterministic: {dnnf.check_determinism()})")

    # Probabilities: each fact is present independently with probability 1/2.
    tid = ProbabilisticInstance.uniform(instance, Fraction(1, 2))
    for method in ("obdd", "dnnf", "automaton", "auto"):
        print(f"P(query) via {method:>9}: {probability(query, tid, method=method)}")
    print(f"P(query) via brute force: {brute_force_probability(query, tid)}")


if __name__ == "__main__":
    main()
