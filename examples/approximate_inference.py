"""Approximate probability evaluation on a non-treelike instance (conclusion, [27]).

Run with::

    python examples/approximate_inference.py

Theorem 4.2 says probability evaluation is hard outside bounded treewidth; in
practice one falls back to sampling or to dissociation bounds.  This example
takes the hard bipartite family for the RST query (treewidth grows with the
instance), computes the exact probability while that is still feasible, and
compares it against:

* naive Monte-Carlo sampling,
* the Karp-Luby DNF estimator (relative-error guarantees),
* the dissociation (independent-or) upper bound and the best-single-witness
  lower bound.
"""

import sys
from fractions import Fraction
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.data import ProbabilisticInstance, instance_treewidth
from repro.generators import rst_bipartite_instance
from repro.probability import (
    brute_force_probability,
    dissociation_bounds,
    karp_luby_probability,
    monte_carlo_probability,
    probability,
)
from repro.queries import unsafe_rst


def main() -> None:
    query = unsafe_rst()
    print(f"query: {query} (the canonical unsafe CQ)")

    for n in (2, 3):
        instance = rst_bipartite_instance(n)
        tid = ProbabilisticInstance.uniform(instance, Fraction(1, 2))
        print(f"\nbipartite instance with n = {n}: {len(instance)} facts, "
              f"treewidth {instance_treewidth(instance)}")

        exact = probability(query, tid, method="obdd")
        check = brute_force_probability(query, tid)
        assert exact == check
        print(f"  exact probability        : {exact} (= {float(exact):.6f})")

        naive = monte_carlo_probability(query, tid, samples=4000, seed=1)
        print(f"  naive Monte-Carlo        : {naive.estimate:.6f} "
              f"(abs. error {naive.absolute_error(exact):.4f})")

        karp = karp_luby_probability(query, tid, samples=4000, seed=1)
        print(f"  Karp-Luby                : {karp.estimate:.6f} "
              f"(rel. error {karp.relative_error(exact):.4f})")

        bounds = dissociation_bounds(query, tid)
        print(f"  dissociation bounds      : [{float(bounds.lower):.6f}, {float(bounds.upper):.6f}]"
              f" (gap {float(bounds.gap):.6f})")
        assert bounds.lower <= exact <= bounds.upper


if __name__ == "__main__":
    main()
