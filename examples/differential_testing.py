"""Differential testing and sharded parallel evaluation, end to end.

The paper proves that many independent routes compute the same query
probability on treelike instances; this example turns that redundancy into a
correctness harness and then scales the same workload across processes:

1. build a seeded random workload of (query, TID instance) cases over the
   treelike generator families;
2. push every case through the :class:`repro.testing.ProbabilityOracle`,
   which cross-checks brute force, OBDD, d-DNNF, the auto dispatcher, lifted
   inference (when the query is safe), dissociation bounds, and the seeded
   Karp-Luby estimator;
3. evaluate the same workload through a :class:`repro.engine.ParallelEngine`
   and compare against the oracle-approved values, reporting the merged
   per-worker cache statistics.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.engine import ParallelEngine
from repro.testing import ProbabilityOracle, random_workload, workload_pairs


def main() -> None:
    cases = random_workload(30, seed=42)
    print(f"workload: {len(cases)} seeded cases over families "
          f"{sorted({case.name for case in cases})}")

    oracle = ProbabilityOracle()
    reports = oracle.check_many(cases)
    lifted = sum(1 for r in reports if "safe_plan" in r.exact_values)
    print(f"oracle: all exact routes agree on every case "
          f"(safe plans ran on {lifted}/{len(cases)}; "
          f"Karp-Luby stayed within tolerance on all)")

    sample = reports[0]
    print(f"example case {sample.name}:")
    for method, value in sample.exact_values.items():
        print(f"  {method:>12}: {value}")
    print(f"  dissociation bounds: [{sample.bounds.lower}, {sample.bounds.upper}]")

    with ParallelEngine(workers=2) as parallel:
        values = parallel.map_probability(workload_pairs(cases)).values
        report = parallel.last_report
    agreed = sum(1 for value, report_ in zip(values, reports) if value == report_.reference)
    print(f"parallel engine (2 workers): {agreed}/{len(cases)} values match the oracle")
    print(f"  shards: {list(report.shard_sizes)}")
    for name, stats in report.stats.items():
        print(f"  cache[{name}]: {stats}")


if __name__ == "__main__":
    main()
