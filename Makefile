# Development entry points.  The suite is wall-clock guarded twice: every test
# runs under a per-test timeout (pytest-timeout when installed, the SIGALRM
# shim in conftest.py otherwise), and the tier-1 target wraps the whole run in
# a hard `timeout` so a hang fails the build instead of wedging it.

PYTHON ?= python
PYTHONPATH_PREFIX = PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH}
TIER1_WALL_CLOCK ?= 300

.PHONY: test tier1 test-slow test-differential test-chaos test-chaos-disk analyze typecheck bench-engine bench-parallel bench-compile bench-structure bench-vector bench-lifted bench-resilience bench-store bench

# Static invariant checker (see README "Static invariants"): AST/call-graph
# rules gating the kernel contracts. Fails on any finding.
analyze:
	$(PYTHONPATH_PREFIX) $(PYTHON) -m repro.analysis --strict src/repro

# mypy wiring lives in pyproject.toml; strict for the analyzer, the engine,
# the artifact store, and the lifted tier, permissive elsewhere. Requires
# mypy on PATH (CI installs it).
typecheck:
	$(PYTHONPATH_PREFIX) $(PYTHON) -m mypy src/repro/analysis src/repro/engine src/repro/probability/lifted src/repro/store

test:
	$(PYTHONPATH_PREFIX) $(PYTHON) -m pytest -q

tier1:
	timeout $(TIER1_WALL_CLOCK) env PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) -m pytest -x -q

test-slow:
	$(PYTHONPATH_PREFIX) $(PYTHON) -m pytest -q --runslow

test-differential:
	$(PYTHONPATH_PREFIX) $(PYTHON) -m pytest -q --runslow tests/test_differential.py tests/test_structure_oracle.py

# Fault-injection suite: seeded worker kills, stragglers, allocation failures,
# and shared-memory sabotage against the parallel engine (marker: chaos).
test-chaos:
	$(PYTHONPATH_PREFIX) $(PYTHON) -m pytest -q -m chaos tests/test_faults.py

# Disk fault-injection suite: torn writes, bit flips, ENOSPC, and lock steals
# against the persistent artifact store (marker: chaos).
test-chaos-disk:
	$(PYTHONPATH_PREFIX) $(PYTHON) -m pytest -q -m chaos tests/test_store_faults.py

bench-engine:
	$(PYTHONPATH_PREFIX) $(PYTHON) benchmarks/bench_engine.py

bench-parallel:
	$(PYTHONPATH_PREFIX) $(PYTHON) benchmarks/bench_parallel.py

bench-compile:
	$(PYTHONPATH_PREFIX) $(PYTHON) benchmarks/bench_compile.py

bench-structure:
	$(PYTHONPATH_PREFIX) $(PYTHON) benchmarks/bench_structure.py

bench-vector:
	$(PYTHONPATH_PREFIX) $(PYTHON) benchmarks/bench_vector.py

bench-lifted:
	$(PYTHONPATH_PREFIX) $(PYTHON) benchmarks/bench_lifted.py

bench-resilience:
	$(PYTHONPATH_PREFIX) $(PYTHON) benchmarks/bench_resilience.py

bench-store:
	$(PYTHONPATH_PREFIX) $(PYTHON) benchmarks/bench_store.py

bench:
	$(PYTHONPATH_PREFIX) $(PYTHON) -m pytest -q benchmarks
