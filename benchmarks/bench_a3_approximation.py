"""A3 (extension) — approximation on non-treelike instances (conclusion, [27]).

On the hard bipartite RST family (treewidth grows linearly), exact evaluation
through possible worlds blows up exponentially, while Karp-Luby sampling and
the dissociation bounds stay cheap.  On the sizes where the exact value is
still computable we check that the estimate lands close to it and inside the
dissociation bracket.
"""

from fractions import Fraction

from repro.data.tid import ProbabilisticInstance
from repro.experiments import ScalingSeries, format_table
from repro.generators.lines import rst_bipartite_instance
from repro.probability.approximation import dissociation_bounds, karp_luby_probability
from repro.probability.brute_force import brute_force_probability
from repro.queries.library import unsafe_rst

SIZES = (2, 3)
SAMPLES = 3000


def estimate(n: int):
    tid = ProbabilisticInstance.uniform(rst_bipartite_instance(n), Fraction(1, 2))
    return karp_luby_probability(unsafe_rst(), tid, samples=SAMPLES, seed=n)


def test_a3_karp_luby_brackets_exact_probability(benchmark):
    rows = []
    errors = ScalingSeries("relative error")
    for n in SIZES:
        tid = ProbabilisticInstance.uniform(rst_bipartite_instance(n), Fraction(1, 2))
        query = unsafe_rst()
        exact = brute_force_probability(query, tid)
        approx = karp_luby_probability(query, tid, samples=SAMPLES, seed=n)
        bounds = dissociation_bounds(query, tid)
        assert bounds.lower <= exact <= bounds.upper
        relative_error = approx.relative_error(exact)
        errors.add(n, relative_error)
        rows.append(
            (
                n,
                round(float(exact), 5),
                round(approx.estimate, 5),
                round(relative_error, 4),
                round(float(bounds.lower), 5),
                round(float(bounds.upper), 5),
            )
        )
    benchmark(estimate, SIZES[-1])
    print()
    print(
        format_table(
            ["n", "exact", "karp-luby", "rel. error", "lower bound", "upper bound"], rows
        )
    )
    assert max(errors.values) < 0.15, "Karp-Luby must land close to the exact probability"
