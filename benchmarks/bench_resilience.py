"""RESILIENCE — checkpoint overhead of budget-guarded evaluation.

The resilience layer threads a :class:`~repro.resilience.ResourceBudget`
through compilation and evaluation: every unique-table insert charges the
node cap, every lifted-plan row charges the row cap, and the long kernel
loops poll the deadline at coarse checkpoints.  That bookkeeping must be
close to free — a budget generous enough to never fire should cost almost
nothing over the unguarded path, or nobody will run with guards on.

The workload is ``CompilationEngine.probability`` with ``method="auto"`` on
two instance families that exercise both charge sites: ``line`` (RST chains
— linear OBDD compilations, node charges) and ``ktree`` (labelled partial
k-trees, width 2 — denser circuit routes plus the lifted route for the
hierarchical query, row charges).  Every evaluation runs on a fresh engine
so nothing is answered from cache, and the guarded side gets caps orders of
magnitude above what the workload needs — only the accounting itself is
measured, never a blowout.  Both sides must return identical exact
probabilities before timing starts.

Wall-clock noise on this container is far larger than the few-percent
signal, so the measurement is paired and minimized at *case* granularity:
each (query, instance) case is timed unbudgeted and budgeted back to back,
repeated ``REPETITIONS`` times with the order alternating, and each side
keeps its per-case minimum (the standard low-noise estimator — interference
only ever adds time).  The gate compares the sums of those per-case minima:
``sum(budgeted) / sum(unbudgeted) - 1 <= MAX_OVERHEAD`` (5%).  On a run too
fast to resolve a 5% difference the gate is waived and the JSON records the
``gate_skip_reason`` (never a silently-unenforced run).  Totals and the
per-size trajectory per family go to ``BENCH_resilience.json``.
"""

import gc
import time
from contextlib import contextmanager
from fractions import Fraction
from pathlib import Path

from repro.data.tid import ProbabilisticInstance
from repro.engine import CompilationEngine
from repro.experiments import (
    ScalingSeries,
    format_table,
    write_benchmark_json,
)
from repro.generators import labelled_partial_ktree_instance
from repro.generators.lines import rst_chain_instance
from repro.queries import hierarchical_example, unsafe_rst
from repro.resilience import ResourceBudget

LINE_SIZES = (120, 240)
KTREE_SIZES = (90, 150)
WIDTH = 2
REPETITIONS = 11  # timed repetitions per case per side; each side keeps its min
RESULT_FILE = Path(__file__).resolve().parent.parent / "BENCH_resilience.json"
MAX_OVERHEAD = 0.05
# Below this many seconds summed across the unguarded case minima, timer
# noise swamps a 5% signal and the gate is waived rather than flaking.
MIN_MEASURABLE_SECONDS = 0.05

# Caps orders of magnitude above what the workload allocates: the guarded
# side pays for the accounting, never for a blowout or a retry.
GENEROUS_NODE_LIMIT = 10**12
GENEROUS_ROW_LIMIT = 10**12
GENEROUS_TIMEOUT = 3600.0


def build_cases():
    """(family, n, query, tid) per case; instances built outside timing."""
    cases = []
    for n in LINE_SIZES:
        tid = ProbabilisticInstance.uniform(rst_chain_instance(n), Fraction(1, 2))
        for query in (unsafe_rst(), hierarchical_example()):
            cases.append(("line", n, query, tid))
    for n in KTREE_SIZES:
        instance = labelled_partial_ktree_instance(n, WIDTH, seed=n)
        tid = ProbabilisticInstance.uniform(instance, Fraction(1, 2))
        for query in (unsafe_rst(), hierarchical_example()):
            cases.append(("ktree", n, query, tid))
    return cases


def _generous_budget():
    return ResourceBudget(
        node_limit=GENEROUS_NODE_LIMIT,
        row_limit=GENEROUS_ROW_LIMIT,
        timeout=GENEROUS_TIMEOUT,
    )


@contextmanager
def _gc_paused():
    """Pause the cyclic collector around timed windows: a collection landing
    in one side's window but not its partner's would dwarf the signal."""
    was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()


def _time_once(query, tid, budgeted: bool) -> float:
    """One evaluation on a fresh engine (never answered from a value cache)."""
    engine = CompilationEngine()
    budget = _generous_budget() if budgeted else None
    start = time.perf_counter()
    engine.probability(query, tid, budget=budget)
    return time.perf_counter() - start


def _time_case(query, tid, repetitions: int):
    """(min unbudgeted seconds, min budgeted seconds) for one case.

    The two sides run back to back inside each repetition, with the order
    alternating, so machine-wide drift hits both sides alike; the per-side
    minimum then discards whatever interference remains.
    """
    best = {False: float("inf"), True: float("inf")}
    for repetition in range(repetitions):
        order = (False, True) if repetition % 2 == 0 else (True, False)
        for budgeted in order:
            elapsed = _time_once(query, tid, budgeted)
            if elapsed < best[budgeted]:
                best[budgeted] = elapsed
    return best[False], best[True]


def _check_agreement(cases):
    """A never-firing budget must not change a single answer."""
    plain = CompilationEngine()
    guarded = CompilationEngine()
    for _, _, query, tid in cases:
        reference = plain.probability(query, tid)
        value = guarded.probability(query, tid, budget=_generous_budget())
        assert value == reference, (
            f"budget-guarded evaluation diverged: {value} vs {reference}"
        )


def run_benchmark(repetitions: int = REPETITIONS):
    cases = build_cases()
    _check_agreement(cases)

    with _gc_paused():
        # Warm both paths over the full workload outside the measured
        # windows: route statistics and interned structure caches are
        # process-wide, and the minima must land on fully-warmed runs.
        for _, _, query, tid in cases:
            _time_once(query, tid, budgeted=False)
            _time_once(query, tid, budgeted=True)

        timings = [
            (family, n, *_time_case(query, tid, repetitions))
            for family, n, query, tid in cases
        ]

    unbudgeted_time = sum(plain for _, _, plain, _ in timings)
    budgeted_time = sum(guarded for _, _, _, guarded in timings)
    overhead = (
        budgeted_time / unbudgeted_time - 1.0 if unbudgeted_time > 0 else 0.0
    )

    series = []
    for family, sizes in (("line", LINE_SIZES), ("ktree", KTREE_SIZES)):
        plain_series = ScalingSeries(f"{family} unbudgeted (s)")
        guarded_series = ScalingSeries(f"{family} budgeted (s)")
        for n in sizes:
            group = [t for t in timings if t[0] == family and t[1] == n]
            plain_series.add(n, sum(plain for _, _, plain, _ in group))
            guarded_series.add(n, sum(guarded for _, _, _, guarded in group))
        series.extend((plain_series, guarded_series))

    gate_enforced = unbudgeted_time >= MIN_MEASURABLE_SECONDS
    gate_skip_reason = (
        None
        if gate_enforced
        else (
            f"unbudgeted case minima sum to {unbudgeted_time:.4f}s "
            f"(< {MIN_MEASURABLE_SECONDS}s): timer noise swamps a "
            f"{MAX_OVERHEAD:.0%} signal at this scale"
        )
    )
    write_benchmark_json(
        RESULT_FILE,
        "Checkpoint overhead of budget-guarded evaluation",
        series,
        extra={
            "families": {
                "line": f"RST chains, n in {list(LINE_SIZES)}",
                "ktree": f"labelled partial k-trees, width {WIDTH}, n in {list(KTREE_SIZES)}",
            },
            "cases": len(cases),
            "repetitions_per_case": repetitions,
            "budget": {
                "node_limit": GENEROUS_NODE_LIMIT,
                "row_limit": GENEROUS_ROW_LIMIT,
                "timeout_seconds": GENEROUS_TIMEOUT,
            },
            "unbudgeted_seconds": unbudgeted_time,
            "budgeted_seconds": budgeted_time,
            "checkpoint_overhead": overhead,
            "max_allowed_overhead": MAX_OVERHEAD,
            "overhead_gate_enforced": gate_enforced,
            "gate_skip_reason": gate_skip_reason,
        },
    )
    return unbudgeted_time, budgeted_time, overhead, gate_enforced, gate_skip_reason


def report(unbudgeted_time, budgeted_time, overhead):
    rows = [
        ("unbudgeted", round(unbudgeted_time, 4)),
        ("budgeted", round(budgeted_time, 4)),
    ]
    print()
    print(format_table(["pass", "time (s)"], rows))
    print(
        f"checkpoint overhead: {overhead:+.2%} "
        f"(limit {MAX_OVERHEAD:.0%}, results in {RESULT_FILE.name})"
    )


def test_checkpoint_overhead(benchmark):
    unbudgeted_time, budgeted_time, overhead, gate_enforced, skip_reason = run_benchmark()
    _, _, query, tid = build_cases()[0]
    benchmark(_time_once, query, tid, True)
    report(unbudgeted_time, budgeted_time, overhead)
    if gate_enforced:
        assert overhead <= MAX_OVERHEAD, (
            f"budget checkpoints cost {overhead:+.2%} over the unguarded path; "
            f"expected <= {MAX_OVERHEAD:.0%}"
        )
    else:
        print(f"overhead gate waived: {skip_reason}")


if __name__ == "__main__":
    unbudgeted_time, budgeted_time, overhead, gate_enforced, skip_reason = run_benchmark()
    report(unbudgeted_time, budgeted_time, overhead)
    if not gate_enforced:
        print(f"overhead gate waived: {skip_reason}")
    elif overhead > MAX_OVERHEAD:
        raise SystemExit(
            f"REGRESSION: budget checkpoint overhead {overhead:+.2%} > {MAX_OVERHEAD:.0%}"
        )
