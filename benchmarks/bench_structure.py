"""STRUCTURE — the fused structural front-end vs the seed construction.

Three families exercise the decomposition→encoding→provenance front-end of
the paper end to end (instance → Gaifman graph → elimination ordering →
tree decomposition → binary tree encoding → automaton provenance d-DNNF):

* **line**: directed paths with the two-consecutive-edges UCQ — the
  pathwidth-1 regime of Theorem 6.7 and the regime where the seed front-end
  is most clearly quadratic (its encoding builder scans every bag per fact
  and replays a full validation pass over all elements × all nodes);
* **grid**: n×n grids with the same query — growing-treewidth inputs where
  the automaton state sets per node are larger;
* **ktree**: the labelled partial k-tree workload of ``bench_engine`` with
  the unsafe RST query — the bounded-treewidth regime of Theorem 6.5.

The *seed path* uses :mod:`repro.structure.reference` and
:mod:`repro.provenance.reference`: the linear-scan min-degree / full-rescan
min-fill heuristics, the ordering-replay decomposition builder with its
validation pass, the recursive encoding builder, and the provenance
construction that enumerates the child-state product twice around
``sorted(..., key=repr)``.  The *kernel path* uses the heap-driven
elimination sweep fused into :func:`repro.provenance.tree_encoding.
fused_tree_encoding` plus the dense-state provenance kernel of
:mod:`repro.provenance.automaton_provenance`.

Both paths must produce extensionally equal d-DNNFs (same probability under
the uniform valuation) and identical reachable-state counts.  The line
family — the largest — must be at least 3x faster end to end; results go to
``BENCH_structure.json``.
"""

import sys
import time
from fractions import Fraction
from pathlib import Path

from repro.data.tid import ProbabilisticInstance
from repro.experiments import ScalingSeries, format_table, speedup, write_benchmark_json
from repro.generators import (
    directed_path_instance,
    grid_instance,
    labelled_partial_ktree_instance,
)
from repro.provenance.automaton_provenance import provenance
from repro.provenance.reference import provenance_seed, tree_encoding_seed
from repro.provenance.tree_encoding import fused_tree_encoding
from repro.provenance.ucq_automaton import ucq_automaton
from repro.queries import unsafe_rst
from repro.queries.parser import parse_ucq

LINE_SIZES = (150, 300, 600, 1200)
GRID_SIZES = (3, 4)
KTREE_SIZES = (12, 18, 24)
KTREE_WIDTH = 2
REPEATS = 3
RESULT_FILE = Path(__file__).resolve().parent.parent / "BENCH_structure.json"
MINIMUM_SPEEDUP = 3.0

# The seed encoding builder recurses to the decomposition depth (the line
# family reaches ~1200); the fused path is iterative and needs none of this.
_RECURSION_HEADROOM = 10_000


def _cases():
    two_edges = parse_ucq("E(x,y), E(y,z)")
    families = []
    families.append(
        (
            "line",
            [(n, directed_path_instance(n), ucq_automaton(two_edges)) for n in LINE_SIZES],
        )
    )
    families.append(
        (
            "grid",
            [(n, grid_instance(n, n), ucq_automaton(two_edges)) for n in GRID_SIZES],
        )
    )
    families.append(
        (
            "ktree",
            [
                (n, labelled_partial_ktree_instance(n, KTREE_WIDTH, seed=n), ucq_automaton(unsafe_rst()))
                for n in KTREE_SIZES
            ],
        )
    )
    return families


def seed_path(instance, automaton):
    """Seed front-end: seed orderings → ordering-replay decomposition (with
    validation) → recursive encoding (with validation) → seed provenance."""
    encoding = tree_encoding_seed(instance)
    return provenance_seed(automaton, encoding)


def kernel_path(instance, automaton):
    """Fused front-end: one heap-driven elimination sweep straight to the
    encoding, then the dense-state provenance kernel."""
    encoding = fused_tree_encoding(instance)
    return provenance(automaton, encoding)


def _uniform_probability(instance, result):
    tid = ProbabilisticInstance.uniform(instance, Fraction(1, 2))
    valuation = {f: tid.probability_of(f) for f in result.dnnf.variables()}
    return result.dnnf.probability(valuation)


def _measure(series_pair, size, instance, automaton):
    seed_series, kernel_series = series_pair
    start = time.perf_counter()
    for _ in range(REPEATS):
        seed_result = seed_path(instance, automaton)
    seed_series.add(size, time.perf_counter() - start)
    start = time.perf_counter()
    for _ in range(REPEATS):
        kernel_result = kernel_path(instance, automaton)
    kernel_series.add(size, time.perf_counter() - start)
    # Exactness: the two front-ends must agree extensionally — same d-DNNF
    # probability and same model count over the full fact set (node ids and
    # fact attachment differ between the encodings, so per-node state
    # profiles are not directly comparable).
    assert _uniform_probability(instance, seed_result) == _uniform_probability(
        instance, kernel_result
    ), f"seed and kernel front-ends disagree at size {size}"
    assert seed_result.dnnf.model_count(instance.facts) == kernel_result.dnnf.model_count(
        instance.facts
    ), f"model counts differ at size {size}"


def run_benchmark():
    limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(limit, _RECURSION_HEADROOM))
    series = {}
    try:
        for family, cases in _cases():
            seed_series = ScalingSeries(f"{family}: seed front-end (s)")
            kernel_series = ScalingSeries(f"{family}: fused front-end (s)")
            for size, instance, automaton in cases:
                _measure((seed_series, kernel_series), size, instance, automaton)
            series[family] = (seed_series, kernel_series)
    finally:
        sys.setrecursionlimit(limit)
    family_speedups = {
        family: speedup(seed_series, kernel_series)
        for family, (seed_series, kernel_series) in series.items()
    }
    total_seed = sum(sum(s.values) for s, _ in series.values())
    total_kernel = sum(sum(k.values) for _, k in series.values())
    ratio = total_seed / total_kernel if total_kernel else float("inf")
    # The gate runs on the largest family (line): the seed path degrades
    # quadratically there, so the margin only grows with size.
    gated = family_speedups["line"]
    write_benchmark_json(
        RESULT_FILE,
        "Fused decomposition→encoding→provenance front-end vs the seed construction",
        [s for pair in series.values() for s in pair],
        extra={
            "families": {
                "line": f"directed paths, E(x,y),E(y,z), sizes {list(LINE_SIZES)}",
                "grid": f"n x n grids, E(x,y),E(y,z), n in {list(GRID_SIZES)}",
                "ktree": f"labelled partial k-trees, width {KTREE_WIDTH}, unsafe RST, sizes {list(KTREE_SIZES)}",
            },
            "repeats_per_instance": REPEATS,
            "end_to_end": "instance -> ordering -> decomposition -> tree encoding -> provenance d-DNNF + circuit",
            "speedup": ratio,
            "speedup_by_family": family_speedups,
            "gated_family": "line",
            "gated_speedup": gated,
            "minimum_required_speedup": MINIMUM_SPEEDUP,
        },
    )
    return series, family_speedups, ratio


def report(series, family_speedups, ratio):
    for family, (seed_series, kernel_series) in series.items():
        rows = [
            (int(n), round(s, 5), round(k, 5))
            for n, s, k in zip(seed_series.sizes, seed_series.values, kernel_series.values)
        ]
        print()
        print(format_table([f"{family} n", "seed front-end (s)", "fused front-end (s)"], rows))
        print(f"{family} speedup: {family_speedups[family]:.1f}x")
    print(f"total speedup: {ratio:.1f}x (results in {RESULT_FILE.name})")


def test_structure_front_end_speedup(benchmark):
    series, family_speedups, ratio = run_benchmark()
    automaton = ucq_automaton(parse_ucq("E(x,y), E(y,z)"))
    instance = directed_path_instance(LINE_SIZES[-1])
    benchmark(kernel_path, instance, automaton)
    report(series, family_speedups, ratio)
    assert family_speedups["line"] >= MINIMUM_SPEEDUP, (
        f"fused front-end only {family_speedups['line']:.2f}x faster than the seed path "
        f"on the line family; expected >= {MINIMUM_SPEEDUP}x"
    )


if __name__ == "__main__":
    series, family_speedups, ratio = run_benchmark()
    report(series, family_speedups, ratio)
    if family_speedups["line"] < MINIMUM_SPEEDUP:
        raise SystemExit(
            f"fused front-end only {family_speedups['line']:.2f}x faster than the seed path "
            f"on the line family; expected >= {MINIMUM_SPEEDUP}x"
        )