"""E4 — Table 2, "bounded-tw / MSO / d-DNNF / O(n)" (Theorem 6.11).

d-DNNF size of the parity MSO property (Proposition 7.3's query) and of the
matching-violation property on treewidth-1 instances of growing size, built by
the deterministic-automaton provenance construction: sizes must grow linearly.
"""

from repro.experiments import ScalingSeries, classify_growth, format_table
from repro.generators import labelled_line_instance
from repro.provenance import (
    incident_pair_automaton,
    parity_automaton,
    provenance_dnnf,
    tree_encoding,
)

SIZES = (10, 20, 40, 80)


def build_parity_dnnf(n: int):
    encoding = tree_encoding(labelled_line_instance(n))
    return provenance_dnnf(parity_automaton("L"), encoding)


def test_e4_ddnnf_size_linear(benchmark):
    parity_series = ScalingSeries("parity d-DNNF size")
    matching_series = ScalingSeries("matching-violation d-DNNF size")
    for n in SIZES:
        encoding = tree_encoding(labelled_line_instance(n))
        parity_series.add(n, provenance_dnnf(parity_automaton("L"), encoding).size)
        matching_series.add(n, provenance_dnnf(incident_pair_automaton(), encoding).size)
    benchmark(build_parity_dnnf, SIZES[-1])
    print()
    print(format_table(["n", "parity d-DNNF size"], parity_series.rows()))
    print(format_table(["n", "matching-violation d-DNNF size"], matching_series.rows()))
    print("parity growth:", classify_growth(parity_series))
    assert parity_series.loglog_slope() < 1.3
    assert matching_series.loglog_slope() < 1.3
