"""E5 — Table 2, "any instance / inversion-free UCQ / OBDD of constant width"
(Theorem 9.6, [36] Proposition 5).

OBDD width of an inversion-free UCQ on *arbitrary* (here: dense random ranked)
instances of growing size, under the element-major variable order induced by
the unfolding: the width stays constant even though the instances have growing
treewidth.
"""

from repro.data.signature import Signature
from repro.experiments import ScalingSeries, format_table
from repro.generators import random_ranked_instance
from repro.provenance import compile_query_to_obdd
from repro.provenance.variable_orders import element_major_order
from repro.queries import inversion_free_example
from repro.unfold import unfold_instance

RST = Signature([("R", 1), ("S", 2), ("T", 1)])
SIZES = (10, 20, 40)


def compile_width(fact_count: int) -> int:
    query = inversion_free_example()
    instance = random_ranked_instance(RST, max(6, fact_count // 3), fact_count, seed=fact_count)
    unfolding = unfold_instance(query, instance)
    element_rank = sorted(unfolding.unfolded.domain, key=lambda e: (len(e), repr(e)))
    ordered = element_major_order(unfolding.unfolded, element_rank)
    compiled = compile_query_to_obdd(query, unfolding.unfolded, order=ordered)
    return compiled.width


def test_e5_inversion_free_constant_width(benchmark):
    series = ScalingSeries("OBDD width of an inversion-free UCQ")
    for size in SIZES:
        series.add(size, compile_width(size))
    benchmark(compile_width, SIZES[-1])
    print()
    print(format_table(["|I| (facts)", "OBDD width"], series.rows()))
    assert series.is_roughly_constant(tolerance=2.0), "inversion-free UCQs have constant-width OBDDs"
