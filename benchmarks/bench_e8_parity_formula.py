"""E8 — Table 2 lower bounds, Proposition 7.3: MSO lineage needs Ω(n²) formulas.

The MSO query of Proposition 7.3 computes (on worlds with all edges present)
the parity of the kept L-facts on the treewidth-1 labelled-line family.  Its
formula representations require Ω(n²) leaves; the recursive XOR formula meets
that bound, while circuits (and the automaton-built d-DNNF) stay linear.
"""

from repro.booleans.formula import parity_circuit, parity_formula
from repro.experiments import ScalingSeries, format_table
from repro.generators import labelled_line_instance
from repro.provenance import parity_automaton, provenance_dnnf, tree_encoding

SIZES = (8, 16, 32, 64)


def parity_formula_size(n: int) -> int:
    return parity_formula([f"x{i}" for i in range(n)]).leaf_size


def test_e8_parity_formula_quadratic_circuit_linear(benchmark):
    formula_series = ScalingSeries("parity formula leaves")
    circuit_series = ScalingSeries("parity circuit gates")
    dnnf_series = ScalingSeries("parity d-DNNF size (automaton construction)")
    normalized = ScalingSeries("leaves / n^2")
    for n in SIZES:
        leaves = parity_formula_size(n)
        formula_series.add(n, leaves)
        normalized.add(n, leaves / n**2)
        circuit_series.add(n, parity_circuit([f"x{i}" for i in range(n)]).size)
        encoding = tree_encoding(labelled_line_instance(n))
        dnnf_series.add(n, provenance_dnnf(parity_automaton("L"), encoding).size)
    benchmark(parity_formula_size, SIZES[-1])
    print()
    print(
        format_table(
            ["n", "formula leaves", "leaves / n^2", "circuit gates", "d-DNNF size"],
            [
                (int(n), int(leaves), round(ratio, 3), int(gates), int(dnnf))
                for (n, leaves), (_, ratio), (_, gates), (_, dnnf) in zip(
                    formula_series.rows(),
                    normalized.rows(),
                    circuit_series.rows(),
                    dnnf_series.rows(),
                )
            ],
        )
    )
    assert 1.7 <= formula_series.loglog_slope() <= 2.3, "formula size is quadratic"
    assert circuit_series.loglog_slope() < 1.3, "circuit size is linear"
    assert dnnf_series.loglog_slope() < 1.3, "d-DNNF size is linear (Theorem 6.11)"
