"""E11 — Theorem 8.1 / Lemma 8.2: q_p has no polynomial OBDDs on unbounded treewidth.

OBDD width of q_p's lineage on the n x n grid family (treewidth n, the
canonical treewidth-constructible unbounded family) versus on the directed
path family of comparable size: the grid widths must grow quickly with the
treewidth while the path widths stay constant.  On the smallest grid we also
search over a sample of variable orders to confirm the blow-up is not an
artifact of the decomposition-derived order.
"""

import random

from repro.experiments import ScalingSeries, classify_growth, format_table
from repro.generators import directed_path_instance, grid_instance
from repro.provenance import compile_query_to_obdd
from repro.provenance.lineage import lineage_of
from repro.provenance.compile_obdd import compile_lineage_to_obdd
from repro.queries import qp

GRID_SIZES = (2, 3, 4, 5)


def grid_width(size: int) -> int:
    return compile_query_to_obdd(qp(), grid_instance(size, size)).width


def test_e11_qp_width_grows_with_treewidth(benchmark):
    grid_series = ScalingSeries("q_p OBDD width on n x n grids")
    path_series = ScalingSeries("q_p OBDD width on paths")
    for size in GRID_SIZES:
        grid_series.add(size, grid_width(size))
        path_series.add(size, compile_query_to_obdd(
            qp(), directed_path_instance(size * size), use_path_decomposition=True
        ).width)
    benchmark(grid_width, 4)
    print()
    print(
        format_table(
            ["n (grid side = treewidth)", "grid OBDD width", "path OBDD width"],
            [
                (int(n), int(g), int(p))
                for (n, g), (_, p) in zip(grid_series.rows(), path_series.rows())
            ],
        )
    )
    print("grid growth:", classify_growth(grid_series))
    assert path_series.is_roughly_constant()
    ratios = grid_series.growth_ratios()
    assert all(ratio > 1.3 for ratio in ratios), "width must keep growing with the grid side"
    assert grid_series.values[-1] > 8 * path_series.values[-1]


def test_e11_blowup_not_an_order_artifact():
    # Sample random variable orders on the 3x3 grid: none should beat the
    # decomposition-derived order by much, and all should exceed the path width.
    instance = grid_instance(3, 3)
    lineage = lineage_of(qp(), instance)
    rng = random.Random(0)
    facts = list(instance.facts)
    widths = []
    for _ in range(10):
        rng.shuffle(facts)
        widths.append(compile_lineage_to_obdd(lineage, list(facts)).width)
    path_width = compile_query_to_obdd(
        qp(), directed_path_instance(9), use_path_decomposition=True
    ).width
    print("sampled widths on 3x3 grid:", sorted(widths), "path width:", path_width)
    assert min(widths) > path_width
