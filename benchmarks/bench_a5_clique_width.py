"""A5 (extension) — bounded clique-width without bounded treewidth (Section 5.1).

The class of cliques witnesses why Theorem 5.2 needs subinstance closure:
treewidth grows linearly but clique-width stays 2, and MSO-style counting
(here: independent sets) over the k-expression runs in time linear in the
expression, while the treewidth of the same graphs explodes.
"""

import time

from repro.experiments import ScalingSeries, classify_growth, format_table
from repro.structure.clique_width import (
    clique_expression,
    count_independent_sets,
    maximum_independent_set,
)
from repro.structure.tree_decomposition import treewidth

SIZES = (4, 8, 16, 32)


def count_on_clique(n: int) -> int:
    return count_independent_sets(clique_expression(n))


def test_a5_clique_width_dp_tractable_on_cliques(benchmark):
    time_series = ScalingSeries("clique-width DP time (s)")
    width_series = ScalingSeries("treewidth")
    rows = []
    for n in SIZES:
        expression = clique_expression(n)
        assert expression.width == 2
        start = time.perf_counter()
        independent_sets = count_on_clique(n)
        elapsed = time.perf_counter() - start
        time_series.add(n, elapsed)
        # The independent sets of K_n are the empty set and the singletons.
        assert independent_sets == n + 1
        assert maximum_independent_set(expression) == 1
        graph_treewidth = treewidth(expression.to_graph())
        width_series.add(n, graph_treewidth)
        rows.append((n, 2, graph_treewidth, independent_sets, round(elapsed, 5)))
    benchmark(count_on_clique, SIZES[-1])
    print()
    print(
        format_table(
            ["n", "clique-width", "treewidth", "independent sets", "DP seconds"], rows
        )
    )
    print("treewidth growth:", classify_growth(width_series))
    assert width_series.values[-1] == SIZES[-1] - 1, "treewidth of K_n is n - 1"
    assert time_series.values[-1] < 1.0, "the clique-width DP must stay fast"
