"""E15 — Theorem 9.7: unfolding reduces instances to bounded tree-depth, lineage-preservingly.

For inversion-free UCQs on dense random ranked instances of growing size we
measure the treewidth / pathwidth / tree-depth before and after unfolding, and
verify that the lineage (hence the probability) is preserved exactly.
"""

from repro.data.gaifman import instance_pathwidth, instance_treewidth
from repro.data.signature import Signature
from repro.data.tid import ProbabilisticInstance
from repro.experiments import format_table
from repro.generators import random_probabilities, random_ranked_instance
from repro.probability import probability
from repro.queries import inversion_free_example
from repro.unfold import lineage_preserved, unfold_instance

RST = Signature([("R", 1), ("S", 2), ("T", 1)])
SIZES = (10, 20, 40)


def unfold(fact_count: int):
    query = inversion_free_example()
    instance = random_ranked_instance(RST, max(6, fact_count // 3), fact_count, seed=fact_count)
    return instance, unfold_instance(query, instance)


def test_e15_unfolding_bounds_and_preserves_lineage(benchmark):
    query = inversion_free_example()
    rows = []
    for size in SIZES:
        instance, unfolding = unfold(size)
        rows.append(
            (
                len(instance),
                instance_treewidth(instance),
                instance_treewidth(unfolding.unfolded),
                instance_pathwidth(unfolding.unfolded),
                unfolding.tree_depth_bound,
            )
        )
        assert unfolding.tree_depth_bound <= RST.max_arity
        assert lineage_preserved(unfolding, query)
    benchmark(unfold, SIZES[-1])
    print()
    print(
        format_table(
            ["|I|", "tw before", "tw after", "pw after", "tree-depth bound"], rows
        )
    )
    # The unfolded instances are within the Theorem 9.7 bound regardless of the
    # original width.
    assert all(row[4] <= 2 for row in rows)


def test_e15_probability_preserved_through_unfolding():
    query = inversion_free_example()
    instance, unfolding = unfold(16)
    tid = random_probabilities(instance, seed=16)
    unfolded_tid = ProbabilisticInstance(
        unfolding.unfolded,
        {unfolding.unfolded_fact(f): tid.probability_of(f) for f in instance},
    )
    assert probability(query, tid) == probability(query, unfolded_tid)
