"""E14 — Proposition 8.10: the disconnected CQ≠ q_d escapes the meta-dichotomy.

q_d asks for two binary facts with disjoint domains.  Its OBDD width grows
(roughly linearly with the treewidth) on the grid family, but stays bounded on
a matching-free counterexample family (a family of disjoint stars, where no
two facts ever have disjoint domains within a star, keeping the lineage simple)
— so q_d satisfies neither side of the connected meta-dichotomy.
"""

from repro.data.instance import Fact, Instance
from repro.data.signature import Signature
from repro.experiments import ScalingSeries, format_table
from repro.generators import grid_instance
from repro.provenance import compile_query_to_obdd
from repro.queries import qd

SIZES = (2, 3, 4)


def star_pair_instance(leaves: int) -> Instance:
    """Two disjoint stars: unbounded degree but very simple q_d lineage."""
    facts = [Fact("E", ("c1", f"l{i}")) for i in range(leaves)]
    facts += [Fact("E", ("c2", f"m{i}")) for i in range(leaves)]
    return Instance(facts, Signature([("E", 2)]))


def width_on_grid(size: int) -> int:
    return compile_query_to_obdd(qd(), grid_instance(size, size)).width


def test_e14_qd_width_grows_on_grids(benchmark):
    grid_series = ScalingSeries("q_d width on n x n grids")
    for size in SIZES:
        grid_series.add(size, width_on_grid(size))
    benchmark(width_on_grid, SIZES[-1])
    print()
    print(format_table(["grid side", "q_d OBDD width"], grid_series.rows()))
    assert grid_series.values[-1] > grid_series.values[0]


def test_e14_qd_width_moderate_on_star_family():
    star_series = ScalingSeries("q_d width on disjoint stars")
    for leaves in (3, 6, 9, 12):
        star_series.add(leaves, compile_query_to_obdd(qd(), star_pair_instance(leaves)).width)
    print()
    print(format_table(["leaves per star", "q_d OBDD width"], star_series.rows()))
    assert star_series.is_roughly_constant(tolerance=2.5), (
        "on the star family the q_d lineage stays simple even though degrees grow"
    )
