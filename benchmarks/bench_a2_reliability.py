"""A2 (extension) — two-terminal reliability: full MSO strength on treelike instances.

Connectivity is MSO-definable but not UCQ-definable; the reliability automaton
exercises the general Theorem 3.2 pipeline beyond UCQ≠.  We measure the cost
and the d-DNNF size of exact s-t reliability on ladder networks of growing
length (bounded treewidth): both grow roughly linearly, while the same
computation on n x n grids grows much faster with the width.
"""

import time
from fractions import Fraction

from repro.data.tid import ProbabilisticInstance
from repro.experiments import ScalingSeries, classify_growth, format_table
from repro.generators import grid_instance
from repro.provenance import provenance_dnnf, st_connectivity_automaton, st_reliability, tree_encoding

LENGTHS = (3, 5, 7, 9)


def ladder_reliability(length: int) -> Fraction:
    instance = grid_instance(2, length)
    tid = ProbabilisticInstance.uniform(instance, Fraction(3, 4))
    return st_reliability(tid, "v0_0", f"v1_{length - 1}")


def test_a2_reliability_scales_on_ladders(benchmark):
    time_series = ScalingSeries("ladder reliability time (s)")
    size_series = ScalingSeries("reliability d-DNNF size")
    for length in LENGTHS:
        start = time.perf_counter()
        value = ladder_reliability(length)
        time_series.add(length, time.perf_counter() - start)
        assert 0 < value < 1
        encoding = tree_encoding(grid_instance(2, length))
        automaton = st_connectivity_automaton("v0_0", f"v1_{length - 1}")
        size_series.add(length, provenance_dnnf(automaton, encoding).size)
    benchmark(ladder_reliability, LENGTHS[-1])
    print()
    print(
        format_table(
            ["ladder length", "seconds", "d-DNNF size"],
            [
                (int(n), round(t, 5), int(s))
                for (n, t), (_, s) in zip(time_series.rows(), size_series.rows())
            ],
        )
    )
    print("d-DNNF growth:", classify_growth(size_series))
    assert size_series.loglog_slope() < 1.6
