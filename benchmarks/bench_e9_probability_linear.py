"""E9 — Theorem 4.2 upper bound: ra-linear probability evaluation on treelike instances.

We time the automaton-based probability evaluation of the matching-violation
property on treewidth-1 instances of growing size and check that the measured
cost grows roughly linearly (low log-log slope); brute force on the smallest
size cross-checks correctness.
"""

import time
from fractions import Fraction

from repro.data.tid import ProbabilisticInstance
from repro.experiments import ScalingSeries, classify_growth, format_table
from repro.generators import directed_path_instance
from repro.probability import brute_force_probability
from repro.provenance import incident_pair_automaton, tree_encoding
from repro.provenance.automata import automaton_probability
from repro.queries import qp

SIZES = (8, 16, 32, 64)


def evaluate(n: int) -> Fraction:
    instance = directed_path_instance(n)
    tid = ProbabilisticInstance.uniform(instance, Fraction(1, 3))
    encoding = tree_encoding(instance)
    return automaton_probability(incident_pair_automaton(), encoding, tid)


def test_e9_probability_evaluation_linear_time(benchmark):
    # Correctness on a small instance against brute force and the UCQ q_p.
    small = directed_path_instance(5)
    tid_small = ProbabilisticInstance.uniform(small, Fraction(1, 3))
    assert evaluate(5) == brute_force_probability(qp(), tid_small)

    series = ScalingSeries("probability evaluation time (s)")
    for n in SIZES:
        start = time.perf_counter()
        evaluate(n)
        series.add(n, time.perf_counter() - start)
    benchmark(evaluate, SIZES[-1])
    print()
    print(format_table(["|I|", "seconds"], [(int(n), round(v, 5)) for n, v in series.rows()]))
    print("growth:", classify_growth(series))
    assert series.loglog_slope() < 2.0, "evaluation should scale near-linearly on treelike instances"
