"""E19 (extension) — probabilistic XML as a treelike use case (introduction, [11]).

Tree-pattern probability on PrXML{ind} documents through the lineage/OBDD
pipeline: documents are trees (treewidth 1), so the pipeline scales gently
with the document size, and on small documents it agrees exactly with
possible-world enumeration, whose cost doubles with every uncertain edge.
"""

import time

from repro.data.gaifman import instance_treewidth
from repro.data.pxml import (
    pattern,
    pattern_probability,
    pattern_probability_brute_force,
    random_pxml_document,
)
from repro.experiments import ScalingSeries, classify_growth, format_table

DEPTHS = (1, 2, 3, 4)
QUERY = pattern("a", (pattern("b"), "descendant"))


def lineage_probability(depth: int):
    document = random_pxml_document(depth=depth, fanout=2, seed=depth)
    return pattern_probability(document, QUERY)


def test_e19_pxml_pattern_probability(benchmark):
    agreement_checked = False
    time_series = ScalingSeries("lineage route time (s)")
    size_series = ScalingSeries("document size")
    for depth in DEPTHS:
        document = random_pxml_document(depth=depth, fanout=2, seed=depth)
        assert instance_treewidth(document.to_instance()) <= 1
        start = time.perf_counter()
        value = pattern_probability(document, QUERY)
        time_series.add(depth, time.perf_counter() - start)
        size_series.add(depth, len(document))
        assert 0 <= value <= 1
        if depth <= 2:
            assert value == pattern_probability_brute_force(document, QUERY)
            agreement_checked = True
    assert agreement_checked
    benchmark(lineage_probability, DEPTHS[-1])
    print()
    print(
        format_table(
            ["depth", "document nodes", "seconds"],
            [
                (int(d), int(s), round(t, 5))
                for (d, s), (_, t) in zip(size_series.rows(), time_series.rows())
            ],
        )
    )
    print("lineage-route growth:", classify_growth(time_series))
