"""E17 — Table 1 landscape: MSO model checking is linear on bounded treewidth.

Model checking of automaton-defined MSO properties (matching violation,
threshold, parity) on bounded-treewidth instances of growing size is a single
bottom-up pass; we chart its near-linear cost, and contrast the cost of the
*provenance pipeline* on the bounded-treewidth family with the same pipeline
on the grid family, where the per-node state sets and the compiled OBDDs blow
up with the width (the Table 1 / Theorem 5.2 contrast).
"""

import time

from repro.experiments import ScalingSeries, classify_growth, format_table
from repro.generators import directed_path_instance, grid_instance
from repro.provenance import (
    incident_pair_automaton,
    model_check,
    parity_automaton,
    provenance,
    threshold_automaton,
    tree_encoding,
)

SIZES = (16, 32, 64, 128)


def model_check_all(n: int) -> bool:
    instance = directed_path_instance(n)
    encoding = tree_encoding(instance)
    results = [
        model_check(incident_pair_automaton(), encoding),
        model_check(threshold_automaton(3), encoding),
        model_check(parity_automaton("E"), encoding),
    ]
    return all(isinstance(result, bool) for result in results)


def test_e17_model_checking_linear(benchmark):
    series = ScalingSeries("model-checking time on paths (s)")
    for n in SIZES:
        start = time.perf_counter()
        model_check_all(n)
        series.add(n, time.perf_counter() - start)
    benchmark(model_check_all, SIZES[-1])
    print()
    print(format_table(["path length", "seconds"], [(int(n), round(v, 5)) for n, v in series.rows()]))
    print("growth:", classify_growth(series))
    assert series.loglog_slope() < 2.0


def test_e17_state_blowup_on_grids():
    bounded = ScalingSeries("max states per node on 2 x n ladders")
    unbounded = ScalingSeries("max states per node on n x n grids")
    for n in (2, 3, 4):
        ladder = tree_encoding(grid_instance(2, n + 2))
        grid = tree_encoding(grid_instance(n, n))
        bounded.add(n, provenance(incident_pair_automaton(), ladder).max_states_per_node)
        unbounded.add(n, provenance(incident_pair_automaton(), grid).max_states_per_node)
    print()
    print(
        format_table(
            ["n", "ladder max states", "grid max states"],
            [
                (int(n), int(b), int(u))
                for (n, b), (_, u) in zip(bounded.rows(), unbounded.rows())
            ],
        )
    )
    assert unbounded.values[-1] > bounded.values[-1]
