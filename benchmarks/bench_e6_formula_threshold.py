"""E6 — Table 2 lower bounds, Proposition 7.1: CQ≠ lineage needs Ω(n log log n) formulas.

The CQ≠ is ``∃xy R(x) ∧ R(y) ∧ x ≠ y`` on the treewidth-0 family of unary
instances; its lineage is the threshold-2 function.  We compare the size of
the divide-and-conquer formula (the best known upper bound, Θ(n log n) over
the monotone basis) with the linear-size circuit, exhibiting the conciseness
gap between formula and circuit representations, and we confirm by exhaustive
search on tiny n that no smaller formula exists than the lower-bound shape.
"""

from repro.booleans.formula import minimal_formula_size, threshold_2_circuit, threshold_2_formula
from repro.experiments import ScalingSeries, format_table
from repro.generators import unary_instance
from repro.provenance import lineage_of
from repro.queries import threshold_two_query

SIZES = (8, 16, 32, 64, 128)


def formula_size(n: int) -> int:
    instance = unary_instance(n)
    facts = list(instance.facts)
    return threshold_2_formula(facts).leaf_size


def test_e6_formula_versus_circuit_gap(benchmark):
    formula_series = ScalingSeries("threshold-2 formula leaves")
    circuit_series = ScalingSeries("threshold-2 circuit size")
    per_variable = ScalingSeries("formula leaves per variable")
    for n in SIZES:
        facts = list(unary_instance(n).facts)
        leaves = threshold_2_formula(facts).leaf_size
        gates = threshold_2_circuit(facts).size
        formula_series.add(n, leaves)
        circuit_series.add(n, gates)
        per_variable.add(n, leaves / n)
    benchmark(formula_size, SIZES[-1])
    print()
    print(
        format_table(
            ["n", "formula leaves", "circuit gates", "leaves / n"],
            [
                (int(n), int(f), int(c), round(r, 2))
                for (n, f), (_, c), (_, r) in zip(
                    formula_series.rows(), circuit_series.rows(), per_variable.rows()
                )
            ],
        )
    )
    # The lineage of the CQ≠ on the unary family is indeed the threshold function.
    lineage = lineage_of(threshold_two_query(), unary_instance(4))
    assert lineage.clause_count == 6
    # Super-linear formula vs linear circuit: the per-variable formula cost grows.
    assert per_variable.values[-1] > per_variable.values[0]
    assert circuit_series.loglog_slope() < 1.2


def test_e6_exhaustive_minimum_on_tiny_inputs():
    # On 2 and 3 variables the exact minimal formula sizes are 2 and 5 >= n.
    assert minimal_formula_size(["a", "b"], lambda v: sum(v.values()) >= 2) == 2
    assert minimal_formula_size(["a", "b", "c"], lambda v: sum(v.values()) >= 2) >= 4
