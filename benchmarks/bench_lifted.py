"""LIFTED — the dichotomy router's safe-plan route beyond circuit scale.

The query-based side of the dichotomy: on a safe query, lifted inference
computes the exact probability directly on the TID instance — no lineage,
no OBDD — so it reaches instance sizes where every circuit route is gated
infeasible.  This benchmark drives the whole stack end to end:

* family: ``R(a_i)`` for ``i < k`` plus ``S(a_i, b_j)`` for ``i < k, j < m``
  (``k + k*m`` facts), uniform probability 1/2, query ``R(x), S(x, y)``
  (:func:`repro.queries.library.hierarchical_example`);
* at the largest size (>= 10^5 facts, past the engine's default
  ``circuit_fact_limit``) the router must pick the safe-plan route *unaided*
  — ``method="auto"``, no hints — with every circuit route gated infeasible;
* the value must equal the independently computed closed form
  ``1 - (1 - p*(1 - (1-p)^m))^k`` exactly, as a Fraction;
* at a small size the lifted value must also agree with the brute-force and
  OBDD routes (self-validation of the family's closed form).

Results go to ``BENCH_lifted.json``; the CI step fails on any gate.
"""

import time
from fractions import Fraction
from pathlib import Path

from repro.data.instance import Fact, Instance
from repro.data.tid import ProbabilisticInstance
from repro.engine import CompilationEngine
from repro.experiments import ScalingSeries, format_table, write_benchmark_json
from repro.probability import probability
from repro.queries import hierarchical_example

# k values; each size is k + k*M facts.  The largest must clear 10^5 facts.
K_SIZES = (50, 100, 200, 400)
M_PER_K = 300
PROBABILITY = Fraction(1, 2)
SMALL_K, SMALL_M = (3, 2)
RESULT_FILE = Path(__file__).resolve().parent.parent / "BENCH_lifted.json"
MINIMUM_LARGEST_FACTS = 100_000
MAXIMUM_LARGEST_SECONDS = 60.0


def _family_tid(k, m):
    facts = [Fact("R", (f"a{i}",)) for i in range(k)]
    facts.extend(Fact("S", (f"a{i}", f"b{j}")) for i in range(k) for j in range(m))
    return ProbabilisticInstance.uniform(Instance(facts), PROBABILITY)


def _closed_form(k, m):
    """P(exists x y: R(x) & S(x,y)) under independence, computed without the
    lifted machinery: per value a_i the branch succeeds with probability
    p * (1 - (1-p)^m), and the k branches are independent."""
    p = PROBABILITY
    branch = p * (1 - (1 - p) ** m)
    return 1 - (1 - branch) ** k


def run_benchmark():
    query = hierarchical_example()

    # Self-validation at a size every route can handle.
    small = _family_tid(SMALL_K, SMALL_M)
    expected_small = _closed_form(SMALL_K, SMALL_M)
    for method in ("brute_force", "obdd", "safe_plan", "safe_plan_reference"):
        value = probability(query, small, method=method)
        assert value == expected_small, (
            f"{method} returned {value} on the small family, closed form says "
            f"{expected_small}"
        )

    series = ScalingSeries("lifted: auto route (s)")
    checks = []
    largest_decision = None
    largest_facts = 0
    largest_seconds = 0.0
    for k in K_SIZES:
        tid = _family_tid(k, M_PER_K)
        facts = len(tid.instance)
        engine = CompilationEngine()
        decision = engine.choose_route(query, tid)
        start = time.perf_counter()
        value = engine.probability(query, tid, "auto")
        elapsed = time.perf_counter() - start
        series.add(facts, elapsed)
        expected = _closed_form(k, M_PER_K)
        assert value == expected, (
            f"auto route returned a wrong value at k={k}: {value} != closed form"
        )
        assert engine.route_mix() == {"safe_plan": 1}, (
            f"auto did not route through the lifted plan at k={k}: "
            f"{engine.route_mix()}"
        )
        checks.append(
            {
                "k": k,
                "m": M_PER_K,
                "facts": facts,
                "seconds": elapsed,
                "route": decision.method,
                "infeasible_routes": list(decision.infeasible),
            }
        )
        largest_decision = decision
        largest_facts = facts
        largest_seconds = elapsed

    assert largest_facts >= MINIMUM_LARGEST_FACTS, (
        f"largest family has only {largest_facts} facts; the benchmark must "
        f"demonstrate the lifted route at >= {MINIMUM_LARGEST_FACTS}"
    )
    assert largest_decision.method == "safe_plan", (
        f"router picked {largest_decision.method!r} at {largest_facts} facts; "
        "the lifted route must win unaided"
    )
    missing = set(largest_decision.infeasible) ^ {"obdd", "columnar", "dnnf", "automaton"}
    assert not missing, (
        f"circuit routes not all gated infeasible at {largest_facts} facts: "
        f"{largest_decision.infeasible}"
    )
    assert largest_seconds <= MAXIMUM_LARGEST_SECONDS, (
        f"lifted evaluation took {largest_seconds:.1f}s at {largest_facts} "
        f"facts (limit {MAXIMUM_LARGEST_SECONDS}s)"
    )

    write_benchmark_json(
        RESULT_FILE,
        "Lifted inference (safe plans) at circuit-infeasible instance sizes",
        [series],
        extra={
            "family": (
                f"R(a_i) + S(a_i, b_j), m={M_PER_K} per root, k in {list(K_SIZES)}, "
                f"uniform p={PROBABILITY}"
            ),
            "query": str(hierarchical_example()),
            "closed_form": "1 - (1 - p*(1 - (1-p)^m))^k",
            "checks": checks,
            "largest_facts": largest_facts,
            "largest_seconds": largest_seconds,
            "largest_route": largest_decision.method,
            "largest_infeasible_routes": list(largest_decision.infeasible),
            "minimum_largest_facts": MINIMUM_LARGEST_FACTS,
            "maximum_largest_seconds": MAXIMUM_LARGEST_SECONDS,
        },
    )
    return series, checks


def report(series, checks):
    rows = [
        (check["k"], check["facts"], round(check["seconds"], 4), check["route"])
        for check in checks
    ]
    print()
    print(format_table(["k", "facts", "auto route (s)", "route"], rows))
    largest = checks[-1]
    print(
        f"largest: {largest['facts']} facts via {largest['route']} in "
        f"{largest['seconds']:.3f}s; circuit routes gated: "
        f"{', '.join(largest['infeasible_routes'])} (results in {RESULT_FILE.name})"
    )


def test_lifted_route_at_scale(benchmark):
    series, checks = run_benchmark()
    small = _family_tid(SMALL_K, SMALL_M)
    benchmark(probability, hierarchical_example(), small, method="safe_plan")
    report(series, checks)


if __name__ == "__main__":
    series, checks = run_benchmark()
    report(series, checks)
