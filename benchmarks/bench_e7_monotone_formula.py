"""E7 — Table 2 lower bounds, Proposition 7.2: monotone formulas need Ω(n log n).

Same lineage as E6 (threshold-2 on the treewidth-0 unary family), restricted
to monotone formula representations; the divide-and-conquer construction is
Θ(n log n), matching the lower bound, while the monotone circuit stays linear.
"""

import math

from repro.booleans.formula import minimal_formula_size, threshold_2_circuit, threshold_2_formula
from repro.experiments import ScalingSeries, format_table

SIZES = (8, 16, 32, 64, 128, 256)


def monotone_formula_size(n: int) -> int:
    return threshold_2_formula([f"x{i}" for i in range(n)]).leaf_size


def test_e7_monotone_formula_nlogn_shape(benchmark):
    series = ScalingSeries("monotone threshold-2 formula leaves")
    normalized = ScalingSeries("leaves / (n log2 n)")
    circuit_series = ScalingSeries("monotone circuit gates")
    for n in SIZES:
        leaves = monotone_formula_size(n)
        series.add(n, leaves)
        normalized.add(n, leaves / (n * math.log2(n)))
        circuit_series.add(n, threshold_2_circuit([f"x{i}" for i in range(n)]).size)
    benchmark(monotone_formula_size, SIZES[-1])
    print()
    print(
        format_table(
            ["n", "formula leaves", "leaves / (n log n)", "circuit gates"],
            [
                (int(n), int(leaves), round(ratio, 3), int(gates))
                for (n, leaves), (_, ratio), (_, gates) in zip(
                    series.rows(), normalized.rows(), circuit_series.rows()
                )
            ],
        )
    )
    # The construction tracks n log n: the normalized values stay within a small band.
    assert max(normalized.values) / min(normalized.values) < 2.0
    # And the formula is asymptotically larger than the circuit.
    assert series.values[-1] / circuit_series.values[-1] > series.values[0] / circuit_series.values[0]


def test_e7_monotone_exhaustive_minimum_tiny():
    assert minimal_formula_size(["a", "b", "c"], lambda v: sum(v.values()) >= 2, monotone=True) >= 4
