"""COMPILE — the iterative compilation kernels vs the seed recursive core.

Two families exercise the DNF→OBDD compile path end to end (clauses →
reduced OBDD → probability + size + width + model count):

* **line**: the two-consecutive-edges query on directed paths — the
  pathwidth-1 regime of Theorem 6.7, where the seed's clause-by-clause
  ``apply`` fold is quadratic in the path length (the accumulator is rebuilt
  per clause) and its per-cut width loop is quadratic too;
* **ktree**: the labelled partial k-tree workload of ``bench_engine`` — the
  bounded-treewidth regime of Theorem 6.5.

The *seed path* uses :mod:`repro.booleans.reference`: the recursive
apply-fold with tuple cache keys, then one recursive walk per measurement.
The *kernel path* uses the trie-driven :meth:`OBDD.build_from_clauses` and
one fused :meth:`OBDD.sweep`.  Both run on fresh managers per repetition and
must produce identical root ids and identical exact values.  The total
speedup must be at least 3x; results go to ``BENCH_compile.json``.
"""

import sys
import time
from fractions import Fraction
from pathlib import Path

from repro.booleans.obdd import OBDD
from repro.booleans.reference import (
    build_from_clauses_fold,
    model_count_recursive,
    probability_recursive,
    width_by_cuts,
)
from repro.data.tid import ProbabilisticInstance
from repro.engine import CompilationEngine
from repro.experiments import ScalingSeries, format_table, speedup, write_benchmark_json
from repro.generators import labelled_partial_ktree_instance
from repro.generators.lines import directed_path_instance
from repro.queries import hierarchical_example, unsafe_rst
from repro.queries.parser import parse_ucq

LINE_SIZES = (75, 150, 300, 600)
KTREE_SIZES = (10, 14, 18, 22)
KTREE_WIDTH = 2
REPEATS = 3
RESULT_FILE = Path(__file__).resolve().parent.parent / "BENCH_compile.json"
MINIMUM_SPEEDUP = 3.0

# The seed path is recursive: depth tracks the variable-order length, so the
# largest line sizes need headroom beyond CPython's default limit (this is
# exactly the limitation the iterative kernels remove).
_RECURSION_HEADROOM = 10_000


def _line_case(n):
    instance = directed_path_instance(n)
    query = parse_ucq("E(x,y), E(y,z)")
    engine = CompilationEngine()
    lineage = engine.lineage(query, instance)
    order = sorted(instance.facts, key=lambda f: int(f.arguments[0][1:]))
    tid = ProbabilisticInstance.uniform(instance, Fraction(1, 2))
    return lineage.clauses, order, tid.valuation()


def _ktree_cases(n):
    instance = labelled_partial_ktree_instance(n, KTREE_WIDTH, seed=n)
    engine = CompilationEngine()
    tid = ProbabilisticInstance.uniform(instance, Fraction(1, 2))
    cases = []
    for query in (unsafe_rst(), hierarchical_example()):
        lineage = engine.lineage(query, instance)
        order = engine.fact_order(instance)
        cases.append((lineage.clauses, order, tid.valuation()))
    return cases


def seed_path(clauses, order, valuation):
    """Seed pipeline: apply-fold compile, then one recursive walk per measure."""
    manager = OBDD(list(order))
    root = build_from_clauses_fold(manager, [sorted(c, key=str) for c in clauses])
    prob = probability_recursive(manager, root, valuation) if root > 1 else Fraction(root)
    return root, prob, len(manager.reachable_nodes(root)), width_by_cuts(manager, root), model_count_recursive(manager, root)


def kernel_path(clauses, order, valuation):
    """New pipeline: trie compile, then one fused topological sweep."""
    manager = OBDD(list(order))
    root = manager.build_from_clauses(clauses)
    result = manager.sweep(root, valuation, model_count=True, width=True)
    return root, result.probability, result.size, result.width, result.model_count


def _measure(series_pair, size, cases):
    seed_series, kernel_series = series_pair
    start = time.perf_counter()
    for _ in range(REPEATS):
        for clauses, order, valuation in cases:
            seed_outcome = seed_path(clauses, order, valuation)
    seed_series.add(size, time.perf_counter() - start)
    start = time.perf_counter()
    for _ in range(REPEATS):
        for clauses, order, valuation in cases:
            kernel_outcome = kernel_path(clauses, order, valuation)
    kernel_series.add(size, time.perf_counter() - start)
    # Exactness: identical probability / size / width / model count (root ids
    # are manager-relative, so they are compared in one shared manager below).
    assert seed_outcome[1:] == kernel_outcome[1:], (
        f"seed and kernel paths disagree at size {size}: {seed_outcome[1:]} vs {kernel_outcome[1:]}"
    )
    clauses, order, _ = cases[0]
    shared = OBDD(list(order))
    fold_root = build_from_clauses_fold(shared, [sorted(c, key=str) for c in clauses])
    assert shared.build_from_clauses(clauses) == fold_root, (
        f"trie and fold intern different reduced roots at size {size}"
    )


def run_benchmark():
    limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(limit, _RECURSION_HEADROOM))
    try:
        line_seed = ScalingSeries("line: seed path (s)")
        line_kernel = ScalingSeries("line: kernel path (s)")
        for n in LINE_SIZES:
            _measure((line_seed, line_kernel), n, [_line_case(n)])
        ktree_seed = ScalingSeries("ktree: seed path (s)")
        ktree_kernel = ScalingSeries("ktree: kernel path (s)")
        for n in KTREE_SIZES:
            _measure((ktree_seed, ktree_kernel), n, _ktree_cases(n))
    finally:
        sys.setrecursionlimit(limit)
    total_seed = sum(line_seed.values) + sum(ktree_seed.values)
    total_kernel = sum(line_kernel.values) + sum(ktree_kernel.values)
    ratio = total_seed / total_kernel if total_kernel else float("inf")
    write_benchmark_json(
        RESULT_FILE,
        "Trie-driven DNF→OBDD compilation + fused sweep vs seed apply-fold path",
        [line_seed, line_kernel, ktree_seed, ktree_kernel],
        extra={
            "families": {
                "line": f"directed paths, E(x,y),E(y,z), sizes {list(LINE_SIZES)}",
                "ktree": f"labelled partial k-trees, width {KTREE_WIDTH}, sizes {list(KTREE_SIZES)}",
            },
            "repeats_per_instance": REPEATS,
            "end_to_end": "clauses -> reduced OBDD -> probability + size + width + model count",
            "speedup": ratio,
            "speedup_line": speedup(line_seed, line_kernel),
            "speedup_ktree": speedup(ktree_seed, ktree_kernel),
            "minimum_required_speedup": MINIMUM_SPEEDUP,
        },
    )
    return (line_seed, line_kernel, ktree_seed, ktree_kernel), ratio


def report(series, ratio):
    line_seed, line_kernel, ktree_seed, ktree_kernel = series
    for label, seed_series, kernel_series in (
        ("line", line_seed, line_kernel),
        ("ktree", ktree_seed, ktree_kernel),
    ):
        rows = [
            (int(n), round(s, 5), round(k, 5))
            for n, s, k in zip(seed_series.sizes, seed_series.values, kernel_series.values)
        ]
        print()
        print(format_table([f"{label} n", "seed path (s)", "kernel path (s)"], rows))
    print(f"total speedup: {ratio:.1f}x (results in {RESULT_FILE.name})")


def test_compile_kernel_speedup(benchmark):
    series, ratio = run_benchmark()
    clauses, order, valuation = _line_case(LINE_SIZES[-1])
    benchmark(kernel_path, clauses, order, valuation)
    report(series, ratio)
    assert ratio >= MINIMUM_SPEEDUP, (
        f"kernel path only {ratio:.2f}x faster than the seed apply-fold path; "
        f"expected >= {MINIMUM_SPEEDUP}x"
    )


if __name__ == "__main__":
    series, ratio = run_benchmark()
    report(series, ratio)
    if ratio < MINIMUM_SPEEDUP:
        raise SystemExit(
            f"kernel path only {ratio:.2f}x faster than the seed apply-fold path; "
            f"expected >= {MINIMUM_SPEEDUP}x"
        )
