"""E10 — Theorem 4.2 lower bound machinery: the matching-counting reduction.

The hardness proof reduces #matchings of planar 3-regular graphs to
probability evaluation.  We run the reduction forward: the number of matchings
of cubic planar graphs is recovered exactly from the probabilistic pipeline
(model counting of the matching-world property), and we chart how the cost of
exact evaluation explodes with treewidth on the grid family while staying tame
on a bounded-treewidth family of the same size.
"""

import time

from repro.counting import count_matchings_brute_force, count_matchings_treewidth_dp, count_matchings_via_lineage
from repro.experiments import ScalingSeries, format_table
from repro.generators import cubic_planar_graph
from repro.structure.graph import grid_graph

CUBIC_INDICES = (0, 1, 2, 3)


def count_via_reduction(index: int) -> int:
    return count_matchings_via_lineage(cubic_planar_graph(index))


def test_e10_reduction_recovers_matching_counts(benchmark):
    rows = []
    for index in CUBIC_INDICES:
        graph = cubic_planar_graph(index)
        expected = count_matchings_brute_force(graph)
        via_lineage = count_matchings_via_lineage(graph)
        assert via_lineage == expected
        rows.append((index, len(graph), expected))
    benchmark(count_via_reduction, CUBIC_INDICES[1])
    print()
    print(format_table(["graph index", "vertices", "#matchings"], rows))


def test_e10_cost_contrast_bounded_vs_unbounded_treewidth():
    bounded = ScalingSeries("2 x n ladder (treewidth 2) time")
    unbounded = ScalingSeries("n x n grid (treewidth n) time")
    for n in (2, 3, 4, 5):
        start = time.perf_counter()
        count_matchings_treewidth_dp(grid_graph(2, n))
        bounded.add(n, time.perf_counter() - start)
        start = time.perf_counter()
        count_matchings_treewidth_dp(grid_graph(n, n))
        unbounded.add(n, time.perf_counter() - start)
    print()
    print(
        format_table(
            ["n", "ladder seconds", "grid seconds"],
            [
                (int(n), round(b, 5), round(u, 5))
                for (n, b), (_, u) in zip(bounded.rows(), unbounded.rows())
            ],
        )
    )
    # The unbounded-treewidth family must eventually dominate the bounded one.
    assert unbounded.values[-1] >= bounded.values[-1]
