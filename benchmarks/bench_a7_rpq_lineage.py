"""A7 (extension) — C2RPQ≠ lineage on treelike instances (Section 4, monotone variant).

The monotone variant of Theorem 4.2 uses a C2RPQ≠ query.  On bounded-pathwidth
instances (directed paths) the lineage of the reachability C2RPQ≠ stays
tractable: the number of minimal witnesses grows linearly, its OBDD stays
small under the fact order of the path decomposition, and the lineage
probability agrees with brute force on small instances.
"""

from fractions import Fraction

from repro.data.tid import ProbabilisticInstance
from repro.experiments import ScalingSeries, classify_growth, format_table
from repro.generators.lines import directed_path_instance
from repro.probability.brute_force import brute_force_property_probability
from repro.provenance.compile_obdd import compile_lineage_to_obdd
from repro.queries.rpq import c2rpq_lineage, c2rpq_satisfied, reachability_query

LENGTHS = (3, 5, 8, 12)


def lineage_for(length: int):
    return c2rpq_lineage(reachability_query(), directed_path_instance(length))


def test_a7_rpq_lineage_tractable_on_paths(benchmark):
    clause_series = ScalingSeries("minimal witnesses")
    obdd_series = ScalingSeries("OBDD size")
    rows = []
    for length in LENGTHS:
        instance = directed_path_instance(length)
        query = reachability_query()
        lineage = c2rpq_lineage(query, instance)
        compiled = compile_lineage_to_obdd(lineage)
        clause_series.add(length, lineage.clause_count)
        obdd_series.add(length, compiled.size)
        rows.append((length, lineage.clause_count, compiled.size, compiled.width))
        if length <= 5:
            tid = ProbabilisticInstance.uniform(instance, Fraction(1, 2))
            exact = brute_force_property_probability(
                lambda world: c2rpq_satisfied(world, query), tid
            )
            assert compiled.probability(tid.valuation()) == exact
    benchmark(lineage_for, LENGTHS[-1])
    print()
    print(format_table(["path length", "minimal witnesses", "OBDD size", "OBDD width"], rows))
    print(
        "witness growth:",
        classify_growth(clause_series),
        "| OBDD growth:",
        classify_growth(obdd_series),
    )
    assert clause_series.loglog_slope() < 1.3, "single-edge witnesses: linear in the path length"
    assert obdd_series.is_subquadratic()
