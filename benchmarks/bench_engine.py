"""ENGINE — indexed matching + cached compilation vs the seed path.

Repeated query compilation over a family of labelled partial k-trees
(treewidth <= 2): the *seed path* recomputes everything per call and joins by
scanning every fact of each atom's relation (``cq_homomorphisms_naive``); the
*engine path* goes through one :class:`repro.engine.CompilationEngine`
session, which joins through the per-relation/per-position hash indexes and
memoizes decompositions, fact orders, lineages, and OBDDs by content
fingerprint.

The measured speedup (total seed time / total engine time over ``REPEATS``
compilations per instance and query) must be at least 3x; results are written
to ``BENCH_engine.json`` at the repository root.
"""

import time
from pathlib import Path

from repro.data.instance import Fact
from repro.engine import CompilationEngine
from repro.experiments import ScalingSeries, format_table, speedup, write_benchmark_json
from repro.generators import labelled_partial_ktree_instance
from repro.provenance.compile_obdd import compile_lineage_to_obdd
from repro.provenance.lineage import MonotoneDNFLineage
from repro.provenance.variable_orders import default_fact_order
from repro.queries import hierarchical_example, unsafe_rst
from repro.queries.matching import cq_homomorphisms_naive
from repro.queries.ucq import as_ucq

SIZES = (10, 14, 18, 22)
WIDTH = 2
REPEATS = 5
QUERIES = (unsafe_rst(), hierarchical_example())
RESULT_FILE = Path(__file__).resolve().parent.parent / "BENCH_engine.json"
MINIMUM_SPEEDUP = 3.0


def seed_path_compile(query, instance):
    """The seed pipeline: linear-scan matching, no caching of any artifact."""
    matches: set[frozenset] = set()
    for disjunct in as_ucq(query).disjuncts:
        for assignment in cq_homomorphisms_naive(disjunct, instance):
            matches.add(
                frozenset(
                    Fact(a.relation, tuple(assignment[v] for v in a.arguments))
                    for a in disjunct.atoms
                )
            )
    minimal = [m for m in matches if not any(other < m for other in matches)]
    lineage = MonotoneDNFLineage(instance, tuple(sorted(minimal, key=sorted)))
    return compile_lineage_to_obdd(lineage, default_fact_order(instance))


def run_benchmark():
    seed_series = ScalingSeries("seed path (s)")
    engine_series = ScalingSeries("engine path (s)")
    engine = CompilationEngine()
    for n in SIZES:
        instance = labelled_partial_ktree_instance(n, WIDTH, seed=n)

        start = time.perf_counter()
        for _ in range(REPEATS):
            for query in QUERIES:
                seed_path_compile(query, instance)
        seed_series.add(n, time.perf_counter() - start)

        start = time.perf_counter()
        for _ in range(REPEATS):
            for query in QUERIES:
                engine.compile(query, instance)
        engine_series.add(n, time.perf_counter() - start)

        # The two paths must agree on what they build.
        for query in QUERIES:
            reference = seed_path_compile(query, instance)
            cached = engine.compile(query, instance)
            assert cached.size == reference.size and cached.width == reference.width

    ratio = speedup(seed_series, engine_series)
    write_benchmark_json(
        RESULT_FILE,
        "Indexed matching + engine caching vs seed compilation path",
        [seed_series, engine_series],
        extra={
            "family": f"labelled partial k-trees, width {WIDTH}",
            "repeats_per_instance": REPEATS,
            "queries": [str(q) for q in QUERIES],
            "speedup": ratio,
            "minimum_required_speedup": MINIMUM_SPEEDUP,
            "engine_cache_stats": {
                name: {"hits": s.hits, "misses": s.misses}
                for name, s in engine.cache_info().items()
            },
        },
    )
    return seed_series, engine_series, ratio


def report(seed_series, engine_series, ratio):
    rows = [
        (int(n), round(s, 5), round(e, 5))
        for n, s, e in zip(seed_series.sizes, seed_series.values, engine_series.values)
    ]
    print()
    print(format_table(["n", "seed path (s)", "engine path (s)"], rows))
    print(f"total speedup: {ratio:.1f}x (results in {RESULT_FILE.name})")


def test_engine_caching_speedup(benchmark):
    seed_series, engine_series, ratio = run_benchmark()
    instance = labelled_partial_ktree_instance(SIZES[-1], WIDTH, seed=SIZES[-1])
    engine = CompilationEngine()
    engine.compile(unsafe_rst(), instance)  # warm
    benchmark(engine.compile, unsafe_rst(), instance)
    report(seed_series, engine_series, ratio)
    assert ratio >= MINIMUM_SPEEDUP, (
        f"engine path only {ratio:.2f}x faster than the seed path; expected >= {MINIMUM_SPEEDUP}x"
    )


if __name__ == "__main__":
    seed_series, engine_series, ratio = run_benchmark()
    report(seed_series, engine_series, ratio)
    if ratio < MINIMUM_SPEEDUP:
        raise SystemExit(
            f"engine path only {ratio:.2f}x faster than the seed path; "
            f"expected >= {MINIMUM_SPEEDUP}x"
        )
