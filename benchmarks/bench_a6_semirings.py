"""A6 (extension) — semiring provenance beyond Boolean lineage (Section 3, [2]/[29]).

The provenance circuits of [2] specialise to any commutative semiring.  This
ablation evaluates the same RST lineage in the counting, tropical and Why
semirings and through the N[X] provenance polynomial, checking the expected
relationships (monomial count = counting value under all-1 annotations;
tropical value = size of the cheapest witness) and that the evaluation cost
grows linearly with the instance.
"""

import time

from repro.experiments import ScalingSeries, classify_growth, format_table
from repro.generators.lines import rst_chain_instance
from repro.provenance.lineage import lineage_of
from repro.queries.library import unsafe_rst
from repro.semirings import (
    COUNTING,
    TROPICAL,
    WHY,
    evaluate_lineage_in_semiring,
    query_provenance_polynomial,
)

SIZES = (5, 10, 20, 40)


def polynomial_for(n: int):
    return query_provenance_polynomial(unsafe_rst(), rst_chain_instance(n))


def test_a6_semiring_provenance_scales_linearly(benchmark):
    time_series = ScalingSeries("N[X] provenance time (s)")
    monomial_series = ScalingSeries("monomials")
    rows = []
    for n in SIZES:
        instance = rst_chain_instance(n)
        lineage = lineage_of(unsafe_rst(), instance)
        start = time.perf_counter()
        polynomial = query_provenance_polynomial(unsafe_rst(), instance)
        elapsed = time.perf_counter() - start
        time_series.add(n, elapsed)
        monomial_series.add(n, polynomial.monomial_count)
        derivations = evaluate_lineage_in_semiring(
            lineage, COUNTING, {f: 1 for f in instance.facts}
        )
        cheapest = evaluate_lineage_in_semiring(
            lineage, TROPICAL, {f: 1.0 for f in instance.facts}
        )
        witnesses = evaluate_lineage_in_semiring(
            lineage, WHY, {f: frozenset({frozenset({f})}) for f in instance.facts}
        )
        # On the chain: one derivation per position, each witness has 3 facts.
        assert polynomial.monomial_count == n
        assert derivations == n
        assert cheapest == 3.0
        assert len(witnesses) == n
        rows.append((n, polynomial.monomial_count, derivations, cheapest, round(elapsed, 5)))
    benchmark(polynomial_for, SIZES[-1])
    print()
    print(
        format_table(
            ["n", "monomials", "counting", "tropical (min cost)", "seconds"], rows
        )
    )
    print("monomial growth:", classify_growth(monomial_series))
    assert monomial_series.loglog_slope() < 1.3, "provenance stays linear on the chain family"
