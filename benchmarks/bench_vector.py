"""VECTOR — columnar batch float sweeps vs the object-kernel float sweeps.

A family of compiled OBDDs (labelled partial k-trees, treewidth <= 2, three
query shapes per instance) is re-weighted under a batch of fresh probability
assignments — the workload :meth:`repro.engine.parallel.ParallelEngine.
reweight_many` runs per worker.  The object kernel answers it as one float
sweep per assignment (:meth:`repro.provenance.compile_obdd.CompiledOBDD.
probability` with ``exact=False`` — a Python loop per node per assignment);
the columnar kernel answers it as *one* matrix dynamic program over a
``(nodes, assignments)`` value plane
(:meth:`repro.booleans.columnar.ColumnarOBDD.probability_many` — one fused
numpy gather per level for the whole batch).  Compilation and the columnar
flattening happen outside the measured windows; this benchmark isolates
exactly the sweep throughput (sweeps per second, single core).

The columnar side must beat the object side by at least ``MINIMUM_SPEEDUP``
(2x).  The gate needs numpy: the array-module fallback runs the same
per-node loop as the object kernel and cannot be vectorized, so without
numpy the gate is waived and the JSON records the ``gate_skip_reason``
(never a silently-unenforced run).  Both measurements and the per-size
trajectory go to ``BENCH_vector.json``.
"""

import time
from fractions import Fraction
from pathlib import Path

from repro.booleans.columnar import array_backend
from repro.data.tid import ProbabilisticInstance
from repro.engine import CompilationEngine
from repro.experiments import (
    ScalingSeries,
    format_table,
    write_benchmark_json,
)
from repro.generators import labelled_partial_ktree_instance
from repro.queries import hierarchical_example, qp, unsafe_rst

INSTANCE_SIZES = (60, 90, 120)
WIDTH = 2
SWEEPS_PER_ARTIFACT = 64  # fresh probability assignments per artifact batch
RESULT_FILE = Path(__file__).resolve().parent.parent / "BENCH_vector.json"
MINIMUM_SPEEDUP = 2.0


def build_artifacts():
    """(compiled, columnar, probability maps) per case, built outside timing."""
    engine = CompilationEngine()
    cases = []
    for n in INSTANCE_SIZES:
        instance = labelled_partial_ktree_instance(n, WIDTH, seed=n)
        tid = ProbabilisticInstance.uniform(instance, Fraction(1, 2))
        for query in (unsafe_rst(), hierarchical_example(), qp(instance.signature)):
            compiled = engine.compile(query, instance)
            if compiled.size == 0:
                continue
            columnar = compiled.to_columnar()
            maps = [
                {
                    fact: (index + offset + 1) / (2.0 * (index + offset + 2))
                    for index, fact in enumerate(compiled.order)
                }
                for offset in range(SWEEPS_PER_ARTIFACT)
            ]
            cases.append((n, compiled, columnar, maps))
    return cases


def _measure_object(cases):
    start = time.perf_counter()
    for _, compiled, _, maps in cases:
        for weights in maps:
            compiled.probability(weights, exact=False)
    return time.perf_counter() - start


def _measure_columnar(cases):
    start = time.perf_counter()
    for _, _, columnar, maps in cases:
        columnar.probability_many(maps, exact=False)
    return time.perf_counter() - start


def _check_agreement(cases):
    """The two float kernels must agree to float tolerance before timing."""
    for _, compiled, columnar, maps in cases:
        batch = columnar.probability_many(maps[:4], exact=False)
        for weights, value in zip(maps[:4], batch):
            reference = compiled.probability(weights, exact=False)
            assert abs(value - reference) < 1e-9, (
                f"columnar batch sweep diverged: {value} vs {reference}"
            )


def run_benchmark(rounds: int = 3):
    cases = build_artifacts()
    _check_agreement(cases)

    # Warm both paths once outside the measured windows.
    _measure_object(cases[:1])
    _measure_columnar(cases[:1])

    object_time = float("inf")
    columnar_time = float("inf")
    for _ in range(rounds):
        object_time = min(object_time, _measure_object(cases))
        columnar_time = min(columnar_time, _measure_columnar(cases))

    sweeps = sum(len(maps) for _, _, _, maps in cases)
    total_nodes = sum(compiled.size for _, compiled, _, _ in cases)
    speedup = object_time / columnar_time if columnar_time > 0 else float("inf")

    per_size_object = ScalingSeries("object float sweep (s)")
    per_size_columnar = ScalingSeries("columnar float sweep (s)")
    for n in INSTANCE_SIZES:
        group = [case for case in cases if case[0] == n]
        per_size_object.add(n, min(_measure_object(group) for _ in range(rounds)))
        per_size_columnar.add(n, min(_measure_columnar(group) for _ in range(rounds)))

    numpy_available = array_backend() is not None
    gate_enforced = numpy_available
    gate_skip_reason = (
        None
        if gate_enforced
        else (
            "numpy not available (or REPRO_NO_NUMPY=1): the array-module "
            "fallback runs the same per-node loop as the object kernel, so "
            "there is no vectorized speedup to gate"
        )
    )
    write_benchmark_json(
        RESULT_FILE,
        "Columnar vectorized float sweeps vs object-kernel float sweeps",
        [per_size_object, per_size_columnar],
        extra={
            "family": f"labelled partial k-trees, width {WIDTH}, n in {list(INSTANCE_SIZES)}",
            "artifacts": len(cases),
            "total_nodes": total_nodes,
            "sweeps_per_round": sweeps,
            "measurement_rounds": rounds,
            "object_sweep_seconds": object_time,
            "columnar_sweep_seconds": columnar_time,
            "columnar_speedup": speedup,
            "numpy_available": numpy_available,
            "minimum_required_speedup": MINIMUM_SPEEDUP,
            "speedup_gate_enforced": gate_enforced,
            "gate_skip_reason": gate_skip_reason,
        },
    )
    return object_time, columnar_time, speedup, gate_enforced, gate_skip_reason, sweeps


def report(object_time, columnar_time, speedup, sweeps):
    rows = [
        ("object", round(object_time, 4)),
        ("columnar", round(columnar_time, 4)),
    ]
    print()
    print(f"{sweeps} float sweeps per round")
    print(format_table(["kernel", "time (s)"], rows))
    print(f"columnar speedup: {speedup:.2f}x (results in {RESULT_FILE.name})")


def test_vectorized_sweep_speedup(benchmark):
    object_time, columnar_time, speedup, gate_enforced, skip_reason, sweeps = run_benchmark()
    cases = build_artifacts()[:1]
    benchmark(_measure_columnar, cases)
    report(object_time, columnar_time, speedup, sweeps)
    if gate_enforced:
        assert speedup >= MINIMUM_SPEEDUP, (
            f"columnar float sweep only {speedup:.2f}x over the object kernel; "
            f"expected >= {MINIMUM_SPEEDUP}x"
        )
    else:
        print(f"speedup gate waived: {skip_reason}")


if __name__ == "__main__":
    object_time, columnar_time, speedup, gate_enforced, skip_reason, sweeps = run_benchmark()
    report(object_time, columnar_time, speedup, sweeps)
    if not gate_enforced:
        print(f"speedup gate waived: {skip_reason}")
    elif speedup < MINIMUM_SPEEDUP:
        raise SystemExit(
            f"REGRESSION: columnar sweep speedup {speedup:.2f}x < {MINIMUM_SPEEDUP}x"
        )
