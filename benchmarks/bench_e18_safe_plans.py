"""E18 — Section 9 context: query-based (lifted inference) vs instance-based evaluation.

For hierarchical (safe) queries we compare the lifted-inference evaluator with
the lineage/OBDD route and brute force: all agree exactly; we report the
running times of the two tractable routes on growing instances, illustrating
that both explanations of safety (the safe-plan one and the bounded-treewidth
unfolding one) are available in the library.
"""

import time
from fractions import Fraction

from repro.data.signature import Signature
from repro.experiments import ScalingSeries, format_table
from repro.generators import random_probabilities, random_ranked_instance
from repro.probability import brute_force_probability, probability, safe_plan_probability
from repro.queries import hierarchical_example

RST = Signature([("R", 1), ("S", 2), ("T", 1)])
SIZES = (8, 16, 32)


def lifted(fact_count: int) -> Fraction:
    instance = random_ranked_instance(RST, max(5, fact_count // 3), fact_count, seed=fact_count)
    tid = random_probabilities(instance, seed=fact_count)
    return safe_plan_probability(hierarchical_example(), tid)


def test_e18_safe_plan_agrees_and_scales(benchmark):
    query = hierarchical_example()
    # Exact agreement with brute force and the lineage route on a small instance.
    small = random_ranked_instance(RST, 5, 10, seed=1)
    tid_small = random_probabilities(small, seed=1)
    expected = brute_force_probability(query, tid_small)
    assert safe_plan_probability(query, tid_small) == expected
    assert probability(query, tid_small, method="obdd") == expected

    lifted_series = ScalingSeries("lifted inference time (s)")
    lineage_series = ScalingSeries("OBDD lineage time (s)")
    for size in SIZES:
        instance = random_ranked_instance(RST, max(5, size // 3), size, seed=size)
        tid = random_probabilities(instance, seed=size)
        start = time.perf_counter()
        lifted_value = safe_plan_probability(query, tid)
        lifted_series.add(size, time.perf_counter() - start)
        start = time.perf_counter()
        lineage_value = probability(query, tid, method="obdd")
        lineage_series.add(size, time.perf_counter() - start)
        assert lifted_value == lineage_value
    benchmark(lifted, SIZES[-1])
    print()
    print(
        format_table(
            ["|I|", "lifted seconds", "lineage seconds"],
            [
                (int(n), round(a, 5), round(b, 5))
                for (n, a), (_, b) in zip(lifted_series.rows(), lineage_series.rows())
            ],
        )
    )
