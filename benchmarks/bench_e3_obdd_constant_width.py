"""E3 — Table 2, "bounded-pw / MSO / OBDD of constant width" (Theorem 6.7).

OBDD width for q_p on bounded-pathwidth instances (directed paths) of growing
size, under the path-decomposition variable order: the width must not grow.
"""

from repro.experiments import ScalingSeries, format_table
from repro.generators import directed_path_instance
from repro.provenance import compile_query_to_obdd
from repro.queries import qp

SIZES = (5, 10, 20, 40)


def compile_on_path(n: int):
    return compile_query_to_obdd(qp(), directed_path_instance(n), use_path_decomposition=True)


def test_e3_obdd_width_constant_on_bounded_pathwidth(benchmark):
    series = ScalingSeries("OBDD width on directed paths")
    for n in SIZES:
        series.add(n, compile_on_path(n).width)
    benchmark(compile_on_path, SIZES[-1])
    print()
    print(format_table(["path length", "OBDD width"], series.rows()))
    assert max(series.values) == min(series.values), "OBDD width must be constant on bounded pathwidth"
