"""A4 (extension) — FBDDs versus OBDDs (conclusion: "FBDDs or d-DNNFs?").

The paper leaves open whether the OBDD dichotomy (Theorem 8.1) extends to
FBDDs.  This ablation compiles the q_p lineage on bounded-pathwidth instances
both ways and checks that (i) the two agree with the lineage semantics and on
probabilities, and (ii) the FBDD built by dynamic Shannon expansion stays
within a constant factor of the decomposition-ordered OBDD on these easy
instances.
"""

from fractions import Fraction

from repro.data.tid import ProbabilisticInstance
from repro.experiments import ScalingSeries, classify_growth, format_table
from repro.booleans.fbdd import compile_circuit_to_fbdd
from repro.generators.lines import directed_path_instance
from repro.provenance.compile_obdd import compile_query_to_obdd
from repro.provenance.lineage import lineage_of
from repro.queries.library import qp

LENGTHS = (4, 6, 8, 12)


def compile_both(length: int):
    instance = directed_path_instance(length)
    compiled_obdd = compile_query_to_obdd(qp(), instance, use_path_decomposition=True)
    circuit = lineage_of(qp(), instance).to_circuit()
    fbdd = compile_circuit_to_fbdd(circuit)
    return compiled_obdd, fbdd, instance


def test_a4_fbdd_matches_obdd_and_stays_small(benchmark):
    obdd_sizes = ScalingSeries("OBDD size")
    fbdd_sizes = ScalingSeries("FBDD size")
    rows = []
    for length in LENGTHS:
        compiled_obdd, fbdd, instance = compile_both(length)
        assert fbdd.check_read_once()
        tid = ProbabilisticInstance.uniform(instance, Fraction(1, 2))
        valuation = tid.valuation()
        assert fbdd.probability(valuation) == compiled_obdd.probability(valuation)
        obdd_sizes.add(length, compiled_obdd.size)
        fbdd_sizes.add(length, fbdd.size())
        rows.append((length, compiled_obdd.size, fbdd.size()))
    benchmark(compile_both, LENGTHS[-1])
    print()
    print(format_table(["path length", "OBDD size", "FBDD size"], rows))
    print("OBDD growth:", classify_growth(obdd_sizes), "| FBDD growth:", classify_growth(fbdd_sizes))
    assert obdd_sizes.loglog_slope() < 1.6, "OBDD size must stay near-linear on paths"
    assert fbdd_sizes.is_subquadratic(), "FBDD size must stay subquadratic on paths"
