"""E1 — Table 2, "bounded-tw / MSO / circuit / O(n)" (Theorem 6.3, [2] Thm 4.2).

We build the lineage circuit of an MSO property (the matching-violation
automaton, i.e. q_p) on treewidth-1 instances of growing size and check that
the circuit size grows linearly with the instance.
"""

from repro.experiments import ScalingSeries, classify_growth, format_table
from repro.generators import directed_path_instance
from repro.provenance import incident_pair_automaton, provenance_circuit, tree_encoding

SIZES = (10, 20, 40, 80)


def build_circuit(n: int):
    instance = directed_path_instance(n)
    encoding = tree_encoding(instance)
    return provenance_circuit(incident_pair_automaton(), encoding)


def test_e1_circuit_size_is_linear(benchmark):
    series = ScalingSeries("lineage circuit size on paths")
    for n in SIZES:
        series.add(n, build_circuit(n).size)
    benchmark(build_circuit, SIZES[-1])
    print()
    print(format_table(["|I| (facts)", "circuit size"], series.rows()))
    print("growth:", classify_growth(series))
    assert series.loglog_slope() < 1.3, "circuit size should grow linearly on bounded-treewidth instances"
