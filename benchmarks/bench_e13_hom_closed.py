"""E13 — Proposition 8.9: homomorphism-closed queries are easy on complete
bipartite directed graphs.

On the unbounded-treewidth, treewidth-constructible family of complete
bipartite directed graphs, every UCQ (homomorphism-closed) has constant-width
OBDDs: all minimal matches have a single fact.  We measure the widths of a few
UCQs on growing K_{n,n} instances and contrast with the UCQ≠ q_p, which is not
homomorphism-closed and keeps growing.
"""

from repro.experiments import ScalingSeries, format_table
from repro.generators import complete_bipartite_instance
from repro.provenance import compile_query_to_obdd
from repro.provenance.lineage import lineage_of
from repro.queries import parse_cq, parse_ucq, qp

SIZES = (2, 3, 4)

UCQS = [
    ("E(x,y)", parse_cq("E(x, y)")),
    ("E(x,y), E(y,z)", parse_cq("E(x, y), E(y, z)")),
    ("E(x,y), E(x,z) | E(x,x)", parse_ucq("E(x, y), E(x, z) | E(x, x)")),
]


def width_on_bipartite(size: int) -> int:
    return compile_query_to_obdd(UCQS[1][1], complete_bipartite_instance(size, size)).width


def test_e13_hom_closed_constant_width(benchmark):
    rows = []
    for name, query in UCQS:
        widths = [
            compile_query_to_obdd(query, complete_bipartite_instance(n, n)).width for n in SIZES
        ]
        rows.append((name, *widths))
        assert max(widths) <= 2, f"{name} should have constant-width OBDDs on K_nn"
        # All minimal matches have a single fact (the proof of Proposition 8.9).
        matches = lineage_of(query, complete_bipartite_instance(3, 3)).clauses
        assert all(len(match) == 1 for match in matches)
    benchmark(width_on_bipartite, SIZES[-1])
    print()
    print(format_table(["query"] + [f"width on K_{n},{n}" for n in SIZES], rows))


def test_e13_qp_still_grows_on_bipartite():
    series = ScalingSeries("q_p width on K_nn")
    for n in SIZES:
        series.add(n, compile_query_to_obdd(qp(), complete_bipartite_instance(n, n)).width)
    print()
    print(format_table(["n", "q_p width"], series.rows()))
    assert series.values[-1] > series.values[0], "q_p is not homomorphism-closed and keeps growing"
