"""E12 — Theorem 8.7 (meta-dichotomy) and Proposition 8.8.

We classify a suite of connected UCQ≠ queries as intricate / non-intricate and
verify the two sides of the meta-dichotomy empirically:

* the intricate q_p blows up on the grid family (cf. E11);
* non-intricate queries (the unsafe RST query, connected CQ≠ queries) have
  constant-width OBDDs on an unbounded-treewidth counterexample family
  (S-grids for RST, grids built from the witness line in general).
"""

from repro.data.signature import Signature
from repro.experiments import ScalingSeries, format_table
from repro.generators import s_grid_instance
from repro.provenance import compile_query_to_obdd
from repro.queries import (
    is_intricate,
    parse_cq,
    qp,
    threshold_two_query,
    two_incident_same_direction,
    unsafe_rst,
)

RST_SIGNATURE = Signature([("R", 1), ("S", 2), ("T", 1)])

CLASSIFICATION_CASES = [
    ("q_p (Theorem 8.1)", qp(), None, True),
    ("unsafe RST query", unsafe_rst(), RST_SIGNATURE, False),
    ("E(x,y), E(y,z)", two_incident_same_direction(), None, False),
    ("E(x,y), E(y,z), x != z", parse_cq("E(x, y), E(y, z), x != z"), None, False),
    ("threshold-2 (unary only)", threshold_two_query(), None, False),
]


def classify_all() -> list[tuple[str, bool]]:
    return [
        (name, is_intricate(query, signature))
        for name, query, signature, _ in CLASSIFICATION_CASES
    ]


def test_e12_intricacy_classification(benchmark):
    results = benchmark(classify_all)
    print()
    print(format_table(["query", "intricate?"], results))
    for (name, _, _, expected), (_, actual) in zip(CLASSIFICATION_CASES, results):
        assert actual == expected, f"classification of {name} changed"


def test_e12_non_intricate_rst_constant_on_s_grids():
    series = ScalingSeries("RST OBDD width on S-grids")
    for size in (2, 3, 4, 5):
        series.add(size, compile_query_to_obdd(unsafe_rst(), s_grid_instance(size, size)).width)
    print()
    print(format_table(["grid side", "OBDD width"], series.rows()))
    assert max(series.values) == 1, "the unsafe RST query is trivial on S-grids (Section 8.2)"
