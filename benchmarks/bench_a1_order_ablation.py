"""A1 (ablation) — how much the decomposition-derived variable order matters.

DESIGN.md calls out the variable order as the key design choice behind the
Section 6 OBDD bounds.  This ablation compiles the same lineage (q_p on a
ladder instance) under three orders — the path-decomposition order, a
lexicographic order, and a random order — and compares widths: the
decomposition order should never be (much) worse and typically wins.
"""

import random

from repro.experiments import format_table
from repro.generators import grid_instance
from repro.provenance.compile_obdd import compile_lineage_to_obdd
from repro.provenance.lineage import lineage_of
from repro.provenance.variable_orders import fact_order_from_path_decomposition
from repro.queries import qp

LENGTH = 7


def widths_for_orders() -> dict[str, int]:
    instance = grid_instance(2, LENGTH)
    lineage = lineage_of(qp(), instance)
    decomposition_order = fact_order_from_path_decomposition(instance)
    lexicographic = sorted(instance.facts, key=str)
    rng = random.Random(7)
    randomized = list(instance.facts)
    rng.shuffle(randomized)
    return {
        "path decomposition order": compile_lineage_to_obdd(lineage, decomposition_order).width,
        "lexicographic order": compile_lineage_to_obdd(lineage, lexicographic).width,
        "random order": compile_lineage_to_obdd(lineage, randomized).width,
    }


def test_a1_variable_order_ablation(benchmark):
    widths = benchmark(widths_for_orders)
    print()
    print(format_table(["variable order", "OBDD width"], list(widths.items())))
    assert widths["path decomposition order"] <= widths["lexicographic order"]
    assert widths["path decomposition order"] <= widths["random order"]
