"""PARALLEL — sharded multi-process evaluation vs the single-process engine.

A probability workload over a family of labelled partial k-trees (treewidth
<= 2, ~100-150 facts each) is evaluated three ways: one
:class:`repro.engine.CompilationEngine` in-process (the baseline), and a
:class:`repro.engine.ParallelEngine` at 2 and 4 workers.  The speedup
trajectory is written to ``BENCH_parallel.json``.

The 4-worker run must beat the single-process baseline by at least
``MINIMUM_SPEEDUP`` (1.5x) — but only where the hardware can express it:
multiprocessing cannot beat one core on a one-core container, so the gate
is enforced when the scheduling affinity offers at least ``REQUIRED_CPUS``
CPUs (standard public GitHub runners qualify, so CI enforces it through
this same rule), or unconditionally when ``REQUIRE_PARALLEL_SPEEDUP=1`` is
set.  Either way the JSON records the measured trajectory and the CPU
budget it was measured under, so a regression is visible even where the
assertion is waived.
"""

import os
import time
from fractions import Fraction
from pathlib import Path

from repro.data.tid import ProbabilisticInstance
from repro.engine import CompilationEngine, ParallelEngine, available_workers
from repro.experiments import (
    ScalingSeries,
    format_table,
    speedup_trajectory,
    write_benchmark_json,
)
from repro.generators import labelled_partial_ktree_instance
from repro.queries import hierarchical_example, qp, unsafe_rst

INSTANCE_SIZES = tuple(range(40, 64))  # 24 instances, ~95-145 facts each
WIDTH = 2
WORKER_COUNTS = (1, 2, 4)
RESULT_FILE = Path(__file__).resolve().parent.parent / "BENCH_parallel.json"
MINIMUM_SPEEDUP = 1.5
REQUIRED_CPUS = 4


def build_workload():
    pairs = []
    for n in INSTANCE_SIZES:
        instance = labelled_partial_ktree_instance(n, WIDTH, seed=n)
        tid = ProbabilisticInstance.uniform(instance, Fraction(1, 2))
        for query in (unsafe_rst(), hierarchical_example(), qp(instance.signature)):
            pairs.append((query, tid))
    return pairs


def _measure_baseline(pairs):
    """One cold single-process pass; returns (elapsed, values).

    The engine is released before returning: a live engine holds tens of
    thousands of GC-tracked OBDD nodes, and keeping them alive slows every
    later allocation-heavy measurement by 1.5-2x (full cyclic-GC passes
    rescan them).
    """
    start = time.perf_counter()
    engine = CompilationEngine()
    values = [engine.probability(query, tid) for query, tid in pairs]
    return time.perf_counter() - start, values


def _measure_parallel(pairs, workers, baseline_values):
    """One cold ParallelEngine pass; returns elapsed seconds."""
    with ParallelEngine(workers=workers) as parallel:
        start = time.perf_counter()
        report = parallel.map_probability(pairs)
        elapsed = time.perf_counter() - start
        assert list(report.values) == baseline_values, (
            f"parallel values diverged from the single-process engine at {workers} workers"
        )
    return elapsed


def run_benchmark(rounds: int = 2):
    pairs = build_workload()

    # Warm up imports, allocator, and the generator caches outside the
    # measured window (both paths evaluate the same warmup pairs cold-cache:
    # every engine below is fresh).
    warmup = CompilationEngine()
    for query, tid in pairs[:3]:
        warmup.probability(query, tid)
    del warmup

    # Interleave baseline and parallel passes and keep the per-configuration
    # minimum over the rounds: measuring the baseline only once (and first)
    # both flatters the parallel side (cold-start bias) and makes the CI
    # gate flaky on loaded shared runners.
    baseline_time = float("inf")
    baseline_values = None
    parallel_times = {workers: float("inf") for workers in WORKER_COUNTS}
    for _ in range(rounds):
        elapsed, values = _measure_baseline(pairs)
        baseline_time = min(baseline_time, elapsed)
        baseline_values = values
        for workers in WORKER_COUNTS:
            parallel_times[workers] = min(
                parallel_times[workers],
                _measure_parallel(pairs, workers, baseline_values),
            )

    trajectory = ScalingSeries("parallel time (s)")
    for workers in WORKER_COUNTS:
        trajectory.add(workers, parallel_times[workers])
    trajectory_speedups = speedup_trajectory(baseline_time, trajectory)
    speedups = {int(float(k)): v for k, v in trajectory_speedups.items()}

    cpus = available_workers()
    gate_enforced = cpus >= REQUIRED_CPUS or os.environ.get("REQUIRE_PARALLEL_SPEEDUP") == "1"
    # Why the gate was (or was not) waived, recorded in the JSON so a CI
    # artifact never shows a silently-unenforced run: either the reason the
    # assertion did not apply, or None when it did.
    gate_skip_reason = (
        None
        if gate_enforced
        else (
            f"only {cpus} CPU(s) in the scheduling affinity; {REQUIRED_CPUS} needed "
            f"for a meaningful multi-process measurement "
            f"(set REQUIRE_PARALLEL_SPEEDUP=1 to force the gate)"
        )
    )
    write_benchmark_json(
        RESULT_FILE,
        "Sharded parallel evaluation vs single-process engine",
        [trajectory],
        extra={
            "family": f"labelled partial k-trees, width {WIDTH}, n in {list(INSTANCE_SIZES)}",
            "workload_items": len(pairs),
            "measurement_rounds": rounds,
            "baseline_single_process_seconds": baseline_time,
            "speedup_by_workers": trajectory_speedups,
            "available_cpus": cpus,
            "minimum_required_speedup_at_4_workers": MINIMUM_SPEEDUP,
            "speedup_gate_enforced": gate_enforced,
            "gate_skip_reason": gate_skip_reason,
        },
    )
    return baseline_time, trajectory, speedups, gate_enforced, gate_skip_reason, len(pairs)


def report(baseline_time, trajectory, speedups, item_count):
    rows = [
        (int(w), round(t, 3), round(speedups[int(w)], 2))
        for w, t in zip(trajectory.sizes, trajectory.values)
    ]
    print()
    print(f"single-process baseline: {baseline_time:.3f}s over {item_count} items")
    print(format_table(["workers", "time (s)", "speedup"], rows))
    print(f"(available CPUs: {available_workers()}; results in {RESULT_FILE.name})")


def test_parallel_speedup(benchmark):
    baseline_time, trajectory, speedups, gate_enforced, skip_reason, item_count = run_benchmark()
    pairs = build_workload()[:6]
    parallel = ParallelEngine(workers=2)
    benchmark(parallel.map_probability, pairs)
    report(baseline_time, trajectory, speedups, item_count)
    if gate_enforced:
        assert speedups[4] >= MINIMUM_SPEEDUP, (
            f"4-worker ParallelEngine only {speedups[4]:.2f}x over the single-process "
            f"engine; expected >= {MINIMUM_SPEEDUP}x"
        )
    else:
        print(f"speedup gate waived: {skip_reason}")


if __name__ == "__main__":
    baseline_time, trajectory, speedups, gate_enforced, skip_reason, item_count = run_benchmark()
    report(baseline_time, trajectory, speedups, item_count)
    if not gate_enforced:
        print(f"speedup gate waived: {skip_reason}")
    elif speedups[4] < MINIMUM_SPEEDUP:
        raise SystemExit(
            f"REGRESSION: 4-worker speedup {speedups[4]:.2f}x < {MINIMUM_SPEEDUP}x"
        )
