"""STORE — warm-start speedup from the persistent artifact store.

The artifact store's whole bargain is that a process restart costs a
checksummed read instead of a recompilation.  This benchmark prices that
bargain: for each case a *cold* pass compiles on a fresh engine against an
empty store (paying the full compilation plus the atomic write-behind), and
a *warm* pass points a brand-new engine — empty LRU caches, as after a
restart — at the populated store and answers from verified disk entries
alone.  Both sides must return identical exact probabilities before timing
starts, and the warm side must report zero lineage/OBDD compilations (the
hit really came from disk, not from a silently retained cache).

The workload is ``CompilationEngine.probability`` with ``method="columnar"``
on the two instance families the store serves in practice: ``line`` (RST
chains — long linear OBDD compilations) and ``ktree`` (labelled partial
k-trees, width 2 — denser circuit routes).  Each case is repeated
``REPETITIONS`` times and each side keeps its per-case minimum (interference
only ever adds time); cold repetitions each get a fresh store directory so
every cold run truly compiles.

The gate compares the sums of those per-case minima: warm start must be at
least ``MIN_SPEEDUP``x (3x) faster than cold.  On a run too fast to resolve
the ratio the gate is waived and the JSON records the ``gate_skip_reason``
(never a silently-unenforced pass).  Totals and the per-size trajectory per
family go to ``BENCH_store.json``.
"""

import gc
import shutil
import tempfile
import time
from contextlib import contextmanager
from fractions import Fraction
from pathlib import Path

from repro.data.tid import ProbabilisticInstance
from repro.engine import CompilationEngine
from repro.experiments import (
    ScalingSeries,
    format_table,
    write_benchmark_json,
)
from repro.generators import labelled_partial_ktree_instance
from repro.generators.lines import rst_chain_instance
from repro.queries import hierarchical_example, unsafe_rst
from repro.store import ArtifactStore

LINE_SIZES = (120, 240)
KTREE_SIZES = (90, 150)
WIDTH = 2
REPETITIONS = 5  # timed repetitions per case per side; each side keeps its min
RESULT_FILE = Path(__file__).resolve().parent.parent / "BENCH_store.json"
MIN_SPEEDUP = 3.0
# Below this many seconds summed across the cold case minima, timer noise
# swamps the ratio and the gate is waived rather than flaking.
MIN_MEASURABLE_SECONDS = 0.05


def build_cases():
    """(family, n, query, tid) per case; instances built outside timing."""
    cases = []
    for n in LINE_SIZES:
        tid = ProbabilisticInstance.uniform(rst_chain_instance(n), Fraction(1, 2))
        for query in (unsafe_rst(), hierarchical_example()):
            cases.append(("line", n, query, tid))
    for n in KTREE_SIZES:
        instance = labelled_partial_ktree_instance(n, WIDTH, seed=n)
        tid = ProbabilisticInstance.uniform(instance, Fraction(1, 2))
        for query in (unsafe_rst(), hierarchical_example()):
            cases.append(("ktree", n, query, tid))
    return cases


@contextmanager
def _gc_paused():
    """Pause the cyclic collector around timed windows: a collection landing
    in one side's window but not its partner's would dwarf the signal."""
    was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()


def _time_cold(query, tid, root: Path) -> float:
    """Compile on a fresh engine against an empty store (write-behind paid)."""
    engine = CompilationEngine(store=root)
    start = time.perf_counter()
    engine.probability(query, tid, method="columnar")
    elapsed = time.perf_counter() - start
    engine.store.close()
    return elapsed


def _time_warm(query, tid, root: Path) -> float:
    """Answer on a brand-new engine from the populated store alone."""
    engine = CompilationEngine(store=root)
    start = time.perf_counter()
    engine.probability(query, tid, method="columnar")
    elapsed = time.perf_counter() - start
    assert engine.stats["store"].hits >= 1, "warm run missed the store"
    assert engine.stats["lineage"].misses == 0, "warm run recompiled lineage"
    assert engine.stats["obdd"].misses == 0, "warm run recompiled the OBDD"
    engine.store.close()
    return elapsed


def _time_case(query, tid, scratch: Path, repetitions: int):
    """(min cold seconds, min warm seconds) for one case.

    Every cold repetition gets a fresh store directory (so it really
    compiles); the warm repetitions all replay against the store the last
    cold run populated (so they really hit disk).
    """
    best_cold = float("inf")
    root = scratch / "store"
    for _ in range(repetitions):
        if root.exists():
            shutil.rmtree(root)
        best_cold = min(best_cold, _time_cold(query, tid, root))
    best_warm = min(_time_warm(query, tid, root) for _ in range(repetitions))
    return best_cold, best_warm


def _check_agreement(cases, scratch: Path):
    """A store round trip must not change a single answer."""
    reference_engine = CompilationEngine()
    root = scratch / "agreement"
    for index, (_, _, query, tid) in enumerate(cases):
        reference = reference_engine.probability(query, tid, method="columnar")
        case_root = root / str(index)
        cold = CompilationEngine(store=case_root).probability(
            query, tid, method="columnar"
        )
        warm = CompilationEngine(store=case_root).probability(
            query, tid, method="columnar"
        )
        assert cold == reference and warm == reference, (
            f"store round trip diverged: cold={cold} warm={warm} vs {reference}"
        )
    report = ArtifactStore(root / "0").verify()
    assert report.clean and not report.damaged, report.damaged


def run_benchmark(repetitions: int = REPETITIONS):
    cases = build_cases()
    with tempfile.TemporaryDirectory(prefix="bench-store-") as tmp:
        scratch = Path(tmp)
        _check_agreement(cases, scratch)
        with _gc_paused():
            timings = []
            for index, (family, n, query, tid) in enumerate(cases):
                cold, warm = _time_case(
                    query, tid, scratch / f"case-{index}", repetitions
                )
                timings.append((family, n, cold, warm))

    cold_time = sum(cold for _, _, cold, _ in timings)
    warm_time = sum(warm for _, _, _, warm in timings)
    speedup = cold_time / warm_time if warm_time > 0 else float("inf")

    series = []
    for family, sizes in (("line", LINE_SIZES), ("ktree", KTREE_SIZES)):
        cold_series = ScalingSeries(f"{family} cold compile+write (s)")
        warm_series = ScalingSeries(f"{family} warm store hit (s)")
        for n in sizes:
            group = [t for t in timings if t[0] == family and t[1] == n]
            cold_series.add(n, sum(cold for _, _, cold, _ in group))
            warm_series.add(n, sum(warm for _, _, _, warm in group))
        series.extend((cold_series, warm_series))

    gate_enforced = cold_time >= MIN_MEASURABLE_SECONDS
    gate_skip_reason = (
        None
        if gate_enforced
        else (
            f"cold case minima sum to {cold_time:.4f}s "
            f"(< {MIN_MEASURABLE_SECONDS}s): timer noise swamps a "
            f"{MIN_SPEEDUP:.0f}x ratio at this scale"
        )
    )
    write_benchmark_json(
        RESULT_FILE,
        "Warm-start speedup from the persistent artifact store",
        series,
        extra={
            "families": {
                "line": f"RST chains, n in {list(LINE_SIZES)}",
                "ktree": f"labelled partial k-trees, width {WIDTH}, n in {list(KTREE_SIZES)}",
            },
            "cases": len(cases),
            "repetitions_per_case": repetitions,
            "cold_seconds": cold_time,
            "warm_seconds": warm_time,
            "warm_start_speedup": speedup,
            "min_required_speedup": MIN_SPEEDUP,
            "speedup_gate_enforced": gate_enforced,
            "gate_skip_reason": gate_skip_reason,
        },
    )
    return cold_time, warm_time, speedup, gate_enforced, gate_skip_reason


def report(cold_time, warm_time, speedup):
    rows = [
        ("cold (compile + write)", round(cold_time, 4)),
        ("warm (store hit)", round(warm_time, 4)),
    ]
    print()
    print(format_table(["pass", "time (s)"], rows))
    print(
        f"warm-start speedup: {speedup:.1f}x "
        f"(gate >= {MIN_SPEEDUP:.0f}x, results in {RESULT_FILE.name})"
    )


def test_warm_start_speedup(benchmark):
    cold_time, warm_time, speedup, gate_enforced, skip_reason = run_benchmark()
    _, _, query, tid = build_cases()[0]
    with tempfile.TemporaryDirectory(prefix="bench-store-") as tmp:
        root = Path(tmp) / "store"
        _time_cold(query, tid, root)
        benchmark(_time_warm, query, tid, root)
    report(cold_time, warm_time, speedup)
    if gate_enforced:
        assert speedup >= MIN_SPEEDUP, (
            f"warm start only {speedup:.1f}x faster than cold compile; "
            f"expected >= {MIN_SPEEDUP:.0f}x"
        )
    else:
        print(f"speedup gate waived: {skip_reason}")


if __name__ == "__main__":
    cold_time, warm_time, speedup, gate_enforced, skip_reason = run_benchmark()
    report(cold_time, warm_time, speedup)
    if not gate_enforced:
        print(f"speedup gate waived: {skip_reason}")
    elif speedup < MIN_SPEEDUP:
        raise SystemExit(
            f"REGRESSION: warm start {speedup:.1f}x < required {MIN_SPEEDUP:.0f}x"
        )
