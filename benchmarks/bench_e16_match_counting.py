"""E16 — Theorem 5.7 upper bound: MSO match counting is linear on treelike instances.

We count independent sets (a standard MSO match-counting instance: the number
of interpretations of the free set variable X that induce no edge) on
treewidth-1 instances of growing size with the tree-decomposition dynamic
programming, cross-check against brute force on small sizes, and verify the
near-linear growth of the running time.
"""

import time

from repro.counting import (
    count_independent_sets_brute_force,
    count_independent_sets_treewidth_dp,
)
from repro.experiments import ScalingSeries, classify_growth, format_table
from repro.generators import random_tree_instance

SIZES = (20, 40, 80, 160)


def count_on_tree(n: int) -> int:
    return count_independent_sets_treewidth_dp(random_tree_instance(n, seed=n))


def test_e16_match_counting_linear_on_trees(benchmark):
    # Correctness cross-check on small instances.
    for n in (5, 8, 11):
        instance = random_tree_instance(n, seed=n)
        assert count_independent_sets_treewidth_dp(instance) == count_independent_sets_brute_force(
            instance
        )

    series = ScalingSeries("independent-set counting time (s)")
    counts = []
    for n in SIZES:
        start = time.perf_counter()
        value = count_on_tree(n)
        series.add(n, time.perf_counter() - start)
        counts.append((n, value))
    benchmark(count_on_tree, SIZES[-1])
    print()
    print(format_table(["tree size", "#independent sets"], counts))
    print(format_table(["tree size", "seconds"], [(int(n), round(v, 5)) for n, v in series.rows()]))
    print("growth:", classify_growth(series))
    assert series.loglog_slope() < 2.0
