"""E2 — Table 2, "bounded-tw / MSO / OBDD / O(poly(n))" (Theorem 6.5).

OBDD size for the lineage of q_p on a bounded-treewidth family (ladders:
2 x n grids, treewidth 2) of growing size: the size should stay polynomial
(low log-log slope), in contrast with the unbounded-treewidth blow-up of E11.
"""

from repro.experiments import ScalingSeries, classify_growth, format_table
from repro.generators import grid_instance
from repro.provenance import compile_query_to_obdd
from repro.queries import qp

LENGTHS = (3, 5, 7, 9)


def compile_on_ladder(length: int):
    return compile_query_to_obdd(qp(), grid_instance(2, length))


def test_e2_obdd_size_polynomial_on_bounded_treewidth(benchmark):
    series = ScalingSeries("OBDD size on 2 x n ladders")
    width_series = ScalingSeries("OBDD width on 2 x n ladders")
    for length in LENGTHS:
        compiled = compile_on_ladder(length)
        series.add(length, compiled.size)
        width_series.add(length, compiled.width)
    benchmark(compile_on_ladder, LENGTHS[-1])
    print()
    print(format_table(["ladder length", "OBDD size"], series.rows()))
    print(format_table(["ladder length", "OBDD width"], width_series.rows()))
    print("size growth:", classify_growth(series))
    assert series.loglog_slope() < 2.0, "OBDD size should stay polynomial (near-linear) here"
    assert width_series.is_roughly_constant(tolerance=3.0), "width stays bounded on bounded treewidth"
