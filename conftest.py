"""Pytest bootstrap: ``src/`` importability, the ``slow`` marker, and timeouts.

The project is normally installed with ``pip install -e .`` (or
``python setup.py develop`` in offline environments without the ``wheel``
package); the ``sys.path`` fallback lets the test and benchmark suites run
directly from a source checkout.

Two suite-wide policies also live here:

* tests marked ``@pytest.mark.slow`` (the brute-force oracles) are skipped
  unless ``--runslow`` is given, keeping the default tier-1 run fast;
* every test runs under a per-test timeout so a hang fails the build instead
  of wedging it.  When the ``pytest-timeout`` plugin is installed it is used
  as-is; otherwise a minimal SIGALRM-based fallback implements the same
  ``--timeout`` option / ``timeout`` ini / ``@pytest.mark.timeout(N)`` marker
  surface (main thread, POSIX only — elsewhere the fallback is a no-op).
"""

import signal
import sys
import threading
from pathlib import Path

import pytest

_SRC = Path(__file__).parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

try:
    import pytest_timeout  # noqa: F401

    _HAVE_PYTEST_TIMEOUT = True
except ImportError:
    _HAVE_PYTEST_TIMEOUT = False

_DEFAULT_TIMEOUT = 120.0


def pytest_addoption(parser):
    parser.addoption(
        "--runslow",
        action="store_true",
        default=False,
        help="also run tests marked slow (brute-force oracle cross-checks)",
    )
    if not _HAVE_PYTEST_TIMEOUT:
        parser.addoption(
            "--timeout",
            type=float,
            default=None,
            help="per-test timeout in seconds (fallback shim; 0 disables)",
        )
        parser.addini(
            "timeout",
            f"per-test timeout in seconds (fallback shim; default {_DEFAULT_TIMEOUT})",
            default=str(_DEFAULT_TIMEOUT),
        )


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "slow: brute-force oracle test, skipped unless --runslow is given"
    )
    if not _HAVE_PYTEST_TIMEOUT:
        config.addinivalue_line(
            "markers", "timeout(seconds): per-test timeout (fallback shim)"
        )


def pytest_collection_modifyitems(config, items):
    if config.getoption("--runslow"):
        return
    skip_slow = pytest.mark.skip(reason="slow oracle test; use --runslow to include")
    for item in items:
        if "slow" in item.keywords:
            item.add_marker(skip_slow)


def _timeout_for(item) -> float:
    marker = item.get_closest_marker("timeout")
    if marker is not None and marker.args:
        return float(marker.args[0])
    option = item.config.getoption("--timeout")
    if option is not None:
        return float(option)
    try:
        return float(item.config.getini("timeout"))
    except (TypeError, ValueError):
        return _DEFAULT_TIMEOUT


if not _HAVE_PYTEST_TIMEOUT:

    def _alarm_guard(item, phase):
        """Run the wrapped phase under a SIGALRM deadline (generator helper)."""
        limit = _timeout_for(item)
        usable = (
            limit > 0
            and hasattr(signal, "SIGALRM")
            and threading.current_thread() is threading.main_thread()
        )
        if not usable:
            return (yield)

        def on_alarm(signum, frame):
            raise pytest.fail.Exception(f"test {phase} exceeded the {limit:g}s timeout")

        previous = signal.signal(signal.SIGALRM, on_alarm)
        signal.setitimer(signal.ITIMER_REAL, limit)
        try:
            return (yield)
        finally:
            signal.setitimer(signal.ITIMER_REAL, 0)
            signal.signal(signal.SIGALRM, previous)

    # Each phase is guarded separately — a hang in fixture setup or teardown
    # must fail the run just like a hang in the test body.

    @pytest.hookimpl(wrapper=True)
    def pytest_runtest_setup(item):
        return (yield from _alarm_guard(item, "setup"))

    @pytest.hookimpl(wrapper=True)
    def pytest_runtest_call(item):
        return (yield from _alarm_guard(item, "call"))

    @pytest.hookimpl(wrapper=True)
    def pytest_runtest_teardown(item, nextitem):
        return (yield from _alarm_guard(item, "teardown"))
