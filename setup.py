"""Setuptools shim so that ``pip install -e .`` works without the wheel package.

All project metadata lives in ``pyproject.toml``; this file only exists to let
pip fall back to the legacy editable-install path in offline environments.
"""

from setuptools import setup

setup()
