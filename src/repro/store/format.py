"""The on-disk entry format of the persistent artifact store.

One store entry is one file::

    header (128 bytes) | meta JSON | padding | payload

The fixed binary header carries everything integrity verification needs
*before* any byte of the payload is trusted: a magic string, the format
version, the payload codec, the payload length, a SHA-256 checksum of the
payload, and an echo of the content-fingerprint key the entry was written
under.  A reader validates in that order — magic, version, lengths,
key echo, checksum — and every mismatch raises :class:`EntryDamage` with a
machine-readable reason, which the store turns into a quarantine (never an
answer).

Two payload codecs:

* :data:`CODEC_COLUMNAR` — a :class:`~repro.booleans.columnar.ColumnarOBDD`
  as a small pickled sidecar (variable order, root) followed by the packed
  ``var|lo|hi`` int64 columns at an 8-byte-aligned offset.  The columns are
  the exact :meth:`~repro.booleans.columnar.ColumnarOBDD.write_into` buffer
  layout, so a verified entry can be memory-mapped and attached zero-copy
  (numpy views straight into the mapping), mirroring the shared-memory
  transport of :mod:`repro.engine.shm`.
* :data:`CODEC_PICKLE` — an arbitrary picklable artifact (lifted plans —
  including the ``None`` verdict for unsafe queries — and tree-encoding
  node tables).

Keys are SHA-256 hex digests over a canonical description that chains the
artifact kind, the instance content fingerprint, and the query's canonical
text (:func:`canonical_query_text`, the parseable ``" | "``-joined form), so
two processes deriving the key independently always agree and a stale file
can never alias a different artifact.
"""

from __future__ import annotations

import hashlib
import json
import pickle
import struct
from dataclasses import dataclass
from typing import Any, Mapping

from repro.booleans.columnar import ColumnarOBDD
from repro.errors import StoreError

#: First (and current) version of the entry format.
FORMAT_VERSION = 1

MAGIC = b"RPROART1"

#: Payload codecs (the ``codec`` header field).
CODEC_COLUMNAR = 1
CODEC_PICKLE = 2

_CODEC_NAMES = {CODEC_COLUMNAR: "columnar", CODEC_PICKLE: "pickle"}

# magic | version | codec | payload_len | sha256(payload) | key echo |
# meta_len | reserved — 128 bytes, little-endian, no implicit padding.
_HEADER = struct.Struct("<8sIIQ32s64sII")
HEADER_SIZE = _HEADER.size
assert HEADER_SIZE == 128

_ALIGN = 8


class EntryDamage(Exception):
    """An entry failed integrity verification (reason in ``args[0]``).

    Internal to the store: the read path catches it and quarantines the
    entry; maintenance commands surface the reason string in their reports.
    Deliberately *not* a :class:`~repro.errors.ReproError` — damage must
    never escape as a library error, only as a miss.
    """


@dataclass(frozen=True, slots=True)
class EntryHeader:
    """The parsed fixed header of one entry file."""

    codec: int
    payload_len: int
    checksum: bytes
    key: str
    meta_len: int

    @property
    def codec_name(self) -> str:
        return _CODEC_NAMES.get(self.codec, f"codec-{self.codec}")

    @property
    def meta_offset(self) -> int:
        return HEADER_SIZE

    @property
    def payload_offset(self) -> int:
        return _aligned(HEADER_SIZE + self.meta_len)

    @property
    def total_size(self) -> int:
        return self.payload_offset + self.payload_len


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


def derive_key(*parts: str) -> str:
    """The store key for a canonical description: chained SHA-256 hex."""
    digest = hashlib.sha256()
    for part in parts:
        digest.update(part.encode("utf-8"))
        digest.update(b"\x1f")
    return digest.hexdigest()


def canonical_query_text(query: Any) -> str:
    """The parseable canonical text of a UCQ: ``" | "``-joined disjuncts.

    :func:`repro.queries.parser.parse_ucq` splits on ``|``, so this exact
    string round-trips — which is what lets ``store verify --repair``
    re-derive a damaged entry from its metadata alone.
    """
    from repro.queries.ucq import as_ucq

    return " | ".join(str(disjunct) for disjunct in as_ucq(query).disjuncts)


def columnar_key(instance_fingerprint: str, query: Any, use_path: bool) -> str:
    """Key of a compiled columnar artifact for (instance, query, order)."""
    return derive_key(
        "columnar", instance_fingerprint, canonical_query_text(query), str(int(use_path))
    )


def plan_key(query: Any) -> str:
    """Key of a lifted plan (instance-independent, like the engine cache)."""
    return derive_key("lifted_plan", canonical_query_text(query))


def encoding_key(instance_fingerprint: str) -> str:
    """Key of a fused tree encoding (per-instance structural artifact)."""
    return derive_key("tree_encoding", instance_fingerprint)


def pack_entry(key: str, codec: int, meta: Mapping[str, Any], payload: bytes) -> bytes:
    """Serialize one complete entry file: header, meta JSON, padded payload."""
    if codec not in _CODEC_NAMES:
        raise StoreError(f"unknown payload codec {codec!r}")
    key_bytes = key.encode("ascii")
    if len(key_bytes) != 64:
        raise StoreError(f"store keys are 64 hex chars, got {len(key_bytes)}")
    meta_bytes = json.dumps(dict(meta), sort_keys=True).encode("utf-8")
    header = _HEADER.pack(
        MAGIC,
        FORMAT_VERSION,
        codec,
        len(payload),
        hashlib.sha256(payload).digest(),
        key_bytes,
        len(meta_bytes),
        0,
    )
    padding = b"\x00" * (_aligned(HEADER_SIZE + len(meta_bytes)) - HEADER_SIZE - len(meta_bytes))
    return b"".join((header, meta_bytes, padding, payload))


def parse_header(buffer: bytes | memoryview, expected_key: str | None = None) -> EntryHeader:
    """Parse and validate the fixed header (raises :class:`EntryDamage`)."""
    if len(buffer) < HEADER_SIZE:
        raise EntryDamage(f"truncated header: {len(buffer)} bytes < {HEADER_SIZE}")
    magic, version, codec, payload_len, checksum, key_bytes, meta_len, _ = _HEADER.unpack_from(
        bytes(buffer[:HEADER_SIZE])
    )
    if magic != MAGIC:
        raise EntryDamage(f"bad magic {magic!r}")
    if version != FORMAT_VERSION:
        raise EntryDamage(f"unsupported format version {version}")
    if codec not in _CODEC_NAMES:
        raise EntryDamage(f"unknown payload codec {codec}")
    try:
        key = key_bytes.decode("ascii")
    except UnicodeDecodeError as error:
        raise EntryDamage("corrupt key echo (not ascii)") from error
    header = EntryHeader(codec, payload_len, checksum, key, meta_len)
    if expected_key is not None and key != expected_key:
        raise EntryDamage(f"key echo mismatch: entry was written under {key[:12]}...")
    return header


def verify_entry(
    buffer: bytes | memoryview, expected_key: str | None = None
) -> tuple[EntryHeader, dict[str, Any]]:
    """Full integrity check of one entry buffer: header, meta, checksum.

    Returns the parsed header and meta dictionary; raises
    :class:`EntryDamage` on any mismatch, without trusting a single payload
    byte before the checksum has passed.
    """
    header = parse_header(buffer, expected_key)
    if len(buffer) < header.total_size:
        raise EntryDamage(
            f"truncated entry: {len(buffer)} bytes < {header.total_size} expected"
        )
    meta_raw = bytes(buffer[header.meta_offset : header.meta_offset + header.meta_len])
    try:
        meta = json.loads(meta_raw.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as error:
        raise EntryDamage(f"corrupt meta JSON: {error}") from error
    if not isinstance(meta, dict):
        raise EntryDamage("corrupt meta JSON: not an object")
    # hashlib accepts any contiguous buffer, so a memory-mapped entry is
    # checksummed in place — no payload-sized copy on the zero-copy path.
    payload = memoryview(buffer)[
        header.payload_offset : header.payload_offset + header.payload_len
    ]
    try:
        damaged = hashlib.sha256(payload).digest() != header.checksum
    finally:
        payload.release()
    if damaged:
        raise EntryDamage("payload checksum mismatch")
    return header, meta


def best_effort_meta(buffer: bytes | memoryview) -> dict[str, Any]:
    """The meta mapping of a *damaged* entry, or ``{}`` when unrecoverable.

    ``verify --repair`` needs the metadata (kind, query text, instance
    fingerprint) to re-derive an entry whose *payload* failed its checksum —
    by then :func:`verify_entry` has already raised, so this helper re-reads
    just the header and meta region, tolerating everything it can.  The
    result is only ever used to describe what to recompile from scratch,
    never to serve stored bytes, so leniency here cannot launder corruption
    into an answer.
    """
    try:
        header = parse_header(buffer)
        meta_raw = bytes(buffer[header.meta_offset : header.meta_offset + header.meta_len])
        meta = json.loads(meta_raw.decode("utf-8"))
    # repro-analysis: allow(EXCEPT001): this is the tolerant path for entries already known to be damaged; any parse failure simply means "no metadata survives", which the repair sweep reports as not re-derivable
    except Exception:
        return {}
    return meta if isinstance(meta, dict) else {}


# -- columnar payload ----------------------------------------------------------

_SIDECAR_LEN = struct.Struct("<Q")


def encode_columnar(columnar: ColumnarOBDD) -> bytes:
    """Pack a columnar artifact: pickled sidecar, then aligned columns."""
    sidecar = pickle.dumps(columnar.meta(), protocol=pickle.HIGHEST_PROTOCOL)
    columns_offset = _aligned(_SIDECAR_LEN.size + len(sidecar))
    payload = bytearray(columns_offset + columnar.nbytes)
    _SIDECAR_LEN.pack_into(payload, 0, len(sidecar))
    payload[_SIDECAR_LEN.size : _SIDECAR_LEN.size + len(sidecar)] = sidecar
    if columnar.nbytes:
        columnar.write_into(memoryview(payload)[columns_offset:])
    return bytes(payload)


def decode_columnar_sidecar(payload: bytes | memoryview) -> tuple[dict[str, Any], int]:
    """The pickled sidecar and the columns' offset within the payload.

    Only called after :func:`verify_entry` passed, so the pickle bytes are
    exactly what the writer produced; residual surprises (a truncated
    sidecar in a yet-unseen writer bug) still surface as
    :class:`EntryDamage`, never as an unpickling crash propagating upward.
    """
    if len(payload) < _SIDECAR_LEN.size:
        raise EntryDamage("columnar payload too short for its sidecar length")
    (sidecar_len,) = _SIDECAR_LEN.unpack_from(bytes(payload[: _SIDECAR_LEN.size]))
    columns_offset = _aligned(_SIDECAR_LEN.size + sidecar_len)
    if len(payload) < columns_offset:
        raise EntryDamage("columnar payload too short for its sidecar")
    try:
        sidecar = pickle.loads(
            bytes(payload[_SIDECAR_LEN.size : _SIDECAR_LEN.size + sidecar_len])
        )
    # repro-analysis: allow(EXCEPT001): unpickling attacker-shaped corrupt bytes can raise nearly anything; every failure is converted to EntryDamage and quarantined, never swallowed
    except Exception as error:
        raise EntryDamage(f"corrupt columnar sidecar: {error}") from error
    if not isinstance(sidecar, dict) or "node_count" not in sidecar:
        raise EntryDamage("corrupt columnar sidecar: not a meta mapping")
    expected = columns_offset + 3 * int(sidecar["node_count"]) * 8
    if len(payload) < expected:
        raise EntryDamage(
            f"columnar payload too short for {sidecar['node_count']} nodes"
        )
    return sidecar, columns_offset


def encode_pickle(value: Any) -> bytes:
    """Pack an arbitrary picklable artifact (lifted plans, tree encodings)."""
    return pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)


def decode_pickle(payload: bytes | memoryview) -> Any:
    """Unpickle a verified :data:`CODEC_PICKLE` payload."""
    try:
        return pickle.loads(bytes(payload))
    # repro-analysis: allow(EXCEPT001): unpickling corrupt bytes can raise nearly anything; the failure becomes EntryDamage and a quarantine, never a silent pass
    except Exception as error:
        raise EntryDamage(f"corrupt pickle payload: {error}") from error
