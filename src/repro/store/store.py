"""The crash-safe persistent artifact store (:class:`ArtifactStore`).

Directory layout (all under one store root)::

    objects/<kk>/<key>.entry   one artifact per file, sharded by key prefix
    quarantine/<name>.entry    entries that failed verification, plus a
    quarantine/<name>.reason.json  machine-readable reason record each
    .lock                      the advisory cross-process lock file
    objects/<kk>/.tmp-<pid>-<n>    in-flight writes (never visible as entries)

Durability contract
-------------------
Writes are atomic and ordered: the entry is written to a temp file in the
*target* directory, ``fsync``\\ ed, then ``os.replace``\\ d onto its final
name, and the directory is ``fsync``\\ ed — a reader (or a crash at any
point) sees either the complete old state or the complete new state, never a
partial entry under a live name.  Temp files orphaned by a crash are removed
by the startup recovery sweep (:meth:`ArtifactStore.recover`), which skips
temp files belonging to a still-running pid.

Integrity contract
------------------
Every load re-verifies the entry end to end (magic, version, key echo,
payload checksum — :func:`repro.store.format.verify_entry`) before a single
payload byte is trusted.  Damage is *quarantined*: the file moves to
``quarantine/`` with a reason record and the load reports a miss, so the
engine transparently recompiles.  Corruption can cost time, never
correctness.

Concurrency contract
--------------------
All entry traffic (reads, writes) holds the ``.lock`` file *shared*;
maintenance sweeps (:meth:`recover`, :meth:`gc`, :meth:`verify`) hold it
*exclusive*, so a sweep never observes — or deletes — another process's
write mid-flight.  Lock acquisition re-validates that the locked file is
still the file on disk (inode check) and retries when the lock was stolen
(deleted/recreated underneath us).  On platforms without ``fcntl`` the lock
degrades to a no-op; the atomic-rename protocol alone still guarantees
readers never see torn entries.

Zero-copy loads
---------------
With numpy available, a verified columnar entry is memory-mapped and the
``var|lo|hi`` columns become int64 views straight into the mapping (the
same :func:`~repro.booleans.columnar.columnar_from_buffer` path the
shared-memory transport uses); the mapping is released when the last view
dies.  The stdlib ``array`` fallback copies the columns out and closes the
mapping immediately.
"""

from __future__ import annotations

import errno
import json
import mmap
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterator

from repro.booleans.columnar import ColumnarOBDD, columnar_from_buffer
from repro.errors import StoreError
from repro.store.format import (
    CODEC_COLUMNAR,
    CODEC_PICKLE,
    EntryDamage,
    best_effort_meta,
    decode_columnar_sidecar,
    decode_pickle,
    encode_columnar,
    encode_pickle,
    pack_entry,
    verify_entry,
)

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platform
    fcntl = None  # type: ignore[assignment]

_ENTRY_SUFFIX = ".entry"
_TMP_PREFIX = ".tmp-"
_REASON_SUFFIX = ".reason.json"
_LOCK_RETRIES = 16

#: Signature of the ``verify(recompile=...)`` callback: given a damaged
#: entry's meta mapping, return the replacement artifact as
#: ``(codec, value)`` — a :class:`ColumnarOBDD` under ``CODEC_COLUMNAR``, any
#: picklable value under ``CODEC_PICKLE`` — or ``None`` when the artifact
#: cannot be re-derived (the entry is then deleted with a logged reason).
RecompileHook = Callable[[dict[str, Any]], "tuple[int, Any] | None"]


@dataclass
class StoreCounters:
    """Live in-process traffic counters (reset with the owning store)."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    write_failures: int = 0
    quarantines: int = 0
    recovered: int = 0


@dataclass(frozen=True)
class StoreStats:
    """One consistent snapshot: disk occupancy plus session counters."""

    entries: int
    total_bytes: int
    quarantined: int
    quarantined_bytes: int
    counters: StoreCounters

    def as_dict(self) -> dict[str, int]:
        return {
            "entries": self.entries,
            "total_bytes": self.total_bytes,
            "quarantined": self.quarantined,
            "quarantined_bytes": self.quarantined_bytes,
            "hits": self.counters.hits,
            "misses": self.counters.misses,
            "writes": self.counters.writes,
            "write_failures": self.counters.write_failures,
            "quarantines": self.counters.quarantines,
            "recovered": self.counters.recovered,
        }


@dataclass(frozen=True)
class QuarantineRecord:
    """One quarantined entry: where it sits and why it was pulled."""

    name: str
    key: str
    reason: str
    quarantined_at: float


@dataclass
class VerifyReport:
    """The outcome of one :meth:`ArtifactStore.verify` sweep."""

    checked: int = 0
    ok: int = 0
    damaged: list[tuple[str, str]] = field(default_factory=list)
    quarantined: list[str] = field(default_factory=list)
    repaired: list[str] = field(default_factory=list)
    deleted: list[tuple[str, str]] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """True when no unhandled damage remains on disk."""
        return not self.damaged or len(self.damaged) == len(self.repaired) + len(
            self.deleted
        ) + len(self.quarantined)


class ArtifactStore:
    """A content-fingerprint-keyed persistent tier for compiled artifacts.

    ``fault_plan`` (tests only — :mod:`repro.testing.faults`) arms the
    deterministic disk faults: torn writes, bit flips on read, ``ENOSPC``
    on write, and lock steals.  ``None`` (production) installs no hooks.
    """

    def __init__(self, root: str | Path, fault_plan: Any = None) -> None:
        self.root = Path(root)
        self.fault_plan = fault_plan
        self.counters = StoreCounters()
        self._serial = 0
        self._closed = False
        try:
            self._objects_dir.mkdir(parents=True, exist_ok=True)
            self._quarantine_dir.mkdir(parents=True, exist_ok=True)
        except OSError as error:
            raise StoreError(f"cannot create store directory {self.root}: {error}") from error
        self.recover()

    # -- paths ----------------------------------------------------------------

    @property
    def _objects_dir(self) -> Path:
        return self.root / "objects"

    @property
    def _quarantine_dir(self) -> Path:
        return self.root / "quarantine"

    @property
    def _lock_path(self) -> Path:
        return self.root / ".lock"

    def _entry_path(self, key: str) -> Path:
        return self._objects_dir / key[:2] / f"{key}{_ENTRY_SUFFIX}"

    # -- locking ---------------------------------------------------------------

    @contextmanager
    def _lock(self, exclusive: bool) -> Iterator[None]:
        """Advisory cross-process lock with steal detection.

        The lock file can be deleted or recreated underneath a holder (an
        external cleanup, a misconfigured janitor, the armed ``lock_steal``
        fault); holding a lock on an unlinked inode excludes nobody.  After
        every acquisition the holder re-stats the *path* and compares inodes
        with its own descriptor — a mismatch means the lock was stolen, so
        it is released and re-acquired on the new file.
        """
        if self._closed:
            raise StoreError("store is closed")
        if fcntl is None:  # pragma: no cover - non-POSIX platform
            yield
            return
        operation = fcntl.LOCK_EX if exclusive else fcntl.LOCK_SH
        for _ in range(_LOCK_RETRIES):
            fd = os.open(self._lock_path, os.O_RDWR | os.O_CREAT, 0o644)
            try:
                fcntl.flock(fd, operation)
            except OSError as error:
                # repro-analysis: allow(EXCEPT001): flock can fail on exotic filesystems (NFS without lockd); the atomic-rename protocol still holds, so degrade to lockless rather than refuse service
                os.close(fd)
                del error
                yield
                return
            if self.fault_plan is not None:
                from repro.testing.faults import consume_token

                if consume_token(self.fault_plan, "lock_steal"):
                    # Simulate an external janitor deleting the lock file
                    # out from under the holder; detection must catch it.
                    try:
                        os.unlink(self._lock_path)
                    except FileNotFoundError:
                        pass
            try:
                current = os.stat(self._lock_path)
            except FileNotFoundError:
                # Stolen: the file we locked is gone; retry on the new file.
                _unlock_close(fd)
                continue
            held = os.fstat(fd)
            if (current.st_ino, current.st_dev) != (held.st_ino, held.st_dev):
                _unlock_close(fd)
                continue
            try:
                yield
            finally:
                _unlock_close(fd)
            return
        raise StoreError(
            f"could not hold the store lock {self._lock_path} "
            f"({_LOCK_RETRIES} acquisitions were stolen)"
        )

    # -- write path ------------------------------------------------------------

    def _next_tmp(self, directory: Path) -> Path:
        self._serial += 1
        return directory / f"{_TMP_PREFIX}{os.getpid()}-{self._serial}"

    def _commit_entry(self, key: str, blob: bytes) -> bool:
        """Atomically publish one packed entry; False on a tolerated failure.

        Write-behind semantics: disk-full and permission problems increment
        ``write_failures`` and return False — the caller already holds the
        artifact in memory, so a failed persist must never fail the query.
        """
        target = self._entry_path(key)
        torn = enospc = False
        if self.fault_plan is not None:
            from repro.testing.faults import consume_token

            torn = consume_token(self.fault_plan, "disk_torn_write")
            enospc = consume_token(self.fault_plan, "disk_enospc")
        tmp: Path | None = None
        try:
            target.parent.mkdir(parents=True, exist_ok=True)
            tmp = self._next_tmp(target.parent)
            payload = blob[: max(1, len(blob) // 2)] if torn else blob
            fd = os.open(tmp, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)
            try:
                if enospc:
                    raise OSError(errno.ENOSPC, "injected disk-full fault")
                os.write(fd, payload)
                os.fsync(fd)
            finally:
                os.close(fd)
            # A torn write models a crash *after* the rename was queued but
            # before the data blocks hit the platter: the entry is committed
            # under its live name with a truncated body, which the read-path
            # verification must catch.
            os.replace(tmp, target)
            tmp = None
            _fsync_dir(target.parent)
        except OSError as error:
            # repro-analysis: allow(EXCEPT001): write-behind persistence is best-effort by contract — disk-full/permission failures are counted and the in-memory artifact still serves the query
            self.counters.write_failures += 1
            if tmp is not None:
                _unlink_quietly(tmp)
            del error
            return False
        self.counters.writes += 1
        return True

    def put_columnar(self, key: str, columnar: ColumnarOBDD, meta: dict[str, Any]) -> bool:
        """Persist a columnar artifact under ``key`` (idempotent)."""
        meta = dict(meta, kind=meta.get("kind", "columnar"))
        with self._lock(exclusive=False):
            if self._entry_path(key).exists():
                return True
            blob = pack_entry(key, CODEC_COLUMNAR, meta, encode_columnar(columnar))
            return self._commit_entry(key, blob)

    def put_object(self, key: str, value: Any, meta: dict[str, Any]) -> bool:
        """Persist any picklable artifact under ``key`` (idempotent)."""
        with self._lock(exclusive=False):
            if self._entry_path(key).exists():
                return True
            blob = pack_entry(key, CODEC_PICKLE, meta, encode_pickle(value))
            return self._commit_entry(key, blob)

    # -- read path -------------------------------------------------------------

    def _apply_read_faults(self, path: Path) -> None:
        if self.fault_plan is None:
            return
        from repro.testing.faults import consume_token

        if consume_token(self.fault_plan, "disk_bit_flip"):
            try:
                with open(path, "r+b") as handle:
                    handle.seek(-1, os.SEEK_END)
                    last = handle.read(1)
                    handle.seek(-1, os.SEEK_END)
                    handle.write(bytes((last[0] ^ 0x40,)))
            except OSError:
                # repro-analysis: allow(EXCEPT001): the sabotage helper itself must not crash the read it is trying to sabotage
                pass

    def get_columnar(self, key: str) -> ColumnarOBDD | None:
        """Load a columnar artifact, or None on miss / quarantined damage.

        The entry is fully verified, then attached zero-copy: the returned
        artifact's columns are views into the file mapping (numpy backend),
        released when the artifact dies.  The artifact stays valid after
        :meth:`close` — it owns its mapping.
        """
        path = self._entry_path(key)
        if not path.exists():
            self.counters.misses += 1
            return None
        with self._lock(exclusive=False):
            self._apply_read_faults(path)
            mapping: mmap.mmap | None = None
            try:
                fd = os.open(path, os.O_RDONLY)
                try:
                    mapping = mmap.mmap(fd, 0, access=mmap.ACCESS_READ)
                finally:
                    os.close(fd)
                buffer = memoryview(mapping)
                try:
                    header, _ = verify_entry(buffer, expected_key=key)
                    if header.codec != CODEC_COLUMNAR:
                        raise EntryDamage(
                            f"expected a columnar entry, found {header.codec_name}"
                        )
                    payload = buffer[
                        header.payload_offset : header.payload_offset + header.payload_len
                    ]
                    sidecar, columns_offset = decode_columnar_sidecar(payload)
                    columns = payload[columns_offset:]
                    artifact = columnar_from_buffer(sidecar, columns, retain=mapping)
                finally:
                    # Drop the locals' buffer exports so the mapping's only
                    # keepalive is the artifact itself (numpy backend) —
                    # otherwise the finalizer's close would hit BufferError.
                    buffer.release()
            except EntryDamage as damage:
                if mapping is not None:
                    _close_mapping(mapping)
                self._quarantine(path, key, str(damage))
                self.counters.misses += 1
                return None
            except (OSError, ValueError) as error:
                # repro-analysis: allow(EXCEPT001): a file that vanished or shrank between stat and mmap (racing gc, external cleanup) is a cache miss by contract, not an error — ValueError is mmap's empty-file signal
                if mapping is not None:
                    _close_mapping(mapping)
                del error
                self.counters.misses += 1
                return None
            if artifact._retain is None:
                # Fallback array backend: columns were copied out.
                _close_mapping(mapping)
            self.counters.hits += 1
            return artifact

    def get_object(self, key: str) -> tuple[bool, Any]:
        """Load a pickled artifact: ``(found, value)``.

        The pair (rather than ``value | None``) lets a legitimate ``None``
        artifact — the cached "query is unsafe" verdict of the lifted-plan
        tier — round-trip unambiguously.
        """
        path = self._entry_path(key)
        if not path.exists():
            self.counters.misses += 1
            return False, None
        with self._lock(exclusive=False):
            self._apply_read_faults(path)
            try:
                blob = path.read_bytes()
                header, _ = verify_entry(blob, expected_key=key)
                if header.codec != CODEC_PICKLE:
                    raise EntryDamage(
                        f"expected a pickle entry, found {header.codec_name}"
                    )
                value = decode_pickle(
                    memoryview(blob)[
                        header.payload_offset : header.payload_offset + header.payload_len
                    ]
                )
            except EntryDamage as damage:
                self._quarantine(path, key, str(damage))
                self.counters.misses += 1
                return False, None
            except OSError as error:
                # repro-analysis: allow(EXCEPT001): a file that vanished between stat and read (racing gc, external cleanup) is a cache miss by contract, not an error
                del error
                self.counters.misses += 1
                return False, None
            self.counters.hits += 1
            return True, value

    def contains(self, key: str) -> bool:
        """Whether a (not necessarily valid) entry exists under ``key``."""
        return self._entry_path(key).exists()

    # -- quarantine ------------------------------------------------------------

    def _quarantine(self, path: Path, key: str, reason: str) -> None:
        """Move a damaged entry aside with a reason record (never serve it)."""
        self.counters.quarantines += 1
        destination = self._quarantine_dir / path.name
        serial = 0
        while destination.exists():
            serial += 1
            destination = self._quarantine_dir / f"{path.name}.{serial}"
        try:
            self._quarantine_dir.mkdir(parents=True, exist_ok=True)
            os.replace(path, destination)
            record = {
                "name": destination.name,
                "key": key,
                "reason": reason,
                "quarantined_at": time.time(),
            }
            reason_path = destination.with_name(destination.name + _REASON_SUFFIX)
            reason_path.write_text(json.dumps(record, sort_keys=True) + "\n")
            _fsync_dir(self._quarantine_dir)
        except OSError as error:
            # repro-analysis: allow(EXCEPT001): quarantining is best-effort damage *containment* — if even the move fails (read-only disk), the caller still reports a miss and recompiles, which preserves correctness
            del error
            _unlink_quietly(path)

    def quarantine_list(self) -> list[QuarantineRecord]:
        """Every quarantined entry's reason record, oldest first."""
        records = []
        for reason_path in sorted(self._quarantine_dir.glob(f"*{_REASON_SUFFIX}")):
            try:
                data = json.loads(reason_path.read_text())
            except (OSError, ValueError):
                # repro-analysis: allow(EXCEPT001): a reason record damaged by the same disk that damaged the entry still deserves a row in the report rather than crashing the listing
                data = {}
            records.append(
                QuarantineRecord(
                    name=str(data.get("name", reason_path.name[: -len(_REASON_SUFFIX)])),
                    key=str(data.get("key", "")),
                    reason=str(data.get("reason", "unreadable reason record")),
                    quarantined_at=float(data.get("quarantined_at", 0.0)),
                )
            )
        records.sort(key=lambda record: (record.quarantined_at, record.name))
        return records

    # -- maintenance sweeps ----------------------------------------------------

    def _iter_entries(self) -> Iterator[Path]:
        for shard in sorted(self._objects_dir.iterdir()):
            if not shard.is_dir():
                continue
            for path in sorted(shard.glob(f"*{_ENTRY_SUFFIX}")):
                yield path

    def recover(self) -> list[str]:
        """Startup recovery: remove temp files orphaned by crashed writers.

        A temp file whose embedded pid is still alive belongs to an
        in-flight write of a concurrent process and is left alone; every
        other temp file is a crash leftover and is unlinked.  Runs under the
        exclusive lock so it cannot race a live writer's rename.
        """
        removed: list[str] = []
        with self._lock(exclusive=True):
            for shard in sorted(self._objects_dir.iterdir()):
                if not shard.is_dir():
                    continue
                for path in sorted(shard.glob(f"{_TMP_PREFIX}*")):
                    if _tmp_pid_alive(path.name):
                        continue
                    _unlink_quietly(path)
                    removed.append(path.name)
        self.counters.recovered += len(removed)
        return removed

    def stats(self) -> StoreStats:
        """Disk occupancy plus this session's traffic counters."""
        entries = total = 0
        for path in self._iter_entries():
            try:
                total += path.stat().st_size
            except OSError:
                # repro-analysis: allow(EXCEPT001): an entry unlinked by a racing gc between listing and stat simply leaves the snapshot
                continue
            entries += 1
        quarantined = quarantined_bytes = 0
        for path in self._quarantine_dir.glob(f"*{_ENTRY_SUFFIX}*"):
            if path.name.endswith(_REASON_SUFFIX):
                continue
            try:
                quarantined_bytes += path.stat().st_size
            except OSError:
                # repro-analysis: allow(EXCEPT001): same racing-unlink tolerance as the entry walk above
                continue
            quarantined += 1
        return StoreStats(entries, total, quarantined, quarantined_bytes, self.counters)

    def verify(self, recompile: RecompileHook | None = None) -> VerifyReport:
        """Re-verify every entry; optionally repair or delete the damaged.

        Without ``recompile`` (plain ``verify``) damaged entries are
        quarantined, exactly as the read path would.  With ``recompile``
        (``verify --repair``) each damaged entry's meta is handed to the
        hook: a re-derived artifact replaces the entry in place; ``None``
        deletes it with the reason logged in the report.
        """
        report = VerifyReport()
        with self._lock(exclusive=True):
            for path in list(self._iter_entries()):
                key = path.name[: -len(_ENTRY_SUFFIX)]
                report.checked += 1
                meta: dict[str, Any] = {}
                try:
                    blob = path.read_bytes()
                    header, meta = verify_entry(blob, expected_key=key)
                    if header.codec == CODEC_COLUMNAR:
                        decode_columnar_sidecar(
                            memoryview(blob)[
                                header.payload_offset : header.payload_offset
                                + header.payload_len
                            ]
                        )
                    else:
                        decode_pickle(
                            memoryview(blob)[
                                header.payload_offset : header.payload_offset
                                + header.payload_len
                            ]
                        )
                except EntryDamage as damage:
                    if not meta:
                        # A payload-checksum failure raises before verify_entry
                        # returns the meta; re-read it leniently so --repair
                        # still knows what to re-derive.
                        meta = best_effort_meta(blob)
                    report.damaged.append((key, str(damage)))
                    self._repair_or_remove(path, key, str(damage), meta, recompile, report)
                    continue
                except OSError as error:
                    # repro-analysis: allow(EXCEPT001): an unreadable entry (I/O error, racing unlink) counts as damage for the sweep's purposes and goes through the same repair-or-remove path
                    reason = f"unreadable entry: {error}"
                    report.damaged.append((key, reason))
                    self._repair_or_remove(path, key, reason, meta, recompile, report)
                    continue
                report.ok += 1
        return report

    def _repair_or_remove(
        self,
        path: Path,
        key: str,
        reason: str,
        meta: dict[str, Any],
        recompile: RecompileHook | None,
        report: VerifyReport,
    ) -> None:
        if recompile is not None:
            replacement = recompile(meta) if meta else None
            if replacement is not None:
                codec, value = replacement
                if codec == CODEC_COLUMNAR:
                    blob = pack_entry(key, codec, meta, encode_columnar(value))
                else:
                    blob = pack_entry(key, codec, meta, encode_pickle(value))
                _unlink_quietly(path)
                if self._commit_entry(key, blob):
                    report.repaired.append(key)
                else:
                    report.deleted.append((key, f"{reason}; rewrite failed"))
                return
            _unlink_quietly(path)
            report.deleted.append((key, f"{reason}; not re-derivable, deleted"))
            return
        self._quarantine(path, key, reason)
        report.quarantined.append(key)

    def gc(
        self,
        max_bytes: int | None = None,
        max_age_seconds: float | None = None,
        clear_quarantine: bool = False,
    ) -> list[str]:
        """Evict entries by age then by total size (oldest-first); list keys.

        ``clear_quarantine`` additionally empties the quarantine directory
        (the damaged entries and their reason records).
        """
        removed: list[str] = []
        now = time.time()
        with self._lock(exclusive=True):
            entries: list[tuple[float, int, Path]] = []
            for path in self._iter_entries():
                try:
                    status = path.stat()
                except OSError:
                    # repro-analysis: allow(EXCEPT001): racing unlink between listing and stat; nothing to evict
                    continue
                entries.append((status.st_mtime, status.st_size, path))
            entries.sort()
            if max_age_seconds is not None:
                survivors = []
                for mtime, size, path in entries:
                    if now - mtime > max_age_seconds:
                        _unlink_quietly(path)
                        removed.append(path.name[: -len(_ENTRY_SUFFIX)])
                    else:
                        survivors.append((mtime, size, path))
                entries = survivors
            if max_bytes is not None:
                total = sum(size for _, size, _ in entries)
                for _, size, path in entries:
                    if total <= max_bytes:
                        break
                    _unlink_quietly(path)
                    removed.append(path.name[: -len(_ENTRY_SUFFIX)])
                    total -= size
            if clear_quarantine:
                for path in sorted(self._quarantine_dir.iterdir()):
                    _unlink_quietly(path)
        return removed

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        """Mark the store closed (further calls raise :class:`StoreError`).

        Already-loaded columnar artifacts stay valid: each owns its file
        mapping, released when the artifact dies.  The store holds no
        persistent descriptors — locks are per-operation — so close leaks
        nothing by construction; the tests pin that.
        """
        self._closed = True

    def __enter__(self) -> "ArtifactStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def _unlock_close(fd: int) -> None:
    if fcntl is not None:
        try:
            fcntl.flock(fd, fcntl.LOCK_UN)
        except OSError:
            # repro-analysis: allow(EXCEPT001): unlocking a descriptor whose file was unlinked can fail on some kernels; close() releases the lock anyway
            pass
    os.close(fd)


def _close_mapping(mapping: mmap.mmap) -> None:
    try:
        mapping.close()
    except BufferError:  # pragma: no cover - a stray export keeps it alive
        pass


def _fsync_dir(directory: Path) -> None:
    """Flush a directory's metadata so the rename itself is durable."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        # repro-analysis: allow(EXCEPT001): some filesystems refuse O_RDONLY on directories; the entry data is already fsynced, only rename durability degrades
        return
    try:
        os.fsync(fd)
    except OSError:
        # repro-analysis: allow(EXCEPT001): fsync on a directory descriptor is EINVAL on some filesystems; same degradation as above
        pass
    finally:
        os.close(fd)


def _unlink_quietly(path: Path) -> None:
    try:
        os.unlink(path)
    except OSError:
        # repro-analysis: allow(EXCEPT001): the file is already gone or undeletable; both are acceptable for a cleanup helper
        pass


def _tmp_pid_alive(name: str) -> bool:
    """Whether a ``.tmp-<pid>-<n>`` file's writer process still runs."""
    try:
        pid = int(name[len(_TMP_PREFIX) :].split("-", 1)[0])
    except ValueError:
        return False
    if pid == os.getpid():
        return False  # our own serial counter never reuses names; stale
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True  # alive, owned by someone else
    except OSError:
        # repro-analysis: allow(EXCEPT001): exotic kill(pid, 0) failures; assume alive — leaving a temp file is safe, deleting a live one is not
        return True
    return True
