"""repro.store — the crash-safe persistent artifact tier.

A :class:`ArtifactStore` is a content-fingerprint-keyed, disk-backed cache
sitting *below* the :class:`~repro.engine.CompilationEngine` LRU caches: the
engine reads through it on a memory miss and writes freshly compiled
artifacts behind, so compiled OBDDs, lifted plans, and tree encodings
survive process restarts and are shared by every worker pointed at the same
directory.

Three properties the tests pin:

* **Atomicity** — the temp-write / fsync / rename protocol means a crash at
  any point leaves either the old state or the new state, never a torn
  entry under a live name; orphaned temp files are swept at startup.
* **Integrity** — every load re-verifies the entry (format version, key
  echo, SHA-256 payload checksum) before trusting a byte; damage is moved
  to ``quarantine/`` with a reason record and reported as a miss, so
  corruption can cost recompilation time but never a wrong answer.
* **Concurrency** — entry traffic shares an advisory file lock that
  maintenance sweeps take exclusively, with inode-checked steal detection,
  so concurrent engines on one host can point at one directory safely.

See :mod:`repro.store.store` for the contracts and
:mod:`repro.store.format` for the on-disk entry layout.
"""

from repro.store.format import (
    CODEC_COLUMNAR,
    CODEC_PICKLE,
    FORMAT_VERSION,
    canonical_query_text,
    columnar_key,
    encoding_key,
    plan_key,
)
from repro.store.store import (
    ArtifactStore,
    QuarantineRecord,
    StoreCounters,
    StoreStats,
    VerifyReport,
)

__all__ = [
    "ArtifactStore",
    "CODEC_COLUMNAR",
    "CODEC_PICKLE",
    "FORMAT_VERSION",
    "QuarantineRecord",
    "StoreCounters",
    "StoreStats",
    "VerifyReport",
    "canonical_query_text",
    "columnar_key",
    "encoding_key",
    "plan_key",
]
