"""Lifted inference (safe plans) for hierarchical self-join-free queries.

The query-based tractability route of [18, 19, 36], used in Section 9 of the
paper as the point of comparison with the instance-based route: hierarchical
self-join-free CQs (the safe ones) and inversion-free UCQs admit probability
computation directly on the TID instance, without materializing a lineage,
by recursively applying independence rules:

* *independent project*: if a root variable x occurs in every atom, group the
  facts by the value of x; the groups touch disjoint facts, so
  ``P(q) = 1 - prod_a (1 - P(q[x := a]))``;
* *independent join*: if the query splits into sub-queries sharing no
  relation symbol (and no variable), ``P(q1 ∧ q2) = P(q1) * P(q2)``;
* *ground atom*: the probability of a fully instantiated atom is its
  TID probability (0 if the fact is absent).

For unions, we apply inclusion–exclusion over the disjuncts (exponential in
the — fixed — number of disjuncts only), which is exact for any UCQ whose
conjunctions of disjuncts remain safe; inversion-free UCQs satisfy this.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Any, Mapping

from repro.data.instance import Fact
from repro.data.tid import ProbabilisticInstance
from repro.errors import ProbabilityError, QueryError
from repro.queries.atoms import Atom, Variable
from repro.queries.cq import ConjunctiveQuery
from repro.queries.properties import is_hierarchical
from repro.queries.ucq import UnionOfConjunctiveQueries, as_ucq


class UnsafeQueryError(ProbabilityError):
    """Raised when the lifted-inference rules do not apply (the query is unsafe)."""


def safe_plan_probability(
    query: UnionOfConjunctiveQueries | ConjunctiveQuery,
    probabilistic_instance: ProbabilisticInstance,
) -> Fraction:
    """Exact probability by lifted inference.

    Raises :class:`UnsafeQueryError` when a disjunct (or conjunction of
    disjuncts arising in inclusion–exclusion) is not hierarchical / has
    self-joins that block the independence rules.
    """
    query = as_ucq(query)
    if query.has_disequalities():
        raise UnsafeQueryError("lifted inference implemented for UCQs without disequalities")
    disjuncts = list(query.disjuncts)
    # Inclusion-exclusion over disjuncts: P(OR q_i) = sum over non-empty S of
    # (-1)^{|S|+1} P(AND of q_i in S), where the conjunction of CQs is the CQ
    # with variables renamed apart and atom sets concatenated.
    total = Fraction(0)
    for mask in range(1, 1 << len(disjuncts)):
        chosen = [disjuncts[i] for i in range(len(disjuncts)) if mask >> i & 1]
        conjunction = _conjoin(chosen)
        sign = -1 if bin(mask).count("1") % 2 == 0 else 1
        total += sign * _cq_probability(conjunction, probabilistic_instance)
    return total


def _conjoin(disjuncts: list[ConjunctiveQuery]) -> ConjunctiveQuery:
    """The conjunction of several CQs with variables renamed apart."""
    atoms: list[Atom] = []
    for index, disjunct in enumerate(disjuncts):
        renaming = {v: Variable(f"{v.name}__{index}") for v in disjunct.variables()}
        renamed = disjunct.rename_variables(renaming)
        atoms.extend(renamed.atoms)
    return ConjunctiveQuery(tuple(atoms))


def _cq_probability(
    query: ConjunctiveQuery, probabilistic_instance: ProbabilisticInstance
) -> Fraction:
    """Probability of a (Boolean) CQ by the independent project / join rules."""
    atoms = [(a, {}) for a in query.atoms]
    return _evaluate(atoms, probabilistic_instance)


_Binding = Mapping[Variable, Any]


def _evaluate(
    atoms: list[tuple[Atom, _Binding]], probabilistic_instance: ProbabilisticInstance
) -> Fraction:
    """Recursive lifted evaluation of a conjunction of partially bound atoms."""
    if not atoms:
        return Fraction(1)

    # Ground atoms: all variables bound -> multiply the fact probability in.
    ground = [
        (a, binding) for a, binding in atoms if all(v in binding for v in a.variables())
    ]
    if ground:
        remaining = [(a, binding) for a, binding in atoms if (a, binding) not in ground]
        probability = Fraction(1)
        ground_facts: set[Fact] = set()
        for a, binding in ground:
            ground_facts.add(Fact(a.relation, tuple(binding[v] for v in a.arguments)))
        instance_facts = set(probabilistic_instance.instance.facts)
        for fact in ground_facts:
            if fact in instance_facts:
                probability *= probabilistic_instance.probability_of(fact)
            else:
                return Fraction(0)
        return probability * _evaluate(remaining, probabilistic_instance)

    # Independent join: split into connected components sharing no unbound variable.
    components = _components(atoms)
    if len(components) > 1:
        probability = Fraction(1)
        for component in components:
            probability *= _evaluate(component, probabilistic_instance)
        return probability

    # Independent project on a root variable: an unbound variable occurring in
    # every atom of the component.
    unbound_per_atom = [
        {v for v in a.variables() if v not in binding} for a, binding in atoms
    ]
    shared = set.intersection(*unbound_per_atom) if unbound_per_atom else set()
    if not shared:
        raise UnsafeQueryError(
            "no root variable: the query is not hierarchical (unsafe for lifted inference)"
        )
    if not _distinct_relations(atoms):
        raise UnsafeQueryError("self-join across the root variable: lifted inference does not apply")
    root = sorted(shared, key=lambda v: v.name)[0]
    domain = probabilistic_instance.instance.domain
    probability_none = Fraction(1)
    for value in domain:
        bound = [(a, {**binding, root: value}) for a, binding in atoms]
        probability_none *= 1 - _evaluate(bound, probabilistic_instance)
    return 1 - probability_none


def _components(atoms: list[tuple[Atom, _Binding]]) -> list[list[tuple[Atom, _Binding]]]:
    """Connected components of atoms linked by shared *unbound* variables or by a
    shared relation symbol (two atoms over the same relation are never
    independent, so splitting them would be unsound)."""
    n = len(atoms)
    adjacency = {i: set() for i in range(n)}
    unbound = [
        {v for v in a.variables() if v not in binding} for a, binding in atoms
    ]
    for i in range(n):
        for j in range(i + 1, n):
            if unbound[i] & unbound[j] or atoms[i][0].relation == atoms[j][0].relation:
                adjacency[i].add(j)
                adjacency[j].add(i)
    seen: set[int] = set()
    components: list[list[tuple[Atom, _Binding]]] = []
    for start in range(n):
        if start in seen:
            continue
        stack = [start]
        component = []
        seen.add(start)
        while stack:
            current = stack.pop()
            component.append(atoms[current])
            for neighbor in adjacency[current]:
                if neighbor not in seen:
                    seen.add(neighbor)
                    stack.append(neighbor)
        components.append(component)
    return components


def _distinct_relations(atoms: list[tuple[Atom, _Binding]]) -> bool:
    names = [a.relation for a, _ in atoms]
    return len(names) == len(set(names))


def is_liftable(query: UnionOfConjunctiveQueries | ConjunctiveQuery) -> bool:
    """A quick syntactic sufficient condition: every disjunct (and conjunction of
    disjuncts) is hierarchical and self-join-free after renaming apart."""
    query = as_ucq(query)
    if query.has_disequalities():
        return False
    try:
        for disjunct in query.disjuncts:
            if not disjunct.is_self_join_free():
                return False
        return is_hierarchical(query)
    except QueryError:
        return False
