"""Recursive lifted-inference reference (safe plans).

The query-based tractability route of [18, 19, 36], used in Section 9 of the
paper as the point of comparison with the instance-based route.  This module
is the *differential reference* for the compiled lifted tier
(:mod:`repro.probability.lifted`), in the same spirit as
:mod:`repro.booleans.reference`: a direct recursive transcription of the
independence rules, kept deliberately close to the textbook presentation and
cross-checked term by term against the iterative plan executor by the
oracle and the differential tests.

The rules, applied to each minimized inclusion–exclusion conjunction:

* *independent project*: if a root variable x occurs in every atom, the
  fact sets touched by distinct values of x are disjoint, so
  ``P(q) = 1 - prod_a (1 - P(q[x := a]))`` where ``a`` ranges over the
  values occurring in x's columns (the per-relation hash indexes — never
  the whole active domain);
* *independent join*: if the query splits into sub-queries sharing no
  unbound variable and no relation symbol, ``P(q1 ∧ q2) = P(q1) * P(q2)``;
* *ground atom*: the probability of a fully instantiated atom is its TID
  probability (0 if the fact is absent), looked up in one valuation
  mapping built per evaluation.

Both tiers share the minimization front end
(:mod:`repro.probability.lifted.minimize`): disjuncts are replaced by their
homomorphism cores, redundant disjuncts are dropped, and every
inclusion–exclusion conjunction is cored with equivalent terms cancelled
Möbius-style — so ``R(x) ∨ R(y)`` evaluates (its conjunction collapses to
``R(x)``) instead of raising on an unminimized self-join.

Scope: the projection rule is conservative (it requires pairwise-distinct
relation symbols in the projected component), so some safe queries outside
the hierarchical self-join-free fragment — e.g. inversion-free unions whose
minimized conjunctions retain self-joins — are rejected.  Rejection is
always an explicit :class:`~repro.errors.UnsafeQueryError`, never a wrong
value, and the verdict is shared with the compiled tier: ``is_liftable``
(re-exported here) is decided by plan construction and agrees with both
evaluators by construction.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Any, Mapping

from repro.data.instance import Fact, Instance
from repro.data.tid import ProbabilisticInstance
from repro.errors import UnsafeQueryError
from repro.probability.lifted.minimize import (
    inclusion_exclusion_terms,
    minimize_disjuncts,
)
from repro.probability.lifted.plan import is_liftable
from repro.queries.atoms import Atom, Variable
from repro.queries.cq import ConjunctiveQuery
from repro.queries.ucq import UnionOfConjunctiveQueries, as_ucq

__all__ = ["UnsafeQueryError", "is_liftable", "safe_plan_probability"]


def safe_plan_probability(
    query: UnionOfConjunctiveQueries | ConjunctiveQuery,
    probabilistic_instance: ProbabilisticInstance,
) -> Fraction:
    """Exact probability by recursive lifted inference.

    Raises :class:`UnsafeQueryError` exactly when ``is_liftable`` is False:
    some minimized inclusion–exclusion conjunction is not hierarchical or
    needs a projection across a self-join.
    """
    query = as_ucq(query)
    if query.has_disequalities():
        raise UnsafeQueryError("lifted inference implemented for UCQs without disequalities")
    disjuncts = minimize_disjuncts(query)
    terms = inclusion_exclusion_terms(disjuncts)
    # One membership/probability structure per evaluation, shared by every
    # recursive call (the seed rebuilt a set of all facts per ground step).
    valuation = probabilistic_instance.valuation()
    instance = probabilistic_instance.instance
    # Validate every term structurally before evaluating anything: safety
    # must not depend on the instance (an empty projection column would
    # otherwise skip — and silently accept — an unsafe subquery).
    for _, conjunction in terms:
        _validate([(a, frozenset()) for a in conjunction.atoms])
    total = Fraction(0)
    for coefficient, conjunction in terms:
        atoms = [(a, {}) for a in conjunction.atoms]
        total += coefficient * _evaluate(atoms, instance, valuation)
    return total


_Binding = Mapping[Variable, Any]


def _validate(atoms: list[tuple[Atom, frozenset[Variable]]]) -> None:
    """Recursive structural safety check: the value-free mirror of
    :func:`_evaluate` (and an independent transcription of the plan
    builder's decomposition).  Decomposition depends only on *which*
    variables are bound, never on values, so this raises
    :class:`UnsafeQueryError` exactly when evaluation would on some
    instance — making the verdict instance-independent."""
    if not atoms:
        return
    ground = [(a, bound) for a, bound in atoms if all(v in bound for v in a.variables())]
    rest = [(a, bound) for a, bound in atoms if not all(v in bound for v in a.variables())]
    if not rest:
        return
    if ground:
        ground_relations = {a.relation for a, _ in ground}
        if any(a.relation in ground_relations for a, _ in rest):
            raise UnsafeQueryError(
                "ground atom shares a relation with an open atom: "
                "the factors are not independent"
            )
    components = _components(rest)
    if len(components) > 1 or ground:
        for component in components:
            _validate(component)
        return
    unbound_per_atom = [
        frozenset(v for v in a.variables() if v not in bound) for a, bound in rest
    ]
    shared = frozenset.intersection(*unbound_per_atom)
    if not shared:
        raise UnsafeQueryError(
            "no root variable: the query is not hierarchical (unsafe for lifted inference)"
        )
    if not _distinct_relations(rest):
        raise UnsafeQueryError(
            "self-join across the root variable: lifted inference does not apply"
        )
    root = min(shared, key=lambda v: v.name)
    _validate([(a, bound | {root}) for a, bound in rest])


def _evaluate(
    atoms: list[tuple[Atom, _Binding]],
    instance: Instance,
    valuation: dict[Fact, Fraction],
) -> Fraction:
    """Recursive lifted evaluation of a conjunction of partially bound atoms."""
    if not atoms:
        return Fraction(1)

    # Ground atoms: all variables bound -> multiply the fact probability in.
    ground = [
        (a, binding) for a, binding in atoms if all(v in binding for v in a.variables())
    ]
    if ground:
        remaining = [(a, binding) for a, binding in atoms if (a, binding) not in ground]
        probability = Fraction(1)
        ground_facts: set[Fact] = set()
        for a, binding in ground:
            ground_facts.add(Fact(a.relation, tuple(binding[v] for v in a.arguments)))
        for ground_fact in ground_facts:
            fact_probability = valuation.get(ground_fact)
            if fact_probability is None:
                return Fraction(0)
            probability *= fact_probability
        return probability * _evaluate(remaining, instance, valuation)

    # Independent join: split into connected components sharing no unbound variable.
    components = _components(atoms)
    if len(components) > 1:
        probability = Fraction(1)
        for component in components:
            probability *= _evaluate(component, instance, valuation)
        return probability

    # Independent project on a root variable: an unbound variable occurring in
    # every atom of the component.
    unbound_per_atom = [
        {v for v in a.variables() if v not in binding} for a, binding in atoms
    ]
    shared = set.intersection(*unbound_per_atom) if unbound_per_atom else set()
    if not shared:
        raise UnsafeQueryError(
            "no root variable: the query is not hierarchical (unsafe for lifted inference)"
        )
    if not _distinct_relations(atoms):
        raise UnsafeQueryError("self-join across the root variable: lifted inference does not apply")
    root = min(shared, key=lambda v: v.name)
    probability_none = Fraction(1)
    for value in _root_values(atoms, root, instance):
        bound = [(a, {**binding, root: value}) for a, binding in atoms]
        probability_none *= 1 - _evaluate(bound, instance, valuation)
    return 1 - probability_none


def _root_values(
    atoms: list[tuple[Atom, _Binding]], root: Variable, instance: Instance
) -> list[Any]:
    """Candidate root values: per atom, the values occurring in the root's
    positions among the facts matching the atom's bound positions (via the
    instance's hash indexes), intersected across atoms.  The seed swept the
    whole active domain here — O(domain) recursive calls each returning 0."""
    candidates: set[Any] | None = None
    for a, binding in atoms:
        positions = [i for i, v in enumerate(a.arguments) if v == root]
        bound = {i: binding[v] for i, v in enumerate(a.arguments) if v in binding}
        facts = (
            instance.facts_matching(a.relation, bound)
            if bound
            else instance.facts_of(a.relation)
        )
        values = {
            f.arguments[positions[0]]
            for f in facts
            if all(f.arguments[p] == f.arguments[positions[0]] for p in positions[1:])
        }
        candidates = values if candidates is None else candidates & values
        if not candidates:
            return []
    return sorted(candidates or set(), key=_value_key)


def _value_key(value: Any) -> tuple[str, str]:
    return (type(value).__name__, repr(value))


def _components(atoms: list[tuple[Atom, _Binding]]) -> list[list[tuple[Atom, _Binding]]]:
    """Connected components of atoms linked by shared *unbound* variables or by a
    shared relation symbol (two atoms over the same relation are never
    independent, so splitting them would be unsound)."""
    n = len(atoms)
    adjacency = {i: set() for i in range(n)}
    unbound = [
        {v for v in a.variables() if v not in binding} for a, binding in atoms
    ]
    for i in range(n):
        for j in range(i + 1, n):
            if unbound[i] & unbound[j] or atoms[i][0].relation == atoms[j][0].relation:
                adjacency[i].add(j)
                adjacency[j].add(i)
    seen: set[int] = set()
    components: list[list[tuple[Atom, _Binding]]] = []
    for start in range(n):
        if start in seen:
            continue
        stack = [start]
        component = []
        seen.add(start)
        while stack:
            current = stack.pop()
            component.append(atoms[current])
            for neighbor in adjacency[current]:
                if neighbor not in seen:
                    seen.add(neighbor)
                    stack.append(neighbor)
        components.append(component)
    return components


def _distinct_relations(atoms: list[tuple[Atom, _Binding]]) -> bool:
    names = [a.relation for a, _ in atoms]
    return len(names) == len(set(names))
