"""Brute-force probability evaluation (the testing oracle).

Enumerates all possible worlds of a TID instance and sums the probabilities
of the worlds satisfying the query.  Exponential in the number of facts;
used to validate every other evaluation strategy on small instances.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Callable

from repro.data.instance import Instance
from repro.data.tid import ProbabilisticInstance
from repro.queries.cq import ConjunctiveQuery
from repro.queries.matching import satisfies
from repro.queries.ucq import UnionOfConjunctiveQueries, as_ucq


def brute_force_probability(
    query: UnionOfConjunctiveQueries | ConjunctiveQuery,
    probabilistic_instance: ProbabilisticInstance,
) -> Fraction:
    """Exact probability of a UCQ≠ by possible-world enumeration."""
    query = as_ucq(query)
    return brute_force_property_probability(
        lambda world: satisfies(world, query), probabilistic_instance
    )


def brute_force_property_probability(
    property_check: Callable[[Instance], bool],
    probabilistic_instance: ProbabilisticInstance,
) -> Fraction:
    """Exact probability of an arbitrary instance property by enumeration."""
    total = Fraction(0)
    for world, probability in probabilistic_instance.possible_worlds():
        if probability == 0:
            continue
        if property_check(world):
            total += probability
    return total


def brute_force_model_count(
    query: UnionOfConjunctiveQueries | ConjunctiveQuery, instance: Instance
) -> int:
    """Number of subinstances satisfying the query (exponential enumeration)."""
    query = as_ucq(query)
    return sum(1 for world in instance.all_subinstances() if satisfies(world, query))
