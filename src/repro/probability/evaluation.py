"""Top-level probability evaluation for UCQ≠ queries on TID instances.

This is the user-facing entry point implementing the upper bound of
Theorem 4.2: on treelike instances, probability evaluation runs in one pass
over a tree encoding (the ``automaton`` method) or through a compiled lineage
(``obdd`` / ``dnnf``); ``brute_force`` is the exponential oracle;
``safe_plan`` is the query-based lifted-inference route of Section 9
(compiled plans, :mod:`repro.probability.lifted`) and
``safe_plan_reference`` its recursive differential reference
(:mod:`repro.probability.safe_plans`).

All methods return exact :class:`fractions.Fraction` values and agree with
each other — the test suite checks this systematically.  The one deliberate
exception is ``obdd_float``: the float fast path of the fused sweep kernel
(:meth:`repro.booleans.obdd.OBDD.sweep`), which returns a ``float`` computed
in hardware arithmetic and falls back to the exact Fraction kernel whenever
the float pass degenerates (non-finite or outside ``[0, 1]``).  Every route
advertised as exact stays exact.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Literal

from repro.data.tid import ProbabilisticInstance
from repro.errors import ProbabilityError
from repro.provenance.compile_obdd import compile_query_to_obdd
from repro.provenance.lineage import lineage_of
from repro.queries.cq import ConjunctiveQuery
from repro.queries.ucq import UnionOfConjunctiveQueries, as_ucq

Method = Literal[
    "auto",
    "obdd",
    "obdd_float",
    "columnar",
    "columnar_float",
    "dnnf",
    "automaton",
    "automaton_columnar",
    "brute_force",
    "safe_plan",
    "safe_plan_reference",
    "read_once",
]

#: Every accepted method string, in presentation order (the CLI choices).
METHOD_NAMES: tuple[str, ...] = (
    "auto",
    "obdd",
    "obdd_float",
    "columnar",
    "columnar_float",
    "dnnf",
    "automaton",
    "automaton_columnar",
    "brute_force",
    "safe_plan",
    "safe_plan_reference",
    "read_once",
)


def probability(
    query: UnionOfConjunctiveQueries | ConjunctiveQuery,
    probabilistic_instance: ProbabilisticInstance,
    method: Method = "auto",
    engine=None,
    budget=None,
) -> Fraction | float:
    """The probability that the TID instance satisfies the UCQ≠ (Definition 3.1).

    Passing a :class:`repro.engine.CompilationEngine` routes the evaluation
    through the engine's caches (lineages, OBDDs, and probability results are
    memoized across calls by content fingerprint); without one, everything is
    recomputed from scratch.

    Passing a :class:`repro.resilience.ResourceBudget` activates its node/row
    caps and wall-clock deadline around the evaluation (the kernels
    checkpoint cooperatively and raise :class:`~repro.errors.BudgetExceeded`
    / :class:`~repro.errors.DeadlineExceeded`); with an engine,
    ``method="auto"`` additionally fails over between routes on a blowout.
    """
    query = as_ucq(query)
    if engine is not None:
        return engine.probability(query, probabilistic_instance, method, budget=budget)
    if budget is not None:
        from repro.resilience import activate

        with activate(budget):
            return probability(query, probabilistic_instance, method)
    if method == "auto":
        return _auto_probability(query, probabilistic_instance)
    if method == "brute_force":
        from repro.probability.brute_force import brute_force_probability

        return brute_force_probability(query, probabilistic_instance)
    if method == "safe_plan":
        from repro.probability.lifted import lifted_probability

        return lifted_probability(query, probabilistic_instance)
    if method == "safe_plan_reference":
        from repro.probability.safe_plans import safe_plan_probability

        return safe_plan_probability(query, probabilistic_instance)
    if method == "obdd":
        compiled = compile_query_to_obdd(query, probabilistic_instance.instance)
        return compiled.probability(probabilistic_instance.valuation())
    if method == "obdd_float":
        compiled = compile_query_to_obdd(query, probabilistic_instance.instance)
        return compiled.probability(probabilistic_instance.valuation(), exact=False)
    if method in ("columnar", "columnar_float"):
        compiled = compile_query_to_obdd(query, probabilistic_instance.instance)
        columnar = compiled.to_columnar()
        return columnar.probability(
            probabilistic_instance.valuation(), exact=method == "columnar"
        )
    if method == "automaton_columnar":
        from repro.provenance.columnar_product import (
            ucq_probability_via_columnar_automaton,
        )

        return ucq_probability_via_columnar_automaton(query, probabilistic_instance)
    if method == "dnnf":
        compiled = compile_query_to_obdd(query, probabilistic_instance.instance)
        dnnf = compiled.to_dnnf()
        valuation = {
            fact: probabilistic_instance.probability_of(fact) for fact in dnnf.variables()
        }
        return dnnf.probability(valuation)
    if method == "automaton":
        from repro.provenance.ucq_automaton import ucq_probability_via_automaton

        return ucq_probability_via_automaton(query, probabilistic_instance)
    if method == "read_once":
        return _read_once_probability(query, probabilistic_instance)
    raise ProbabilityError(f"unknown probability evaluation method {method!r}")


def _auto_probability(
    query: UnionOfConjunctiveQueries, probabilistic_instance: ProbabilisticInstance
) -> Fraction:
    """Pick a strategy: liftable queries run their compiled safe plan (no
    lineage, no circuit — the route that scales past any compilation);
    read-once lineages get the direct formula; everything else goes through
    the OBDD compilation (which is exact for any UCQ≠).  With an engine, the
    dichotomy router additionally weighs measured costs
    (:meth:`repro.engine.CompilationEngine.choose_route`)."""
    from repro.probability.lifted import execute_plan, try_lifted_plan

    plan = try_lifted_plan(query)
    if plan is not None:
        return execute_plan(plan, probabilistic_instance)
    lineage = lineage_of(query, probabilistic_instance.instance)
    if lineage.is_read_once_shaped():
        return _probability_of_read_once(lineage, probabilistic_instance)
    compiled = compile_query_to_obdd(query, probabilistic_instance.instance)
    return compiled.probability(probabilistic_instance.valuation())


def _read_once_probability(
    query: UnionOfConjunctiveQueries, probabilistic_instance: ProbabilisticInstance
) -> Fraction:
    lineage = lineage_of(query, probabilistic_instance.instance)
    if not lineage.is_read_once_shaped():
        raise ProbabilityError("lineage is not read-once shaped; use another method")
    return _probability_of_read_once(lineage, probabilistic_instance)


def _probability_of_read_once(lineage, probabilistic_instance: ProbabilisticInstance) -> Fraction:
    """P(OR of independent ANDs) = 1 - prod(1 - prod(p(fact)))."""
    complement = Fraction(1)
    for clause in lineage.clauses:
        clause_probability = Fraction(1)
        for fact in clause:
            clause_probability *= probabilistic_instance.probability_of(fact)
        complement *= 1 - clause_probability
    return 1 - complement
