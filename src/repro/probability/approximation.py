"""Approximate probability evaluation on tuple-independent databases.

Exact probability evaluation is #P-hard in general (Theorem 4.2 gives a
single FO query that is hard on every efficiently constructible
unbounded-treewidth family).  The paper's conclusion points at two practical
escape hatches on instances that are *not* treelike: randomized approximation
and the *dissociation* technique of Gatterbauer and Suciu [27].  This module
implements both, for the monotone-DNF lineages produced by
:func:`repro.provenance.lineage.lineage_of` (and by the C2RPQ≠ machinery):

* :func:`monte_carlo_probability` — the naive unbiased estimator (sample
  possible worlds, average the indicator);
* :func:`karp_luby_probability` — the Karp-Luby importance-sampling FPRAS for
  DNF probability, whose relative error does not degrade when the true
  probability is tiny;
* :func:`dissociation_bounds` — oblivious upper and lower bounds obtained by
  treating each clause independently (the "independent-or" upper bound and
  the max-clause lower bound), which are exact precisely when the lineage is
  a read-once independent OR — the situation bounded-pathwidth unfoldings of
  Section 9 produce.

All estimators accept a ``random.Random`` seed for reproducibility and report
their estimates as floats (the exact engines elsewhere in the library return
:class:`fractions.Fraction`).  Exactness policy: everything that *scales or
bounds* a result (clause weights, union bounds, dissociation bounds, interval
membership of exact values) is computed in exact rational arithmetic; floats
appear only in the sampled estimates themselves, where they are irreducible.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, Iterable, Mapping

from repro.data.instance import Fact, Instance
from repro.data.tid import ProbabilisticInstance
from repro.errors import ProbabilityError
from repro.provenance.lineage import MonotoneDNFLineage, lineage_of
from repro.queries.cq import ConjunctiveQuery
from repro.queries.ucq import UnionOfConjunctiveQueries, as_ucq


@dataclass(frozen=True)
class ApproximationResult:
    """An estimate together with the sampling effort that produced it.

    ``union_bound`` is the exact sum of clause probabilities when the
    estimator computed one (Karp–Luby scales its indicator mean by it);
    consumers that bound the estimator's error (the differential oracle)
    read it from here instead of re-deriving it.
    """

    estimate: float
    samples: int
    method: str
    union_bound: Fraction | None = None

    def absolute_error(self, exact: Fraction | float) -> float:
        return abs(self.estimate - float(exact))

    def relative_error(self, exact: Fraction | float) -> float:
        exact_value = float(exact)
        if exact_value == 0:
            return math.inf if self.estimate else 0.0
        return abs(self.estimate - exact_value) / exact_value


def _lineage_for(
    query_or_lineage,
    probabilistic_instance: ProbabilisticInstance,
) -> MonotoneDNFLineage:
    if isinstance(query_or_lineage, MonotoneDNFLineage):
        return query_or_lineage
    if isinstance(query_or_lineage, (ConjunctiveQuery, UnionOfConjunctiveQueries)):
        return lineage_of(as_ucq(query_or_lineage), probabilistic_instance.instance)
    raise ProbabilityError(
        "expected a CQ/UCQ or a MonotoneDNFLineage, got "
        f"{type(query_or_lineage).__name__}"
    )


def _sampling_thresholds(
    valuation: Mapping[Fact, Fraction],
) -> dict[Fact, Fraction | float]:
    """Per-fact inclusion thresholds for the samplers.

    Exactness without the ~100x cost of a Fraction rich comparison in the
    inner sampling loop: probabilities whose float image is exact (every
    dyadic value the workloads generate) compare on the float fast path;
    the rest keep the exact Fraction (float-vs-Fraction comparison is exact
    in Python), so no threshold is ever silently rounded.
    """
    thresholds: dict[Fact, Fraction | float] = {}
    for f, p in valuation.items():
        image = float(p)
        thresholds[f] = image if Fraction(image) == p else p
    return thresholds


def _sample_world(
    facts: Iterable[Fact],
    thresholds: Mapping[Fact, Fraction | float],
    generator: random.Random,
) -> set[Fact]:
    return {f for f in facts if generator.random() < thresholds[f]}


def monte_carlo_probability(
    query_or_lineage,
    probabilistic_instance: ProbabilisticInstance,
    samples: int = 1000,
    seed: int = 0,
) -> ApproximationResult:
    """The naive Monte-Carlo estimator: sample worlds, average the indicator.

    Unbiased, with additive error O(1/sqrt(samples)); the relative error blows
    up when the true probability is small, which is what
    :func:`karp_luby_probability` fixes.
    """
    if samples <= 0:
        raise ProbabilityError("the sample count must be positive")
    lineage = _lineage_for(query_or_lineage, probabilistic_instance)
    thresholds = _sampling_thresholds(probabilistic_instance.valuation())
    generator = random.Random(seed)
    facts = list(probabilistic_instance.instance.facts)
    hits = 0
    for _ in range(samples):
        world = _sample_world(facts, thresholds, generator)
        if lineage.evaluate(world):
            hits += 1
    return ApproximationResult(hits / samples, samples, "monte_carlo")


def karp_luby_probability(
    query_or_lineage,
    probabilistic_instance: ProbabilisticInstance,
    samples: int = 1000,
    seed: int = 0,
) -> ApproximationResult:
    """The Karp-Luby estimator for the probability of a monotone DNF lineage.

    Sampling scheme: pick a clause with probability proportional to its
    marginal probability, sample the remaining facts conditioned on the
    clause being present, and count the sample only when the picked clause is
    the *first* satisfied clause (canonical-witness trick).  The estimate is
    the union-bound mass scaled by the fraction of counted samples — an
    unbiased estimator of the true probability whose relative error is
    bounded independently of how small the probability is (the estimator is a
    fully polynomial randomized approximation scheme).
    """
    if samples <= 0:
        raise ProbabilityError("the sample count must be positive")
    lineage = _lineage_for(query_or_lineage, probabilistic_instance)
    clauses = list(lineage.clauses)
    if not clauses:
        return ApproximationResult(0.0, samples, "karp_luby", union_bound=Fraction(0))
    valuation = probabilistic_instance.valuation()
    # Clause weights and the union bound stay exact Fractions: the union bound
    # scales every returned estimate, so rounding it through float would bias
    # the estimator beyond its sampling error.  Floats appear only where the
    # sampler genuinely needs them (the ``choices`` weights).
    clause_probability: list[Fraction] = []
    for clause in clauses:
        weight = Fraction(1)
        for f in clause:
            weight *= valuation[f]
        clause_probability.append(weight)
    union_bound = sum(clause_probability, Fraction(0))
    if union_bound == 0:
        return ApproximationResult(0.0, samples, "karp_luby", union_bound=union_bound)
    generator = random.Random(seed)
    facts = list(probabilistic_instance.instance.facts)
    sampling_weights = [float(w) for w in clause_probability]
    if not any(sampling_weights):
        # Every clause weight underflowed to 0.0 although the exact union
        # bound is positive: the sampler cannot pick a clause, and the true
        # probability is below the smallest positive float anyway.
        return ApproximationResult(0.0, samples, "karp_luby", union_bound=union_bound)
    thresholds = _sampling_thresholds(valuation)
    counted = 0
    for _ in range(samples):
        picked_index = generator.choices(range(len(clauses)), weights=sampling_weights)[0]
        picked = clauses[picked_index]
        world = {f for f in facts if f in picked or generator.random() < thresholds[f]}
        # Count the sample iff the picked clause is the first satisfied one.
        first_satisfied = None
        for index, clause in enumerate(clauses):
            if clause <= world:
                first_satisfied = index
                break
        if first_satisfied == picked_index:
            counted += 1
    return ApproximationResult(
        float(union_bound * Fraction(counted, samples)),
        samples,
        "karp_luby",
        union_bound=union_bound,
    )


@dataclass(frozen=True)
class DissociationBounds:
    """Oblivious lower and upper bounds on a monotone DNF probability."""

    lower: Fraction
    upper: Fraction

    def contains(self, value: Fraction | float) -> bool:
        """Whether ``value`` lies in the interval.

        Exact values (``Fraction``/``int``) are compared exactly — the bounds
        are theorems, so an exact probability outside them is a bug, however
        close.  Float estimates keep a tiny slack for their representation
        error.
        """
        if isinstance(value, float):
            return float(self.lower) - 1e-12 <= value <= float(self.upper) + 1e-12
        return self.lower <= value <= self.upper

    @property
    def gap(self) -> Fraction:
        return self.upper - self.lower


def dissociation_bounds(
    query_or_lineage,
    probabilistic_instance: ProbabilisticInstance,
) -> DissociationBounds:
    """Oblivious bounds obtained by dissociating the clauses of the lineage.

    The *upper* bound treats the clauses as independent events ("independent
    or" / dissociation of the shared facts into fresh copies): it always
    dominates the true probability of a monotone DNF with positively
    correlated clauses.  The *lower* bound is the probability of the most
    probable single clause.  Both are exact when the lineage is a single
    clause, and the upper bound is exact whenever the clauses touch pairwise
    disjoint fact sets (a read-once independent OR) — which is what the
    bounded-pathwidth rewritings of Section 9 guarantee for inversion-free
    queries.
    """
    lineage = _lineage_for(query_or_lineage, probabilistic_instance)
    valuation = probabilistic_instance.valuation()
    best_single = Fraction(0)
    complement_product = Fraction(1)
    for clause in lineage.clauses:
        clause_probability = Fraction(1)
        for f in clause:
            clause_probability *= valuation[f]
        best_single = max(best_single, clause_probability)
        complement_product *= 1 - clause_probability
    return DissociationBounds(lower=best_single, upper=1 - complement_product)


def karp_luby_with_bounds(
    query_or_lineage,
    probabilistic_instance: ProbabilisticInstance,
    samples: int = 1000,
    seed: int = 0,
) -> tuple[ApproximationResult, DissociationBounds]:
    """The Karp–Luby estimate and the dissociation interval off one lineage.

    The degradation tier of ``method="auto"`` (see
    :mod:`repro.engine.resilience`) needs both: the interval is the
    *guarantee* (the true probability always lies inside), the estimate the
    usable point value.  Building the DNF lineage once and sharing it keeps
    the degraded path a single lineage enumeration — the lineage is
    polynomial in the instance even on workloads whose compiled circuits
    explode.
    """
    lineage = _lineage_for(query_or_lineage, probabilistic_instance)
    estimate = karp_luby_probability(lineage, probabilistic_instance, samples, seed)
    bounds = dissociation_bounds(lineage, probabilistic_instance)
    return estimate, bounds


def hoeffding_sample_size(epsilon: float, delta: float) -> int:
    """Samples needed for additive error <= epsilon with probability >= 1 - delta."""
    if not 0 < epsilon < 1 or not 0 < delta < 1:
        raise ProbabilityError("epsilon and delta must lie strictly between 0 and 1")
    return math.ceil(math.log(2.0 / delta) / (2.0 * epsilon * epsilon))


def approximate_probability(
    query_or_lineage,
    probabilistic_instance: ProbabilisticInstance,
    epsilon: float = 0.05,
    delta: float = 0.05,
    method: str = "karp_luby",
    seed: int = 0,
) -> ApproximationResult:
    """An (epsilon, delta) additive approximation with the requested estimator.

    The sample size is chosen by the Hoeffding bound on the underlying
    indicator variables; for ``karp_luby`` this is conservative (its indicator
    is scaled by the union bound) but keeps the interface uniform.
    """
    samples = hoeffding_sample_size(epsilon, delta)
    if method == "monte_carlo":
        return monte_carlo_probability(query_or_lineage, probabilistic_instance, samples, seed)
    if method == "karp_luby":
        return karp_luby_probability(query_or_lineage, probabilistic_instance, samples, seed)
    raise ProbabilityError(f"unknown approximation method {method!r}")


def estimate_property_probability(
    property_check: Callable[[Instance], bool],
    probabilistic_instance: ProbabilisticInstance,
    samples: int = 1000,
    seed: int = 0,
) -> ApproximationResult:
    """Monte-Carlo estimation for an arbitrary (possibly non-monotone) property.

    The MSO queries of Sections 4 and 5 are not monotone in general, so they
    have no DNF lineage; this estimator only needs a membership oracle.
    """
    if samples <= 0:
        raise ProbabilityError("the sample count must be positive")
    thresholds = _sampling_thresholds(probabilistic_instance.valuation())
    generator = random.Random(seed)
    facts = list(probabilistic_instance.instance.facts)
    hits = 0
    for _ in range(samples):
        world_facts = _sample_world(facts, thresholds, generator)
        if property_check(probabilistic_instance.instance.subinstance(world_facts)):
            hits += 1
    return ApproximationResult(hits / samples, samples, "monte_carlo_property")
