"""Model counting of query lineages (footnote 3 and Sections 4–5).

The number of subinstances of I satisfying a query q equals ``2^{|I|}`` times
the probability of q under the valuation assigning probability 1/2 to every
fact.  This connection is how the hardness reductions of Sections 4 and 5
transfer #P-hard counting problems (matchings, Hamiltonian cycles) to
probability evaluation, and how we cross-check the counting utilities of
:mod:`repro.counting` against the probabilistic pipeline.
"""

from __future__ import annotations

from fractions import Fraction

from repro.data.instance import Instance
from repro.data.tid import ProbabilisticInstance
from repro.errors import ProbabilityError
from repro.queries.cq import ConjunctiveQuery
from repro.queries.ucq import UnionOfConjunctiveQueries, as_ucq


def model_count_via_probability(
    query: UnionOfConjunctiveQueries | ConjunctiveQuery,
    instance: Instance,
    method: str = "obdd",
) -> int:
    """Number of subinstances of ``instance`` satisfying the query.

    Computed as ``2^{|I|} * P(q)`` under the all-1/2 valuation, where the
    probability is evaluated by the selected method of
    :func:`repro.probability.evaluation.probability`.
    """
    from repro.probability.evaluation import probability

    query = as_ucq(query)
    half = ProbabilisticInstance.uniform(instance, Fraction(1, 2))
    result = probability(query, half, method=method) * (1 << len(instance))
    if result.denominator != 1:
        raise ProbabilityError("model count is not an integer; probability evaluation is inconsistent")
    return int(result)


def property_model_count(automaton, instance: Instance) -> int:
    """Number of subinstances on which the automaton-defined MSO property holds."""
    from repro.provenance.automata import automaton_probability
    from repro.provenance.tree_encoding import tree_encoding

    half = ProbabilisticInstance.uniform(instance, Fraction(1, 2))
    encoding = tree_encoding(instance)
    result = automaton_probability(automaton, encoding, half) * (1 << len(instance))
    if result.denominator != 1:
        raise ProbabilityError("model count is not an integer; the automaton is not deterministic")
    return int(result)
