"""Exact and approximate probability evaluation on tuple-independent databases."""

from repro.probability.approximation import (
    ApproximationResult,
    DissociationBounds,
    approximate_probability,
    dissociation_bounds,
    estimate_property_probability,
    hoeffding_sample_size,
    karp_luby_probability,
    monte_carlo_probability,
)
from repro.probability.brute_force import (
    brute_force_model_count,
    brute_force_probability,
    brute_force_property_probability,
)
from repro.probability.evaluation import probability
from repro.probability.lifted import (
    LiftedPlan,
    execute_plan,
    lifted_plan,
    lifted_probability,
    try_lifted_plan,
)
from repro.probability.model_counting import model_count_via_probability, property_model_count
from repro.probability.safe_plans import UnsafeQueryError, is_liftable, safe_plan_probability

__all__ = [
    "ApproximationResult",
    "DissociationBounds",
    "LiftedPlan",
    "UnsafeQueryError",
    "approximate_probability",
    "brute_force_model_count",
    "brute_force_probability",
    "brute_force_property_probability",
    "dissociation_bounds",
    "estimate_property_probability",
    "execute_plan",
    "hoeffding_sample_size",
    "is_liftable",
    "karp_luby_probability",
    "lifted_plan",
    "lifted_probability",
    "model_count_via_probability",
    "monte_carlo_probability",
    "probability",
    "property_model_count",
    "safe_plan_probability",
    "try_lifted_plan",
]
