"""Iterative execution of compiled safe plans on TID instances.

One explicit frame stack, no Python recursion (the plan depth is bounded by
the query, but the REC001 contract holds the whole lifted kernel to the
same iterative standard as the circuit sweeps).  All arithmetic is exact
:class:`~fractions.Fraction` (EXACT001).

The executor touches the instance only through its per-relation hash
indexes: a :class:`~repro.probability.lifted.plan.ProjectNode` enumerates
the candidate root values as the intersection, over the component's atoms,
of the values occurring in that atom's root columns among the facts
matching the already-bound positions
(:meth:`repro.data.instance.Instance.facts_matching`).  The global active
domain is never swept, and both product rules short-circuit (a zero factor
for joins, a certain branch for projections).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Any, Iterator, Mapping

from repro import resilience as _resilience
from repro.data.instance import Fact, Instance
from repro.data.tid import ProbabilisticInstance
from repro.probability.lifted.plan import (
    GroundNode,
    JoinNode,
    LiftedPlan,
    PlanNode,
    ProjectNode,
)

Binding = Mapping[Any, Any]

_EMPTY: tuple[tuple[PlanNode, dict[Any, Any]], ...] = ()


def execute_plan(plan: LiftedPlan, tid: ProbabilisticInstance) -> Fraction:
    """The exact probability of the plan's query on ``tid``."""
    valuation = tid.valuation()
    instance = tid.instance
    total = Fraction(0)
    for coefficient, node in plan.root.terms:
        total += coefficient * _evaluate(node, instance, valuation)
    return total


class _Frame:
    """One in-flight product node: ``kind`` is "join" (``Π v``) or
    "project" (``1 - Π (1 - v)``); ``accumulator`` is the running product,
    and ``children`` yields the remaining ``(node, binding)`` factors."""

    __slots__ = ("kind", "accumulator", "children")

    def __init__(
        self, kind: str, children: Iterator[tuple[PlanNode, dict[Any, Any]]]
    ) -> None:
        self.kind = kind
        self.accumulator = Fraction(1)
        self.children = children

    def absorb(self, value: Fraction) -> None:
        factor = value if self.kind == "join" else 1 - value
        self.accumulator *= factor
        if self.accumulator == 0:
            # Short-circuit: a zero product is final (a zero factor for
            # joins, a certain branch for projections).
            self.children = iter(_EMPTY)

    def finalize(self) -> Fraction:
        return self.accumulator if self.kind == "join" else 1 - self.accumulator


def _evaluate(
    root: PlanNode, instance: Instance, valuation: dict[Fact, Fraction]
) -> Fraction:
    if isinstance(root, GroundNode):
        return _ground_probability(root, {}, valuation)
    frames = [_open_frame(root, {}, instance)]
    result = Fraction(0)
    while frames:
        frame = frames[-1]
        pending = next(frame.children, None)
        if pending is not None:
            child, binding = pending
            if isinstance(child, GroundNode):
                frame.absorb(_ground_probability(child, binding, valuation))
            else:
                frames.append(_open_frame(child, binding, instance))
            continue
        value = frame.finalize()
        frames.pop()
        if frames:
            frames[-1].absorb(value)
        else:
            result = value
    return result


def _open_frame(node: PlanNode, binding: dict[Any, Any], instance: Instance) -> _Frame:
    if isinstance(node, JoinNode):
        return _Frame("join", ((child, binding) for child in node.children))
    assert isinstance(node, ProjectNode)
    values = _root_candidates(node, instance, binding)
    return _Frame(
        "project",
        ((node.child, {**binding, node.variable: value}) for value in values),
    )


def _ground_probability(
    node: GroundNode, binding: Binding, valuation: dict[Fact, Fraction]
) -> Fraction:
    """Product of the fact probabilities; 0 when any fact is absent.

    Duplicate facts (possible only in degenerate plans) are counted once:
    ``P(A ∧ A) = P(A)``.
    """
    probability = Fraction(1)
    seen: set[Fact] = set()
    for a in node.atoms:
        ground_fact = Fact(a.relation, tuple(binding[v] for v in a.arguments))
        if ground_fact in seen:
            continue
        fact_probability = valuation.get(ground_fact)
        if fact_probability is None:
            return Fraction(0)
        seen.add(ground_fact)
        probability *= fact_probability
    return probability


def _root_candidates(
    node: ProjectNode, instance: Instance, binding: Binding
) -> list[Any]:
    """Values of the root variable that can match *every* atom of the
    component: per atom, the root-column values among the facts matching
    the bound positions (via the instance's hash indexes), intersected
    across atoms.  Values outside the intersection contribute probability
    zero, so skipping them is exact."""
    candidates: set[Any] | None = None
    budget = _resilience.ACTIVE
    for spec in node.atom_specs:
        if spec.bound_positions:
            bindings = {
                position: binding[variable]
                for position, variable in spec.bound_positions
            }
            facts = instance.facts_matching(spec.relation, bindings)
        else:
            facts = instance.facts_of(spec.relation)
        first = spec.root_positions[0]
        values: set[Any] = set()
        rows = 0
        for ground_fact in facts:
            rows += 1
            value = ground_fact.arguments[first]
            if all(
                ground_fact.arguments[position] == value
                for position in spec.root_positions[1:]
            ):
                values.add(value)
        if budget is not None and rows:
            # One charge per enumerated index scan: the row cap bounds the
            # total rows the executor touches, and the charge's periodic
            # deadline tick keeps long plans wall-clock interruptible.
            budget.charge_rows(rows)
        candidates = values if candidates is None else candidates & values
        if not candidates:
            return []
    assert candidates is not None
    return sorted(candidates, key=_value_key)


def _value_key(value: Any) -> tuple[str, str]:
    """The library's structural total order on domain elements."""
    return (type(value).__name__, repr(value))
