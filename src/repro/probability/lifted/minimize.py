"""UCQ minimization for lifted inference (Chandra–Merlin machinery).

The lifted tier is only correct on *minimized* queries: the independence
rules read structure off the syntax, so a homomorphically redundant atom or
disjunct makes a safe query look unsafe (the motivating bug: ``R(x) ∨ R(y)``
produces the inclusion–exclusion conjunction ``R(x) ∧ R(y)``, which has no
root variable until it is collapsed to its core ``R(x)``).  This module
supplies the front end shared by the compiled plans
(:mod:`repro.probability.lifted.plan`) and the recursive reference
(:mod:`repro.probability.safe_plans`):

* :func:`homomorphism_exists` — iterative backtracking search for a variable
  mapping sending every atom of one CQ onto an atom of another (queries here
  are constant-free, so no constant handling is needed);
* :func:`core` — the homomorphism core of a conjunction, computed by
  repeatedly deleting atoms whose removal keeps the query equivalent;
* :func:`minimize_disjuncts` — cores of the disjuncts with redundant
  (implied) disjuncts removed, keeping one representative per equivalence
  class;
* :func:`inclusion_exclusion_terms` — the signed terms of inclusion–
  exclusion over the disjuncts, with every conjunction replaced by its core
  and equivalent terms merged so their coefficients cancel Möbius-style;
  zero-coefficient classes are dropped *before* any plan is built, so an
  unsafe-but-cancelled conjunction cannot make a safe union look unsafe.

Everything here is an explicit-stack search: this module sits on the REC001
call closure of the lifted kernel, so no function recurses.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import UnsafeQueryError
from repro.queries.atoms import Atom, Variable
from repro.queries.cq import ConjunctiveQuery
from repro.queries.ucq import UnionOfConjunctiveQueries

#: Inclusion–exclusion enumerates every non-empty subset of the disjuncts;
#: the count is fixed by the query (not the data), but still deserves a
#: guard rail before we build 2^n conjunction cores.
MAX_INCLUSION_EXCLUSION_DISJUNCTS = 12


def homomorphism_exists(source: ConjunctiveQuery, target: ConjunctiveQuery) -> bool:
    """Is there a homomorphism from ``source`` to ``target``?

    A homomorphism maps the variables of ``source`` to variables of
    ``target`` so that every relational atom of ``source`` lands on an atom
    of ``target``.  By Chandra–Merlin, for Boolean constant-free CQs this
    decides implication: ``target`` implies ``source`` exactly when such a
    mapping exists.  Disequalities are not supported (callers reject them
    before reaching the lifted tier).
    """
    grouped: dict[tuple[str, int], list[Atom]] = {}
    for candidate in target.atoms:
        grouped.setdefault((candidate.relation, candidate.arity), []).append(candidate)
    # Most-constrained-first ordering: fewest candidate target atoms first.
    ordered = sorted(
        source.atoms,
        key=lambda a: (len(grouped.get((a.relation, a.arity), ())), a),
    )
    candidates: list[tuple[Atom, tuple[Atom, ...]]] = []
    for source_atom in ordered:
        options = tuple(grouped.get((source_atom.relation, source_atom.arity), ()))
        if not options:
            return False
        candidates.append((source_atom, options))

    # Iterative backtracking over one frame per source atom: ``choice[d]`` is
    # the next target-atom option to try at depth d, ``assigned[d]`` the
    # variables depth d added to the partial mapping (undone on backtrack).
    mapping: dict[Variable, Variable] = {}
    depth = 0
    choice = [0] * len(candidates)
    assigned: list[tuple[Variable, ...]] = [()] * len(candidates)
    while True:
        if depth == len(candidates):
            return True
        source_atom, options = candidates[depth]
        extended = False
        while choice[depth] < len(options):
            option = options[choice[depth]]
            choice[depth] += 1
            new_variables = _try_extend(mapping, source_atom, option)
            if new_variables is not None:
                assigned[depth] = new_variables
                extended = True
                break
        if extended:
            depth += 1
            if depth < len(candidates):
                choice[depth] = 0
            continue
        if depth == 0:
            return False
        depth -= 1
        for variable in assigned[depth]:
            del mapping[variable]


def _try_extend(
    mapping: dict[Variable, Variable], source_atom: Atom, target_atom: Atom
) -> tuple[Variable, ...] | None:
    """Extend ``mapping`` so ``source_atom`` maps onto ``target_atom``.

    Returns the variables newly bound (for undo on backtrack), or None —
    with ``mapping`` unchanged — when the atoms conflict with the mapping.
    """
    new_variables: list[Variable] = []
    for source_variable, target_variable in zip(
        source_atom.arguments, target_atom.arguments
    ):
        bound = mapping.get(source_variable)
        if bound is None:
            mapping[source_variable] = target_variable
            new_variables.append(source_variable)
        elif bound != target_variable:
            for variable in new_variables:
                del mapping[variable]
            return None
    return tuple(new_variables)


def implies(stronger: ConjunctiveQuery, weaker: ConjunctiveQuery) -> bool:
    """Does ``stronger`` imply ``weaker`` (as Boolean queries)?

    Chandra–Merlin: q1 ⊨ q2 iff there is a homomorphism from q2 to q1.
    """
    return homomorphism_exists(weaker, stronger)


def are_equivalent(first: ConjunctiveQuery, second: ConjunctiveQuery) -> bool:
    """Homomorphic equivalence: each query implies the other."""
    return implies(first, second) and implies(second, first)


def core(query: ConjunctiveQuery) -> ConjunctiveQuery:
    """The homomorphism core of a constant-free conjunction.

    Duplicate atoms are removed, then atoms are deleted one at a time as
    long as the full conjunction still maps homomorphically into the
    reduced one (which makes the two equivalent: the reduced query is a
    sub-conjunction, so it is implied for free).  The fixpoint is the
    minimal equivalent sub-conjunction — the core, up to isomorphism.
    """
    if query.disequalities:
        raise UnsafeQueryError(
            "homomorphism minimization is defined for queries without disequalities"
        )
    atoms: list[Atom] = list(dict.fromkeys(query.atoms))
    changed = True
    while changed and len(atoms) > 1:
        changed = False
        full = ConjunctiveQuery(tuple(atoms))
        for index in range(len(atoms)):
            reduced = ConjunctiveQuery(tuple(atoms[:index] + atoms[index + 1 :]))
            if homomorphism_exists(full, reduced):
                atoms = list(reduced.atoms)
                changed = True
                break
    return ConjunctiveQuery(tuple(atoms))


def minimize_disjuncts(
    query: UnionOfConjunctiveQueries,
) -> tuple[ConjunctiveQuery, ...]:
    """Cores of the disjuncts, with redundant disjuncts removed.

    A disjunct that implies another contributes nothing to the union
    (its models are already counted), so it is dropped; of a class of
    pairwise-equivalent disjuncts only the first survives.  The result is a
    union equivalent to ``query`` in which no disjunct implies another.
    """
    cores = [core(disjunct) for disjunct in query.disjuncts]
    kept: list[ConjunctiveQuery] = []
    for index, candidate in enumerate(cores):
        redundant = False
        for other_index, other in enumerate(cores):
            if other_index == index or not implies(candidate, other):
                continue
            # candidate ⊨ other: drop it, unless the two are equivalent and
            # the other one comes later (then the other is dropped instead).
            if not (other_index > index and implies(other, candidate)):
                redundant = True
                break
        if not redundant:
            kept.append(candidate)
    return tuple(kept)


def conjoin(disjuncts: Sequence[ConjunctiveQuery]) -> ConjunctiveQuery:
    """The conjunction of several CQs with variables renamed apart.

    Every variable of every disjunct is renamed to a fresh ``v<i>``, so the
    result never aliases variables across (or within) disjuncts no matter
    how the originals were named.
    """
    atoms: list[Atom] = []
    counter = 0
    for disjunct in disjuncts:
        renaming: dict[Variable, Variable] = {}
        for variable in disjunct.variables():
            renaming[variable] = Variable(f"v{counter}")
            counter += 1
        atoms.extend(disjunct.rename_variables(renaming).atoms)
    return ConjunctiveQuery(tuple(atoms))


def inclusion_exclusion_terms(
    disjuncts: Sequence[ConjunctiveQuery],
) -> tuple[tuple[int, ConjunctiveQuery], ...]:
    """The signed inclusion–exclusion terms over ``disjuncts``, minimized.

    ``P(∨ q_i) = Σ_S (-1)^{|S|+1} P(∧_{i∈S} q_i)`` over non-empty subsets S.
    Every conjunction is replaced by its homomorphism core, terms are
    grouped by homomorphic equivalence, and the signed coefficients of each
    class are summed (the Möbius-style cancellation): classes whose
    coefficient nets out to zero are dropped entirely, so they are never
    even attempted by plan construction.  Term order follows first
    appearance in subset-enumeration order, which is deterministic.
    """
    if len(disjuncts) > MAX_INCLUSION_EXCLUSION_DISJUNCTS:
        raise UnsafeQueryError(
            f"inclusion–exclusion over {len(disjuncts)} disjuncts exceeds the "
            f"supported bound of {MAX_INCLUSION_EXCLUSION_DISJUNCTS}"
        )
    representatives: list[ConjunctiveQuery] = []
    coefficients: list[int] = []
    for mask in range(1, 1 << len(disjuncts)):
        chosen = [disjuncts[i] for i in range(len(disjuncts)) if mask >> i & 1]
        term = core(conjoin(chosen))
        sign = -1 if bin(mask).count("1") % 2 == 0 else 1
        for index, representative in enumerate(representatives):
            if are_equivalent(representative, term):
                coefficients[index] += sign
                break
        else:
            representatives.append(term)
            coefficients.append(sign)
    return tuple(
        (coefficient, representative)
        for coefficient, representative in zip(coefficients, representatives)
        if coefficient != 0
    )
