"""The lifted (extensional, safe-plan) inference tier.

The query-based tractability route of the Dalvi–Suciu dichotomy (refs [18,
19, 36] of the paper), contrasted in Section 9 with the instance-based
treelike route: for safe queries, the probability is computed directly on
the TID instance — no lineage, no circuit — so this is the route that
reaches instances far beyond what any compilation can touch.

Pipeline: :func:`lifted_plan` minimizes the union (homomorphism cores,
redundant disjuncts, Möbius-cancelled inclusion–exclusion terms — see
:mod:`~repro.probability.lifted.minimize`) and compiles each surviving term
into an explicit plan of independent-project / independent-join /
ground-lookup nodes (:mod:`~repro.probability.lifted.plan`); the plan is
instance-independent and is executed iteratively against the per-relation
hash indexes of any instance (:mod:`~repro.probability.lifted.executor`),
always returning an exact :class:`~fractions.Fraction`.

The library's query language is constant-free by definition
(:mod:`repro.queries.atoms`), so the shattering/ranking preprocessing of the
general dichotomy — splitting relations on the constants appearing in the
query — is vacuous here: every query is already shattered, and minimization
plus plan construction are the complete pipeline.

Safety is decided at plan construction and nowhere else: ``is_liftable(q)``
is True exactly when ``lifted_probability(q, tid)`` succeeds (on every
instance), and False exactly when it raises
:class:`~repro.errors.UnsafeQueryError`.  The recursive differential
reference lives in :mod:`repro.probability.safe_plans`; the dichotomy
router that picks between this tier and the circuit routes lives in
:meth:`repro.engine.CompilationEngine.choose_route`.
"""

from fractions import Fraction

from repro.data.tid import ProbabilisticInstance
from repro.errors import UnsafeQueryError
from repro.probability.lifted.executor import execute_plan
from repro.probability.lifted.minimize import (
    are_equivalent,
    conjoin,
    core,
    homomorphism_exists,
    implies,
    inclusion_exclusion_terms,
    minimize_disjuncts,
)
from repro.probability.lifted.plan import (
    AtomSpec,
    GroundNode,
    InclusionExclusionNode,
    JoinNode,
    LiftedPlan,
    PlanNode,
    ProjectNode,
    build_cq_plan,
    is_liftable,
    lifted_plan,
    try_lifted_plan,
)
from repro.queries.cq import ConjunctiveQuery
from repro.queries.ucq import UnionOfConjunctiveQueries


def lifted_probability(
    query: UnionOfConjunctiveQueries | ConjunctiveQuery,
    probabilistic_instance: ProbabilisticInstance,
) -> Fraction:
    """Exact probability by lifted inference (compile a plan, execute it).

    Raises :class:`~repro.errors.UnsafeQueryError` — at plan construction,
    before touching the instance — exactly when ``is_liftable`` is False.
    """
    return execute_plan(lifted_plan(query), probabilistic_instance)


__all__ = [
    "AtomSpec",
    "GroundNode",
    "InclusionExclusionNode",
    "JoinNode",
    "LiftedPlan",
    "PlanNode",
    "ProjectNode",
    "UnsafeQueryError",
    "are_equivalent",
    "build_cq_plan",
    "conjoin",
    "core",
    "execute_plan",
    "homomorphism_exists",
    "implies",
    "inclusion_exclusion_terms",
    "is_liftable",
    "lifted_plan",
    "lifted_probability",
    "minimize_disjuncts",
    "try_lifted_plan",
]
