"""Safe-plan representation and construction for the lifted tier.

A :class:`LiftedPlan` is compiled once per query — independently of any
instance — and then executed by :mod:`repro.probability.lifted.executor`
against the per-relation hash indexes of any TID instance.  The plan tree
mirrors the Dalvi–Suciu independence rules:

* :class:`GroundNode` — a conjunction whose variables are all bound by
  enclosing projections; its probability is the product of the fact
  probabilities (0 when a fact is absent);
* :class:`JoinNode` — an independent join: sub-conjunctions sharing no
  unbound variable and no relation symbol, so ``P = Π P(child)``;
* :class:`ProjectNode` — an independent project on a root variable
  occurring in every atom of the component: the fact sets touched by
  distinct root values are disjoint, so ``P = 1 - Π_a (1 - P(q[x := a]))``
  where ``a`` ranges over the values occurring in the root variable's
  columns (never the whole active domain);
* :class:`InclusionExclusionNode` — the plan root: the signed, minimized
  inclusion–exclusion terms of the union
  (:func:`repro.probability.lifted.minimize.inclusion_exclusion_terms`).

Construction (:func:`lifted_plan`) is where safety is decided: it raises
:class:`~repro.errors.UnsafeQueryError` exactly when some minimized
conjunction has no root variable (not hierarchical) or needs a projection
across a self-join.  The decomposition depends only on which variables are
bound — never on instance values — so a query with a plan evaluates
successfully on *every* instance: :func:`is_liftable` is plan construction,
and cannot disagree with evaluation.

The self-join rule is deliberately conservative (a projected component must
use pairwise-distinct relation symbols), matching the recursive reference:
some safe queries beyond this fragment are rejected, but rejection is
always an explicit error, never a wrong value.

All construction is worklist-driven (REC001: no recursion), and every plan
node is a frozen, slotted dataclass.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import UnsafeQueryError
from repro.probability.lifted.minimize import (
    inclusion_exclusion_terms,
    minimize_disjuncts,
)
from repro.queries.atoms import Atom, Variable
from repro.queries.cq import ConjunctiveQuery
from repro.queries.ucq import UnionOfConjunctiveQueries, as_ucq


@dataclass(frozen=True, slots=True)
class AtomSpec:
    """How one atom of a projected component reads the instance indexes.

    ``root_positions`` are the argument positions holding the root variable
    (several when the root repeats inside the atom); ``bound_positions``
    pairs each position holding an ancestor-bound variable with that
    variable, ready to become a ``facts_matching`` binding at execution
    time.
    """

    relation: str
    root_positions: tuple[int, ...]
    bound_positions: tuple[tuple[int, Variable], ...]


@dataclass(frozen=True, slots=True)
class GroundNode:
    """Leaf: atoms fully bound by enclosing projections."""

    atoms: tuple[Atom, ...]


@dataclass(frozen=True, slots=True)
class JoinNode:
    """Independent join: children touch disjoint fact sets."""

    children: tuple["PlanNode", ...]


@dataclass(frozen=True, slots=True)
class ProjectNode:
    """Independent project on ``variable`` over one connected component."""

    variable: Variable
    atom_specs: tuple[AtomSpec, ...]
    child: "PlanNode"


PlanNode = GroundNode | JoinNode | ProjectNode


@dataclass(frozen=True, slots=True)
class InclusionExclusionNode:
    """Plan root: ``P = Σ coefficient · P(term)`` over minimized terms."""

    terms: tuple[tuple[int, PlanNode], ...]


@dataclass(frozen=True, slots=True)
class LiftedPlan:
    """A compiled safe plan: the minimized query and its plan tree."""

    query: UnionOfConjunctiveQueries
    disjuncts: tuple[ConjunctiveQuery, ...]
    root: InclusionExclusionNode

    @property
    def term_count(self) -> int:
        return len(self.root.terms)

    def node_count(self) -> int:
        """Total plan nodes (iterative walk; a cheap size/cost measure)."""
        count = 0
        pending: list[PlanNode] = [node for _, node in self.root.terms]
        while pending:
            node = pending.pop()
            count += 1
            if isinstance(node, JoinNode):
                pending.extend(node.children)
            elif isinstance(node, ProjectNode):
                pending.append(node.child)
        return count


def lifted_plan(query: UnionOfConjunctiveQueries | ConjunctiveQuery) -> LiftedPlan:
    """Compile a UCQ into a safe plan, or raise :class:`UnsafeQueryError`.

    The union is minimized first (disjunct cores, redundant disjuncts
    dropped, inclusion–exclusion conjunctions cored with cancelled terms
    removed), then every surviving term is compiled by the independence
    rules.
    """
    normalized = as_ucq(query)
    if normalized.has_disequalities():
        raise UnsafeQueryError(
            "lifted inference is implemented for UCQs without disequalities"
        )
    disjuncts = minimize_disjuncts(normalized)
    terms = inclusion_exclusion_terms(disjuncts)
    plan_terms = tuple(
        (coefficient, build_cq_plan(conjunction)) for coefficient, conjunction in terms
    )
    return LiftedPlan(
        query=normalized, disjuncts=disjuncts, root=InclusionExclusionNode(plan_terms)
    )


def try_lifted_plan(
    query: UnionOfConjunctiveQueries | ConjunctiveQuery,
) -> LiftedPlan | None:
    """:func:`lifted_plan`, with unsafety reported as None instead of raised."""
    try:
        return lifted_plan(query)
    except UnsafeQueryError:
        return None


def is_liftable(query: UnionOfConjunctiveQueries | ConjunctiveQuery) -> bool:
    """Does the lifted tier evaluate this query?

    Decided by attempting plan construction, so the verdict agrees with
    evaluation by construction: True means ``safe_plan`` evaluation
    succeeds on every instance, False means it raises
    :class:`~repro.errors.UnsafeQueryError`.
    """
    return try_lifted_plan(query) is not None


def build_cq_plan(conjunction: ConjunctiveQuery) -> PlanNode:
    """Compile one (minimized) conjunction into a plan tree.

    Worklist version of the usual recursion: ``expand`` tasks decompose a
    sub-conjunction under a set of bound variables, and ``join``/``project``
    tasks (pushed *below* their children, so they pop after them) assemble
    the frozen nodes once every child slot is filled.
    """
    if conjunction.disequalities:
        raise UnsafeQueryError(
            "lifted inference is implemented for UCQs without disequalities"
        )
    holder: list[PlanNode | None] = [None]
    stack: list[tuple[str, tuple]] = [
        ("expand", (tuple(conjunction.atoms), frozenset(), holder, 0))
    ]
    while stack:
        kind, payload = stack.pop()
        if kind == "join":
            children, slot, index = payload
            slot[index] = JoinNode(tuple(children))
            continue
        if kind == "project":
            root, specs, child_holder, slot, index = payload
            slot[index] = ProjectNode(root, specs, child_holder[0])
            continue
        atoms, bound, slot, index = payload
        ground = tuple(a for a in atoms if all(v in bound for v in a.arguments))
        rest = tuple(a for a in atoms if not all(v in bound for v in a.arguments))
        if not rest:
            slot[index] = GroundNode(ground)
            continue
        if ground:
            # Unreachable under the distinct-relations projection rule (an
            # atom only grounds after a projection, where its component used
            # pairwise-distinct relations), but guard the independence
            # assumption explicitly rather than rely on it.
            ground_relations = {a.relation for a in ground}
            if any(a.relation in ground_relations for a in rest):
                raise UnsafeQueryError(
                    "ground atom shares a relation with an open atom: "
                    "the factors are not independent"
                )
        components = _components(rest, bound)
        if len(components) == 1 and not ground:
            root, specs = _project_component(components[0], bound)
            child_holder: list[PlanNode | None] = [None]
            stack.append(("project", (root, specs, child_holder, slot, index)))
            stack.append(("expand", (components[0], bound | {root}, child_holder, 0)))
            continue
        offset = 1 if ground else 0
        children: list[PlanNode | None] = [None] * (offset + len(components))
        if ground:
            children[0] = GroundNode(ground)
        stack.append(("join", (children, slot, index)))
        for position, component in enumerate(components):
            stack.append(("expand", (component, bound, children, offset + position)))
    built = holder[0]
    if built is None:  # pragma: no cover - the worklist always fills the root
        raise UnsafeQueryError("plan construction produced no root node")
    return built


def _components(
    atoms: tuple[Atom, ...], bound: frozenset[Variable]
) -> list[tuple[Atom, ...]]:
    """Connected components of atoms linked by a shared *unbound* variable
    or a shared relation symbol (two atoms over the same relation can touch
    the same fact, so splitting them into independent factors is unsound).
    Component order follows the first atom's position, atoms keep query
    order — both deterministic."""
    count = len(atoms)
    unbound = [frozenset(v for v in a.arguments if v not in bound) for a in atoms]
    adjacency: list[list[int]] = [[] for _ in range(count)]
    for i in range(count):
        for j in range(i + 1, count):
            if unbound[i] & unbound[j] or atoms[i].relation == atoms[j].relation:
                adjacency[i].append(j)
                adjacency[j].append(i)
    seen: set[int] = set()
    components: list[tuple[Atom, ...]] = []
    for start in range(count):
        if start in seen:
            continue
        seen.add(start)
        frontier = [start]
        members = []
        while frontier:
            current = frontier.pop()
            members.append(current)
            for neighbor in adjacency[current]:
                if neighbor not in seen:
                    seen.add(neighbor)
                    frontier.append(neighbor)
        components.append(tuple(atoms[i] for i in sorted(members)))
    return components


def _project_component(
    atoms: tuple[Atom, ...], bound: frozenset[Variable]
) -> tuple[Variable, tuple[AtomSpec, ...]]:
    """Pick the root variable of one connected component and precompute the
    per-atom index-access specs, or raise when no safe projection exists."""
    shared: frozenset[Variable] | None = None
    for a in atoms:
        unbound = frozenset(v for v in a.arguments if v not in bound)
        shared = unbound if shared is None else shared & unbound
    if not shared:
        raise UnsafeQueryError(
            "no root variable: the query is not hierarchical "
            "(unsafe for lifted inference)"
        )
    relations = [a.relation for a in atoms]
    if len(relations) != len(set(relations)):
        raise UnsafeQueryError(
            "self-join across the root variable: lifted inference does not apply"
        )
    root = min(shared, key=lambda v: v.name)
    specs = tuple(
        AtomSpec(
            relation=a.relation,
            root_positions=tuple(
                position for position, v in enumerate(a.arguments) if v == root
            ),
            bound_positions=tuple(
                (position, v) for position, v in enumerate(a.arguments) if v in bound
            ),
        )
        for a in atoms
    )
    return root, specs
