"""Experiment harness shared by the benchmark suite."""

from repro.experiments.harness import (
    ScalingSeries,
    classify_growth,
    format_table,
    run_series,
    series_to_dict,
    speedup,
    speedup_trajectory,
    write_benchmark_json,
)
from repro.experiments.scaling import ExperimentReport, sweep, timed

__all__ = [
    "ExperimentReport",
    "ScalingSeries",
    "classify_growth",
    "format_table",
    "run_series",
    "series_to_dict",
    "speedup",
    "speedup_trajectory",
    "sweep",
    "timed",
    "write_benchmark_json",
]
