"""Experiment harness shared by the benchmark suite."""

from repro.experiments.harness import (
    ScalingSeries,
    classify_growth,
    format_table,
    run_series,
)
from repro.experiments.scaling import ExperimentReport, sweep, timed

__all__ = [
    "ExperimentReport",
    "ScalingSeries",
    "classify_growth",
    "format_table",
    "run_series",
    "sweep",
    "timed",
]
