"""Parameter sweeps and experiment reports.

The harness module measures one quantity against one size parameter
(:class:`repro.experiments.harness.ScalingSeries`); this module layers two
conveniences used by the benchmark suite and the examples on top of it:

* :func:`sweep` -- run several measurements over the same size grid, with
  optional timing, and collect every series at once;
* :class:`ExperimentReport` -- accumulate named series, render them as a
  single side-by-side table (one row per size), classify each series' growth,
  and export the whole report as a Markdown fragment that can be pasted into
  EXPERIMENTS.md.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping, Sequence

from repro.experiments.harness import ScalingSeries, classify_growth, format_table


def timed(function: Callable[[int], object]) -> Callable[[int], float]:
    """Wrap a measurement so the recorded value is its wall-clock time in seconds."""

    def measure(size: int) -> float:
        start = time.perf_counter()
        function(size)
        return time.perf_counter() - start

    return measure


def sweep(
    sizes: Iterable[int],
    measurements: Mapping[str, Callable[[int], float]],
) -> dict[str, ScalingSeries]:
    """Run every measurement on every size and collect one series per measurement.

    Sizes are iterated in the outer loop so that measurements of the same size
    see comparable machine state (caches, garbage-collector pressure).
    """
    series = {name: ScalingSeries(name) for name in measurements}
    for size in sizes:
        for name, measure in measurements.items():
            series[name].add(size, float(measure(size)))
    return series


@dataclass
class ExperimentReport:
    """A set of scaling series reported together, one table row per size.

    The report keeps the order in which series are added; every series must
    cover the same sizes (adding a series with different sizes raises
    ``ValueError`` at rendering time, which keeps misaligned tables from
    silently printing garbage).
    """

    title: str
    size_label: str = "n"
    series: list[ScalingSeries] = field(default_factory=list)

    def add_series(self, series: ScalingSeries) -> None:
        self.series.append(series)

    def add(self, name: str, rows: Iterable[tuple[float, float]]) -> None:
        """Convenience: add a named series from (size, value) pairs."""
        fresh = ScalingSeries(name)
        for size, value in rows:
            fresh.add(size, value)
        self.series.append(fresh)

    def run(
        self, sizes: Iterable[int], measurements: Mapping[str, Callable[[int], float]]
    ) -> "ExperimentReport":
        """Sweep the measurements and add the resulting series to this report."""
        for series in sweep(sizes, measurements).values():
            self.add_series(series)
        return self

    # -- rendering --------------------------------------------------------------------

    def _sizes(self) -> list[float]:
        if not self.series:
            return []
        reference = self.series[0].sizes
        for series in self.series[1:]:
            if series.sizes != reference:
                raise ValueError(
                    f"series {series.name!r} covers sizes {series.sizes}, "
                    f"expected {reference}"
                )
        return reference

    def table(self, precision: int = 5) -> str:
        """A plain-text table with one column per series."""
        sizes = self._sizes()
        headers = [self.size_label] + [series.name for series in self.series]
        rows = []
        for index, size in enumerate(sizes):
            row: list[object] = [int(size) if float(size).is_integer() else size]
            for series in self.series:
                value = series.values[index]
                row.append(int(value) if float(value).is_integer() else round(value, precision))
            rows.append(row)
        return format_table(headers, rows)

    def growth_summary(self) -> dict[str, str]:
        """The coarse growth label of every series."""
        return {series.name: classify_growth(series) for series in self.series}

    def to_markdown(self, precision: int = 5) -> str:
        """The report as a Markdown fragment (title, table, growth labels)."""
        sizes = self._sizes()
        headers = [self.size_label] + [series.name for series in self.series]
        lines = [f"### {self.title}", ""]
        lines.append("| " + " | ".join(headers) + " |")
        lines.append("|" + "|".join("---" for _ in headers) + "|")
        for index, size in enumerate(sizes):
            cells = [str(int(size) if float(size).is_integer() else size)]
            for series in self.series:
                value = series.values[index]
                cells.append(str(int(value) if float(value).is_integer() else round(value, precision)))
            lines.append("| " + " | ".join(cells) + " |")
        lines.append("")
        for name, label in self.growth_summary().items():
            lines.append(f"* {name}: {label}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return f"{self.title}\n{self.table()}"
