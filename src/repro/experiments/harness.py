"""Shared experiment harness: scaling series, growth-rate fits, table printing.

Each benchmark in ``benchmarks/`` measures a series of observations indexed by
an instance-size parameter and summarizes it as a :class:`ScalingSeries`; the
harness provides simple growth-rate diagnostics (log-log slope, successive
ratios) used to report whether a quantity looks constant, linear, polynomial
of higher degree, or super-polynomial — which is exactly the "shape" of the
paper's Tables 1 and 2 that the reproduction targets.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Mapping, Sequence


@dataclass
class ScalingSeries:
    """A sequence of (size, value) observations for a measured quantity."""

    name: str
    sizes: list[float] = field(default_factory=list)
    values: list[float] = field(default_factory=list)

    def add(self, size: float, value: float) -> None:
        self.sizes.append(float(size))
        self.values.append(float(value))

    def __len__(self) -> int:
        return len(self.sizes)

    # -- diagnostics ----------------------------------------------------------

    def loglog_slope(self) -> float:
        """Least-squares slope of log(value) against log(size).

        Roughly the polynomial degree of the growth: ~0 for constant, ~1 for
        linear, ~2 for quadratic; much larger slopes (or slopes growing with
        the size) indicate super-polynomial growth.
        """
        points = [
            (math.log(s), math.log(v))
            for s, v in zip(self.sizes, self.values)
            if s > 0 and v > 0
        ]
        if len(points) < 2:
            return 0.0
        mean_x = sum(x for x, _ in points) / len(points)
        mean_y = sum(y for _, y in points) / len(points)
        numerator = sum((x - mean_x) * (y - mean_y) for x, y in points)
        denominator = sum((x - mean_x) ** 2 for x, _ in points)
        if denominator == 0:
            return 0.0
        return numerator / denominator

    def is_roughly_constant(self, tolerance: float = 1.5) -> bool:
        """True when max/min of the values is below the tolerance ratio."""
        positive = [v for v in self.values if v > 0]
        if not positive:
            return True
        return max(positive) / min(positive) <= tolerance

    def is_subquadratic(self) -> bool:
        return self.loglog_slope() < 2.0

    def growth_ratios(self) -> list[float]:
        """Successive value ratios (useful to spot exponential growth)."""
        return [
            self.values[i + 1] / self.values[i]
            for i in range(len(self.values) - 1)
            if self.values[i] > 0
        ]

    def rows(self) -> list[tuple[float, float]]:
        return list(zip(self.sizes, self.values))


def run_series(
    name: str, sizes: Iterable[int], measure: Callable[[int], float]
) -> ScalingSeries:
    """Measure ``measure(size)`` for each size and collect the series."""
    series = ScalingSeries(name)
    for size in sizes:
        series.add(size, measure(size))
    return series


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """A plain-text table (the benchmark harness prints these, mirroring the
    paper's tables)."""
    columns = len(headers)
    widths = [len(str(h)) for h in headers]
    text_rows = [[str(cell) for cell in row] for row in rows]
    for row in text_rows:
        for index in range(columns):
            widths[index] = max(widths[index], len(row[index]) if index < len(row) else 0)
    lines = [
        "  ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(columns)),
    ]
    for row in text_rows:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(row))))
    return "\n".join(lines)


def series_to_dict(series: ScalingSeries) -> dict:
    """A JSON-ready representation of a series, with growth diagnostics."""
    return {
        "name": series.name,
        "sizes": list(series.sizes),
        "values": list(series.values),
        "loglog_slope": series.loglog_slope(),
        "growth": classify_growth(series),
    }


def speedup(baseline: ScalingSeries, improved: ScalingSeries) -> float:
    """Total-time speedup of ``improved`` over ``baseline`` (ratio of sums).

    Both series must measure the same quantity over the same sizes; a ratio
    above 1 means ``improved`` is faster.  Returns ``inf`` when the improved
    total is zero (degenerate timer resolution on trivial workloads).
    """
    base_total = sum(baseline.values)
    improved_total = sum(improved.values)
    if improved_total == 0:
        return math.inf
    return base_total / improved_total


def speedup_trajectory(baseline_total: float, trajectory: ScalingSeries) -> dict[str, float]:
    """Per-point speedups of a resource-scaling series over a fixed baseline.

    ``trajectory`` measures the same workload at increasing resource levels
    (worker counts, cache sizes, ...); the result maps each level (as a
    string, JSON-object friendly) to ``baseline_total / time_at_level``.
    Degenerate zero times map to ``inf`` like :func:`speedup`.
    """
    return {
        ("%g" % size): (baseline_total / value if value else math.inf)
        for size, value in zip(trajectory.sizes, trajectory.values)
    }


def write_benchmark_json(
    path: str | Path,
    title: str,
    series: Iterable[ScalingSeries],
    extra: Mapping[str, object] | None = None,
) -> Path:
    """Write a benchmark result file: named series plus free-form metadata.

    This is the exchange format of the ``BENCH_*.json`` files at the repo
    root; the driver and later sessions read them to track performance
    regressions across PRs.
    """
    payload: dict[str, object] = {
        "title": title,
        "series": [series_to_dict(s) for s in series],
    }
    if extra:
        payload.update(extra)
    target = Path(path)
    # NaN/inf (e.g. a :func:`speedup` of ``inf`` on a degenerate workload)
    # would serialize as the non-standard tokens ``NaN``/``Infinity`` and break
    # strict JSON consumers; map them to null instead.
    sanitized = _drop_non_finite(payload)
    target.write_text(json.dumps(sanitized, indent=2, sort_keys=True, allow_nan=False) + "\n")
    return target


def _drop_non_finite(value):
    if isinstance(value, float) and not math.isfinite(value):
        return None
    if isinstance(value, Mapping):
        return {key: _drop_non_finite(inner) for key, inner in value.items()}
    if isinstance(value, (list, tuple)):
        return [_drop_non_finite(inner) for inner in value]
    return value


def classify_growth(series: ScalingSeries) -> str:
    """A coarse label for the growth behaviour of a series."""
    if series.is_roughly_constant():
        return "constant"
    slope = series.loglog_slope()
    if slope < 1.3:
        return "linear"
    if slope < 2.5:
        return "polynomial (low degree)"
    ratios = series.growth_ratios()
    if ratios and ratios[-1] > 2 and all(later >= earlier for earlier, later in zip(ratios, ratios[1:])):
        return "super-polynomial"
    return "polynomial (high degree) or worse"
