"""Unions of conjunctive queries with disequalities (UCQ and UCQ≠, Section 2).

A :class:`UnionOfConjunctiveQueries` is a disjunction of CQ≠ disjuncts.  It is
the query language of the second main dichotomy result (Theorem 8.1) and of
the meta-dichotomy on intricate queries (Theorem 8.7).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.data.signature import Signature
from repro.errors import QueryError
from repro.queries.cq import ConjunctiveQuery
from repro.queries.atoms import Variable


@dataclass(frozen=True)
class UnionOfConjunctiveQueries:
    """A Boolean UCQ≠: a disjunction of CQ≠ disjuncts."""

    disjuncts: tuple[ConjunctiveQuery, ...]

    def __post_init__(self) -> None:
        if not isinstance(self.disjuncts, tuple):
            object.__setattr__(self, "disjuncts", tuple(self.disjuncts))
        if not self.disjuncts:
            raise QueryError("a UCQ needs at least one disjunct")

    # -- measures ----------------------------------------------------------------

    @property
    def size(self) -> int:
        """|q|: total number of atoms over all disjuncts (Section 2)."""
        return sum(d.size for d in self.disjuncts)

    def relations(self) -> tuple[str, ...]:
        names: set[str] = set()
        for d in self.disjuncts:
            names.update(d.relations())
        return tuple(sorted(names))

    def signature(self) -> Signature:
        arities: dict[str, int] = {}
        for disjunct in self.disjuncts:
            for a in disjunct.atoms:
                previous = arities.setdefault(a.relation, a.arity)
                if previous != a.arity:
                    raise QueryError(f"relation {a.relation!r} used with two arities")
        return Signature(sorted(arities.items()))

    def variables(self) -> tuple[Variable, ...]:
        seen: dict[Variable, None] = {}
        for d in self.disjuncts:
            for v in d.variables():
                seen.setdefault(v, None)
        return tuple(seen)

    # -- properties -----------------------------------------------------------------

    def has_disequalities(self) -> bool:
        return any(d.has_disequalities() for d in self.disjuncts)

    def is_ucq(self) -> bool:
        """A plain UCQ (no disequality atoms)."""
        return not self.has_disequalities()

    def is_connected(self) -> bool:
        """Connected in the sense of Definition 8.3: every disjunct is connected."""
        return all(d.is_connected() for d in self.disjuncts)

    def is_self_join_free(self) -> bool:
        return all(d.is_self_join_free() for d in self.disjuncts)

    def __str__(self) -> str:
        return " ∨ ".join(f"({d})" for d in self.disjuncts)

    def __iter__(self):
        return iter(self.disjuncts)

    def __len__(self) -> int:
        return len(self.disjuncts)


def ucq(disjuncts: Sequence[ConjunctiveQuery] | ConjunctiveQuery) -> UnionOfConjunctiveQueries:
    """Convenience constructor: accepts a single CQ or a sequence of CQs."""
    if isinstance(disjuncts, ConjunctiveQuery):
        disjuncts = (disjuncts,)
    return UnionOfConjunctiveQueries(tuple(disjuncts))


def as_ucq(query: "UnionOfConjunctiveQueries | ConjunctiveQuery") -> UnionOfConjunctiveQueries:
    """Normalize a CQ≠ or UCQ≠ into a UCQ≠."""
    if isinstance(query, UnionOfConjunctiveQueries):
        return query
    if isinstance(query, ConjunctiveQuery):
        return UnionOfConjunctiveQueries((query,))
    raise QueryError(f"expected a CQ or UCQ, got {type(query).__name__}")
