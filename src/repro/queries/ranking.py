"""The ranking transformation of Section 9 (after [16, 18]).

A UCQ is *ranked* when the "occurs before" relation on its variables is
acyclic; an instance is ranked when some total order of the domain makes the
arguments of every fact strictly ascending.  The ranking transformation
rewrites an arbitrary query and instance (separately) over an extended
signature so that both become ranked while preserving the lineage fact by
fact.  The paper (and [16, 18]) use it as a preprocessing step before the
unfolding construction of Theorem 9.7.

We implement the transformation for arity-<=2 signatures (the setting of the
paper's dichotomies); each binary relation R is split into R_asc / R_desc /
R_eq according to the order type of the tuple, and binary atoms are expanded
into the corresponding disjunction.  Higher arities raise
:class:`QueryError` — callers can still use the rest of the pipeline on
already-ranked inputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.data.instance import Fact, Instance
from repro.data.signature import Signature
from repro.errors import QueryError
from repro.queries.atoms import Atom, Disequality, Variable
from repro.queries.cq import ConjunctiveQuery
from repro.queries.ucq import UnionOfConjunctiveQueries, as_ucq

ASC_SUFFIX = "_asc"
DESC_SUFFIX = "_desc"
EQ_SUFFIX = "_eq"


@dataclass(frozen=True)
class RankedInstance:
    """The result of ranking an instance: the new instance plus the fact bijection."""

    instance: Instance
    fact_map: dict[Fact, Fact]  # original fact -> ranked fact

    def original_of(self, ranked_fact: Fact) -> Fact:
        inverse = {v: k for k, v in self.fact_map.items()}
        return inverse[ranked_fact]


def _element_order_key(element: Any) -> tuple[str, str]:
    return (type(element).__name__, repr(element))


def rank_instance(instance: Instance) -> RankedInstance:
    """Apply the ranking transformation to an arity-<=2 instance.

    Uses the canonical total order on domain elements.  Unary facts are kept;
    a binary fact R(a, b) becomes R_asc(a, b) if a < b, R_desc(b, a) if b < a,
    and R_eq(a) if a = b.  The mapping is a bijection on facts, and the
    Gaifman graph is unchanged, so treewidth/pathwidth/tree-depth are
    preserved (as noted in Section 9).
    """
    if instance.signature.max_arity > 2:
        raise QueryError("ranking transformation implemented for arity-<=2 signatures only")
    new_facts: dict[Fact, Fact] = {}
    for f in instance:
        if f.arity == 1:
            new_facts[f] = f
            continue
        a, b = f.arguments
        if a == b:
            new_facts[f] = Fact(f.relation + EQ_SUFFIX, (a,))
        elif _element_order_key(a) < _element_order_key(b):
            new_facts[f] = Fact(f.relation + ASC_SUFFIX, (a, b))
        else:
            new_facts[f] = Fact(f.relation + DESC_SUFFIX, (b, a))
    ranked = Instance(new_facts.values())
    if len(ranked) != len(instance):
        raise QueryError("ranking transformation collapsed distinct facts; input is degenerate")
    return RankedInstance(ranked, new_facts)


def rank_query(query: ConjunctiveQuery | UnionOfConjunctiveQueries) -> UnionOfConjunctiveQueries:
    """Apply the ranking transformation to an arity-<=2 UCQ≠.

    Each binary atom R(x, y) is expanded into the three cases
    R_asc(x, y), R_desc(y, x) and R_eq(x) (with y renamed to x); a disjunct
    with b binary atoms becomes 3^b disjuncts.  The resulting UCQ≠ has, on the
    ranked instance, exactly the same lineage as the original query on the
    original instance (under the fact bijection of :func:`rank_instance`).
    """
    query = as_ucq(query)
    if query.signature().max_arity > 2:
        raise QueryError("ranking transformation implemented for arity-<=2 signatures only")
    new_disjuncts: list[ConjunctiveQuery] = []
    for disjunct in query.disjuncts:
        expansions: list[tuple[list[Atom], dict[Variable, Variable]]] = [([], {})]
        for a in disjunct.atoms:
            next_expansions: list[tuple[list[Atom], dict[Variable, Variable]]] = []
            for atoms_so_far, substitution in expansions:
                if a.arity == 1:
                    next_expansions.append((atoms_so_far + [a], substitution))
                    continue
                x, y = a.arguments
                # ascending
                next_expansions.append(
                    (atoms_so_far + [Atom(a.relation + ASC_SUFFIX, (x, y))], dict(substitution))
                )
                # descending
                next_expansions.append(
                    (atoms_so_far + [Atom(a.relation + DESC_SUFFIX, (y, x))], dict(substitution))
                )
                # equal: y is identified with x
                merged = dict(substitution)
                merged[y] = merged.get(x, x)
                next_expansions.append(
                    (atoms_so_far + [Atom(a.relation + EQ_SUFFIX, (x,))], merged)
                )
            expansions = next_expansions
        for atoms_so_far, substitution in expansions:
            # Apply the variable identifications from the _eq cases (closed under chains).
            def resolve(v: Variable) -> Variable:
                seen = set()
                while v in substitution and v not in seen:
                    seen.add(v)
                    v = substitution[v]
                return v

            atoms = [Atom(a.relation, tuple(resolve(v) for v in a.arguments)) for a in atoms_so_far]
            try:
                disequalities = []
                satisfiable = True
                for d in disjunct.disequalities:
                    left, right = resolve(d.left), resolve(d.right)
                    if left == right:
                        satisfiable = False
                        break
                    disequalities.append(Disequality(left, right))
                if not satisfiable:
                    continue
                new_disjuncts.append(ConjunctiveQuery(tuple(atoms), tuple(disequalities)))
            except QueryError:
                continue
    if not new_disjuncts:
        raise QueryError("ranking transformation produced an unsatisfiable query")
    return UnionOfConjunctiveQueries(tuple(new_disjuncts))


def ranked_signature(signature: Signature) -> Signature:
    """The signature produced by the ranking transformation."""
    relations: list[tuple[str, int]] = []
    for relation in signature:
        if relation.arity == 1:
            relations.append((relation.name, 1))
        elif relation.arity == 2:
            relations.extend(
                [
                    (relation.name + ASC_SUFFIX, 2),
                    (relation.name + DESC_SUFFIX, 2),
                    (relation.name + EQ_SUFFIX, 1),
                ]
            )
        else:
            raise QueryError("ranking transformation implemented for arity-<=2 signatures only")
    return Signature(relations)
