"""The paper's named queries.

* :func:`unsafe_rst` — the classic unsafe CQ ``∃xy R(x) ∧ S(x, y) ∧ T(y)``
  ([17], discussed in Sections 1 and 8.3: unsafe, yet not intricate, with
  trivial OBDDs on S-grids);
* :func:`threshold_two_query` — ``∃xy R(x) ∧ R(y) ∧ x ≠ y`` (Proposition 7.1);
* :func:`qp` — the intricate UCQ≠ of Theorem 8.1, testing two distinct
  incident binary facts (a violation of "the possible world is a matching");
* :func:`qd` — the disconnected CQ≠ of Proposition 8.10, testing two binary
  facts with disjoint domains;
* :func:`hierarchical_example` / :func:`inversion_free_example` — safe queries
  used by the Section 9 experiments;
* :func:`non_hierarchical_example` — a minimal unsafe (non-hierarchical) CQ.
"""

from __future__ import annotations

from repro.data.signature import GRAPH_SIGNATURE, Signature
from repro.errors import QueryError
from repro.queries.atoms import Atom, Disequality, Variable, atom, neq
from repro.queries.cq import ConjunctiveQuery
from repro.queries.ucq import UnionOfConjunctiveQueries


def unsafe_rst() -> ConjunctiveQuery:
    """``∃xy R(x) ∧ S(x, y) ∧ T(y)`` — the canonical #P-hard (unsafe) CQ [17]."""
    return ConjunctiveQuery((atom("R", "x"), atom("S", "x", "y"), atom("T", "y")))


def threshold_two_query(relation: str = "R") -> ConjunctiveQuery:
    """``∃xy R(x) ∧ R(y) ∧ x ≠ y`` — lineage is the threshold-2 function (Prop. 7.1)."""
    return ConjunctiveQuery(
        (atom(relation, "x"), atom(relation, "y")), (neq("x", "y"),)
    )


def hierarchical_example() -> ConjunctiveQuery:
    """``∃xy R(x) ∧ S(x, y)`` — hierarchical, hence safe and inversion-free."""
    return ConjunctiveQuery((atom("R", "x"), atom("S", "x", "y")))


def inversion_free_example() -> UnionOfConjunctiveQueries:
    """A two-disjunct inversion-free UCQ: ``(R(x) ∧ S(x, y)) ∨ (S(x, y) ∧ T(x))``.

    Both disjuncts are hierarchical with x above y, and the attribute order of
    S (first position before second) is shared, so the UCQ is inversion-free.
    """
    first = ConjunctiveQuery((atom("R", "x"), atom("S", "x", "y")))
    second = ConjunctiveQuery((atom("S", "x", "y"), atom("T", "x")))
    return UnionOfConjunctiveQueries((first, second))


def non_hierarchical_example() -> ConjunctiveQuery:
    """The unsafe RST query again, exposed under a name stressing why it is unsafe."""
    return unsafe_rst()


def qp(signature: Signature = GRAPH_SIGNATURE) -> UnionOfConjunctiveQueries:
    """The intricate UCQ≠ q_p of Theorem 8.1 for an arity-2 signature.

    q_p holds exactly when the instance contains two *distinct* binary facts
    sharing a domain element, i.e. a path of length 2 in the Gaifman graph —
    the violation of the possible world being a matching.  It is 0-intricate:
    on any line instance the two middle facts are distinct and incident, and
    they alone form a minimal match.
    """
    binary = [relation.name for relation in signature.binary_relations()]
    if not binary:
        raise QueryError("q_p needs at least one binary relation in the signature")
    x, y, z = Variable("x"), Variable("y"), Variable("z")
    disjuncts: list[ConjunctiveQuery] = []
    for i, first in enumerate(binary):
        for second in binary[i:]:
            same = first == second
            # Shared first positions: P(z, x), Q(z, y)
            disjuncts.append(
                ConjunctiveQuery(
                    (Atom(first, (z, x)), Atom(second, (z, y))),
                    (Disequality(x, y),) if same else (),
                )
            )
            # Shared second positions: P(x, z), Q(y, z)
            disjuncts.append(
                ConjunctiveQuery(
                    (Atom(first, (x, z)), Atom(second, (y, z))),
                    (Disequality(x, y),) if same else (),
                )
            )
            # Head-to-tail: P(x, z), Q(z, y) — when P = Q the two facts coincide
            # exactly when x = z = y, so we add two disjuncts covering x != z
            # and y != z; when P != Q no disequality is needed.
            if same:
                disjuncts.append(
                    ConjunctiveQuery(
                        (Atom(first, (x, z)), Atom(second, (z, y))), (Disequality(x, z),)
                    )
                )
                disjuncts.append(
                    ConjunctiveQuery(
                        (Atom(first, (x, z)), Atom(second, (z, y))), (Disequality(y, z),)
                    )
                )
            else:
                disjuncts.append(
                    ConjunctiveQuery((Atom(first, (x, z)), Atom(second, (z, y))))
                )
                disjuncts.append(
                    ConjunctiveQuery((Atom(second, (x, z)), Atom(first, (z, y))))
                )
    return UnionOfConjunctiveQueries(tuple(disjuncts))


def qd(relation: str = "E") -> ConjunctiveQuery:
    """The disconnected CQ≠ q_d of Proposition 8.10.

    q_d tests for two binary facts with disjoint domains: ``R(x, y) ∧ R(z, w)``
    with all four variables pairwise distinct across the two atoms.
    """
    x, y, z, w = Variable("x"), Variable("y"), Variable("z"), Variable("w")
    return ConjunctiveQuery(
        (Atom(relation, (x, y)), Atom(relation, (z, w))),
        (
            Disequality(x, z),
            Disequality(x, w),
            Disequality(y, z),
            Disequality(y, w),
        ),
    )


def path_query(length: int, relation: str = "E") -> ConjunctiveQuery:
    """The directed path CQ of the given length: ``E(x0,x1) ∧ ... ∧ E(x_{l-1},x_l)``."""
    if length < 1:
        raise QueryError("path query length must be >= 1")
    atoms = tuple(
        Atom(relation, (Variable(f"x{i}"), Variable(f"x{i + 1}"))) for i in range(length)
    )
    return ConjunctiveQuery(atoms)


def two_incident_same_direction(relation: str = "E") -> ConjunctiveQuery:
    """``E(x, y) ∧ E(y, z)`` — a connected CQ (no disequalities), never intricate."""
    return ConjunctiveQuery((atom(relation, "x", "y"), atom(relation, "y", "z")))
