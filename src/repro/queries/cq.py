"""Conjunctive queries with disequalities (CQ and CQ≠, Section 2).

A :class:`ConjunctiveQuery` is a Boolean, constant-free, existentially
quantified conjunction of relational atoms, optionally with disequality atoms
between variables occurring in relational atoms.  The plain-CQ case is the
one with no disequalities.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.data.signature import Signature
from repro.errors import QueryError
from repro.queries.atoms import Atom, Disequality, Variable
from repro.structure.graph import Graph


@dataclass(frozen=True)
class ConjunctiveQuery:
    """A Boolean CQ≠: relational atoms plus disequality atoms."""

    atoms: tuple[Atom, ...]
    disequalities: tuple[Disequality, ...] = ()

    def __post_init__(self) -> None:
        if not isinstance(self.atoms, tuple):
            object.__setattr__(self, "atoms", tuple(self.atoms))
        if not isinstance(self.disequalities, tuple):
            object.__setattr__(self, "disequalities", tuple(self.disequalities))
        if not self.atoms:
            raise QueryError("a conjunctive query needs at least one relational atom")
        atom_variables = set()
        for a in self.atoms:
            atom_variables.update(a.variables())
        for d in self.disequalities:
            for v in d.variables():
                if v not in atom_variables:
                    raise QueryError(
                        f"disequality variable {v} does not occur in any relational atom"
                    )

    # -- measures ---------------------------------------------------------------

    @property
    def size(self) -> int:
        """|q|: the total number of atoms (relational + disequality)."""
        return len(self.atoms) + len(self.disequalities)

    def variables(self) -> tuple[Variable, ...]:
        """Distinct variables, in order of first occurrence."""
        seen: dict[Variable, None] = {}
        for a in self.atoms:
            for v in a.variables():
                seen.setdefault(v, None)
        return tuple(seen)

    def relations(self) -> tuple[str, ...]:
        return tuple(sorted({a.relation for a in self.atoms}))

    def has_disequalities(self) -> bool:
        return bool(self.disequalities)

    def signature(self) -> Signature:
        """The minimal signature containing the query's relations."""
        arities: dict[str, int] = {}
        for a in self.atoms:
            previous = arities.setdefault(a.relation, a.arity)
            if previous != a.arity:
                raise QueryError(f"relation {a.relation!r} used with two arities")
        return Signature(sorted(arities.items()))

    # -- structure ----------------------------------------------------------------

    def atom_graph(self) -> Graph:
        """The graph on relational atoms connecting atoms that share a variable
        (Definition 8.3; disequality atoms are ignored)."""
        graph = Graph()
        for index, _ in enumerate(self.atoms):
            graph.add_vertex(index)
        for i, a in enumerate(self.atoms):
            for j in range(i + 1, len(self.atoms)):
                if set(a.variables()) & set(self.atoms[j].variables()):
                    graph.add_edge(i, j)
        return graph

    def is_connected(self) -> bool:
        """Connected in the sense of Definition 8.3."""
        return self.atom_graph().is_connected()

    def connected_components(self) -> list["ConjunctiveQuery"]:
        """Split into connected sub-queries (disequalities go with the component
        containing both their variables; cross-component disequalities are
        rejected as they make the query non-decomposable)."""
        components = self.atom_graph().connected_components()
        result = []
        for component in components:
            atoms = tuple(self.atoms[i] for i in sorted(component))
            component_vars = set()
            for a in atoms:
                component_vars.update(a.variables())
            disequalities = tuple(
                d for d in self.disequalities if set(d.variables()) <= component_vars
            )
            result.append(ConjunctiveQuery(atoms, disequalities))
        covered = sum(len(q.disequalities) for q in result)
        if covered != len(self.disequalities):
            raise QueryError("cross-component disequality atoms cannot be decomposed")
        return result

    def variable_occurrences(self, variable: Variable) -> tuple[Atom, ...]:
        return tuple(a for a in self.atoms if variable in a.variables())

    def is_self_join_free(self) -> bool:
        """No relation name appears in two different atoms."""
        names = [a.relation for a in self.atoms]
        return len(names) == len(set(names))

    def rename_variables(self, mapping: dict[Variable, Variable]) -> "ConjunctiveQuery":
        atoms = tuple(
            Atom(a.relation, tuple(mapping.get(v, v) for v in a.arguments)) for a in self.atoms
        )
        disequalities = tuple(
            Disequality(mapping.get(d.left, d.left), mapping.get(d.right, d.right))
            for d in self.disequalities
        )
        return ConjunctiveQuery(atoms, disequalities)

    def __str__(self) -> str:
        parts = [str(a) for a in self.atoms] + [str(d) for d in self.disequalities]
        return ", ".join(parts)


def cq(atoms: Sequence[Atom], disequalities: Iterable[Disequality] = ()) -> ConjunctiveQuery:
    """Convenience constructor for a conjunctive query."""
    return ConjunctiveQuery(tuple(atoms), tuple(disequalities))
