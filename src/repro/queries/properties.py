"""Structural query properties: hierarchical, ranked, inversion-free, safe.

These notions come from the safe-query literature ([18, 36]) and are used in
Section 9 of the paper: *inversion-free* UCQs are exactly the UCQs with
constant-width OBDDs on all instances (Theorem 9.6), and Theorem 9.7 explains
this via unfoldings to bounded-tree-depth instances.

We implement:

* ``is_hierarchical``: the classical hierarchical property per disjunct;
* ``is_ranked_query`` / ``is_ranked_instance``: the ranking property of
  Section 9 (no cyclic variable/domain order induced by atom positions);
* ``attribute_orders`` / ``is_inversion_free``: a per-relation total order on
  positions compatible with the hierarchy across all atoms and disjuncts —
  the defining data of an inversion-free expression (Definition C.1);
* ``is_safe_self_join_free_cq``: the classical safety criterion for
  self-join-free CQs (safe iff hierarchical), used by the lifted-inference
  evaluator.
"""

from __future__ import annotations

from typing import Iterable

from repro.data.instance import Instance
from repro.errors import QueryError
from repro.queries.atoms import Variable
from repro.queries.cq import ConjunctiveQuery
from repro.queries.ucq import UnionOfConjunctiveQueries, as_ucq


# ---------------------------------------------------------------------------
# Hierarchical queries
# ---------------------------------------------------------------------------


def is_hierarchical(query: ConjunctiveQuery | UnionOfConjunctiveQueries) -> bool:
    """True iff every disjunct is hierarchical.

    A CQ is hierarchical when, for every two variables x and y, the sets of
    atoms containing x and containing y are nested or disjoint.
    """
    for disjunct in as_ucq(query).disjuncts:
        if not _cq_is_hierarchical(disjunct):
            return False
    return True


def _cq_is_hierarchical(disjunct: ConjunctiveQuery) -> bool:
    occurrences = {
        variable: frozenset(
            index for index, a in enumerate(disjunct.atoms) if variable in a.variables()
        )
        for variable in disjunct.variables()
    }
    variables = list(occurrences)
    for i, x in enumerate(variables):
        for y in variables[i + 1 :]:
            sx, sy = occurrences[x], occurrences[y]
            if not (sx <= sy or sy <= sx or not (sx & sy)):
                return False
    return True


# ---------------------------------------------------------------------------
# Ranked queries and instances (Section 9)
# ---------------------------------------------------------------------------


def is_ranked_query(query: ConjunctiveQuery | UnionOfConjunctiveQueries) -> bool:
    """A UCQ is ranked when the 'occurs before' relation on variables is acyclic.

    Setting x < y when x occurs before y in some atom, the query is ranked if
    < has no cycle; in particular no variable occurs twice in an atom.
    """
    edges: set[tuple[Variable, Variable]] = set()
    for disjunct in as_ucq(query).disjuncts:
        for a in disjunct.atoms:
            if a.has_repeated_variable():
                return False
            for i, x in enumerate(a.arguments):
                for y in a.arguments[i + 1 :]:
                    edges.add((x, y))
    return not _has_cycle(edges)


def is_ranked_instance(instance: Instance) -> bool:
    """An instance is ranked when some total domain order makes every fact ascending."""
    edges: set[tuple[object, object]] = set()
    for f in instance:
        if len(set(f.arguments)) != len(f.arguments):
            return False
        for i, a in enumerate(f.arguments):
            for b in f.arguments[i + 1 :]:
                edges.add((a, b))
    return not _has_cycle(edges)


def _has_cycle(edges: Iterable[tuple[object, object]]) -> bool:
    adjacency: dict[object, set[object]] = {}
    for source, target in edges:
        adjacency.setdefault(source, set()).add(target)
        adjacency.setdefault(target, set())
    state: dict[object, int] = {}  # 0 = unseen, 1 = in progress, 2 = done
    # Iterative gray/black DFS: order chains in large ranked instances are as
    # long as the domain, which would overflow the recursive version.
    for root in adjacency:
        if state.get(root, 0) != 0:
            continue
        state[root] = 1
        stack = [(root, iter(adjacency[root]))]
        while stack:
            node, successors = stack[-1]
            advanced = False
            for successor in successors:
                status = state.get(successor, 0)
                if status == 1:
                    return True
                if status == 0:
                    state[successor] = 1
                    stack.append((successor, iter(adjacency[successor])))
                    advanced = True
                    break
            if not advanced:
                state[node] = 2
                stack.pop()
    return False


# ---------------------------------------------------------------------------
# Inversion-freeness (Definition C.1)
# ---------------------------------------------------------------------------


def attribute_orders(query: ConjunctiveQuery | UnionOfConjunctiveQueries) -> dict[str, tuple[int, ...]]:
    """Per-relation total orders on positions witnessing inversion-freeness.

    For each relation R the returned tuple lists the positions of R
    (0-based) from outermost to innermost quantification.  Raises
    :class:`QueryError` when the query is not inversion-free (not
    hierarchical, or no consistent order exists).

    The construction follows the hierarchical structure: within a disjunct,
    position i dominates position j in an atom when the variable at i occurs
    in a superset of the atoms containing the variable at j; domination must
    be total within every atom and consistent across atoms and disjuncts.
    """
    query = as_ucq(query)
    if not is_hierarchical(query):
        raise QueryError("query is not hierarchical, hence not inversion-free")
    if not is_ranked_query(query):
        raise QueryError("query is not ranked; apply the ranking transformation first")

    # Collect precedence constraints between positions of each relation.
    precedence: dict[str, set[tuple[int, int]]] = {}
    arity: dict[str, int] = {}
    for disjunct in query.disjuncts:
        occurrences = {
            variable: frozenset(
                index for index, a in enumerate(disjunct.atoms) if variable in a.variables()
            )
            for variable in disjunct.variables()
        }
        for a in disjunct.atoms:
            arity[a.relation] = a.arity
            constraints = precedence.setdefault(a.relation, set())
            for i, x in enumerate(a.arguments):
                for j, y in enumerate(a.arguments):
                    if i == j:
                        continue
                    sx, sy = occurrences[x], occurrences[y]
                    if sx > sy:  # x occurs in strictly more atoms: x is quantified outside y
                        constraints.add((i, j))
                    elif sx == sy and i < j:
                        # Equal occurrence sets: break the tie by atom position
                        # (legal since either nesting of the quantifiers works).
                        constraints.add((i, j))

    orders: dict[str, tuple[int, ...]] = {}
    for relation, constraints in precedence.items():
        order = _topological_order(range(arity[relation]), constraints)
        if order is None:
            raise QueryError(
                f"no consistent attribute order for relation {relation!r}: the query has an inversion"
            )
        orders[relation] = tuple(order)
    return orders


def _topological_order(nodes: Iterable[int], edges: set[tuple[int, int]]) -> list[int] | None:
    nodes = list(nodes)
    adjacency = {node: set() for node in nodes}
    indegree = {node: 0 for node in nodes}
    for source, target in edges:
        if target not in adjacency[source]:
            adjacency[source].add(target)
            indegree[target] += 1
    ready = sorted(node for node in nodes if indegree[node] == 0)
    order: list[int] = []
    while ready:
        node = ready.pop(0)
        order.append(node)
        for successor in sorted(adjacency[node]):
            indegree[successor] -= 1
            if indegree[successor] == 0:
                ready.append(successor)
        ready.sort()
    if len(order) != len(nodes):
        return None
    return order


def is_inversion_free(query: ConjunctiveQuery | UnionOfConjunctiveQueries) -> bool:
    """True iff the (ranked) query admits an inversion-free expression."""
    try:
        attribute_orders(query)
    except QueryError:
        return False
    return True


# ---------------------------------------------------------------------------
# Safety of self-join-free CQs (used by the lifted-inference evaluator)
# ---------------------------------------------------------------------------


def is_safe_self_join_free_cq(query: ConjunctiveQuery) -> bool:
    """Dalvi-Suciu: a self-join-free CQ is safe iff it is hierarchical."""
    if not query.is_self_join_free():
        raise QueryError("safety criterion only applies to self-join-free CQs")
    return _cq_is_hierarchical(query)
