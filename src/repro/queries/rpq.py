"""Conjunctive two-way regular path queries with disequalities (C2RPQ≠).

Section 4 of the paper notes that the probability-evaluation dichotomy
(Theorem 4.2) can alternatively be shown with a *monotone* query taken from
C2RPQ≠ -- conjunctive two-way regular path queries [7, 8] extended with
disequality atoms -- instead of the non-monotone FO query q_h.  This module
provides the C2RPQ≠ machinery:

* a small regular-expression language over the binary relations of a
  signature, with two-way navigation (``R`` forward, ``R-`` backward),
  concatenation (``.``), alternation (``|``), Kleene star (``*``), plus
  (``+``) and optional (``?``);
* Thompson-style compilation of expressions to NFAs and product-graph
  evaluation of path atoms on relational instances;
* C2RPQ≠ queries as conjunctions of path atoms plus disequalities, with
  Boolean evaluation, homomorphism enumeration, match (witness fact set)
  enumeration, and monotone-DNF lineage extraction compatible with the rest
  of the lineage pipeline;
* the subdivision-invariant "two incident paths" query used as the monotone
  analogue of q_p when instances may be subdivided.

Path-witness enumeration is necessarily bounded (a Kleene star admits
arbitrarily long witnesses); the bound defaults to the number of facts of the
instance, which is enough for *minimal* witnesses since a minimal witness
never repeats a fact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Sequence

from repro.data.instance import Fact, Instance
from repro.errors import QueryError
from repro.queries.atoms import Disequality, Variable, var


# -- regular expressions -------------------------------------------------------------


@dataclass(frozen=True)
class RegexNode:
    """A node of the regular-expression AST.

    ``kind`` is one of ``symbol``, ``epsilon``, ``concat``, ``union``,
    ``star``; ``payload`` is ``(relation, inverse)`` for symbols and the
    child tuple for the composite kinds.
    """

    kind: str
    payload: Any = None

    def __str__(self) -> str:
        if self.kind == "symbol":
            relation, inverse = self.payload
            return f"{relation}-" if inverse else relation
        if self.kind == "epsilon":
            return "ε"
        if self.kind == "concat":
            return ".".join(_wrap(child) for child in self.payload)
        if self.kind == "union":
            return "|".join(_wrap(child) for child in self.payload)
        return f"{_wrap(self.payload)}*"


def _wrap(node: RegexNode) -> str:
    if node.kind in ("symbol", "epsilon", "star"):
        return str(node)
    return f"({node})"


def symbol(relation: str, inverse: bool = False) -> RegexNode:
    """An atomic step along (``inverse=False``) or against a binary relation."""
    return RegexNode("symbol", (relation, bool(inverse)))


def epsilon() -> RegexNode:
    return RegexNode("epsilon")


def concat(*parts: RegexNode) -> RegexNode:
    children = tuple(parts)
    if not children:
        return epsilon()
    if len(children) == 1:
        return children[0]
    return RegexNode("concat", children)


def union(*parts: RegexNode) -> RegexNode:
    children = tuple(parts)
    if not children:
        raise QueryError("union of no expressions")
    if len(children) == 1:
        return children[0]
    return RegexNode("union", children)


def star(part: RegexNode) -> RegexNode:
    return RegexNode("star", part)


def plus(part: RegexNode) -> RegexNode:
    return concat(part, star(part))


def optional(part: RegexNode) -> RegexNode:
    return union(part, epsilon())


# -- regular-expression parser ---------------------------------------------------------

_OPERATORS = set(".|*+?()")


def _tokenize(text: str) -> list[str]:
    tokens: list[str] = []
    index = 0
    while index < len(text):
        char = text[index]
        if char.isspace():
            index += 1
            continue
        if char in _OPERATORS:
            tokens.append(char)
            index += 1
            continue
        if char.isalnum() or char == "_":
            start = index
            while index < len(text) and (text[index].isalnum() or text[index] == "_"):
                index += 1
            name = text[start:index]
            if index < len(text) and text[index] == "-":
                index += 1
                tokens.append(f"{name}-")
            else:
                tokens.append(name)
            continue
        raise QueryError(f"unexpected character {char!r} in regular expression")
    return tokens


def parse_regex(text: str) -> RegexNode:
    """Parse a two-way regular expression, e.g. ``"E.(E|E-)*"``."""
    tokens = _tokenize(text)
    if not tokens:
        raise QueryError("empty regular expression")
    position = 0

    def peek() -> str | None:
        return tokens[position] if position < len(tokens) else None

    def advance() -> str:
        nonlocal position
        token = tokens[position]
        position += 1
        return token

    def parse_union() -> RegexNode:
        parts = [parse_concat()]
        while peek() == "|":
            advance()
            parts.append(parse_concat())
        return union(*parts)

    def parse_concat() -> RegexNode:
        parts = [parse_postfix()]
        while True:
            token = peek()
            if token == ".":
                advance()
                parts.append(parse_postfix())
            elif token is not None and token not in ("|", ")", "."):
                parts.append(parse_postfix())
            else:
                break
        return concat(*parts)

    def parse_postfix() -> RegexNode:
        node = parse_atom()
        while peek() in ("*", "+", "?"):
            token = advance()
            if token == "*":
                node = star(node)
            elif token == "+":
                node = plus(node)
            else:
                node = optional(node)
        return node

    def parse_atom() -> RegexNode:
        token = peek()
        if token is None:
            raise QueryError("unexpected end of regular expression")
        if token == "(":
            advance()
            node = parse_union()
            if peek() != ")":
                raise QueryError("unbalanced parenthesis in regular expression")
            advance()
            return node
        if token in _OPERATORS:
            raise QueryError(f"unexpected operator {token!r} in regular expression")
        advance()
        if token.endswith("-"):
            return symbol(token[:-1], inverse=True)
        return symbol(token)

    node = parse_union()
    if position != len(tokens):
        raise QueryError(f"trailing tokens in regular expression: {tokens[position:]!r}")
    return node


# -- NFA compilation ---------------------------------------------------------------------


@dataclass
class NFA:
    """A nondeterministic finite automaton over two-way relation symbols.

    Transitions are labelled either ``None`` (epsilon) or ``(relation,
    inverse)``.  States are integers; there is one initial and one accepting
    state (Thompson construction).
    """

    initial: int
    accepting: int
    transitions: list[tuple[int, tuple[str, bool] | None, int]] = field(default_factory=list)
    state_count: int = 0

    def labels(self) -> set[tuple[str, bool]]:
        return {label for _, label, _ in self.transitions if label is not None}

    def epsilon_closure(self, states: Iterable[int]) -> frozenset[int]:
        closure = set(states)
        stack = list(closure)
        while stack:
            state = stack.pop()
            for source, label, target in self.transitions:
                if source == state and label is None and target not in closure:
                    closure.add(target)
                    stack.append(target)
        return frozenset(closure)

    def step(self, states: Iterable[int], label: tuple[str, bool]) -> frozenset[int]:
        reached = {
            target
            for source, transition_label, target in self.transitions
            if source in set(states) and transition_label == label
        }
        return self.epsilon_closure(reached)

    def accepts_word(self, word: Sequence[tuple[str, bool]]) -> bool:
        current = self.epsilon_closure({self.initial})
        for letter in word:
            current = self.step(current, letter)
            if not current:
                return False
        return self.accepting in current


def regex_to_nfa(node: RegexNode) -> NFA:
    """Thompson construction: one initial and one accepting state, epsilon moves."""
    counter = 0

    def fresh() -> int:
        nonlocal counter
        state = counter
        counter += 1
        return state

    transitions: list[tuple[int, tuple[str, bool] | None, int]] = []

    def build(current: RegexNode) -> tuple[int, int]:
        start, end = fresh(), fresh()
        if current.kind == "symbol":
            transitions.append((start, current.payload, end))
        elif current.kind == "epsilon":
            transitions.append((start, None, end))
        elif current.kind == "concat":
            previous = start
            for child in current.payload:
                child_start, child_end = build(child)
                transitions.append((previous, None, child_start))
                previous = child_end
            transitions.append((previous, None, end))
        elif current.kind == "union":
            for child in current.payload:
                child_start, child_end = build(child)
                transitions.append((start, None, child_start))
                transitions.append((child_end, None, end))
        elif current.kind == "star":
            child_start, child_end = build(current.payload)
            transitions.append((start, None, end))
            transitions.append((start, None, child_start))
            transitions.append((child_end, None, child_start))
            transitions.append((child_end, None, end))
        else:  # pragma: no cover - defensive
            raise QueryError(f"unknown regex node kind {current.kind!r}")
        return start, end

    initial, accepting = build(node)
    return NFA(initial=initial, accepting=accepting, transitions=transitions, state_count=counter)


# -- path evaluation on instances -----------------------------------------------------------


def _instance_steps(instance: Instance, labels: set[tuple[str, bool]]) -> dict[tuple[Any, tuple[str, bool]], list[tuple[Any, Fact]]]:
    """For each (element, label), the reachable elements and the fact used."""
    steps: dict[tuple[Any, tuple[str, bool]], list[tuple[Any, Fact]]] = {}
    for f in instance.facts:
        if f.arity != 2:
            continue
        source, target = f.arguments
        forward = (f.relation, False)
        backward = (f.relation, True)
        if forward in labels:
            steps.setdefault((source, forward), []).append((target, f))
        if backward in labels:
            steps.setdefault((target, backward), []).append((source, f))
    return steps


def rpq_pairs(instance: Instance, regex: RegexNode | str) -> set[tuple[Any, Any]]:
    """All pairs (a, b) such that some path from a to b matches the expression.

    Product-graph reachability between the instance and the expression's NFA;
    runs in time O(|I| * |NFA|) per source element.
    """
    node = parse_regex(regex) if isinstance(regex, str) else regex
    nfa = regex_to_nfa(node)
    labels = nfa.labels()
    steps = _instance_steps(instance, labels)
    pairs: set[tuple[Any, Any]] = set()
    for source in instance.domain:
        frontier = {(source, state) for state in nfa.epsilon_closure({nfa.initial})}
        seen = set(frontier)
        stack = list(frontier)
        while stack:
            element, state = stack.pop()
            if state == nfa.accepting:
                pairs.add((source, element))
            for transition_source, label, target_state in nfa.transitions:
                if transition_source != state or label is None:
                    continue
                for next_element, _ in steps.get((element, label), ()):
                    for closed in nfa.epsilon_closure({target_state}):
                        candidate = (next_element, closed)
                        if candidate not in seen:
                            seen.add(candidate)
                            stack.append(candidate)
        # epsilon-only acceptance (empty path): handled because the initial
        # closure may already contain the accepting state.
    return pairs


def rpq_witness_paths(
    instance: Instance,
    regex: RegexNode | str,
    source: Any,
    target: Any,
    max_facts: int | None = None,
) -> Iterator[frozenset[Fact]]:
    """Fact sets of fact-simple witness paths from ``source`` to ``target``.

    A witness path never uses the same fact twice (longer witnesses are never
    minimal), so the enumeration is finite even under Kleene stars.
    ``max_facts`` optionally caps the number of facts on a witness.
    """
    node = parse_regex(regex) if isinstance(regex, str) else regex
    nfa = regex_to_nfa(node)
    labels = nfa.labels()
    steps = _instance_steps(instance, labels)
    bound = len(instance) if max_facts is None else max_facts
    emitted: set[frozenset[Fact]] = set()

    def search(element: Any, states: frozenset[int], used: frozenset[Fact]) -> Iterator[frozenset[Fact]]:
        if element == target and nfa.accepting in states:
            if used not in emitted:
                emitted.add(used)
                yield used
        if len(used) >= bound:
            return
        for label in labels:
            next_states = nfa.step(states, label)
            if not next_states:
                continue
            for next_element, used_fact in steps.get((element, label), ()):
                if used_fact in used:
                    continue
                yield from search(next_element, next_states, used | {used_fact})

    yield from search(source, nfa.epsilon_closure({nfa.initial}), frozenset())


# -- C2RPQ≠ queries --------------------------------------------------------------------------


@dataclass(frozen=True)
class PathAtom:
    """A path atom ``regex(x, y)``: some path from x to y matches the expression."""

    regex: RegexNode
    source: Variable
    target: Variable

    def __str__(self) -> str:
        return f"({self.regex})({self.source}, {self.target})"


def path_atom(regex: RegexNode | str, source: str | Variable, target: str | Variable) -> PathAtom:
    node = parse_regex(regex) if isinstance(regex, str) else regex
    source_variable = source if isinstance(source, Variable) else var(source)
    target_variable = target if isinstance(target, Variable) else var(target)
    return PathAtom(node, source_variable, target_variable)


@dataclass(frozen=True)
class ConjunctiveRPQ:
    """A Boolean C2RPQ≠: a conjunction of path atoms plus disequalities."""

    atoms: tuple[PathAtom, ...]
    disequalities: tuple[Disequality, ...] = ()

    def __post_init__(self) -> None:
        if not self.atoms:
            raise QueryError("a C2RPQ needs at least one path atom")
        atom_variables = set(self.variables())
        for disequality in self.disequalities:
            for variable in disequality.variables():
                if variable not in atom_variables:
                    raise QueryError(
                        f"disequality variable {variable} does not occur in any path atom"
                    )

    def variables(self) -> tuple[Variable, ...]:
        seen: dict[Variable, None] = {}
        for current in self.atoms:
            seen.setdefault(current.source, None)
            seen.setdefault(current.target, None)
        return tuple(seen)

    @property
    def size(self) -> int:
        return len(self.atoms) + len(self.disequalities)

    def __str__(self) -> str:
        parts = [str(current) for current in self.atoms]
        parts.extend(str(d) for d in self.disequalities)
        return ", ".join(parts)


def c2rpq(
    atoms: Sequence[PathAtom],
    disequalities: Iterable[Disequality] = (),
) -> ConjunctiveRPQ:
    """Shorthand constructor for :class:`ConjunctiveRPQ`."""
    return ConjunctiveRPQ(tuple(atoms), tuple(disequalities))


def c2rpq_homomorphisms(query: ConjunctiveRPQ, instance: Instance) -> Iterator[dict[Variable, Any]]:
    """All variable assignments satisfying every path atom and disequality."""
    pair_sets = [rpq_pairs(instance, current.regex) for current in query.atoms]
    variables = list(query.variables())

    def violates(assignment: dict[Variable, Any]) -> bool:
        for disequality in query.disequalities:
            left, right = disequality.variables()
            if left in assignment and right in assignment and assignment[left] == assignment[right]:
                return True
        return False

    def extend(index: int, assignment: dict[Variable, Any]) -> Iterator[dict[Variable, Any]]:
        if violates(assignment):
            return
        if index == len(query.atoms):
            if len(assignment) < len(variables):
                # Shouldn't happen: every variable occurs in some atom.
                return
            yield dict(assignment)
            return
        current = query.atoms[index]
        for source_value, target_value in pair_sets[index]:
            if current.source == current.target and source_value != target_value:
                continue
            if current.source in assignment and assignment[current.source] != source_value:
                continue
            if current.target in assignment and assignment[current.target] != target_value:
                continue
            extended = dict(assignment)
            extended[current.source] = source_value
            extended[current.target] = target_value
            yield from extend(index + 1, extended)

    yield from extend(0, {})


def c2rpq_satisfied(instance: Instance, query: ConjunctiveRPQ) -> bool:
    """Boolean semantics: does the instance satisfy the C2RPQ≠?"""
    return next(c2rpq_homomorphisms(query, instance), None) is not None


def c2rpq_matches(
    query: ConjunctiveRPQ,
    instance: Instance,
    max_facts_per_atom: int | None = None,
) -> list[frozenset[Fact]]:
    """Witness fact sets of the query: one choice of witness path per atom.

    The result may contain non-minimal sets; use :func:`c2rpq_minimal_matches`
    for the minimal ones (the clauses of the monotone-DNF lineage).
    """
    matches: set[frozenset[Fact]] = set()
    for assignment in c2rpq_homomorphisms(query, instance):
        per_atom: list[list[frozenset[Fact]]] = []
        for current in query.atoms:
            witnesses = list(
                rpq_witness_paths(
                    instance,
                    current.regex,
                    assignment[current.source],
                    assignment[current.target],
                    max_facts=max_facts_per_atom,
                )
            )
            per_atom.append(witnesses)
        combinations: list[frozenset[Fact]] = [frozenset()]
        for witnesses in per_atom:
            combinations = [existing | witness for existing in combinations for witness in witnesses]
        matches.update(combinations)
    return sorted(matches, key=lambda clause: (len(clause), sorted(map(str, clause))))


def c2rpq_minimal_matches(
    query: ConjunctiveRPQ,
    instance: Instance,
    max_facts_per_atom: int | None = None,
) -> list[frozenset[Fact]]:
    """The inclusion-minimal witness fact sets of the query on the instance."""
    matches = c2rpq_matches(query, instance, max_facts_per_atom=max_facts_per_atom)
    minimal: list[frozenset[Fact]] = []
    for candidate in matches:
        if not any(other < candidate for other in matches):
            minimal.append(candidate)
    return minimal


def c2rpq_lineage(
    query: ConjunctiveRPQ,
    instance: Instance,
    max_facts_per_atom: int | None = None,
):
    """The monotone-DNF lineage of a C2RPQ≠ on an instance.

    Correctness relies on monotonicity: a world satisfies the query iff it
    contains all facts of some witness set, and every satisfying world
    contains a fact-simple witness per atom, which the bounded enumeration
    finds.
    """
    from repro.provenance.lineage import MonotoneDNFLineage

    clauses = c2rpq_minimal_matches(query, instance, max_facts_per_atom=max_facts_per_atom)
    return MonotoneDNFLineage(instance, tuple(clauses))


# -- named queries -----------------------------------------------------------------------------


def two_incident_paths_query(relation: str = "E") -> ConjunctiveRPQ:
    """The subdivision-invariant monotone analogue of q_p.

    It asks for two non-trivial paths (arbitrary orientation at each step)
    that share their middle endpoint but have distinct other endpoints: on a
    subdivided graph this detects two incident original edges, i.e., a
    violation of the world being a matching of the original graph, which is
    the role q_p plays in Theorem 8.1 and the role the C2RPQ≠ query plays in
    the monotone variant of Theorem 4.2.
    """
    step = union(symbol(relation), symbol(relation, inverse=True))
    walk = plus(step)
    return c2rpq(
        [path_atom(walk, "x", "y"), path_atom(walk, "y", "z")],
        [Disequality(var("x"), var("z")), Disequality(var("x"), var("y")), Disequality(var("y"), var("z"))],
    )


def reachability_query(relation: str = "E") -> ConjunctiveRPQ:
    """Plain one-way reachability between two distinct elements."""
    return c2rpq(
        [path_atom(plus(symbol(relation)), "x", "y")],
        [Disequality(var("x"), var("y"))],
    )
