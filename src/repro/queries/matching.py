"""Query matching: homomorphisms from queries to instances, matches, and
minimal matches (Section 2 of the paper).

A homomorphism from a CQ≠ to an instance maps variables to domain elements so
that every relational atom maps to a fact and every disequality is satisfied.
A *match* is the set of facts in the image of a homomorphism; a *minimal
match* is a match minimal under inclusion.  The lineage of a UCQ≠ is exactly
the disjunction, over matches, of the conjunction of the facts of the match
(monotone queries), which is what :mod:`repro.provenance.lineage` builds.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.data.instance import Fact, Instance
from repro.queries.atoms import Variable
from repro.queries.cq import ConjunctiveQuery
from repro.queries.ucq import UnionOfConjunctiveQueries, as_ucq


# Sentinel for "variable not bound yet": domain elements may legitimately be
# None ("any hashable, orderable values"), so None cannot mark unboundness.
_UNBOUND = object()


def _atom_order(query: ConjunctiveQuery) -> list:
    """Atoms ordered to maximize joins with already-bound variables."""
    ordered: list = []
    bound: set[Variable] = set()
    remaining = list(query.atoms)
    while remaining:
        remaining.sort(key=lambda a: (-len(set(a.variables()) & bound), -a.arity))
        chosen = remaining.pop(0)
        ordered.append(chosen)
        bound.update(chosen.variables())
    return ordered


def _enumerate_homomorphisms(query: ConjunctiveQuery, fetch) -> Iterator[dict[Variable, Any]]:
    """Shared backtracking core: ``fetch(atom, bindings)`` supplies candidates.

    ``bindings`` maps argument positions of the atom to the values their
    variables are already bound to; the fetcher may use them (index lookup) or
    ignore them (full scan) — the consistency and disequality checks below
    hold either way.
    """
    ordered = _atom_order(query)
    disequalities = [d.normalized() for d in query.disequalities]

    def violates_disequalities(assignment: dict[Variable, Any]) -> bool:
        for d in disequalities:
            if d.left in assignment and d.right in assignment:
                if assignment[d.left] == assignment[d.right]:
                    return True
        return False

    # repro-analysis: allow(REC001): backtracking depth <= |query atoms|, and queries are tiny relative to instances
    def extend(index: int, assignment: dict[Variable, Any]) -> Iterator[dict[Variable, Any]]:
        if index == len(ordered):
            yield dict(assignment)
            return
        current = ordered[index]
        bindings: dict[int, Any] = {}
        for position, variable in enumerate(current.arguments):
            if variable in assignment:
                bindings[position] = assignment[variable]
        for candidate in fetch(current, bindings):
            additions: dict[Variable, Any] = {}
            consistent = True
            for variable, value in zip(current.arguments, candidate.arguments):
                expected = assignment.get(variable, additions.get(variable, _UNBOUND))
                if expected is _UNBOUND:
                    additions[variable] = value
                elif expected != value:
                    consistent = False
                    break
            if not consistent:
                continue
            assignment.update(additions)
            if not violates_disequalities(assignment):
                yield from extend(index + 1, assignment)
            for variable in additions:
                del assignment[variable]

    yield from extend(0, {})


def cq_homomorphisms(query: ConjunctiveQuery, instance: Instance) -> Iterator[dict[Variable, Any]]:
    """Enumerate all homomorphisms from ``query`` to ``instance``.

    Backtracking over the query atoms, in an order chosen to maximize joins
    with already-bound variables.  Candidate facts for each atom are fetched
    through the instance's per-relation, per-position hash indexes
    (:meth:`repro.data.instance.Instance.facts_matching`), so a join on a
    bound variable costs one bucket lookup instead of a scan over every fact
    of the relation.
    """
    return _enumerate_homomorphisms(
        query, lambda atom, bindings: instance.facts_matching(atom.relation, bindings)
    )


def cq_homomorphisms_naive(
    query: ConjunctiveQuery, instance: Instance
) -> Iterator[dict[Variable, Any]]:
    """Reference enumeration scanning every fact of each atom's relation.

    Semantically identical to :func:`cq_homomorphisms` but with the seed
    linear-scan candidate fetcher instead of the hash indexes; kept as the
    cross-check oracle for the indexing layer and as the baseline of
    ``benchmarks/bench_engine.py``.
    """
    return _enumerate_homomorphisms(
        query, lambda atom, bindings: instance.facts_of(atom.relation)
    )


def cq_matches(query: ConjunctiveQuery, instance: Instance) -> Iterator[frozenset[Fact]]:
    """Enumerate the matches of a CQ≠ (images of homomorphisms), deduplicated."""
    seen: set[frozenset[Fact]] = set()
    for assignment in cq_homomorphisms(query, instance):
        match = frozenset(
            Fact(a.relation, tuple(assignment[v] for v in a.arguments)) for a in query.atoms
        )
        if match not in seen:
            seen.add(match)
            yield match


def ucq_matches(query: UnionOfConjunctiveQueries | ConjunctiveQuery, instance: Instance) -> list[frozenset[Fact]]:
    """All matches of a UCQ≠ on an instance (deduplicated across disjuncts)."""
    query = as_ucq(query)
    result: set[frozenset[Fact]] = set()
    for disjunct in query.disjuncts:
        result.update(cq_matches(disjunct, instance))
    return sorted(result, key=lambda match: (len(match), sorted(map(str, match))))


def minimal_matches(query: UnionOfConjunctiveQueries | ConjunctiveQuery, instance: Instance) -> list[frozenset[Fact]]:
    """The inclusion-minimal matches of a UCQ≠ on an instance (Section 2)."""
    matches = ucq_matches(query, instance)
    return [match for match in matches if not any(other < match for other in matches)]


def satisfies(instance: Instance, query: UnionOfConjunctiveQueries | ConjunctiveQuery) -> bool:
    """Model checking: does the instance satisfy the (U)CQ≠ query?"""
    query = as_ucq(query)
    for disjunct in query.disjuncts:
        for _ in cq_homomorphisms(disjunct, instance):
            return True
    return False


def is_monotone_witnessed(query: UnionOfConjunctiveQueries | ConjunctiveQuery, instance: Instance, subset: Instance) -> bool:
    """Check (by brute force) that satisfaction on ``subset`` implies it on ``instance``."""
    return not satisfies(subset, query) or satisfies(instance, query)
