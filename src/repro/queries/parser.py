"""A small textual syntax for CQ≠ and UCQ≠ queries.

Grammar (whitespace-insensitive)::

    ucq      := cq ("|" cq)*
    cq       := literal ("," literal)*
    literal  := atom | disequality
    atom     := NAME "(" NAME ("," NAME)* ")"
    disequality := NAME "!=" NAME

Examples::

    parse_cq("R(x), S(x, y), T(y)")
    parse_ucq("R(x, y), x != y | S(x, x)")
"""

from __future__ import annotations

import re

from repro.errors import QueryError
from repro.queries.atoms import Atom, Disequality, Variable
from repro.queries.cq import ConjunctiveQuery
from repro.queries.ucq import UnionOfConjunctiveQueries

_ATOM_RE = re.compile(r"^\s*([A-Za-z_][A-Za-z_0-9]*)\s*\(\s*([^()]*)\s*\)\s*$")
_NEQ_RE = re.compile(r"^\s*([A-Za-z_][A-Za-z_0-9]*)\s*!=\s*([A-Za-z_][A-Za-z_0-9]*)\s*$")


def _split_top_level(text: str, separator: str) -> list[str]:
    """Split on ``separator`` outside parentheses."""
    parts: list[str] = []
    depth = 0
    current: list[str] = []
    for char in text:
        if char == "(":
            depth += 1
        elif char == ")":
            depth -= 1
            if depth < 0:
                raise QueryError(f"unbalanced parentheses in query: {text!r}")
        if char == separator and depth == 0:
            parts.append("".join(current))
            current = []
        else:
            current.append(char)
    if depth != 0:
        raise QueryError(f"unbalanced parentheses in query: {text!r}")
    parts.append("".join(current))
    return parts


def parse_cq(text: str) -> ConjunctiveQuery:
    """Parse a single CQ≠ from text."""
    atoms: list[Atom] = []
    disequalities: list[Disequality] = []
    for chunk in _split_top_level(text, ","):
        chunk = chunk.strip()
        if not chunk:
            continue
        match = _NEQ_RE.match(chunk)
        if match:
            disequalities.append(Disequality(Variable(match.group(1)), Variable(match.group(2))))
            continue
        match = _ATOM_RE.match(chunk)
        if match:
            relation = match.group(1)
            arguments_text = match.group(2).strip()
            if not arguments_text:
                raise QueryError(f"atom {chunk!r} has no arguments")
            arguments = tuple(
                Variable(argument.strip()) for argument in arguments_text.split(",")
            )
            atoms.append(Atom(relation, arguments))
            continue
        raise QueryError(f"cannot parse query literal {chunk!r}")
    return ConjunctiveQuery(tuple(atoms), tuple(disequalities))


def parse_ucq(text: str) -> UnionOfConjunctiveQueries:
    """Parse a UCQ≠ from text; disjuncts are separated by '|'."""
    disjuncts = [parse_cq(part) for part in text.split("|") if part.strip()]
    if not disjuncts:
        raise QueryError("empty UCQ")
    return UnionOfConjunctiveQueries(tuple(disjuncts))
