"""Intricate queries and line instances (Definitions 8.4, 8.5 and Lemma 8.6).

A *line instance* over an arity-2 signature is a path a_1, ..., a_m where each
consecutive pair carries exactly one binary fact, in either direction and with
any binary relation of the signature.  A UCQ≠ q is *n-intricate* when on every
line instance with 2n+2 facts, some minimal match of q contains both facts
incident to the middle element a_{n+2}; q is *intricate* when it is
|q|-intricate.

Theorem 8.7 (the meta-dichotomy) states that a connected UCQ≠ has
super-polynomial OBDDs on every (dense enough) unbounded-treewidth family iff
it is intricate; non-intricate queries have constant-width OBDDs on some
unbounded-treewidth family.  Proposition 8.8 shows connected CQ≠ queries are
never intricate.

The decision procedure below enumerates all line instances of the required
length (Lemma 8.6 places the problem in PSPACE; our direct enumeration is
exponential in ``n`` and in the number of binary relations, which is fine for
the small queries of the paper).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator

from repro.data.instance import Fact, Instance
from repro.data.signature import Signature
from repro.errors import QueryError
from repro.queries.cq import ConjunctiveQuery
from repro.queries.matching import minimal_matches
from repro.queries.ucq import UnionOfConjunctiveQueries, as_ucq


def line_instance(choices: tuple[tuple[str, bool], ...], signature: Signature | None = None) -> Instance:
    """Build a line instance from per-edge choices ``(relation, forward)``.

    The domain is a_1, ..., a_{m+1} for m = len(choices); the i-th fact is
    ``R(a_i, a_{i+1})`` when forward, ``R(a_{i+1}, a_i)`` otherwise.
    """
    facts = []
    for index, (relation, forward) in enumerate(choices):
        left, right = f"a{index + 1}", f"a{index + 2}"
        if forward:
            facts.append(Fact(relation, (left, right)))
        else:
            facts.append(Fact(relation, (right, left)))
    return Instance(facts, signature)


def all_line_instances(length: int, signature: Signature) -> Iterator[Instance]:
    """All line instances with ``length`` facts over the signature's binary relations."""
    binary = [relation.name for relation in signature.binary_relations()]
    if not binary:
        raise QueryError("the signature has no binary relation; no line instances exist")
    options = [(name, direction) for name in binary for direction in (True, False)]
    for choices in itertools.product(options, repeat=length):
        yield line_instance(choices, signature)


def middle_facts(line: Instance) -> tuple[Fact, Fact]:
    """The two facts incident to the middle element of an even-length line instance."""
    length = len(line)
    if length % 2 != 0 or length < 2:
        raise QueryError("middle facts are defined for even-length line instances only")
    middle_index = length // 2 + 1  # element a_{n+2} when length = 2n + 2
    middle_element = f"a{middle_index}"
    incident = [f for f in line if middle_element in f.arguments]
    if len(incident) != 2:
        raise QueryError("line instance does not have exactly two middle facts")
    return incident[0], incident[1]


@dataclass(frozen=True)
class IntricacyWitness:
    """A counterexample to n-intricacy: a line instance whose middle facts are
    contained in no minimal match."""

    line: Instance
    middle: tuple[Fact, Fact]


def is_n_intricate(
    query: UnionOfConjunctiveQueries | ConjunctiveQuery,
    n: int,
    signature: Signature | None = None,
    max_line_instances: int | None = None,
) -> bool:
    """Decide n-intricacy (Definition 8.5).

    ``max_line_instances`` bounds the enumeration as in
    :func:`find_intricacy_counterexample`; ``None`` means unbounded.
    """
    return find_intricacy_counterexample(query, n, signature, max_line_instances) is None


def find_intricacy_counterexample(
    query: UnionOfConjunctiveQueries | ConjunctiveQuery,
    n: int,
    signature: Signature | None = None,
    max_line_instances: int | None = None,
) -> IntricacyWitness | None:
    """Return a witness line instance violating n-intricacy, or None.

    The signature defaults to the query's own signature; note that intricacy
    depends on the ambient signature since line instances range over all its
    binary relations.

    The check must enumerate ``(2B)^(2n+2)`` line instances (B binary
    relations), with a ``minimal_matches`` call on each; when
    ``max_line_instances`` is given and the enumeration is larger, a
    :class:`QueryError` is raised up front instead of silently running for
    hours.
    """
    query = as_ucq(query)
    signature = signature or query.signature()
    if not signature.is_arity_two():
        raise QueryError("intricacy is defined over arity-2 signatures")
    length = 2 * n + 2
    binary_count = len(signature.binary_relations())
    instance_count = (2 * binary_count) ** length
    if max_line_instances is not None and instance_count > max_line_instances:
        raise QueryError(
            f"intricacy check at level {n} needs {instance_count} line instances; "
            f"raise max_line_instances to force it"
        )
    for line in all_line_instances(length, signature):
        first, second = middle_facts(line)
        found = False
        for match in minimal_matches(query, line):
            if first in match and second in match:
                found = True
                break
        if not found:
            return IntricacyWitness(line, (first, second))
    return None


def is_intricate(
    query: UnionOfConjunctiveQueries | ConjunctiveQuery,
    signature: Signature | None = None,
    max_line_instances: int = 200_000,
) -> bool:
    """Decide intricacy: |q|-intricacy (Definition 8.5).

    Since n-intricacy implies m-intricacy for every m > n, we test increasing
    levels n = 0, 1, ..., |q| and answer True as soon as one holds (this makes
    the positive case cheap for queries such as q_p, which is 0-intricate).
    The negative case requires the full check at n = |q|, which enumerates
    (2B)^(2|q|+2) line instances for B binary relations;
    ``max_line_instances`` guards against infeasible enumerations and raises
    :class:`QueryError` when exceeded.
    """
    query = as_ucq(query)
    signature = signature or query.signature()
    if query.size < 2:
        # Queries with |q| < 2 can never be intricate (Section 8.2).
        return False
    binary_count = len(signature.binary_relations())
    if binary_count == 0:
        # No line instances exist, and queries without binary matches are
        # never intricate (Section 8.2).
        return False
    for level in range(query.size + 1):
        if is_n_intricate(query, level, signature, max_line_instances):
            return True
    return False


def non_intricate_counterexample_family(
    query: UnionOfConjunctiveQueries | ConjunctiveQuery,
    signature: Signature | None = None,
    sizes: tuple[int, ...] = (2, 3, 4),
    max_line_instances: int = 200_000,
):
    """For a non-intricate query, the unbounded-treewidth family on which it has
    constant-width OBDDs (the grid family built from a counterexample line,
    Theorem 8.7 first item).

    Returns a list of instances (grids of growing size built by replicating
    the counterexample line instance horizontally and stacking disconnected
    copies vertically, which keeps matches local).

    Intricate queries are rejected *before* the level-|q| witness search: the
    positive intricacy check is cheap (q_p is already 0-intricate), whereas
    confirming the absence of a witness at level |q| would enumerate
    ``(2B)^(2|q|+2)`` line instances.  The ``max_line_instances`` budget
    guards every enumeration, raising :class:`QueryError` when exceeded.
    """
    from repro.generators.grids import grid_of_lines

    query = as_ucq(query)
    signature = signature or query.signature()
    # Mirror the level loop of is_intricate: a counterexample-free level means
    # the query is intricate (n-intricacy implies m-intricacy for m > n), and
    # the last iteration leaves the level-|q| witness in hand — without
    # repeating its (dominant) enumeration just to retrieve it.
    witness = None
    for level in range(query.size + 1):
        witness = find_intricacy_counterexample(query, level, signature, max_line_instances)
        if witness is None:
            raise QueryError("query is intricate; no counterexample family exists")
    return [grid_of_lines(witness.line, size, size) for size in sizes]
