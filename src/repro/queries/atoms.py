"""Query atoms and variables (Section 2 of the paper).

Queries are constant-free: atom arguments are always variables.  Disequality
atoms ``x != y`` are kept separate from relational atoms, following the
definition of CQ≠ in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import QueryError


@dataclass(frozen=True, order=True)
class Variable:
    """A query variable, identified by its name."""

    name: str

    def __post_init__(self) -> None:
        if not self.name:
            raise QueryError("variable name must be non-empty")

    def __str__(self) -> str:
        return self.name


def var(name: str) -> Variable:
    """Shorthand constructor for a variable."""
    return Variable(name)


@dataclass(frozen=True, order=True)
class Atom:
    """A relational atom ``R(x_1, ..., x_k)`` over variables."""

    relation: str
    arguments: tuple[Variable, ...]

    def __post_init__(self) -> None:
        if not isinstance(self.arguments, tuple):
            object.__setattr__(self, "arguments", tuple(self.arguments))
        for argument in self.arguments:
            if not isinstance(argument, Variable):
                raise QueryError(f"atom arguments must be Variables, got {argument!r}")

    @property
    def arity(self) -> int:
        return len(self.arguments)

    def variables(self) -> tuple[Variable, ...]:
        """Distinct variables of the atom, in order of first occurrence."""
        seen: dict[Variable, None] = {}
        for argument in self.arguments:
            seen.setdefault(argument, None)
        return tuple(seen)

    def has_repeated_variable(self) -> bool:
        return len(self.variables()) != len(self.arguments)

    def __str__(self) -> str:
        return f"{self.relation}({', '.join(str(a) for a in self.arguments)})"


def atom(relation: str, *variables: str | Variable) -> Atom:
    """Shorthand constructor: ``atom("R", "x", "y")``."""
    return Atom(relation, tuple(v if isinstance(v, Variable) else Variable(v) for v in variables))


@dataclass(frozen=True, order=True)
class Disequality:
    """A disequality atom ``x != y`` between two variables."""

    left: Variable
    right: Variable

    def __post_init__(self) -> None:
        if self.left == self.right:
            raise QueryError(f"disequality {self.left} != {self.right} is unsatisfiable")

    def variables(self) -> tuple[Variable, Variable]:
        return (self.left, self.right)

    def normalized(self) -> "Disequality":
        """A canonical orientation (sorted by variable name)."""
        if self.left <= self.right:
            return self
        return Disequality(self.right, self.left)

    def __str__(self) -> str:
        return f"{self.left} != {self.right}"


def neq(left: str | Variable, right: str | Variable) -> Disequality:
    """Shorthand constructor for a disequality atom."""
    left_var = left if isinstance(left, Variable) else Variable(left)
    right_var = right if isinstance(right, Variable) else Variable(right)
    return Disequality(left_var, right_var)
