"""Grid-shaped instance generators (the unbounded-treewidth families).

Grids are the canonical treewidth-constructible unbounded-treewidth family
(Definition 4.1): the k x k grid has treewidth k and polynomial size.  They
appear as the hard families in Theorems 4.2, 5.2, 8.1, as the "S-grids" that
make the RST query easy (Section 8.2), and as the complete bipartite and
skewed-grid variants of Sections 8.2 and 8.3.
"""

from __future__ import annotations

from typing import Any

from repro.data.instance import Fact, Instance
from repro.data.signature import Signature
from repro.structure.graph import Graph, grid_graph


def grid_instance(rows: int, cols: int, relation: str = "E", symmetric: bool = False) -> Instance:
    """The rows x cols grid as a relational instance with one binary relation.

    With ``symmetric=True`` both orientations of each edge are included (the
    paper's undirected-graph encoding); by default one canonical orientation
    per edge is used, which keeps lineages smaller while leaving the Gaifman
    graph (hence the treewidth) unchanged.
    """
    facts: list[Fact] = []
    for r in range(rows):
        for c in range(cols):
            here = f"v{r}_{c}"
            if r + 1 < rows:
                below = f"v{r + 1}_{c}"
                facts.append(Fact(relation, (here, below)))
                if symmetric:
                    facts.append(Fact(relation, (below, here)))
            if c + 1 < cols:
                right = f"v{r}_{c + 1}"
                facts.append(Fact(relation, (here, right)))
                if symmetric:
                    facts.append(Fact(relation, (right, here)))
    return Instance(facts, Signature([(relation, 2)]))


def s_grid_instance(rows: int, cols: int) -> Instance:
    """The "S-grid" family of Section 8.2: a grid with only S edges.

    On this unbounded-treewidth family, the unsafe query R(x), S(x, y), T(y)
    is trivially false (no R or T facts), so it has constant-width OBDDs —
    the counterexample showing that unsafety alone does not imply intricacy.
    """
    grid = grid_instance(rows, cols, relation="S")
    return Instance(grid.facts, Signature([("R", 1), ("S", 2), ("T", 1)]))


def graph_to_instance(graph: Graph, relation: str = "E", symmetric: bool = False) -> Instance:
    """Encode an undirected graph as a relational instance."""
    facts: list[Fact] = []
    for u, v in graph.edges():
        first, second = sorted((u, v), key=lambda x: (type(x).__name__, repr(x)))
        facts.append(Fact(relation, (_name(first), _name(second))))
        if symmetric:
            facts.append(Fact(relation, (_name(second), _name(first))))
    return Instance(facts, Signature([(relation, 2)]))


def grid_graph_instance(size: int, relation: str = "E") -> Instance:
    """The size x size grid graph as an instance (treewidth = size)."""
    return graph_to_instance(grid_graph(size, size), relation)


def grid_of_lines(line: Instance, rows: int, cols: int) -> Instance:
    """Tile a grid with copies of a line-instance edge pattern (Theorem 8.7).

    The counterexample family for a non-intricate query is built from a line
    instance witnessing non-intricacy: every horizontal and vertical edge of a
    rows x cols grid carries the relation/direction of the corresponding edge
    of the witness line, repeating the witness pattern cyclically.  The family
    has unbounded treewidth (it contains the grid as its Gaifman graph).
    """
    pattern: list[tuple[str, bool]] = []
    for index, f in enumerate(line):
        left, right = f"a{index + 1}", f"a{index + 2}"
        forward = f.arguments == (left, right)
        pattern.append((f.relation, forward))
    if not pattern:
        raise ValueError("witness line instance is empty")

    facts: list[Fact] = []

    def add_edge(source: str, target: str, index: int) -> None:
        relation, forward = pattern[index % len(pattern)]
        facts.append(Fact(relation, (source, target) if forward else (target, source)))

    for r in range(rows):
        for c in range(cols):
            here = f"g{r}_{c}"
            if c + 1 < cols:
                add_edge(here, f"g{r}_{c + 1}", c)
            if r + 1 < rows:
                add_edge(here, f"g{r + 1}_{c}", r)
    return Instance(facts, line.signature)


def complete_bipartite_instance(m: int, n: int, relation: str = "E") -> Instance:
    """The complete bipartite directed graph of Proposition 8.9.

    All edges are oriented from the left part to the right part; on this
    unbounded-treewidth, treewidth-constructible family every
    homomorphism-closed query has constant-width OBDDs.
    """
    facts = [
        Fact(relation, (f"l{i}", f"r{j}")) for i in range(m) for j in range(n)
    ]
    return Instance(facts, Signature([(relation, 2)]))


def clique_instance(n: int, relation: str = "E") -> Instance:
    """The clique family of Section 5.1: unbounded treewidth, bounded clique-width."""
    facts = []
    for i in range(n):
        for j in range(n):
            if i != j:
                facts.append(Fact(relation, (f"c{i}", f"c{j}")))
    return Instance(facts, Signature([(relation, 2)]))


def _name(vertex: Any) -> str:
    if isinstance(vertex, str):
        return vertex
    if isinstance(vertex, tuple):
        return "n" + "_".join(str(part) for part in vertex)
    return f"n{vertex}"
