"""Graph generators for the hardness constructions.

* planar 3-regular (cubic) graphs — the hard inputs for counting matchings
  (Theorem 4.2 reduces from counting matchings of planar 3-regular graphs);
* {1, 3}-regular planar graphs (Section 5.1);
* walls and subdivisions — degree-3 unbounded-treewidth families;
* random partial k-trees — bounded-treewidth instances of a prescribed width.
"""

from __future__ import annotations

import random

from repro.data.instance import Instance
from repro.data.signature import Signature
from repro.generators.grids import graph_to_instance
from repro.structure.graph import Graph, cycle_graph
from repro.structure.minors import subdivide, wall_graph


def prism_graph(n: int) -> Graph:
    """The prism (circular ladder) CL_n: planar and 3-regular, 2n vertices (n >= 3)."""
    if n < 3:
        raise ValueError("prism graphs need n >= 3")
    graph = Graph()
    for i in range(n):
        graph.add_edge(("outer", i), ("outer", (i + 1) % n))
        graph.add_edge(("inner", i), ("inner", (i + 1) % n))
        graph.add_edge(("outer", i), ("inner", i))
    return graph


def cubic_planar_graph(index: int) -> Graph:
    """A small family of planar 3-regular graphs indexed by size.

    ``index = 0`` gives K_4, ``index = 1`` the triangular prism, and larger
    indices give growing prisms — all planar and cubic, suitable inputs to the
    matching-counting reduction of Theorem 4.2.
    """
    if index == 0:
        graph = Graph()
        for i in range(4):
            for j in range(i + 1, 4):
                graph.add_edge(("k", i), ("k", j))
        return graph
    return prism_graph(index + 2)


def one_three_regular_graph(n: int) -> Graph:
    """A planar {1, 3}-regular graph: a cycle with a pendant vertex on every node.

    Cycle vertices have degree 3, pendants have degree 1 (Section 5.1 uses
    {1, 3}-regular planar graphs for the alternating-coloring reduction).
    """
    graph = cycle_graph(n)
    for i in range(n):
        graph.add_edge(i, ("pendant", i))
    return graph


def wall_instance(rows: int, cols: int, relation: str = "E") -> Instance:
    """A wall graph as a relational instance: degree-3, planar, treewidth Theta(min)."""
    return graph_to_instance(wall_graph(rows, cols), relation)


def subdivided_instance(graph: Graph, times: int, relation: str = "E") -> Instance:
    """A subdivision of ``graph`` as an instance (used to test subdivision-invariance)."""
    return graph_to_instance(subdivide(graph, times), relation)


def random_partial_ktree_instance(
    n: int, width: int, seed: int = 0, relation: str = "E", edge_probability: float = 0.7
) -> Instance:
    """A random partial k-tree instance: treewidth <= ``width`` by construction.

    We grow a k-tree for k = ``width``: the seed is a (k+1)-clique and every
    new vertex is attached to all k members of a random existing *k*-clique
    (never to k+1 vertices at once, which would build a (k+1)-tree of
    treewidth ``width + 1``).  Each edge is then kept independently with
    ``edge_probability``; the result is a connected-ish instance of treewidth
    at most ``width`` used as the generic "treelike instance" in scaling
    experiments.
    """
    if n <= width:
        raise ValueError("need more vertices than the width")
    generator = random.Random(seed)
    seed_clique = tuple(range(width + 1))
    cliques: list[tuple[int, ...]] = [
        seed_clique[:drop] + seed_clique[drop + 1 :] for drop in range(width + 1)
    ]
    edges: set[tuple[int, int]] = set()
    for i in range(width + 1):
        for j in range(i + 1, width + 1):
            edges.add((i, j))
    for vertex in range(width + 1, n):
        base = list(generator.choice(cliques))
        for other in base:
            edges.add((min(vertex, other), max(vertex, other)))
        for drop_index in range(len(base)):
            new_clique = tuple(sorted(base[:drop_index] + base[drop_index + 1 :] + [vertex]))
            cliques.append(new_clique)
    kept = [edge for edge in sorted(edges) if generator.random() < edge_probability]
    graph = Graph()
    for i in range(n):
        graph.add_vertex(i)
    for u, v in kept:
        graph.add_edge(u, v)
    return graph_to_instance(graph, relation)


def labelled_partial_ktree_instance(
    n: int, width: int, seed: int = 0, label_probability: float = 0.5
) -> Instance:
    """A partial k-tree with unary labels R and T on random elements and S edges.

    Provides bounded-treewidth inputs on the RST signature for the safe-query
    and probability-evaluation experiments.
    """
    generator = random.Random(seed)
    base = random_partial_ktree_instance(n, width, seed=seed, relation="S")
    facts = list(base.facts)
    from repro.data.instance import Fact

    for element in base.domain:
        if generator.random() < label_probability:
            facts.append(Fact("R", (element,)))
        if generator.random() < label_probability:
            facts.append(Fact("T", (element,)))
    return Instance(facts, Signature([("R", 1), ("S", 2), ("T", 1)]))
