"""Instance and graph generators for the paper's experiment families."""

from repro.generators.graphs import (
    cubic_planar_graph,
    labelled_partial_ktree_instance,
    one_three_regular_graph,
    prism_graph,
    random_partial_ktree_instance,
    subdivided_instance,
    wall_instance,
)
from repro.generators.grids import (
    clique_instance,
    complete_bipartite_instance,
    graph_to_instance,
    grid_graph_instance,
    grid_instance,
    grid_of_lines,
    s_grid_instance,
)
from repro.generators.lines import (
    directed_path_instance,
    labelled_line_instance,
    random_line_instance,
    rst_bipartite_instance,
    rst_chain_instance,
    unary_instance,
)
from repro.generators.random_instances import (
    random_binary_instance,
    random_instance,
    random_probabilities,
    random_ranked_instance,
    random_rst_instance,
)
from repro.generators.trees import (
    balanced_binary_tree_instance,
    caterpillar_instance,
    probabilistic_xml_instance,
    random_tree_instance,
)

__all__ = [
    "balanced_binary_tree_instance",
    "caterpillar_instance",
    "clique_instance",
    "complete_bipartite_instance",
    "cubic_planar_graph",
    "directed_path_instance",
    "graph_to_instance",
    "grid_graph_instance",
    "grid_instance",
    "grid_of_lines",
    "labelled_line_instance",
    "labelled_partial_ktree_instance",
    "one_three_regular_graph",
    "prism_graph",
    "probabilistic_xml_instance",
    "random_binary_instance",
    "random_instance",
    "random_line_instance",
    "random_partial_ktree_instance",
    "random_probabilities",
    "random_ranked_instance",
    "random_rst_instance",
    "random_tree_instance",
    "rst_bipartite_instance",
    "rst_chain_instance",
    "s_grid_instance",
    "subdivided_instance",
    "unary_instance",
    "wall_instance",
]
