"""Line- and path-shaped instance generators.

These are the treewidth-1 / pathwidth-1 families used throughout the paper:
the labelled lines of Proposition 7.3 (parity), the line instances of
Section 8.2 (intricacy), probabilistic-XML-like chains, and simple relational
paths for the quickstart examples.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.data.instance import Fact, Instance
from repro.data.signature import Signature


def directed_path_instance(length: int, relation: str = "E") -> Instance:
    """A directed path a1 -> a2 -> ... with ``length`` binary facts."""
    facts = [Fact(relation, (f"a{i + 1}", f"a{i + 2}")) for i in range(length)]
    return Instance(facts, Signature([(relation, 2)]))


def labelled_line_instance(
    n: int,
    labelled: Sequence[bool] | None = None,
    edge_relation: str = "E",
    label_relation: str = "L",
) -> Instance:
    """The family of Proposition 7.3: a directed path with unary labels.

    Domain a1..an; facts ``E(ai, ai+1)`` for i < n and ``L(ai)`` for the
    selected positions (all of them by default).  Treewidth 1.
    """
    if labelled is None:
        labelled = [True] * n
    facts = [Fact(edge_relation, (f"a{i + 1}", f"a{i + 2}")) for i in range(n - 1)]
    facts.extend(Fact(label_relation, (f"a{i + 1}",)) for i in range(n) if labelled[i])
    return Instance(facts, Signature([(edge_relation, 2), (label_relation, 1)]))


def unary_instance(n: int, relation: str = "R") -> Instance:
    """The treewidth-0 family of Propositions 7.1/7.2: n unary facts."""
    return Instance(
        [Fact(relation, (f"a{i + 1}",)) for i in range(n)], Signature([(relation, 1)])
    )


def random_line_instance(
    length: int, signature: Signature, seed: int = 0
) -> Instance:
    """A random line instance (Definition 8.4) over the signature's binary relations."""
    generator = random.Random(seed)
    binary = [relation.name for relation in signature.binary_relations()]
    if not binary:
        raise ValueError("signature has no binary relation")
    facts = []
    for i in range(length):
        relation = generator.choice(binary)
        forward = generator.random() < 0.5
        left, right = f"a{i + 1}", f"a{i + 2}"
        facts.append(Fact(relation, (left, right) if forward else (right, left)))
    return Instance(facts, signature)


def rst_chain_instance(n: int) -> Instance:
    """A chain instance for the RST query: R(a_i), S(a_i, b_i), T(b_i) for i < n.

    Pathwidth 1; the lineage of the RST query on it is a disjoint OR of ANDs,
    which is why the query is easy here despite being unsafe in general.
    """
    facts = []
    for i in range(n):
        facts.append(Fact("R", (f"a{i}",)))
        facts.append(Fact("S", (f"a{i}", f"b{i}")))
        facts.append(Fact("T", (f"b{i}",)))
    return Instance(facts, Signature([("R", 1), ("S", 2), ("T", 1)]))


def rst_bipartite_instance(n: int) -> Instance:
    """The hard bipartite instance family for the RST query.

    R(a_i) and T(b_j) for all i, j < n, plus all S(a_i, b_j) edges: the
    lineage is the bipartite "exists an R-S-T path" function whose probability
    computation is #P-hard as the instance family grows (treewidth grows
    linearly).
    """
    facts = []
    for i in range(n):
        facts.append(Fact("R", (f"a{i}",)))
        facts.append(Fact("T", (f"b{i}",)))
    for i in range(n):
        for j in range(n):
            facts.append(Fact("S", (f"a{i}", f"b{j}")))
    return Instance(facts, Signature([("R", 1), ("S", 2), ("T", 1)]))
