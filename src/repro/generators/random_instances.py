"""Random small instances for property-based testing.

These generators produce arbitrary small relational instances and TID
valuations used by the hypothesis test-suites to cross-check lineage
constructions against brute force.
"""

from __future__ import annotations

import random
from fractions import Fraction

from repro.data.instance import Fact, Instance
from repro.data.signature import Signature
from repro.data.tid import ProbabilisticInstance


def random_instance(
    signature: Signature,
    domain_size: int,
    fact_count: int,
    seed: int = 0,
) -> Instance:
    """A random instance: ``fact_count`` facts drawn uniformly (without replacement)."""
    generator = random.Random(seed)
    domain = [f"e{i}" for i in range(domain_size)]
    chosen: set[Fact] = set()
    relations = list(signature)
    attempts = 0
    while len(chosen) < fact_count and attempts < fact_count * 20:
        attempts += 1
        relation = generator.choice(relations)
        arguments = tuple(generator.choice(domain) for _ in range(relation.arity))
        chosen.add(Fact(relation.name, arguments))
    return Instance(chosen, signature)


def random_ranked_instance(
    signature: Signature,
    domain_size: int,
    fact_count: int,
    seed: int = 0,
) -> Instance:
    """A random *ranked* instance: fact arguments are strictly increasing.

    Ranked instances (Section 9) admit a total domain order making every fact
    ascending; we enforce it directly by sorting and deduplicating the
    arguments of each generated fact, which is what the unfolding construction
    of Theorem 9.7 expects as input.
    """
    generator = random.Random(seed)
    domain = [f"e{i:03d}" for i in range(domain_size)]
    chosen: set[Fact] = set()
    relations = list(signature)
    attempts = 0
    while len(chosen) < fact_count and attempts < fact_count * 40:
        attempts += 1
        relation = generator.choice(relations)
        arguments = generator.sample(domain, min(relation.arity, domain_size))
        if len(arguments) < relation.arity:
            continue
        chosen.add(Fact(relation.name, tuple(sorted(arguments))))
    return Instance(chosen, signature)


def random_probabilities(instance: Instance, seed: int = 0) -> ProbabilisticInstance:
    """Random rational probabilities (denominator 8) on each fact."""
    generator = random.Random(seed)
    valuation = {
        f: Fraction(generator.randint(0, 8), 8) for f in instance
    }
    return ProbabilisticInstance(instance, valuation)


def random_binary_instance(domain_size: int, fact_count: int, seed: int = 0) -> Instance:
    """A random instance over the graph signature (single binary relation E)."""
    return random_instance(Signature([("E", 2)]), domain_size, fact_count, seed)


def random_rst_instance(domain_size: int, fact_count: int, seed: int = 0) -> Instance:
    """A random instance over the R/S/T signature of the unsafe query."""
    return random_instance(
        Signature([("R", 1), ("S", 2), ("T", 1)]), domain_size, fact_count, seed
    )
