"""Tree-shaped instance generators (treewidth-1 families).

These model the probabilistic-XML use case mentioned in the introduction
(probabilistic trees without data values) and provide the bounded-treewidth
side of every dichotomy experiment.
"""

from __future__ import annotations

import random

from repro.data.instance import Fact, Instance
from repro.data.signature import Signature


def balanced_binary_tree_instance(depth: int, relation: str = "child") -> Instance:
    """A complete binary tree of the given depth, edges oriented parent -> child."""
    facts: list[Fact] = []

    def build(node: str, remaining: int) -> None:
        if remaining == 0:
            return
        left, right = node + "0", node + "1"
        facts.append(Fact(relation, (node, left)))
        facts.append(Fact(relation, (node, right)))
        build(left, remaining - 1)
        build(right, remaining - 1)

    build("r", depth)
    return Instance(facts, Signature([(relation, 2)]))


def random_tree_instance(n: int, seed: int = 0, relation: str = "child") -> Instance:
    """A random tree on n nodes (each node's parent is uniform among earlier nodes)."""
    generator = random.Random(seed)
    facts = []
    for i in range(1, n):
        parent = generator.randrange(i)
        facts.append(Fact(relation, (f"t{parent}", f"t{i}")))
    if not facts:
        raise ValueError("a tree instance needs at least two nodes")
    return Instance(facts, Signature([(relation, 2)]))


def caterpillar_instance(spine: int, legs: int, relation: str = "child") -> Instance:
    """A caterpillar tree: a spine path with ``legs`` leaves per spine node.

    Pathwidth 1; useful as a bounded-pathwidth but not line-shaped family.
    """
    facts = []
    for i in range(spine - 1):
        facts.append(Fact(relation, (f"s{i}", f"s{i + 1}")))
    for i in range(spine):
        for j in range(legs):
            facts.append(Fact(relation, (f"s{i}", f"leaf{i}_{j}")))
    return Instance(facts, Signature([(relation, 2)]))


def probabilistic_xml_instance(depth: int, fanout: int = 2) -> Instance:
    """A labelled-tree instance shaped like a probabilistic XML document.

    Signature: ``child(parent, node)``, ``section(node)``, ``paragraph(node)``:
    internal nodes are sections, leaves are paragraphs.  Edges are the
    uncertain facts in the probabilistic-XML reading (each child subtree
    present independently).
    """
    facts: list[Fact] = []

    def build(node: str, remaining: int) -> None:
        if remaining == 0:
            facts.append(Fact("paragraph", (node,)))
            return
        facts.append(Fact("section", (node,)))
        for i in range(fanout):
            child = f"{node}_{i}"
            facts.append(Fact("child", (node, child)))
            build(child, remaining - 1)

    build("root", depth)
    return Instance(
        facts, Signature([("child", 2), ("section", 1), ("paragraph", 1)])
    )
