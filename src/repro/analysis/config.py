"""Analyzer configuration: the ``[tool.repro-analysis]`` table of pyproject.toml.

The configuration declares the project-specific facts the rules cannot infer:
which modules are *kernels* (whose call closure must stay iterative), which
modules are *reference oracles* (seed algorithms deliberately kept recursive
and repr-ordered for differential testing), which functions form the *exact*
probability routes, and per-rule options.  Per-module overrides can disable
individual rules for matching modules.

Layout::

    [tool.repro-analysis]
    package = "repro"
    kernel-modules = ["repro.booleans.obdd", ...]
    reference-modules = ["repro.*.reference"]
    disable = []                       # globally disabled rule ids

    [tool.repro-analysis.per-module."repro.experiments.*"]
    disable = ["DET001"]

    [tool.repro-analysis.rules.REC001]
    root-modules = [...]               # defaults to kernel-modules

Keys are spelled with hyphens in TOML and normalized to underscores here.
Patterns are ``fnmatch`` globs over dotted module names (or
``module:Qual.name`` function keys where a rule documents that).
"""

from __future__ import annotations

import tomllib
from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from pathlib import Path
from typing import Any, Iterable, Mapping


class AnalysisConfigError(Exception):
    """The configuration file is malformed."""


TOOL_TABLE = "repro-analysis"


def _normalize(mapping: Mapping[str, Any]) -> dict[str, Any]:
    """Recursively turn hyphenated TOML keys into python identifiers."""
    result: dict[str, Any] = {}
    for key, value in mapping.items():
        normalized = key.replace("-", "_")
        if isinstance(value, Mapping):
            result[normalized] = _normalize(value)
        else:
            result[normalized] = value
    return result


def matches_any(name: str, patterns: Iterable[str]) -> bool:
    return any(fnmatchcase(name, pattern) for pattern in patterns)


@dataclass(frozen=True)
class AnalysisConfig:
    """The resolved analyzer configuration."""

    package: str | None = None
    kernel_modules: tuple[str, ...] = ()
    reference_modules: tuple[str, ...] = ("*.reference",)
    disabled_rules: frozenset[str] = frozenset()
    per_module: tuple[tuple[str, frozenset[str]], ...] = ()
    rules: Mapping[str, Mapping[str, Any]] = field(default_factory=dict)
    source: Path | None = None

    # -- queries -----------------------------------------------------------------

    def options_for(self, rule_id: str) -> Mapping[str, Any]:
        return self.rules.get(rule_id.upper(), {})

    def is_reference_module(self, module: str) -> bool:
        return matches_any(module, self.reference_modules)

    def rule_enabled(self, rule_id: str) -> bool:
        return rule_id.upper() not in self.disabled_rules

    def rule_disabled_for(self, rule_id: str, module: str) -> bool:
        """Per-module override: is ``rule_id`` disabled for ``module``?"""
        wanted = rule_id.upper()
        for pattern, disabled in self.per_module:
            if wanted in disabled and fnmatchcase(module, pattern):
                return True
        return False


def config_from_mapping(
    table: Mapping[str, Any], source: Path | None = None
) -> AnalysisConfig:
    data = _normalize(table)
    per_module_raw = data.get("per_module", {})
    if not isinstance(per_module_raw, Mapping):
        raise AnalysisConfigError("per-module must be a table of module patterns")
    per_module: list[tuple[str, frozenset[str]]] = []
    for pattern, override in per_module_raw.items():
        if not isinstance(override, Mapping):
            raise AnalysisConfigError(f"per-module entry {pattern!r} must be a table")
        disabled = frozenset(str(r).upper() for r in override.get("disable", ()))
        # The pattern itself was normalized along with the keys; undo that,
        # module patterns legitimately never contain hyphens anyway.
        per_module.append((pattern, disabled))
    rules_raw = data.get("rules", {})
    if not isinstance(rules_raw, Mapping):
        raise AnalysisConfigError("rules must be a table keyed by rule id")
    rules = {str(rule_id).upper(): dict(options) for rule_id, options in rules_raw.items()}
    return AnalysisConfig(
        package=data.get("package"),
        kernel_modules=tuple(data.get("kernel_modules", ())),
        reference_modules=tuple(data.get("reference_modules", ("*.reference",))),
        disabled_rules=frozenset(str(r).upper() for r in data.get("disable", ())),
        per_module=tuple(per_module),
        rules=rules,
        source=source,
    )


def load_config(pyproject: Path) -> AnalysisConfig:
    """Read ``[tool.repro-analysis]`` from a pyproject.toml file."""
    try:
        with pyproject.open("rb") as handle:
            document = tomllib.load(handle)
    except OSError as error:
        raise AnalysisConfigError(f"cannot read {pyproject}: {error}") from error
    except tomllib.TOMLDecodeError as error:
        raise AnalysisConfigError(f"cannot parse {pyproject}: {error}") from error
    tool = document.get("tool", {})
    table = tool.get(TOOL_TABLE, {}) if isinstance(tool, Mapping) else {}
    if not isinstance(table, Mapping):
        raise AnalysisConfigError(f"[tool.{TOOL_TABLE}] must be a table")
    return config_from_mapping(table, source=pyproject)


def find_pyproject(start: Path) -> Path | None:
    """The nearest pyproject.toml at or above ``start``."""
    current = start.resolve()
    if current.is_file():
        current = current.parent
    while True:
        candidate = current / "pyproject.toml"
        if candidate.exists():
            return candidate
        if current.parent == current:
            return None
        current = current.parent


def discover_config(paths: Iterable[Path | str]) -> AnalysisConfig:
    """Load the config governing the first analyzed path (defaults if none)."""
    for raw in paths:
        pyproject = find_pyproject(Path(raw))
        if pyproject is not None:
            return load_config(pyproject)
        break
    return AnalysisConfig()
