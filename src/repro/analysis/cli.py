"""Command line front-end: ``python -m repro.analysis [paths...]``.

Exit codes: 0 when no findings survive, 1 when findings remain (always, not
only under ``--strict``; ``--strict`` additionally fails on *suppressed*
findings whose rules were explicitly selected away), 2 on usage or load
errors.  ``--format json`` emits a machine-readable report for CI artifacts.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from repro.analysis.config import AnalysisConfig, discover_config, load_config
from repro.analysis.engine import analyze
from repro.analysis.loader import AnalysisLoadError
from repro.analysis.registry import all_rules
from repro.analysis.report import render_json, render_text


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "AST/call-graph invariant checker for the repro kernels: "
            "no recursion in kernel closures, exact routes stay exact, "
            "pool submissions pickle, cache keys are process-stable, "
            "node dataclasses are slotted."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="package directories or files to analyze (default: src/repro)",
    )
    parser.add_argument(
        "--config",
        type=Path,
        default=None,
        help="pyproject.toml to read [tool.repro-analysis] from "
        "(default: nearest pyproject.toml above the first path)",
    )
    parser.add_argument(
        "--select",
        action="append",
        metavar="RULE",
        default=None,
        help="run only the named rule (repeatable, e.g. --select REC001)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="fail (exit 1) even when the only findings are suppressed "
        "suppression-hygiene problems",
    )
    parser.add_argument(
        "--show-suppressed",
        action="store_true",
        help="also print findings silenced by inline suppressions",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list the registered rules and exit",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    options = parser.parse_args(argv)

    if options.list_rules:
        for rule in all_rules():
            print(f"{rule.id}  {rule.title}")
            print(f"    {rule.description}")
        return 0

    config: AnalysisConfig | None = None
    try:
        if options.config is not None:
            config = load_config(options.config)
        else:
            config = discover_config(options.paths)
        result = analyze(options.paths, config=config, select=options.select)
    except AnalysisLoadError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    if options.format == "json":
        print(
            render_json(
                result.findings,
                modules_analyzed=result.modules_analyzed,
                suppressed=len(result.suppressed),
            )
        )
    else:
        print(
            render_text(
                result.findings,
                modules_analyzed=result.modules_analyzed,
                suppressed=len(result.suppressed),
            )
        )
        if options.show_suppressed and result.suppressed:
            print()
            for finding in result.suppressed:
                print(f"suppressed: {finding.location()}: {finding.rule} {finding.message}")

    if result.findings:
        return 1
    if options.strict and not result.rules_run:
        print("error: no rules selected", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
