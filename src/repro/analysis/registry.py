"""The rule registry and the context rules run against.

A rule is a class with a stable upper-case ``id``, a one-line ``title``, and a
``check(context)`` method yielding :class:`~repro.analysis.report.Finding`s.
Rules register themselves with the :func:`register` decorator at import time;
:func:`all_rules` imports the bundled rule package and returns one instance of
each, sorted by id, so the CLI, the engine, and the tests all see the same
inventory.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable, Mapping, Protocol

from repro.analysis.config import AnalysisConfig
from repro.analysis.loader import ModuleInfo
from repro.analysis.report import Finding

if TYPE_CHECKING:
    from repro.analysis.callgraph import CallGraph


@dataclass
class AnalysisContext:
    """Everything a rule may consult: modules, config, and the call graph."""

    modules: list[ModuleInfo]
    config: AnalysisConfig
    _callgraph: "CallGraph | None" = field(default=None, repr=False)

    @property
    def callgraph(self) -> "CallGraph":
        if self._callgraph is None:
            from repro.analysis.callgraph import CallGraph

            self._callgraph = CallGraph(self.modules)
        return self._callgraph

    def options_for(self, rule_id: str) -> Mapping[str, Any]:
        return self.config.options_for(rule_id)

    def production_modules(self) -> list[ModuleInfo]:
        """Modules that are not reference oracles."""
        return [
            module
            for module in self.modules
            if not self.config.is_reference_module(module.name)
        ]

    def finding(
        self,
        rule_id: str,
        module: ModuleInfo,
        node: ast.AST | None,
        message: str,
        symbol: str = "",
        line: int | None = None,
    ) -> Finding:
        anchor_line = line if line is not None else getattr(node, "lineno", 1)
        column = getattr(node, "col_offset", 0) + 1 if node is not None else 1
        return Finding(
            rule=rule_id,
            message=message,
            path=str(module.path),
            line=anchor_line,
            column=column,
            module=module.name,
            symbol=symbol,
        )


class Rule(Protocol):
    """The interface every analysis rule implements."""

    id: str
    title: str
    description: str

    def check(self, context: AnalysisContext) -> Iterable[Finding]: ...


_REGISTRY: dict[str, type] = {}


def register(rule_class: type) -> type:
    rule_id = getattr(rule_class, "id", None)
    if not isinstance(rule_id, str) or not rule_id:
        raise ValueError(f"rule class {rule_class.__name__} has no id")
    if rule_id in _REGISTRY and _REGISTRY[rule_id] is not rule_class:
        raise ValueError(f"duplicate rule id {rule_id}")
    _REGISTRY[rule_id] = rule_class
    return rule_class


def all_rules() -> list[Rule]:
    """One instance of every registered rule, importing the bundled set."""
    import repro.analysis.rules  # noqa: F401  (registers on import)

    return [_REGISTRY[rule_id]() for rule_id in sorted(_REGISTRY)]


def rule_ids() -> list[str]:
    import repro.analysis.rules  # noqa: F401

    return sorted(_REGISTRY)
