"""Findings and report rendering for the static analyzer.

A :class:`Finding` is one rule violation anchored at an exact file/line; the
two renderers produce the ``--format text`` (one ``path:line:col: RULE
message`` per finding, compiler style, so editors and CI annotations can jump
to the site) and ``--format json`` (a stable machine-readable document the CI
job archives) outputs of ``python -m repro.analysis``.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Sequence


@dataclass(frozen=True, slots=True)
class Finding:
    """One rule violation at an exact source location."""

    rule: str
    message: str
    path: str
    line: int
    column: int
    module: str
    symbol: str = ""

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.column}"


def sort_findings(findings: Sequence[Finding]) -> list[Finding]:
    """Deterministic report order: by file, then line, then rule id."""
    return sorted(findings, key=lambda f: (f.path, f.line, f.column, f.rule, f.message))


def render_text(
    findings: Sequence[Finding], *, modules_analyzed: int, suppressed: int
) -> str:
    lines = [f"{f.location()}: {f.rule} {f.message}" for f in findings]
    noun = "finding" if len(findings) == 1 else "findings"
    lines.append(
        f"{len(findings)} {noun} across {modules_analyzed} modules"
        f" ({suppressed} suppressed)."
    )
    return "\n".join(lines)


def render_json(
    findings: Sequence[Finding], *, modules_analyzed: int, suppressed: int
) -> str:
    document = {
        "findings": [asdict(f) for f in findings],
        "modules_analyzed": modules_analyzed,
        "suppressed": suppressed,
    }
    return json.dumps(document, indent=2, sort_keys=True)
