"""Orchestration: load modules, run rules, apply config and suppressions.

:func:`analyze` is the single entry point used by the CLI and the test suite:
it loads the requested paths, builds one :class:`AnalysisContext` (the call
graph inside it is built lazily and shared by every rule that asks for it),
runs each enabled rule, drops findings disabled by per-module config or
covered by a justified inline suppression, and appends the ``SUP001``
meta-findings for suppressions that carry no justification (those are not
themselves suppressible).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

from repro.analysis.config import AnalysisConfig, discover_config
from repro.analysis.loader import ModuleInfo, load_paths
from repro.analysis.registry import AnalysisContext, Rule, all_rules
from repro.analysis.report import Finding, sort_findings
from repro.analysis.suppressions import SuppressionIndex


@dataclass(frozen=True)
class AnalysisResult:
    """The outcome of one analyzer run."""

    findings: tuple[Finding, ...]
    suppressed: tuple[Finding, ...]
    modules_analyzed: int
    rules_run: tuple[str, ...]

    @property
    def ok(self) -> bool:
        return not self.findings


def analyze(
    paths: Sequence[Path | str],
    config: AnalysisConfig | None = None,
    rules: Sequence[Rule] | None = None,
    select: Sequence[str] | None = None,
) -> AnalysisResult:
    """Run the analyzer over ``paths`` and return every surviving finding.

    ``config`` defaults to the ``[tool.repro-analysis]`` table of the nearest
    pyproject.toml above the first path; ``select`` restricts the run to the
    named rule ids (the ``SUP001`` suppression check always runs).
    """
    if config is None:
        config = discover_config(paths)
    modules = load_paths(paths)
    return analyze_modules(modules, config, rules=rules, select=select)


def analyze_modules(
    modules: list[ModuleInfo],
    config: AnalysisConfig,
    rules: Sequence[Rule] | None = None,
    select: Sequence[str] | None = None,
) -> AnalysisResult:
    context = AnalysisContext(modules=modules, config=config)
    active = list(rules) if rules is not None else all_rules()
    if select is not None:
        wanted = {rule_id.upper() for rule_id in select}
        active = [rule for rule in active if rule.id in wanted]
    active = [rule for rule in active if config.rule_enabled(rule.id)]

    suppressions = SuppressionIndex()
    for module in modules:
        suppressions.add_module(module)

    kept: list[Finding] = []
    dropped: list[Finding] = []
    for rule in active:
        for finding in rule.check(context):
            if config.rule_disabled_for(finding.rule, finding.module):
                continue
            if suppressions.is_suppressed(finding):
                dropped.append(finding)
            else:
                kept.append(finding)
    kept.extend(suppressions.problems())
    return AnalysisResult(
        findings=tuple(sort_findings(kept)),
        suppressed=tuple(sort_findings(dropped)),
        modules_analyzed=len(modules),
        rules_run=tuple(rule.id for rule in active),
    )
