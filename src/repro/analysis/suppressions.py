"""Inline suppression comments.

Syntax::

    x = something_flagged()  # repro-analysis: allow(DET001): stable for str keys

    # repro-analysis: allow(REC001): bounded by max_path_length (<= 8)
    def route(edge_index: int) -> bool: ...

A suppression names one or more rule ids and MUST carry a justification after
the closing ``):`` — a suppression without one does not suppress anything and
is itself reported (rule id ``SUP001``), so every waived invariant leaves a
written trace in the source.

Scope:

* on an ordinary line — suppresses findings of the named rules on that line
  and, when the comment sits alone, on the next non-comment line;
* on a ``def`` or ``class`` header line (or alone directly above it) — the
  whole function/class body, which is how bounded-depth recursive walkers are
  waived for REC001.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass

from repro.analysis.loader import ModuleInfo
from repro.analysis.report import Finding

SUPPRESSION_RULE = "SUP001"

_PATTERN = re.compile(
    r"#\s*repro-analysis:\s*allow\(\s*(?P<rules>[A-Za-z0-9_*,\s]+?)\s*\)"
    r"(?:\s*:\s*(?P<justification>.*\S))?\s*$"
)


@dataclass(frozen=True, slots=True)
class Suppression:
    """One parsed ``# repro-analysis: allow(...)`` comment."""

    module: str
    path: str
    line: int
    rules: tuple[str, ...]
    justification: str
    start: int
    end: int

    def covers(self, line: int, rule: str) -> bool:
        if not self.justification:
            return False
        if rule.upper() not in self.rules and "*" not in self.rules:
            return False
        return self.start <= line <= self.end


class SuppressionIndex:
    """All suppressions of an analyzed module set, with scope resolution."""

    def __init__(self) -> None:
        self._by_module: dict[str, list[Suppression]] = {}

    def add_module(self, module: ModuleInfo) -> None:
        entries: list[Suppression] = []
        definition_lines = _definition_spans(module.tree)
        for line_number, text in enumerate(module.lines, start=1):
            match = _PATTERN.search(text)
            if match is None:
                continue
            rules = tuple(
                part.strip().upper() for part in match.group("rules").split(",") if part.strip()
            )
            justification = (match.group("justification") or "").strip()
            start, end = _scope_for(line_number, text, definition_lines, len(module.lines))
            entries.append(
                Suppression(
                    module=module.name,
                    path=str(module.path),
                    line=line_number,
                    rules=rules,
                    justification=justification,
                    start=start,
                    end=end,
                )
            )
        if entries:
            self._by_module[module.name] = entries

    def is_suppressed(self, finding: Finding) -> bool:
        return any(
            s.covers(finding.line, finding.rule)
            for s in self._by_module.get(finding.module, ())
        )

    def problems(self) -> list[Finding]:
        """Suppressions missing the mandatory justification text."""
        findings = []
        for entries in self._by_module.values():
            for suppression in entries:
                if suppression.justification:
                    continue
                findings.append(
                    Finding(
                        rule=SUPPRESSION_RULE,
                        message=(
                            "suppression comment has no justification; write "
                            "'# repro-analysis: allow(RULE): <why this is safe>'"
                        ),
                        path=suppression.path,
                        line=suppression.line,
                        column=1,
                        module=suppression.module,
                    )
                )
        return findings

    def all_suppressions(self) -> list[Suppression]:
        return [s for entries in self._by_module.values() for s in entries]


def _definition_spans(tree: ast.Module) -> dict[int, tuple[int, int]]:
    """Header line -> (start, end) body span for every def/class."""
    spans: dict[int, tuple[int, int]] = {}
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            end = node.end_lineno if node.end_lineno is not None else node.lineno
            spans[node.lineno] = (node.lineno, end)
    return spans


def _scope_for(
    line_number: int,
    text: str,
    definition_lines: dict[int, tuple[int, int]],
    last_line: int,
) -> tuple[int, int]:
    span = definition_lines.get(line_number)
    if span is not None:
        return span
    if text.lstrip().startswith("#"):
        # A comment-only line annotates the next line; when that line opens a
        # definition, the suppression covers the whole body.
        following = min(line_number + 1, last_line)
        span = definition_lines.get(following)
        if span is not None:
            return span
        return (line_number, following)
    return (line_number, line_number)
