"""An intra-package call graph built purely from ASTs.

Functions are keyed ``module:Qual.name`` (class nesting with ``.``, function
nesting with ``.<locals>.``, mirroring ``__qualname__``).  The builder makes
two passes:

1. **collect** — every function/class definition, per-module symbol tables
   (top-level defs, ``import``/``from ... import`` bindings), per-class method
   tables with base-class expressions, and per-function local definitions;
2. **link** — every ``Call`` inside a function body is resolved to package
   functions where that is possible *statically*:

   * bare names through the lexical scope chain (enclosing functions, module
     globals, imports — including one-hop re-exports through ``__init__``);
   * ``self.m()`` / ``cls.m()`` / ``super().m()`` through the method tables,
     following base classes across modules;
   * ``mod.f()`` and dotted chains through imported modules;
   * ``Class(...)`` to ``__init__`` (plus ``__post_init__`` for dataclasses);
   * ``obj.m()`` where ``obj`` is a parameter/variable *annotated* with a
     package class resolves through that class;
   * as a last resort, ``node.m()`` on a plain local name inside a method of a
     class that itself defines ``m`` is treated as a same-class call — this is
     the tree-walker pattern (``child.walk()`` inside ``walk``) that the
     no-recursion rule exists to catch, and it is the one deliberately
     *over*-approximating edge kind.

Unresolvable calls (higher-order parameters, dynamic dispatch across
unrelated classes) contribute no edges: the graph under-approximates, which
for a lint means missed findings, never false cycles from those sites.

Cycles are found with an iterative Tarjan SCC pass (the analyzer practices
what it preaches), and reachability queries support skipping *reference
oracle* modules so allowlisted recursive seeds do not poison kernel closures.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator

from repro.analysis.loader import ModuleInfo

LOCALS_SEPARATOR = ".<locals>."


@dataclass
class FunctionNode:
    """One function or method definition."""

    key: str
    module: str
    qualname: str
    name: str
    lineno: int
    end_lineno: int
    ast_node: ast.FunctionDef | ast.AsyncFunctionDef
    class_key: str | None = None
    parent_function: str | None = None
    local_functions: dict[str, str] = field(default_factory=dict)
    local_classes: dict[str, str] = field(default_factory=dict)


@dataclass
class ClassNode:
    """One class definition with its directly defined methods."""

    key: str
    module: str
    qualname: str
    name: str
    lineno: int
    methods: dict[str, str] = field(default_factory=dict)
    bases: list[ast.expr] = field(default_factory=list)
    parent_function: str | None = None
    is_dataclass: bool = False


@dataclass
class ModuleTable:
    """Top-level symbols of one module."""

    info: ModuleInfo
    functions: dict[str, str] = field(default_factory=dict)
    classes: dict[str, str] = field(default_factory=dict)
    import_modules: dict[str, str] = field(default_factory=dict)
    import_names: dict[str, tuple[str, str]] = field(default_factory=dict)


def _resolve_relative(package: str, level: int, target: str | None) -> str | None:
    """Absolute module named by a ``from``-import with ``level`` leading dots."""
    if level == 0:
        return target
    parts = package.split(".") if package else []
    if level - 1 > len(parts):
        return None
    base = parts[: len(parts) - (level - 1)]
    if target:
        base.extend(target.split("."))
    return ".".join(base) if base else None


class _Collector(ast.NodeVisitor):
    """Pass 1: definitions and symbol tables for one module."""

    def __init__(self, graph: "CallGraph", module: ModuleInfo) -> None:
        self.graph = graph
        self.module = module
        self.table = ModuleTable(info=module)
        graph.tables[module.name] = self.table
        self._qual_stack: list[str] = []
        self._class_stack: list[ClassNode] = []
        self._function_stack: list[FunctionNode] = []

    # -- imports -----------------------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            bound = alias.asname or alias.name.split(".")[0]
            target = alias.name if alias.asname else alias.name.split(".")[0]
            self.table.import_modules[bound] = target

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        source = _resolve_relative(self.module.package, node.level, node.module)
        if source is None:
            return
        for alias in node.names:
            if alias.name == "*":
                continue
            bound = alias.asname or alias.name
            self.table.import_names[bound] = (source, alias.name)

    # -- definitions -------------------------------------------------------------

    def _qualname(self, name: str) -> str:
        return ".".join(self._qual_stack + [name]) if self._qual_stack else name

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        qualname = self._qualname(node.name)
        key = f"{self.module.name}:{qualname}"
        class_node = ClassNode(
            key=key,
            module=self.module.name,
            qualname=qualname,
            name=node.name,
            lineno=node.lineno,
            bases=list(node.bases),
            parent_function=self._function_stack[-1].key if self._function_stack else None,
            is_dataclass=any(_is_dataclass_decorator(d) for d in node.decorator_list),
        )
        self.graph.classes[key] = class_node
        if self._function_stack:
            self._function_stack[-1].local_classes[node.name] = key
        elif not self._class_stack:
            self.table.classes[node.name] = key
        self._qual_stack.append(node.name)
        self._class_stack.append(class_node)
        for statement in node.body:
            self.visit(statement)
        self._class_stack.pop()
        self._qual_stack.pop()

    def _visit_function(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        qualname = self._qualname(node.name)
        key = f"{self.module.name}:{qualname}"
        function = FunctionNode(
            key=key,
            module=self.module.name,
            qualname=qualname,
            name=node.name,
            lineno=node.lineno,
            end_lineno=node.end_lineno or node.lineno,
            ast_node=node,
            class_key=self._class_stack[-1].key if self._class_stack else None,
            parent_function=self._function_stack[-1].key if self._function_stack else None,
        )
        self.graph.functions[key] = function
        if self._function_stack:
            self._function_stack[-1].local_functions[node.name] = key
        elif self._class_stack:
            self._class_stack[-1].methods[node.name] = key
        else:
            self.table.functions[node.name] = key
        self._qual_stack.extend((node.name, "<locals>"))
        self._function_stack.append(function)
        # Functions open a new class-free scope for their nested definitions:
        # a class defined inside a method is a local class, not a sibling
        # method, and its methods must not resolve 'self' against the outer
        # class.
        saved_classes = self._class_stack
        self._class_stack = []
        for statement in node.body:
            self.visit(statement)
        self._class_stack = saved_classes
        self._function_stack.pop()
        del self._qual_stack[-2:]

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)


def _is_dataclass_decorator(decorator: ast.expr) -> bool:
    target = decorator.func if isinstance(decorator, ast.Call) else decorator
    if isinstance(target, ast.Name):
        return target.id == "dataclass"
    if isinstance(target, ast.Attribute):
        return target.attr == "dataclass"
    return False


class CallGraph:
    """The package call graph over a set of loaded modules."""

    def __init__(self, modules: Iterable[ModuleInfo]) -> None:
        self.modules: list[ModuleInfo] = list(modules)
        self.functions: dict[str, FunctionNode] = {}
        self.classes: dict[str, ClassNode] = {}
        self.tables: dict[str, ModuleTable] = {}
        self.edges: dict[str, set[str]] = {}
        self._families: dict[str, int] | None = None
        for module in self.modules:
            _Collector(self, module).visit(module.tree)
        for function in list(self.functions.values()):
            self.edges[function.key] = self._link_function(function)

    # -- symbol resolution -------------------------------------------------------

    def _resolve_exported(
        self, module: str, attr: str, depth: int = 0
    ) -> tuple[str, str] | None:
        """Resolve ``module.attr`` to ('func'|'class'|'module', key)."""
        if depth > 8:
            return None
        table = self.tables.get(module)
        if table is not None:
            if attr in table.functions:
                return ("func", table.functions[attr])
            if attr in table.classes:
                return ("class", table.classes[attr])
            if attr in table.import_names:
                source, original = table.import_names[attr]
                resolved = self._resolve_exported(source, original, depth + 1)
                if resolved is not None:
                    return resolved
                if f"{source}.{original}" in self.tables:
                    return ("module", f"{source}.{original}")
                return None
            if attr in table.import_modules:
                return ("module", table.import_modules[attr])
        if f"{module}.{attr}" in self.tables:
            return ("module", f"{module}.{attr}")
        return None

    def _scope_chain(self, function: FunctionNode) -> Iterator[FunctionNode]:
        current: FunctionNode | None = function
        while current is not None:
            yield current
            current = (
                self.functions.get(current.parent_function)
                if current.parent_function
                else None
            )

    def _resolve_name(
        self, module: str, scope: FunctionNode | None, name: str
    ) -> tuple[str, str] | None:
        if scope is not None:
            for frame in self._scope_chain(scope):
                if name in frame.local_functions:
                    return ("func", frame.local_functions[name])
                if name in frame.local_classes:
                    return ("class", frame.local_classes[name])
        return self._resolve_exported(module, name)

    def _method_in_hierarchy(
        self, class_key: str, method: str, depth: int = 0
    ) -> str | None:
        if depth > 8:
            return None
        class_node = self.classes.get(class_key)
        if class_node is None:
            return None
        if method in class_node.methods:
            return class_node.methods[method]
        for base in class_node.bases:
            base_key = self._resolve_class_expr(class_node.module, base)
            if base_key is not None:
                found = self._method_in_hierarchy(base_key, method, depth + 1)
                if found is not None:
                    return found
        return None

    def _method_confined_to_family(self, class_key: str, method: str) -> bool:
        """True when every class defining ``method`` shares a base-connected
        family with ``class_key`` — the guard keeping the same-class heuristic
        from inventing edges across unrelated classes that happen to share a
        method name."""
        families = self._class_families()
        family = families.get(class_key)
        if family is None:
            return False
        for other_key, other in self.classes.items():
            if method in other.methods and families.get(other_key) != family:
                return False
        return True

    def _class_families(self) -> dict[str, int]:
        """Connected components of the undirected class/base-class graph."""
        if self._families is None:
            parent: dict[str, str] = {key: key for key in self.classes}

            def find(key: str) -> str:
                root = key
                while parent[root] != root:
                    root = parent[root]
                while parent[key] != root:
                    parent[key], key = root, parent[key]
                return root

            for key, class_node in self.classes.items():
                for base in class_node.bases:
                    base_key = self._resolve_class_expr(class_node.module, base)
                    if base_key is not None and base_key in parent:
                        parent[find(key)] = find(base_key)
            roots: dict[str, int] = {}
            families: dict[str, int] = {}
            for key in self.classes:
                root = find(key)
                families[key] = roots.setdefault(root, len(roots))
            self._families = families
        return self._families

    def _resolve_class_expr(self, module: str, expr: ast.expr) -> str | None:
        if isinstance(expr, ast.Name):
            resolved = self._resolve_exported(module, expr.id)
            if resolved is not None and resolved[0] == "class":
                return resolved[1]
            return None
        if isinstance(expr, ast.Attribute):
            dotted = _flatten_attribute(expr)
            if dotted is None:
                return None
            return self._resolve_dotted_class(module, dotted)
        if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
            # String annotation: "ClassName" or "pkg.mod.ClassName".
            text = expr.value.strip()
            if "." in text:
                return self._resolve_dotted_class(module, text.split("."))
            resolved = self._resolve_exported(module, text)
            if resolved is not None and resolved[0] == "class":
                return resolved[1]
            return None
        if isinstance(expr, ast.Subscript):
            # Optional[C], list[C] — look at the first usable inner name.
            return self._resolve_class_expr(module, expr.slice)
        return None

    def _resolve_dotted_class(self, module: str, dotted: list[str]) -> str | None:
        kind_key = self._resolve_dotted(module, dotted)
        if kind_key is not None and kind_key[0] == "class":
            return kind_key[1]
        return None

    def _resolve_dotted(
        self, module: str, dotted: list[str]
    ) -> tuple[str, str] | None:
        """Resolve a dotted chain rooted at a module-level name."""
        if not dotted:
            return None
        current = self._resolve_exported(module, dotted[0])
        if current is None:
            # The chain may spell an absolute module path (import a.b.c).
            for split in range(len(dotted), 1, -1):
                candidate = ".".join(dotted[:split])
                if candidate in self.tables:
                    current = ("module", candidate)
                    dotted = [candidate] + dotted[split:]
                    break
            else:
                return None
            remainder = dotted[1:]
        else:
            remainder = dotted[1:]
        for attr in remainder:
            kind, key = current
            if kind == "module":
                nxt = self._resolve_exported(key, attr)
                if nxt is None:
                    return None
                current = nxt
            elif kind == "class":
                method = self._method_in_hierarchy(key, attr)
                if method is None:
                    return None
                current = ("func", method)
            else:
                return None
        return current

    def _constructor_targets(self, class_key: str) -> list[str]:
        targets = []
        init = self._method_in_hierarchy(class_key, "__init__")
        if init is not None:
            targets.append(init)
        class_node = self.classes.get(class_key)
        if class_node is not None and class_node.is_dataclass and init is None:
            post_init = self._method_in_hierarchy(class_key, "__post_init__")
            if post_init is not None:
                targets.append(post_init)
        return targets

    # -- pass 2: linking -----------------------------------------------------------

    def _link_function(self, function: FunctionNode) -> set[str]:
        annotations = self._annotation_types(function)
        targets: set[str] = set()
        for call in _calls_in_body(function.ast_node):
            for key in self._resolve_call(function, call, annotations):
                if key in self.functions:
                    targets.add(key)
        return targets

    def _annotation_types(self, function: FunctionNode) -> dict[str, str]:
        """Parameter/variable names annotated with a resolvable package class."""
        types: dict[str, str] = {}
        arguments = function.ast_node.args
        all_args = [
            *arguments.posonlyargs,
            *arguments.args,
            *arguments.kwonlyargs,
        ]
        for argument in all_args:
            if argument.annotation is not None:
                resolved = self._resolve_class_expr(function.module, argument.annotation)
                if resolved is not None:
                    types[argument.arg] = resolved
        for statement in _statements_in_body(function.ast_node):
            if isinstance(statement, ast.AnnAssign) and isinstance(
                statement.target, ast.Name
            ):
                resolved = self._resolve_class_expr(function.module, statement.annotation)
                if resolved is not None:
                    types[statement.target.id] = resolved
        return types

    def _resolve_call(
        self,
        function: FunctionNode,
        call: ast.Call,
        annotations: dict[str, str],
    ) -> list[str]:
        func = call.func
        module = function.module
        if isinstance(func, ast.Name):
            resolved = self._resolve_name(module, function, func.id)
            if resolved is None:
                return []
            kind, key = resolved
            if kind == "func":
                return [key]
            if kind == "class":
                return self._constructor_targets(key)
            return []
        if isinstance(func, ast.Attribute):
            method = func.attr
            value = func.value
            # super().m()
            if (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Name)
                and value.func.id == "super"
                and function.class_key is not None
            ):
                class_node = self.classes.get(function.class_key)
                if class_node is None:
                    return []
                for base in class_node.bases:
                    base_key = self._resolve_class_expr(class_node.module, base)
                    if base_key is not None:
                        found = self._method_in_hierarchy(base_key, method)
                        if found is not None:
                            return [found]
                return []
            if isinstance(value, ast.Name):
                receiver = value.id
                if receiver in ("self", "cls") and function.class_key is not None:
                    found = self._method_in_hierarchy(function.class_key, method)
                    return [found] if found is not None else []
                if receiver in annotations:
                    found = self._method_in_hierarchy(annotations[receiver], method)
                    return [found] if found is not None else []
                resolved = self._resolve_name(module, function, receiver)
                if resolved is not None:
                    kind, key = resolved
                    if kind == "module":
                        exported = self._resolve_exported(key, method)
                        if exported is None:
                            return []
                        if exported[0] == "func":
                            return [exported[1]]
                        if exported[0] == "class":
                            return self._constructor_targets(exported[1])
                        return []
                    if kind == "class":
                        found = self._method_in_hierarchy(key, method)
                        return [found] if found is not None else []
                    return []
                return self._same_class_heuristic(function, method)
            if isinstance(value, ast.Attribute):
                dotted = _flatten_attribute(func)
                if dotted is not None:
                    resolved_chain = self._resolve_dotted(module, dotted)
                    if resolved_chain is not None:
                        kind, key = resolved_chain
                        if kind == "func":
                            return [key]
                        if kind == "class":
                            return self._constructor_targets(key)
                return self._same_class_heuristic(function, method)
            # Subscript/call/other receivers ('self.children[0]._evaluate()'):
            # the receiver expression is opaque, so fall back to the
            # same-class heuristic below.
            return self._same_class_heuristic(function, method)
        return []

    def _same_class_heuristic(
        self, function: FunctionNode, method: str
    ) -> list[str]:
        # Same-class heuristic: 'child.walk()' inside a method of a class
        # defining 'walk' is taken as potential recursion — but only when no
        # *unrelated* class defines the same method, so 'a.variables()' over
        # atoms inside Query.variables() does not become a false self-edge.
        if function.class_key is not None:
            found = self._method_in_hierarchy(function.class_key, method)
            if found is not None and self._method_confined_to_family(
                function.class_key, method
            ):
                return [found]
        return []

    # -- cycles and reachability -----------------------------------------------------

    def strongly_connected_components(self) -> list[list[str]]:
        """Iterative Tarjan over the function graph (deterministic order)."""
        index: dict[str, int] = {}
        lowlink: dict[str, int] = {}
        on_stack: set[str] = set()
        scc_stack: list[str] = []
        components: list[list[str]] = []

        for root in sorted(self.functions):
            if root in index:
                continue
            index[root] = lowlink[root] = len(index)
            scc_stack.append(root)
            on_stack.add(root)
            work: list[tuple[str, Iterator[str]]] = [
                (root, iter(sorted(self.edges.get(root, ()))))
            ]
            while work:
                vertex, successors = work[-1]
                pushed = False
                for successor in successors:
                    if successor not in index:
                        index[successor] = lowlink[successor] = len(index)
                        scc_stack.append(successor)
                        on_stack.add(successor)
                        work.append(
                            (successor, iter(sorted(self.edges.get(successor, ()))))
                        )
                        pushed = True
                        break
                    if successor in on_stack:
                        lowlink[vertex] = min(lowlink[vertex], index[successor])
                if pushed:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[vertex])
                if lowlink[vertex] == index[vertex]:
                    component: list[str] = []
                    while True:
                        member = scc_stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == vertex:
                            break
                    components.append(sorted(component))
        return components

    def recursive_components(self) -> dict[str, tuple[str, ...]]:
        """Function key -> its cycle members, for every function on a cycle."""
        result: dict[str, tuple[str, ...]] = {}
        for component in self.strongly_connected_components():
            if len(component) > 1 or component[0] in self.edges.get(component[0], ()):
                members = tuple(component)
                for key in component:
                    result[key] = members
        return result

    def reachable_from(
        self,
        roots: Iterable[str],
        skip_module: Callable[[str], bool] | None = None,
    ) -> set[str]:
        """All functions reachable from ``roots`` without expanding skipped modules."""
        seen: set[str] = set()
        stack = [root for root in roots if root in self.functions]
        while stack:
            key = stack.pop()
            if key in seen:
                continue
            seen.add(key)
            function = self.functions[key]
            if skip_module is not None and skip_module(function.module):
                continue
            stack.extend(self.edges.get(key, ()))
        return seen


def _flatten_attribute(expr: ast.Attribute) -> list[str] | None:
    parts: list[str] = []
    current: ast.expr = expr
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return list(reversed(parts))
    return None


def _statements_in_body(
    node: ast.FunctionDef | ast.AsyncFunctionDef,
) -> Iterator[ast.stmt]:
    """Statements of a function body, not descending into nested defs/classes."""
    stack: list[ast.stmt] = list(node.body)
    while stack:
        statement = stack.pop()
        yield statement
        if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        stack.extend(
            child
            for child in ast.iter_child_nodes(statement)
            if isinstance(child, ast.stmt)
        )


def _calls_in_body(node: ast.FunctionDef | ast.AsyncFunctionDef) -> Iterator[ast.Call]:
    """Every Call in the function's own body (nested defs belong to themselves;
    lambdas and comprehensions belong to the enclosing function)."""
    stack: list[ast.AST] = list(node.body)
    while stack:
        current = stack.pop()
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        if isinstance(current, ast.Call):
            yield current
        stack.extend(ast.iter_child_nodes(current))
