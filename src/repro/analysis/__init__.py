"""Static invariant checker for the repro kernels.

The analyzer parses the package (no imports of analyzed code), builds an
intra-package call graph, and enforces the contracts the kernels rely on but
nothing previously guarded: iteration-only kernel closures (REC001), exact
arithmetic on exact routes (EXACT001), picklable pool submissions
(PICKLE001), process-stable cache keys and orderings (DET001), and slotted
node dataclasses (SLOTS001).  Configuration lives in ``[tool.repro-analysis]``
of pyproject.toml; inline escapes use ``# repro-analysis: allow(RULE): why``.

Run it with ``python -m repro.analysis`` or through :func:`analyze`.
"""

from repro.analysis.config import (
    AnalysisConfig,
    config_from_mapping,
    discover_config,
    load_config,
)
from repro.analysis.engine import AnalysisResult, analyze, analyze_modules
from repro.analysis.loader import AnalysisLoadError, ModuleInfo, load_paths
from repro.analysis.registry import AnalysisContext, all_rules, rule_ids
from repro.analysis.report import Finding, render_json, render_text

__all__ = [
    "AnalysisConfig",
    "AnalysisContext",
    "AnalysisLoadError",
    "AnalysisResult",
    "Finding",
    "ModuleInfo",
    "all_rules",
    "analyze",
    "analyze_modules",
    "config_from_mapping",
    "discover_config",
    "load_config",
    "load_paths",
    "render_json",
    "render_text",
    "rule_ids",
]
