"""REC001 — kernels must be iterative.

Bug class: the seed's clause-by-clause OBDD ``apply`` fold and the recursive
DNNF/circuit walks hit ``RecursionError`` at the length-2000 line instances
the paper's treelike-tractability claims are about (fixed in PR 4 by explicit
worklist kernels, and in PR 5 for the structural front-end).  Nothing kept
that property from regressing: one convenience helper written recursively and
reached from a kernel reintroduces the depth ceiling.

The rule builds the package call graph, finds every function on a call cycle
(direct or mutual recursion), and flags those reachable from a function
defined in a configured *root module* (default: the declared kernel modules).
Reference-oracle modules (``*/reference.py``) are allowlisted twice over:
their functions are never flagged, and reachability does not traverse through
them, so a kernel calling its recursive differential oracle is fine.

Options (``[tool.repro-analysis.rules.REC001]``):

* ``root-modules`` — fnmatch patterns of modules whose call closure must be
  iteration-only; defaults to the top-level ``kernel-modules``.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.analysis.config import matches_any
from repro.analysis.registry import AnalysisContext, register
from repro.analysis.report import Finding


@register
class NoRecursionRule:
    id = "REC001"
    title = "no recursion reachable from kernel modules"
    description = (
        "Kernel call closures must be iterative: recursion reintroduces the "
        "RecursionError depth ceiling on deep treelike instances."
    )

    def check(self, context: AnalysisContext) -> Iterator[Finding]:
        graph = context.callgraph
        config = context.config
        options = context.options_for(self.id)
        root_patterns: Iterable[str] = options.get(
            "root_modules", config.kernel_modules
        )
        if not root_patterns:
            return

        module_by_name = {module.name: module for module in context.modules}
        roots = [
            key
            for key, function in graph.functions.items()
            if matches_any(function.module, root_patterns)
            and not config.is_reference_module(function.module)
        ]
        recursive = graph.recursive_components()
        reachable = graph.reachable_from(roots, skip_module=config.is_reference_module)

        for key in sorted(recursive):
            if key not in reachable:
                continue
            function = graph.functions[key]
            if config.is_reference_module(function.module):
                continue
            module = module_by_name.get(function.module)
            if module is None:
                continue
            cycle = recursive[key]
            if len(cycle) == 1:
                shape = "calls itself"
            else:
                partners = ", ".join(
                    graph.functions[member].qualname for member in cycle if member != key
                )
                shape = f"is mutually recursive with {partners}"
            yield context.finding(
                self.id,
                module,
                function.ast_node,
                f"'{function.qualname}' {shape} and is reachable from a kernel "
                "module; rewrite with an explicit stack/worklist or add a "
                "justified suppression documenting the depth bound",
                symbol=function.qualname,
            )
