"""PICKLE001 — only picklable callables cross the process pool boundary.

Bug class: everything submitted to ``ParallelEngine``'s persistent
``multiprocessing`` pool (PR 3) is pickled under the ``spawn`` start method —
lambdas, functions nested inside other functions, and classes defined in a
local scope raise ``PicklingError`` only at runtime, only on platforms
without ``fork``, which is exactly how the bug escapes CI.  The shard runners
are module-level functions for this reason; this rule keeps it that way.

The rule inspects every pool submission site:

* attribute calls named like pool submissions (``map``, ``imap``,
  ``apply_async``, ``submit``, ...) — the callable is the first positional
  argument or the ``func=`` keyword;
* any call carrying a ``target=`` or ``initializer=`` keyword
  (``multiprocessing.Process``, ``Pool``);
* the accompanying ``args=`` / ``initargs=`` / ``iterable`` arguments, whose
  *elements* are scanned for lambdas.

A callable argument is flagged when it is a lambda, resolves to a function or
class defined inside another function, or is ``self.method`` of a class that
is itself not module-level.  Names the analyzer cannot resolve (parameters,
attributes of unknown objects) are not flagged.

Options (``[tool.repro-analysis.rules.PICKLE001]``):

* ``submit-methods`` — extra attribute names treated as submission sites.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.callgraph import CallGraph, FunctionNode
from repro.analysis.loader import ModuleInfo
from repro.analysis.registry import AnalysisContext, register
from repro.analysis.report import Finding

SUBMIT_METHODS = frozenset(
    {
        "map",
        "map_async",
        "imap",
        "imap_unordered",
        "starmap",
        "starmap_async",
        "apply",
        "apply_async",
        "submit",
    }
)

CALLABLE_KEYWORDS = frozenset({"func", "target", "initializer"})
TUPLE_KEYWORDS = frozenset({"args", "initargs", "iterable"})


@register
class ForkSafetyRule:
    id = "PICKLE001"
    title = "pool submissions must be picklable"
    description = (
        "Lambdas, nested functions, and local classes cannot cross the "
        "multiprocessing boundary under the spawn start method."
    )

    def check(self, context: AnalysisContext) -> Iterator[Finding]:
        options = context.options_for(self.id)
        submit_methods = SUBMIT_METHODS | frozenset(options.get("submit_methods", ()))
        graph = context.callgraph
        module_by_name = {module.name: module for module in context.modules}
        for key in sorted(graph.functions):
            function = graph.functions[key]
            if context.config.is_reference_module(function.module):
                continue
            module = module_by_name.get(function.module)
            if module is None:
                continue
            for call in _calls_directly_in(function.ast_node):
                yield from self._check_call(
                    context, module, graph, function, call, submit_methods
                )

    def _check_call(
        self,
        context: AnalysisContext,
        module: ModuleInfo,
        graph: CallGraph,
        function: FunctionNode,
        call: ast.Call,
        submit_methods: frozenset[str],
    ) -> Iterator[Finding]:
        candidates: list[tuple[ast.expr, str]] = []
        is_submission = isinstance(call.func, ast.Attribute) and call.func.attr in submit_methods
        if is_submission:
            if call.args:
                candidates.append((call.args[0], "submitted callable"))
        for keyword in call.keywords:
            if keyword.arg in CALLABLE_KEYWORDS:
                candidates.append((keyword.value, f"{keyword.arg}= callable"))
                is_submission = True
        if not is_submission:
            return
        site = (
            call.func.attr if isinstance(call.func, ast.Attribute) else "submission"
        )
        for expr, role in candidates:
            problem = _unpicklable_reason(graph, function, expr)
            if problem is not None:
                yield context.finding(
                    self.id,
                    module,
                    expr,
                    f"{role} of '{site}' {problem}; move it to module level "
                    "so it pickles under the spawn start method",
                    symbol=function.qualname,
                )
        # Lambdas hiding inside argument tuples/iterables are just as fatal.
        for keyword in call.keywords:
            if keyword.arg in TUPLE_KEYWORDS:
                yield from self._scan_payload(
                    context, module, function, keyword.value, site
                )
        if isinstance(call.func, ast.Attribute) and call.func.attr in submit_methods:
            for argument in call.args[1:]:
                yield from self._scan_payload(context, module, function, argument, site)

    def _scan_payload(
        self,
        context: AnalysisContext,
        module: ModuleInfo,
        function: FunctionNode,
        payload: ast.expr,
        site: str,
    ) -> Iterator[Finding]:
        for node in ast.walk(payload):
            if isinstance(node, ast.Lambda):
                yield context.finding(
                    self.id,
                    module,
                    node,
                    f"lambda inside the payload of '{site}' cannot be pickled "
                    "under the spawn start method",
                    symbol=function.qualname,
                )


def _unpicklable_reason(
    graph: CallGraph, scope: FunctionNode, expr: ast.expr
) -> str | None:
    if isinstance(expr, ast.Lambda):
        return "is a lambda, which cannot be pickled"
    if isinstance(expr, ast.Name):
        for frame in _scope_chain(graph, scope):
            if expr.id in frame.local_functions:
                return "is a function defined inside another function"
            if expr.id in frame.local_classes:
                return "is a class defined inside a function"
        return None
    if (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id == "self"
        and scope.class_key is not None
    ):
        class_node = graph.classes.get(scope.class_key)
        if class_node is not None and class_node.parent_function is not None:
            return "is a bound method of a class defined inside a function"
    return None


def _scope_chain(graph: CallGraph, scope: FunctionNode) -> Iterator[FunctionNode]:
    current: FunctionNode | None = scope
    while current is not None:
        yield current
        current = (
            graph.functions.get(current.parent_function)
            if current.parent_function
            else None
        )


def _calls_directly_in(
    node: ast.FunctionDef | ast.AsyncFunctionDef,
) -> Iterator[ast.Call]:
    stack: list[ast.AST] = list(node.body)
    while stack:
        current = stack.pop()
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        if isinstance(current, ast.Call):
            yield current
        stack.extend(ast.iter_child_nodes(current))
