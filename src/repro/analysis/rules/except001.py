"""EXCEPT001 — no blanket exception handlers in the engine modules.

Bug class: the resilience work (PR 8) made the engine's error *types* load-
bearing — the failover chain retries on :class:`~repro.errors.BudgetExceeded`
but re-raises :class:`~repro.errors.DeadlineExceeded`, and the crash-aware
pool retries worker-reported ``MemoryError`` / ``SegmentError`` while any
other error aborts the run.  A ``try: ... except Exception: pass`` anywhere
on those paths silently converts a typed, recoverable failure into a wrong
answer or a hang (the exact bug ``multiprocessing.Pool.map`` has: a dead
worker just never returns).  Broad handlers are occasionally *correct* — a
worker loop must survive any task failure to report it — but each one must
say why, as a justified inline suppression the analyzer can audit.

The rule flags every handler that catches ``Exception`` or ``BaseException``
(directly, in a tuple, or as a bare ``except:``) inside the configured
modules.  Handlers under a ``# repro-analysis: allow(EXCEPT001): <why>``
comment are filtered by the ordinary suppression machinery — the point of
the rule is that the justification becomes mandatory.

Options (``[tool.repro-analysis.rules.EXCEPT001]``):

* ``modules`` — fnmatch patterns of the modules held to this bar (defaults
  to the engine package and the resilience primitives).
* ``audit-modules`` / ``audit-names`` — a stricter tier for modules whose
  *narrow* handlers are themselves load-bearing: in an ``audit-modules``
  module, every handler catching one of the ``audit-names`` types (default
  ``OSError``) must carry a justified ``allow(EXCEPT001)`` suppression too.
  The persistent artifact store is the motivating case — each of its
  ``OSError`` handlers encodes a deliberate degradation decision (a failed
  write-behind is counted, a vanished file is a miss), and the audit makes
  the written justification mandatory rather than idiomatic.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.config import matches_any
from repro.analysis.registry import AnalysisContext, register
from repro.analysis.report import Finding

DEFAULT_MODULES = ("repro.engine*", "repro.resilience")

#: Default narrow types the audit tier holds to the justification bar.
DEFAULT_AUDIT_NAMES = ("OSError",)

_BROAD_NAMES = frozenset({"Exception", "BaseException"})


@register
class NarrowExceptionsRule:
    id = "EXCEPT001"
    title = "engine modules must catch typed errors"
    description = (
        "A blanket 'except Exception' on an engine path swallows the typed "
        "failures the failover and crash-recovery logic dispatches on; every "
        "deliberate one needs a justified suppression."
    )

    def check(self, context: AnalysisContext) -> Iterator[Finding]:
        options = context.options_for(self.id)
        patterns = tuple(options.get("modules", DEFAULT_MODULES))
        audit_patterns = tuple(options.get("audit-modules", ()))
        audit_names = frozenset(options.get("audit-names", DEFAULT_AUDIT_NAMES))
        for module in context.production_modules():
            flagged = matches_any(module.name, patterns)
            audited = audit_patterns and matches_any(module.name, audit_patterns)
            if not flagged and not audited:
                continue
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.ExceptHandler):
                    continue
                broad = _broad_catch(node.type)
                if flagged and broad is not None:
                    yield context.finding(
                        self.id,
                        module,
                        node,
                        f"handler catches {broad}, hiding the typed errors the "
                        "engine dispatches on (BudgetExceeded, DeadlineExceeded, "
                        "SegmentError, ...); catch the concrete types, or justify "
                        "with '# repro-analysis: allow(EXCEPT001): <why>'",
                    )
                    continue
                if not audited or broad is not None:
                    continue
                caught = _audited_catch(node.type, audit_names)
                if caught is None:
                    continue
                yield context.finding(
                    self.id,
                    module,
                    node,
                    f"audited module swallows {caught}: each such handler is a "
                    "deliberate degradation decision, so it must state its "
                    "contract with '# repro-analysis: allow(EXCEPT001): <why>'",
                )


def _broad_catch(annotation: ast.expr | None) -> str | None:
    """The broad name this handler catches, or None when it is typed."""
    if annotation is None:
        return "everything (bare except)"
    names = annotation.elts if isinstance(annotation, ast.Tuple) else [annotation]
    for expr in names:
        if isinstance(expr, ast.Name) and expr.id in _BROAD_NAMES:
            return expr.id
    return None


def _audited_catch(annotation: ast.expr | None, audit_names: frozenset) -> str | None:
    """The audited type name this handler catches, or None.

    Subclasses named directly (``FileNotFoundError``, ``PermissionError``)
    are deliberately *not* matched: catching the precise subtype already
    documents which failure is expected, so only the umbrella names listed
    in ``audit-names`` demand the written justification.
    """
    if annotation is None:
        return None
    names = annotation.elts if isinstance(annotation, ast.Tuple) else [annotation]
    for expr in names:
        if isinstance(expr, ast.Name) and expr.id in audit_names:
            return expr.id
    return None
