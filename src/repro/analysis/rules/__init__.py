"""The bundled rule set.

Importing this package registers every rule with the registry; each rule is
grounded in a bug class this repository has actually shipped and fixed (see
the module docstrings and README's "Static invariants" section).
"""

from repro.analysis.rules.rec001 import NoRecursionRule
from repro.analysis.rules.exact001 import ExactnessPurityRule
from repro.analysis.rules.except001 import NarrowExceptionsRule
from repro.analysis.rules.pickle001 import ForkSafetyRule
from repro.analysis.rules.det001 import DeterministicKeysRule
from repro.analysis.rules.slots001 import SlottedNodesRule

__all__ = [
    "NoRecursionRule",
    "ExactnessPurityRule",
    "NarrowExceptionsRule",
    "ForkSafetyRule",
    "DeterministicKeysRule",
    "SlottedNodesRule",
]
