"""DET001 — cache keys and orderings must be deterministic across processes.

Bug class: the sharded evaluation engine (PR 3) compares fingerprints and
merges caches computed in different worker processes.  ``repr`` of objects
without a ``__repr__`` embeds the object's memory address, ``id(...)`` *is*
the memory address, and iterating a ``set`` is hash-seed dependent — all three
produce values that differ between processes and between runs, so a cache key
or sort order built from them is silently nondeterministic.

The rule flags, in non-reference modules:

* ``key=repr`` / ``key=id`` passed to ``sorted`` / ``min`` / ``max`` /
  ``.sort`` — including lambdas whose body is exactly ``repr(param)`` or
  ``id(param)``;
* ``repr(...)`` / ``id(...)`` used inside a cache subscript or
  ``cache.get(...)`` / ``cache.setdefault(...)`` key (names matching
  ``*cache*`` / ``*memo*``) or passed to a fingerprint-named call;
* materializing a ``set`` (``tuple(set(...))`` / ``list({...})``) in those
  same key positions, which bakes hash-seed iteration order into the key.

The blessed idiom of this codebase — structural tuples like
``(type(x).__name__, repr(x))``, where ``repr`` disambiguates *within* a type
that defines a stable ``__repr__`` — is deliberately exempt: ``repr`` inside
a tuple that also mentions ``type(...).__name__`` is not flagged.

Options (``[tool.repro-analysis.rules.DET001]``):

* ``cache-names`` — extra fnmatch patterns for cache-like variable names;
* ``fingerprint-names`` — extra patterns for fingerprint-computing callables.
"""

from __future__ import annotations

import ast
from fnmatch import fnmatchcase
from typing import Iterator

from repro.analysis.loader import ModuleInfo
from repro.analysis.registry import AnalysisContext, register
from repro.analysis.report import Finding

SORT_FUNCTIONS = frozenset({"sorted", "min", "max"})
CACHE_NAME_PATTERNS = ("*cache*", "*memo*")
FINGERPRINT_NAME_PATTERNS = ("*fingerprint*", "*cache_key*", "*cachekey*")


@register
class DeterministicKeysRule:
    id = "DET001"
    title = "cache keys and sort orders must be process-stable"
    description = (
        "repr()/id() and set iteration are address- or hash-seed-dependent; "
        "keys built from them differ across worker processes."
    )

    def check(self, context: AnalysisContext) -> Iterator[Finding]:
        options = context.options_for(self.id)
        cache_patterns = CACHE_NAME_PATTERNS + tuple(options.get("cache_names", ()))
        fingerprint_patterns = FINGERPRINT_NAME_PATTERNS + tuple(
            options.get("fingerprint_names", ())
        )
        for module in context.production_modules():
            yield from self._check_module(
                context, module, cache_patterns, fingerprint_patterns
            )

    def _check_module(
        self,
        context: AnalysisContext,
        module: ModuleInfo,
        cache_patterns: tuple[str, ...],
        fingerprint_patterns: tuple[str, ...],
    ) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                yield from self._check_sort_call(context, module, node)
                yield from self._check_fingerprint_call(
                    context, module, node, fingerprint_patterns
                )
                yield from self._check_cache_method(
                    context, module, node, cache_patterns
                )
            elif isinstance(node, ast.Subscript):
                if _name_matches(node.value, cache_patterns):
                    yield from self._check_key_expr(
                        context, module, node.slice, "cache subscript key"
                    )

    def _check_sort_call(
        self, context: AnalysisContext, module: ModuleInfo, call: ast.Call
    ) -> Iterator[Finding]:
        func = call.func
        is_sort = (isinstance(func, ast.Name) and func.id in SORT_FUNCTIONS) or (
            isinstance(func, ast.Attribute) and func.attr == "sort"
        )
        if not is_sort:
            return
        for keyword in call.keywords:
            if keyword.arg != "key":
                continue
            offender = _unstable_sort_key(keyword.value)
            if offender is not None:
                yield context.finding(
                    self.id,
                    module,
                    keyword.value,
                    f"sort key '{offender}' is address-dependent and differs "
                    "across processes; use a structural key such as "
                    "(type(x).__name__, repr(x)) on types with stable reprs",
                )

    def _check_fingerprint_call(
        self,
        context: AnalysisContext,
        module: ModuleInfo,
        call: ast.Call,
        fingerprint_patterns: tuple[str, ...],
    ) -> Iterator[Finding]:
        if not _name_matches(call.func, fingerprint_patterns):
            return
        for argument in call.args:
            yield from self._check_key_expr(
                context, module, argument, "fingerprint input"
            )

    def _check_cache_method(
        self,
        context: AnalysisContext,
        module: ModuleInfo,
        call: ast.Call,
        cache_patterns: tuple[str, ...],
    ) -> Iterator[Finding]:
        func = call.func
        if not (
            isinstance(func, ast.Attribute)
            and func.attr in {"get", "setdefault", "pop"}
            and _name_matches(func.value, cache_patterns)
            and call.args
        ):
            return
        yield from self._check_key_expr(
            context, module, call.args[0], "cache lookup key"
        )

    def _check_key_expr(
        self,
        context: AnalysisContext,
        module: ModuleInfo,
        expr: ast.expr,
        role: str,
    ) -> Iterator[Finding]:
        for node in _walk_outside_blessed(expr):
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
                if node.func.id in {"repr", "id"}:
                    yield context.finding(
                        self.id,
                        module,
                        node,
                        f"{node.func.id}() in a {role} is address-dependent "
                        "and differs across processes; key on structural "
                        "identity instead",
                    )
                elif node.func.id in {"tuple", "list"} and node.args:
                    inner = node.args[0]
                    if isinstance(inner, (ast.Set, ast.SetComp)) or (
                        isinstance(inner, ast.Call)
                        and isinstance(inner.func, ast.Name)
                        and inner.func.id in {"set", "frozenset"}
                    ):
                        yield context.finding(
                            self.id,
                            module,
                            node,
                            f"materializing a set in a {role} bakes hash-seed "
                            "iteration order into the key; sort it first",
                        )


def _unstable_sort_key(expr: ast.expr) -> str | None:
    if isinstance(expr, ast.Name) and expr.id in {"repr", "id"}:
        return expr.id
    if isinstance(expr, ast.Lambda):
        body = expr.body
        params = {
            argument.arg
            for argument in (*expr.args.posonlyargs, *expr.args.args)
        }
        if (
            isinstance(body, ast.Call)
            and isinstance(body.func, ast.Name)
            and body.func.id in {"repr", "id"}
            and len(body.args) == 1
            and isinstance(body.args[0], ast.Name)
            and body.args[0].id in params
            and not body.keywords
        ):
            return f"lambda: {body.func.id}(...)"
    return None


def _walk_outside_blessed(expr: ast.expr) -> Iterator[ast.AST]:
    """Walk ``expr`` but skip tuples using the blessed structural-key idiom."""
    stack: list[ast.AST] = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, ast.Tuple) and _is_blessed_tuple(node):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _is_blessed_tuple(node: ast.Tuple) -> bool:
    """True for tuples pairing ``repr(x)`` with ``type(...).__name__``."""
    has_type_name = False
    for element in node.elts:
        if (
            isinstance(element, ast.Attribute)
            and element.attr == "__name__"
            and isinstance(element.value, ast.Call)
            and isinstance(element.value.func, ast.Name)
            and element.value.func.id == "type"
        ):
            has_type_name = True
    return has_type_name


def _name_matches(expr: ast.expr, patterns: tuple[str, ...]) -> bool:
    name = _trailing_name(expr)
    if name is None:
        return False
    lowered = name.lower()
    return any(fnmatchcase(lowered, pattern) for pattern in patterns)


def _trailing_name(expr: ast.expr) -> str | None:
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        return expr.attr
    return None
