"""EXACT001 — exact probability routes stay in exact arithmetic.

Bug class: PR 3 found Karp–Luby's union-bound scaling and the dissociation
bounds drifting because ``Fraction`` values leaked through ``float``
operations; the differential oracle only caught it at runtime on lucky seeds.
Every route advertised as exact must compute with ``Fraction`` (or integers)
end to end — the single deliberate exception is the ``obdd_float`` fast path
of the fused sweep kernel, which is declared in configuration rather than
discovered.

Inside each declared exact-route function the rule flags:

* ``float`` literals (``0.5``, ``1e-9``);
* ``float(...)`` casts;
* ``math.*`` calls and constants, except the integer-exact allowlist
  (``isqrt``, ``comb``, ``factorial``, ``gcd``, ...) — ``math`` arithmetic is
  IEEE-754 arithmetic;
* true division ``/`` unless both operands are provably exact and at least
  one is a ``Fraction``: ``int / int`` is a float in disguise, and
  ``Fraction / unknown`` silently degrades when the unknown is a float.
  (``Fraction(a, b)`` or ``//`` are the exact spellings.)

Operand types come from a deliberately small local inference: parameter and
variable annotations, literals, and direct ``Fraction(...)`` / ``int``-y
assignments in the same function.

Options (``[tool.repro-analysis.rules.EXACT001]``):

* ``exact-modules`` — module patterns whose every function is an exact route;
* ``exact-functions`` — additional ``module:Qual.name`` function patterns;
* ``allow-functions`` — function patterns exempted (the declared float fast
  path);
* ``int-safe-math`` — extra ``math`` members to treat as exact.
"""

from __future__ import annotations

import ast
from typing import Iterator, Mapping

from repro.analysis.callgraph import FunctionNode
from repro.analysis.config import matches_any
from repro.analysis.loader import ModuleInfo
from repro.analysis.registry import AnalysisContext, register
from repro.analysis.report import Finding

INT_SAFE_MATH = frozenset(
    {"isqrt", "comb", "perm", "factorial", "gcd", "lcm", "floor", "ceil", "trunc"}
)

# The tiny abstract domain of the local type inference.
_FRACTION = "fraction"
_INT = "int"
_FLOAT = "float"
_UNKNOWN = "unknown"

_EXACT = frozenset({_FRACTION, _INT})

_INT_CALLS = frozenset({"int", "len", "sum", "abs", "round", "ord", "hash"})


@register
class ExactnessPurityRule:
    id = "EXACT001"
    title = "exact routes must stay in Fraction/integer arithmetic"
    description = (
        "Declared exact probability routes may not touch float literals, "
        "float() casts, math.* arithmetic, or inexact true division."
    )

    def check(self, context: AnalysisContext) -> Iterator[Finding]:
        options = context.options_for(self.id)
        exact_modules = tuple(options.get("exact_modules", ()))
        exact_functions = tuple(options.get("exact_functions", ()))
        allow_functions = tuple(options.get("allow_functions", ()))
        int_safe = INT_SAFE_MATH | frozenset(options.get("int_safe_math", ()))
        if not exact_modules and not exact_functions:
            return

        graph = context.callgraph
        module_by_name = {module.name: module for module in context.modules}
        matched: list[FunctionNode] = []
        for key, function in graph.functions.items():
            if matches_any(key, allow_functions) or _ancestor_allowed(
                function, allow_functions, graph.functions
            ):
                continue
            if context.config.is_reference_module(function.module):
                continue
            if matches_any(function.module, exact_modules) or matches_any(
                key, exact_functions
            ):
                matched.append(function)
        # Nested functions whose enclosing function is already matched are
        # checked as part of the parent walk; drop them to avoid duplicates.
        matched_keys = {function.key for function in matched}
        roots = [
            function
            for function in matched
            if not _ancestor_matched(function, matched_keys, graph.functions)
        ]
        allow = allow_functions
        for function in sorted(roots, key=lambda f: (f.module, f.lineno)):
            module = module_by_name.get(function.module)
            if module is None:
                continue
            yield from self._check_function(context, module, function, allow, int_safe)

    def _check_function(
        self,
        context: AnalysisContext,
        module: ModuleInfo,
        function: FunctionNode,
        allow_functions: tuple[str, ...],
        int_safe: frozenset[str],
    ) -> Iterator[Finding]:
        types = _local_types(function.ast_node)
        for node in _walk_route(function, allow_functions):
            if isinstance(node, ast.Constant) and type(node.value) is float:
                yield context.finding(
                    self.id,
                    module,
                    node,
                    f"float literal {node.value!r} in exact route "
                    f"'{function.qualname}'; use Fraction",
                    symbol=function.qualname,
                )
            elif isinstance(node, ast.Call):
                finding = self._check_call(context, module, function, node, int_safe)
                if finding is not None:
                    yield finding
            elif isinstance(node, ast.Attribute) and _is_math_member(node):
                if node.attr not in int_safe:
                    yield context.finding(
                        self.id,
                        module,
                        node,
                        f"math.{node.attr} in exact route '{function.qualname}' "
                        "is IEEE-754 arithmetic; use exact integer/Fraction forms",
                        symbol=function.qualname,
                    )
            elif isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
                left = _classify(node.left, types)
                right = _classify(node.right, types)
                exact_division = (
                    left in _EXACT
                    and right in _EXACT
                    and _FRACTION in (left, right)
                )
                if not exact_division:
                    yield context.finding(
                        self.id,
                        module,
                        node,
                        f"true division ({left} / {right}) in exact route "
                        f"'{function.qualname}' is not provably exact; use "
                        "Fraction(numerator, denominator) or //",
                        symbol=function.qualname,
                    )

    def _check_call(
        self,
        context: AnalysisContext,
        module: ModuleInfo,
        function: FunctionNode,
        node: ast.Call,
        int_safe: frozenset[str],
    ) -> Finding | None:
        func = node.func
        if isinstance(func, ast.Name) and func.id == "float":
            return context.finding(
                self.id,
                module,
                node,
                f"float() cast in exact route '{function.qualname}'",
                symbol=function.qualname,
            )
        return None


def _ancestor_allowed(
    function: FunctionNode,
    allow_functions: tuple[str, ...],
    functions: Mapping[str, FunctionNode],
) -> bool:
    """True when any enclosing function is allowlisted (nested defs inherit)."""
    parent_key = function.parent_function
    while parent_key is not None:
        if matches_any(parent_key, allow_functions):
            return True
        parent = functions.get(parent_key)
        parent_key = parent.parent_function if parent is not None else None
    return False


def _ancestor_matched(
    function: FunctionNode,
    matched_keys: set[str],
    functions: Mapping[str, FunctionNode],
) -> bool:
    parent_key = function.parent_function
    while parent_key is not None:
        if parent_key in matched_keys:
            return True
        parent = functions.get(parent_key)
        parent_key = parent.parent_function if parent is not None else None
    return False


def _walk_route(
    function: FunctionNode, allow_functions: tuple[str, ...]
) -> Iterator[ast.AST]:
    """The function body including nested defs, minus allowlisted nested defs."""
    stack: list[ast.AST] = list(function.ast_node.body)
    module = function.module
    prefix = f"{function.qualname}.<locals>."
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            nested_key = f"{module}:{prefix}{node.name}"
            if matches_any(nested_key, allow_functions):
                continue
            stack.extend(node.body)
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _is_math_member(node: ast.Attribute) -> bool:
    return isinstance(node.value, ast.Name) and node.value.id == "math"


def _local_types(
    node: ast.FunctionDef | ast.AsyncFunctionDef,
) -> dict[str, str]:
    """name -> abstract type, from annotations and direct assignments."""
    types: dict[str, str] = {}

    def note(name: str, inferred: str) -> None:
        seen = types.get(name)
        if seen is None:
            types[name] = inferred
        elif seen != inferred:
            types[name] = _UNKNOWN

    arguments = node.args
    for argument in (*arguments.posonlyargs, *arguments.args, *arguments.kwonlyargs):
        if argument.annotation is not None:
            inferred = _annotation_type(argument.annotation)
            if inferred is not None:
                note(argument.arg, inferred)
    for statement in ast.walk(node):
        if isinstance(statement, ast.AnnAssign) and isinstance(statement.target, ast.Name):
            inferred = _annotation_type(statement.annotation)
            if inferred is not None:
                note(statement.target.id, inferred)
        elif isinstance(statement, ast.Assign):
            for target in statement.targets:
                if isinstance(target, ast.Name):
                    note(target.id, _classify(statement.value, {}))
    return types


def _annotation_type(annotation: ast.expr) -> str | None:
    if isinstance(annotation, ast.Name):
        return {"Fraction": _FRACTION, "int": _INT, "float": _FLOAT, "bool": _INT}.get(
            annotation.id
        )
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        return {"Fraction": _FRACTION, "int": _INT, "float": _FLOAT}.get(
            annotation.value.strip()
        )
    return None


def _classify(expr: ast.expr, types: Mapping[str, str]) -> str:
    """Abstract type of an expression under the local environment."""
    if isinstance(expr, ast.Constant):
        if isinstance(expr.value, bool) or isinstance(expr.value, int):
            return _INT
        if type(expr.value) is float:
            return _FLOAT
        return _UNKNOWN
    if isinstance(expr, ast.Name):
        return types.get(expr.id, _UNKNOWN)
    if isinstance(expr, ast.Call):
        func = expr.func
        if isinstance(func, ast.Name):
            if func.id == "Fraction":
                return _FRACTION
            if func.id in _INT_CALLS:
                return _INT
            if func.id == "float":
                return _FLOAT
        return _UNKNOWN
    if isinstance(expr, ast.UnaryOp):
        return _classify(expr.operand, types)
    if isinstance(expr, ast.BinOp):
        left = _classify(expr.left, types)
        right = _classify(expr.right, types)
        if isinstance(expr.op, ast.Div):
            if left == _FRACTION and right in _EXACT:
                return _FRACTION
            if right == _FRACTION and left in _EXACT:
                return _FRACTION
            return _UNKNOWN
        if isinstance(expr.op, (ast.Add, ast.Sub, ast.Mult, ast.Pow, ast.FloorDiv, ast.Mod)):
            if _FLOAT in (left, right):
                return _FLOAT
            if _UNKNOWN in (left, right):
                return _UNKNOWN
            if _FRACTION in (left, right):
                return _FRACTION
            return _INT
        return _UNKNOWN
    if isinstance(expr, ast.IfExp):
        body = _classify(expr.body, types)
        orelse = _classify(expr.orelse, types)
        return body if body == orelse else _UNKNOWN
    return _UNKNOWN
