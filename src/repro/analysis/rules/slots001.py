"""SLOTS001 — kernel node/gate dataclasses declare ``slots=True``.

Bug class: the sweep-based kernels (PR 4/5) allocate millions of OBDD/d-DNNF
nodes per instance; an unslotted dataclass carries a per-instance ``__dict__``
that roughly triples memory and defeats the compact node-table layout the
kernels depend on.  Worse, a ``__dict__`` lets stray attributes be attached
to supposedly-immutable structure nodes, bypassing the value-semantics the
unique tables assume.

The rule looks at ``@dataclass`` classes in the configured kernel modules
whose names match the node/gate patterns and requires ``slots=True``; classes
matching the frozen patterns (the hash-consed structure nodes) must also say
``frozen=True``, matching their siblings.

Options (``[tool.repro-analysis.rules.SLOTS001]``):

* ``modules`` — module patterns to enforce in (default: ``kernel-modules``);
* ``class-patterns`` — class-name patterns that must be slotted;
* ``frozen-patterns`` — class-name patterns that must also be frozen.
"""

from __future__ import annotations

import ast
from fnmatch import fnmatchcase
from typing import Iterator

from repro.analysis.config import matches_any
from repro.analysis.registry import AnalysisContext, register
from repro.analysis.report import Finding

CLASS_PATTERNS = ("*Node", "Node*", "*Gate", "Gate*", "*Result")
FROZEN_PATTERNS = ("*Node*", "*Gate*")


@register
class SlottedNodesRule:
    id = "SLOTS001"
    title = "kernel node dataclasses must be slotted"
    description = (
        "Node/gate dataclasses in kernel modules need slots=True (and "
        "frozen=True for hash-consed structure nodes) to keep the node "
        "tables compact and immutable."
    )

    def check(self, context: AnalysisContext) -> Iterator[Finding]:
        options = context.options_for(self.id)
        module_patterns = tuple(options.get("modules", context.config.kernel_modules))
        class_patterns = tuple(options.get("class_patterns", CLASS_PATTERNS))
        frozen_patterns = tuple(options.get("frozen_patterns", FROZEN_PATTERNS))
        if not module_patterns:
            return
        for module in context.production_modules():
            if not matches_any(module.name, module_patterns):
                continue
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.ClassDef):
                    continue
                if not any(
                    fnmatchcase(node.name, pattern) for pattern in class_patterns
                ):
                    continue
                flags = _dataclass_flags(node)
                if flags is None:
                    continue
                if not flags.get("slots", False):
                    yield context.finding(
                        self.id,
                        module,
                        node,
                        f"dataclass '{node.name}' in kernel module "
                        f"'{module.name}' must declare slots=True: an "
                        "unslotted node carries a __dict__ per instance",
                        symbol=node.name,
                    )
                if any(
                    fnmatchcase(node.name, pattern) for pattern in frozen_patterns
                ) and not flags.get("frozen", False):
                    yield context.finding(
                        self.id,
                        module,
                        node,
                        f"dataclass '{node.name}' is a structure node and must "
                        "declare frozen=True like its hash-consed siblings",
                        symbol=node.name,
                    )


def _dataclass_flags(node: ast.ClassDef) -> dict[str, bool] | None:
    """Keyword flags of the ``@dataclass`` decorator, or None if not one."""
    for decorator in node.decorator_list:
        if isinstance(decorator, ast.Name) and decorator.id == "dataclass":
            return {}
        if isinstance(decorator, ast.Attribute) and decorator.attr == "dataclass":
            return {}
        if isinstance(decorator, ast.Call):
            func = decorator.func
            is_dataclass = (
                isinstance(func, ast.Name) and func.id == "dataclass"
            ) or (isinstance(func, ast.Attribute) and func.attr == "dataclass")
            if is_dataclass:
                flags: dict[str, bool] = {}
                for keyword in decorator.keywords:
                    if keyword.arg is not None and isinstance(
                        keyword.value, ast.Constant
                    ):
                        flags[keyword.arg] = bool(keyword.value.value)
                return flags
    return None
