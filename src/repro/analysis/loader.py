"""Module discovery and AST loading.

The analyzer works on a *package tree on disk* (it never imports the code it
checks, so a broken or import-cycling module can still be analyzed).  Given
paths — package directories or single files — the loader finds every ``*.py``
file, derives the dotted module name by walking up through ``__init__.py``
markers, and parses each file once into a shared :class:`ModuleInfo` that the
call-graph builder and every rule consume.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence


class AnalysisLoadError(Exception):
    """A file could not be read or parsed."""


@dataclass(frozen=True)
class ModuleInfo:
    """One parsed source module."""

    name: str
    path: Path
    source: str
    tree: ast.Module
    lines: tuple[str, ...]
    is_package: bool

    @property
    def package(self) -> str:
        """The package this module's relative imports resolve against."""
        if self.is_package:
            return self.name
        head, _, _ = self.name.rpartition(".")
        return head


def package_root(directory: Path) -> Path:
    """The directory *containing* the topmost package around ``directory``."""
    current = directory.resolve()
    while (current / "__init__.py").exists() and current.parent != current:
        current = current.parent
    return current


def module_name_for(py_file: Path, root: Path) -> str:
    relative = py_file.resolve().relative_to(root).with_suffix("")
    parts = list(relative.parts)
    if parts and parts[-1] == "__init__":
        parts.pop()
    if not parts:
        raise AnalysisLoadError(f"cannot derive a module name for {py_file}")
    return ".".join(parts)


def load_file(py_file: Path, root: Path | None = None) -> ModuleInfo:
    if root is None:
        root = package_root(py_file.parent)
    try:
        source = py_file.read_text(encoding="utf-8")
    except OSError as error:
        raise AnalysisLoadError(f"cannot read {py_file}: {error}") from error
    try:
        tree = ast.parse(source, filename=str(py_file))
    except SyntaxError as error:
        raise AnalysisLoadError(f"cannot parse {py_file}: {error}") from error
    return ModuleInfo(
        name=module_name_for(py_file, root),
        path=py_file.resolve(),
        source=source,
        tree=tree,
        lines=tuple(source.splitlines()),
        is_package=py_file.name == "__init__.py",
    )


def iter_python_files(path: Path) -> Iterable[Path]:
    if path.is_file():
        if path.suffix == ".py":
            yield path
        return
    yield from sorted(path.rglob("*.py"))


def load_paths(paths: Sequence[Path | str]) -> list[ModuleInfo]:
    """Load every module under ``paths``, de-duplicated, in a stable order."""
    modules: dict[Path, ModuleInfo] = {}
    for raw in paths:
        path = Path(raw)
        if not path.exists():
            raise AnalysisLoadError(f"no such file or directory: {path}")
        for py_file in iter_python_files(path):
            resolved = py_file.resolve()
            if resolved not in modules:
                modules[resolved] = load_file(resolved)
    return sorted(modules.values(), key=lambda m: m.name)
