"""An independent validity checker for tree and path decompositions.

The production classes carry their own ``validate`` methods, but an oracle
that shares code with the thing it checks is no oracle at all.  This module
re-derives the three defining conditions of a tree decomposition (Section 2
of the paper) from scratch, on a neutral representation:

* **vertex coverage** — every graph vertex occurs in some bag;
* **edge coverage** — both endpoints of every graph edge share some bag;
* **connectivity** — for each vertex, the bags containing it induce a
  connected subtree (for paths: a contiguous interval);

plus the structural sanity of the tree itself (the bag graph is acyclic and
connected).  :func:`decomposition_errors` reports every violated condition;
:func:`is_valid_decomposition` is the boolean view used by the test suites.
"""

from __future__ import annotations

from typing import Hashable

from repro.structure.graph import Graph
from repro.structure.path_decomposition import PathDecomposition
from repro.structure.tree_decomposition import TreeDecomposition


def _as_bag_tree(decomposition) -> tuple[dict[Hashable, frozenset], list[tuple]]:
    """Normalize either decomposition kind into (bags, undirected tree edges)."""
    if isinstance(decomposition, PathDecomposition):
        bags = {i: bag for i, bag in enumerate(decomposition.bags)}
        edges = [(i, i + 1) for i in range(len(bags) - 1)]
        return bags, edges
    if isinstance(decomposition, TreeDecomposition):
        bags = dict(decomposition.bags)
        edges = [
            (node, kid) for node, kids in decomposition.children.items() for kid in kids
        ]
        return bags, edges
    raise TypeError(
        f"expected a TreeDecomposition or PathDecomposition, got {type(decomposition).__name__}"
    )


def decomposition_errors(decomposition, graph: Graph) -> list[str]:
    """Every violated decomposition condition, as human-readable strings.

    An empty list means the decomposition is valid for ``graph``.
    """
    bags, edges = _as_bag_tree(decomposition)
    errors: list[str] = []
    if not bags:
        if len(graph) == 0:
            return []
        return ["decomposition has no bags but the graph has vertices"]

    # Structural sanity: the bag graph is a tree (connected and acyclic).
    adjacency: dict[Hashable, set] = {node: set() for node in bags}
    usable_edges = 0
    for a, b in edges:
        if a not in bags or b not in bags:
            errors.append(f"tree edge ({a!r}, {b!r}) mentions an unknown bag")
            continue
        adjacency[a].add(b)
        adjacency[b].add(a)
        usable_edges += 1
    start = next(iter(bags))
    seen = {start}
    stack = [start]
    while stack:
        for other in adjacency[stack.pop()]:
            if other not in seen:
                seen.add(other)
                stack.append(other)
    if seen != set(bags):
        errors.append("bag graph is not connected")
    elif usable_edges != len(bags) - 1:
        errors.append("bag graph has a cycle (|edges| != |bags| - 1)")

    # Vertex coverage.
    covered = set()
    for bag in bags.values():
        covered |= bag
    for vertex in graph.vertices:
        if vertex not in covered:
            errors.append(f"vertex {vertex!r} is in no bag")

    # Edge coverage.
    for u, v in graph.edges():
        if not any(u in bag and v in bag for bag in bags.values()):
            errors.append(f"edge ({u!r}, {v!r}) is covered by no bag")

    # Connectivity of occurrences: the bags containing each vertex must form
    # a connected subgraph of the bag tree.
    for vertex in graph.vertices:
        occurrences = {node for node, bag in bags.items() if vertex in bag}
        if not occurrences:
            continue  # already reported as a coverage error
        start = next(iter(occurrences))
        seen = {start}
        stack = [start]
        while stack:
            for other in adjacency[stack.pop()]:
                if other in occurrences and other not in seen:
                    seen.add(other)
                    stack.append(other)
        if seen != occurrences:
            errors.append(f"occurrences of vertex {vertex!r} are not connected")

    return errors


def is_valid_decomposition(decomposition, graph: Graph) -> bool:
    """True when the decomposition satisfies all conditions for ``graph``."""
    return not decomposition_errors(decomposition, graph)
