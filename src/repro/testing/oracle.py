"""The differential probability oracle.

The paper's central redundancy — many independent routes compute the same
query probability on treelike instances — is what makes the codebase
differentially testable.  :class:`ProbabilityOracle` evaluates one
``(query, TID instance)`` pair through every applicable route and checks:

* **exact agreement** — brute-force world enumeration, OBDD compilation,
  the columnar (structure-of-arrays) sweep, d-DNNF compilation, the ``auto``
  dispatcher (and optionally the tree-automaton dynamic program, object or
  columnar) must return the *same*
  :class:`~fractions.Fraction`, compared exactly, never through ``float``.
  Brute force is the fully independent reference (as are the automaton and
  lifted-inference routes when they run); the compiled routes share the
  lineage-compilation pipeline, so their agreement additionally guards the
  engine's caching, not just the algorithms;
* **safe plans** — when ``is_liftable`` holds, both lifted routes (the
  compiled plan executor and the recursive reference) must agree exactly
  with the others — an :class:`~repro.errors.UnsafeQueryError` there is a
  *disagreement with the verdict*, never a skip; when the query is not
  liftable, both routes must raise :class:`UnsafeQueryError` (a wrong
  success is also a verdict disagreement) and the routes are recorded as
  skipped;
* **guaranteed intervals** — the dissociation bounds must contain the exact
  value (an unconditional theorem), and the seeded Karp–Luby estimate must
  fall within its Hoeffding interval around the exact value (a probabilistic
  guarantee made deterministic by the fixed seed).

Any violation raises :class:`OracleDisagreement` carrying the per-route
values, so a failing differential test prints exactly which backends fell
apart and by how much.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Iterable, Sequence

from repro.data.tid import ProbabilisticInstance
from repro.engine import CompilationEngine
from repro.errors import ReproError
from repro.probability.approximation import (
    DissociationBounds,
    dissociation_bounds,
    karp_luby_probability,
)
from repro.probability.evaluation import probability
from repro.probability.safe_plans import UnsafeQueryError, is_liftable
from repro.queries.cq import ConjunctiveQuery
from repro.queries.ucq import UnionOfConjunctiveQueries, as_ucq
from repro.testing.workloads import WorkloadCase

Query = UnionOfConjunctiveQueries | ConjunctiveQuery

DEFAULT_EXACT_METHODS = ("brute_force", "obdd", "columnar", "dnnf", "auto")


class OracleDisagreement(ReproError):
    """Two probability routes disagreed (or a guaranteed bound was violated)."""

    def __init__(self, message: str, report: "OracleReport" | None = None) -> None:
        super().__init__(message)
        self.report = report


@dataclass
class OracleReport:
    """Everything the oracle computed for one case."""

    name: str
    query: UnionOfConjunctiveQueries
    tid: ProbabilisticInstance
    exact_values: dict[str, Fraction] = field(default_factory=dict)
    bounds: DissociationBounds | None = None
    karp_luby_estimate: float | None = None
    karp_luby_tolerance: float | None = None
    skipped: tuple[str, ...] = ()

    @property
    def reference_method(self) -> str:
        """Which exact route anchors the comparison (brute force when run)."""
        if "brute_force" in self.exact_values:
            return "brute_force"
        if not self.exact_values:
            # An explicit error, not a bare StopIteration: the latter would be
            # silently swallowed as exhaustion by generator-driven pipelines.
            raise ReproError("oracle report has no exact route to anchor on")
        return next(iter(self.exact_values))

    @property
    def reference(self) -> Fraction:
        """The agreed exact value (the brute-force one when available)."""
        return self.exact_values[self.reference_method]

    def disagreements(self) -> list[str]:
        """Every violated consistency condition (empty means all routes agree)."""
        problems: list[str] = []
        reference = self.reference
        anchor = self.reference_method
        for method, value in self.exact_values.items():
            if value != reference:
                problems.append(
                    f"{method} returned {value}, {anchor} returned {reference}"
                )
        if self.bounds is not None:
            if not self.bounds.contains(reference):
                problems.append(
                    f"exact value {reference} outside dissociation bounds "
                    f"[{self.bounds.lower}, {self.bounds.upper}]"
                )
        if self.karp_luby_estimate is not None and self.karp_luby_tolerance is not None:
            error = abs(self.karp_luby_estimate - float(reference))
            if error > self.karp_luby_tolerance:
                problems.append(
                    f"Karp-Luby estimate {self.karp_luby_estimate:.6f} misses the exact "
                    f"value {float(reference):.6f} by {error:.6f} "
                    f"(> tolerance {self.karp_luby_tolerance:.6f})"
                )
        return problems

    def assert_consistent(self) -> None:
        problems = self.disagreements()
        if problems:
            raise OracleDisagreement(
                f"oracle case {self.name!r} on query {self.query}: " + "; ".join(problems),
                report=self,
            )


class ProbabilityOracle:
    """Cross-check every probability backend on one case at a time.

    Parameters
    ----------
    exact_methods:
        Exact routes to run (method names of
        :func:`repro.probability.evaluation.probability`).  Brute force is
        the reference; the default adds the OBDD, columnar, d-DNNF, and
        ``auto`` routes.  Add ``"automaton"`` (or ``"automaton_columnar"``)
        for the (slower) tree-automaton dynamic program.
    include_safe_plan:
        Also check the lifted tier: on liftable queries both lifted routes
        (compiled plan and recursive reference) must agree exactly; on
        non-liftable queries both must raise — so every case exercises the
        ``is_liftable`` iff-contract in one direction or the other.
    karp_luby_samples / karp_luby_delta:
        Effort and confidence for the Karp–Luby check; the tolerance is the
        Hoeffding radius for that effort, scaled by the (exact) union bound
        the estimator itself reports.  The default delta of 1e-6 keeps the
        per-case false-alarm probability negligible even across the
        thousands of fresh-seeded cases a nightly sweep runs (the radius
        only grows as sqrt(log(1/delta))).  ``karp_luby_samples=0`` disables
        the check.
    engine:
        A shared :class:`CompilationEngine` serving the compiled routes (one
        is created when omitted), so checking many queries against one
        instance reuses its decompositions and fact orders.
    """

    def __init__(
        self,
        exact_methods: Sequence[str] = DEFAULT_EXACT_METHODS,
        include_safe_plan: bool = True,
        karp_luby_samples: int = 400,
        karp_luby_delta: float = 1e-6,
        karp_luby_seed: int = 0,
        engine: CompilationEngine | None = None,
    ) -> None:
        self.exact_methods = tuple(exact_methods)
        if not self.exact_methods:
            raise ReproError(
                "ProbabilityOracle needs at least one exact method to anchor "
                "the differential comparison"
            )
        self.include_safe_plan = include_safe_plan
        self.karp_luby_samples = karp_luby_samples
        self.karp_luby_delta = karp_luby_delta
        self.karp_luby_seed = karp_luby_seed
        self.engine = engine if engine is not None else CompilationEngine()

    # Routes served from the shared engine's cached artifact chain.  The
    # obdd and auto routes deliberately share it (they also test that cached
    # artifacts stay consistent); dnnf, brute force, automaton, and safe
    # plans are evaluated one-shot, on freshly built artifacts.  Note the
    # compiled routes still share the compilation *pipeline* — the genuinely
    # independent algorithms are brute force, the automaton dynamic program,
    # and lifted inference.
    _ENGINE_METHODS = frozenset({"auto", "obdd", "columnar", "read_once"})

    def check(
        self, query: Query, tid: ProbabilisticInstance, name: str = "case"
    ) -> OracleReport:
        """Run every route on one pair; raise :class:`OracleDisagreement` on
        any mismatch, return the full report otherwise."""
        query = as_ucq(query)
        report = OracleReport(name=name, query=query, tid=tid)
        skipped: list[str] = []
        for method in self.exact_methods:
            engine = self.engine if method in self._ENGINE_METHODS else None
            report.exact_values[method] = probability(query, tid, method=method, engine=engine)
        if self.include_safe_plan:
            liftable = is_liftable(query)
            for method in ("safe_plan", "safe_plan_reference"):
                if liftable:
                    # The verdict contract: is_liftable promised success, so
                    # an UnsafeQueryError here IS a disagreement, not a skip.
                    try:
                        report.exact_values[method] = probability(query, tid, method=method)
                    except UnsafeQueryError as error:
                        raise OracleDisagreement(
                            f"oracle case {name!r}: is_liftable is True but "
                            f"{method} raised UnsafeQueryError: {error}",
                            report=report,
                        ) from error
                else:
                    try:
                        probability(query, tid, method=method)
                    except UnsafeQueryError:
                        skipped.append(method)
                    else:
                        raise OracleDisagreement(
                            f"oracle case {name!r}: is_liftable is False but "
                            f"{method} evaluated the query without raising",
                            report=report,
                        )
        lineage = self.engine.lineage(query, tid.instance)
        report.bounds = dissociation_bounds(lineage, tid)
        if self.karp_luby_samples > 0:
            estimate = karp_luby_probability(
                lineage, tid, samples=self.karp_luby_samples, seed=self.karp_luby_seed
            )
            radius = math.sqrt(
                math.log(2.0 / self.karp_luby_delta) / (2.0 * self.karp_luby_samples)
            )
            # The estimator reports the exact union bound it scaled by; using
            # it (rather than re-deriving one) keeps the tolerance glued to
            # the estimator's actual scaling.
            report.karp_luby_estimate = estimate.estimate
            report.karp_luby_tolerance = float(estimate.union_bound) * radius
        else:
            skipped.append("karp_luby")
        report.skipped = tuple(skipped)
        report.assert_consistent()
        return report

    def check_case(self, case: WorkloadCase) -> OracleReport:
        """Check one :class:`~repro.testing.workloads.WorkloadCase`."""
        return self.check(case.query, case.tid, name=str(case))

    def check_many(self, cases: Iterable[WorkloadCase]) -> list[OracleReport]:
        """Check a whole workload; the first disagreement aborts the run."""
        return [self.check_case(case) for case in cases]
