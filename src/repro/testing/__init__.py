"""repro.testing — the differential-oracle subsystem.

The library computes one quantity — the probability of a UCQ≠ on a
tuple-independent database — through many independent routes (brute-force
world enumeration, OBDD and d-DNNF compilation, the tree-automaton dynamic
program, lifted inference on safe queries, Karp–Luby sampling, dissociation
bounds).  This package turns that redundancy into infrastructure:

* :class:`ProbabilityOracle` evaluates one ``(query, instance)`` pair
  through every applicable route, asserts the exact routes agree as
  :class:`~fractions.Fraction` values, and asserts the approximate routes
  respect their guaranteed intervals;
* :func:`random_workload` produces seeded, reproducible ``(query, TID)``
  cases over the library's own treelike generator families;
* :func:`is_valid_decomposition` / :func:`decomposition_errors` check tree
  and path decompositions independently of the production ``validate``
  methods;
* :mod:`repro.testing.faults` injects deterministic faults (worker kills,
  stragglers, allocation failures, segment sabotage) into the parallel
  engine, so the chaos tests can assert recovery *and* exactness via the
  oracle.

``tests/test_differential.py`` and ``tests/test_structure_oracle.py`` drive
these against every backend; ``examples/differential_testing.py`` shows the
API.
"""

from repro.testing.decompositions import decomposition_errors, is_valid_decomposition
from repro.testing.faults import (
    DISK_FAULT_KINDS,
    FAULT_KINDS,
    FaultInjector,
    FaultPlan,
    WorkerFaults,
    apply_parent_segment_faults,
    consume_token,
)
from repro.testing.oracle import (
    DEFAULT_EXACT_METHODS,
    OracleDisagreement,
    OracleReport,
    ProbabilityOracle,
)
from repro.testing.workloads import (
    DEFAULT_FAMILIES,
    WorkloadCase,
    random_cq,
    random_dyadic_probabilities,
    random_query,
    random_safe_cq,
    random_safe_query,
    random_safe_workload,
    random_workload,
    workload_pairs,
)

__all__ = [
    "DEFAULT_EXACT_METHODS",
    "DEFAULT_FAMILIES",
    "DISK_FAULT_KINDS",
    "FAULT_KINDS",
    "FaultInjector",
    "FaultPlan",
    "OracleDisagreement",
    "OracleReport",
    "ProbabilityOracle",
    "WorkerFaults",
    "WorkloadCase",
    "apply_parent_segment_faults",
    "consume_token",
    "decomposition_errors",
    "is_valid_decomposition",
    "random_cq",
    "random_dyadic_probabilities",
    "random_query",
    "random_safe_cq",
    "random_safe_query",
    "random_safe_workload",
    "random_workload",
    "workload_pairs",
]
