"""Deterministic fault injection for the parallel engine (chaos tests).

The injector answers one question precisely: *when exactly N faults of a
kind fire somewhere in a multi-process run, does the engine still return
exact answers and clean state?*  Determinism across processes is the hard
part — a seeded RNG per worker would make fault counts depend on how the
scheduler distributed tasks — so the plan is a **token directory**: arming
a fault drops N token files, and every injection site consumes a token by
``os.unlink``, which the filesystem makes atomic.  Exactly N firings happen
across all workers, respawns included, no matter how the tasks were
scheduled; tests then assert recovery and exactness without caring *which*
worker was hit.

Fault kinds (see :data:`FAULT_KINDS`):

* ``worker_kill`` — the worker ``SIGKILL``s itself at task start (a hard
  crash: no reply, no cleanup; exercises sentinel detection, respawn, the
  shard retry, and the per-pid segment sweep);
* ``slow_kernel`` — the worker sleeps ``slow_seconds`` at task start (a
  straggler, not an error; nothing should be retried);
* ``alloc_fail`` — the worker raises ``MemoryError`` after computing its
  shard but before replying (work lost, worker alive; exercises the
  retryable-error path);
* ``segment_corrupt`` — the parent scribbles over a just-published reweight
  segment (attachers hit the columnar topology check and report
  :class:`~repro.errors.SegmentError`; exercises republish-and-retry);
* ``segment_unlink`` — the parent unlinks a just-published reweight segment
  (attachers find nothing; same recovery path).

Disk fault kinds, consumed by :class:`repro.store.ArtifactStore` when built
with ``fault_plan=...`` (the chaos-disk suite in ``tests/test_store_faults.py``
proves every one still yields oracle-checked exact answers):

* ``disk_torn_write`` — the store commits a half-written entry under its
  live name (a crash after the rename was queued but before the data blocks
  landed); the next load's verification must quarantine it;
* ``disk_bit_flip`` — one payload byte of the entry is flipped just before
  a load (silent media corruption); the checksum must catch it;
* ``disk_enospc`` — the entry write raises ``OSError(ENOSPC)`` (disk
  full); write-behind persistence is best-effort, so the query must still
  answer from the in-memory artifact with ``write_failures`` counted;
* ``lock_steal`` — the store's ``.lock`` file is unlinked right after an
  acquisition (an external janitor); the inode-checked steal detection
  must notice and re-acquire.

Wiring: build a :class:`FaultInjector`, ``arm`` faults, and pass
``injector.plan`` as ``ParallelEngine(fault_plan=...)``.  The plan is a
tiny picklable value object; workers instantiate :class:`WorkerFaults`
around it inside their loop, the parent consults
:func:`apply_parent_segment_faults` when publishing reweight segments.
With ``fault_plan=None`` (production) none of these hooks exist.
"""

from __future__ import annotations

import os
import shutil
import signal
import tempfile
import time
from dataclasses import dataclass

from repro.errors import ReproError

#: Every fault kind the injector can arm.
FAULT_KINDS: tuple[str, ...] = (
    "worker_kill",
    "slow_kernel",
    "alloc_fail",
    "segment_corrupt",
    "segment_unlink",
    "disk_torn_write",
    "disk_bit_flip",
    "disk_enospc",
    "lock_steal",
)

#: The subset the persistent artifact store consumes (chaos-disk suite).
DISK_FAULT_KINDS: tuple[str, ...] = (
    "disk_torn_write",
    "disk_bit_flip",
    "disk_enospc",
    "lock_steal",
)


@dataclass(frozen=True, slots=True)
class FaultPlan:
    """The picklable fault description shipped to workers.

    ``token_dir`` holds the armed fault tokens; ``slow_seconds`` is the
    straggler delay of the ``slow_kernel`` fault.
    """

    token_dir: str
    slow_seconds: float = 0.25


def consume_token(plan: FaultPlan, kind: str) -> bool:
    """Atomically consume one ``kind`` token; True when one was armed.

    The ``unlink`` succeeds in exactly one of any number of racing
    processes, so N armed tokens yield exactly N firings run-wide.
    """
    try:
        names = sorted(os.listdir(plan.token_dir))
    except FileNotFoundError:
        return False
    for name in names:
        if name.startswith(f"{kind}-"):
            try:
                os.unlink(os.path.join(plan.token_dir, name))
            except FileNotFoundError:
                continue  # another process won this token; try the next
            return True
    return False


class FaultInjector:
    """Parent-side controller: arm faults, inspect leftovers, clean up."""

    def __init__(self, token_dir: str | None = None, slow_seconds: float = 0.25) -> None:
        if token_dir is None:
            token_dir = tempfile.mkdtemp(prefix="repro-faults-")
        os.makedirs(token_dir, exist_ok=True)
        self.plan = FaultPlan(token_dir=token_dir, slow_seconds=slow_seconds)
        self._serial = 0

    def arm(self, kind: str, count: int = 1) -> None:
        """Drop ``count`` tokens of ``kind`` (fires exactly that often)."""
        if kind not in FAULT_KINDS:
            raise ReproError(f"unknown fault kind {kind!r}; use one of {FAULT_KINDS}")
        if count < 1:
            raise ReproError("fault count must be at least 1")
        for _ in range(count):
            self._serial += 1
            path = os.path.join(self.plan.token_dir, f"{kind}-{self._serial:06d}")
            with open(path, "x"):
                pass

    def armed(self, kind: str) -> int:
        """How many ``kind`` tokens have not fired yet."""
        try:
            names = os.listdir(self.plan.token_dir)
        except FileNotFoundError:
            return 0
        return sum(1 for name in names if name.startswith(f"{kind}-"))

    def cleanup(self) -> None:
        """Remove the token directory (and any unfired tokens)."""
        shutil.rmtree(self.plan.token_dir, ignore_errors=True)

    def __enter__(self) -> "FaultInjector":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.cleanup()


class WorkerFaults:
    """Worker-side injection hooks, called by the pool's worker loop."""

    __slots__ = ("plan",)

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan

    def on_task_start(self) -> None:
        """Fire start-of-task faults: hard kill, or straggler sleep."""
        if consume_token(self.plan, "worker_kill"):
            # A real crash, not an exception: no reply reaches the parent,
            # no cleanup runs, published segments are orphaned.
            os.kill(os.getpid(), signal.SIGKILL)
        if consume_token(self.plan, "slow_kernel"):
            time.sleep(self.plan.slow_seconds)

    def before_result(self) -> None:
        """Fire end-of-task faults: allocation failure after the work."""
        if consume_token(self.plan, "alloc_fail"):
            raise MemoryError("injected allocation failure")


def apply_parent_segment_faults(plan: FaultPlan, handle) -> None:
    """Parent-side segment sabotage, applied right after a publish.

    ``segment_unlink`` removes the segment (attachers see it absent);
    ``segment_corrupt`` overwrites the head of the ``var`` column with an
    out-of-range level, which the columnar topology check rejects on
    attach.  Both surface worker-side as the retryable
    :class:`~repro.errors.SegmentError`.
    """
    from multiprocessing import shared_memory

    if handle.name is None:
        return
    if consume_token(plan, "segment_unlink"):
        try:
            segment = shared_memory.SharedMemory(name=handle.name)
        except FileNotFoundError:
            return
        segment.close()
        segment.unlink()
        return
    if consume_token(plan, "segment_corrupt"):
        try:
            segment = shared_memory.SharedMemory(name=handle.name)
        except FileNotFoundError:
            return
        try:
            # var[0] = -1: impossible level, rejected by _check_topology.
            segment.buf[:8] = (-1).to_bytes(8, "little", signed=True)
        finally:
            segment.close()
