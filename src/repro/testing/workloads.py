"""Seeded random workloads for differential testing.

Builds ``(query, probabilistic instance)`` cases on top of the library's own
generators — labelled partial k-trees (treewidth ≤ 2), labelled lines, small
grids, and random trees — paired with random conjunctive queries (and small
unions) over the instance's signature, and random dyadic probabilities.
Everything is driven by one ``random.Random(seed)``, so a workload is fully
reproducible from its seed and every case carries the seed that produced it.

Instances are deliberately tiny (the brute-force route of the oracle
enumerates all ``2^n`` possible worlds); the ``max_facts`` knob trades
coverage for time.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from fractions import Fraction
from typing import Iterable, Sequence

from repro.data.instance import Instance
from repro.data.signature import Signature
from repro.data.tid import ProbabilisticInstance
from repro.generators import (
    grid_instance,
    labelled_line_instance,
    labelled_partial_ktree_instance,
    random_tree_instance,
    rst_chain_instance,
)
from repro.queries.atoms import Atom, Disequality, Variable
from repro.queries.cq import ConjunctiveQuery
from repro.queries.ucq import UnionOfConjunctiveQueries, as_ucq, ucq

DEFAULT_FAMILIES = ("ktree", "line", "grid", "tree", "rst_chain")


@dataclass(frozen=True)
class WorkloadCase:
    """One differential-testing case: a query on a TID instance."""

    name: str
    query: UnionOfConjunctiveQueries
    tid: ProbabilisticInstance
    seed: int

    def __str__(self) -> str:
        return f"{self.name}[seed={self.seed}]: {self.query}"


def random_cq(
    signature: Signature,
    generator: random.Random,
    max_atoms: int = 3,
    max_variables: int = 3,
    disequality_probability: float = 0.15,
) -> ConjunctiveQuery:
    """A random Boolean CQ≠ over ``signature``.

    Atom count and variable pool sizes are drawn uniformly; arguments are
    drawn uniformly from the pool, so self-joins, repeated variables, and
    disconnected queries all occur.  With ``disequality_probability`` a
    disequality between two distinct used variables is added.
    """
    relations = list(signature)
    variables = [Variable(f"x{i}") for i in range(1, max_variables + 1)]
    atom_count = generator.randint(1, max_atoms)
    atoms = []
    for _ in range(atom_count):
        relation = generator.choice(relations)
        arguments = tuple(generator.choice(variables) for _ in range(relation.arity))
        atoms.append(Atom(relation.name, arguments))
    used = sorted({v for a in atoms for v in a.variables()})
    disequalities: tuple[Disequality, ...] = ()
    if len(used) >= 2 and generator.random() < disequality_probability:
        left, right = generator.sample(used, 2)
        disequalities = (Disequality(left, right),)
    return ConjunctiveQuery(tuple(atoms), disequalities)


def random_query(
    signature: Signature,
    generator: random.Random,
    max_atoms: int = 3,
    max_variables: int = 3,
    union_probability: float = 0.3,
) -> UnionOfConjunctiveQueries:
    """A random UCQ≠: one CQ≠, or (with ``union_probability``) a union of two."""
    first = random_cq(signature, generator, max_atoms, max_variables)
    if generator.random() < union_probability:
        second = random_cq(signature, generator, max_atoms, max_variables)
        return ucq([first, second])
    return as_ucq(first)


def random_dyadic_probabilities(
    instance: Instance,
    generator: random.Random,
    denominator: int = 8,
) -> ProbabilisticInstance:
    """Random probabilities ``k/denominator`` (including 0 and 1) on each fact."""
    valuation = {
        f: Fraction(generator.randint(0, denominator), denominator) for f in instance
    }
    return ProbabilisticInstance(instance, valuation)


def _family_instance(family: str, generator: random.Random, max_facts: int) -> Instance:
    """A small instance from the named family, trimmed to ``max_facts`` facts."""
    if family == "ktree":
        instance = labelled_partial_ktree_instance(
            generator.randint(3, 6), generator.choice((1, 2)), seed=generator.randrange(10**6)
        )
    elif family == "line":
        n = generator.randint(2, 5)
        labelled = [generator.random() < 0.7 for _ in range(n)]
        instance = labelled_line_instance(n, labelled)
    elif family == "grid":
        instance = grid_instance(2, generator.randint(2, 3))
    elif family == "tree":
        instance = random_tree_instance(
            generator.randint(3, 7), seed=generator.randrange(10**6)
        )
    elif family == "rst_chain":
        instance = rst_chain_instance(generator.randint(1, 3))
    else:
        raise ValueError(f"unknown workload family {family!r}")
    if len(instance) > max_facts:
        facts = sorted(instance.facts, key=str)
        generator.shuffle(facts)
        instance = Instance(facts[:max_facts], instance.signature)
    return instance


def random_workload(
    count: int,
    seed: int = 0,
    families: Sequence[str] = DEFAULT_FAMILIES,
    max_facts: int = 8,
    max_atoms: int = 3,
    max_variables: int = 3,
) -> list[WorkloadCase]:
    """``count`` seeded random cases cycling through the instance families.

    Each case pairs a family instance (at most ``max_facts`` facts, so the
    brute-force oracle stays cheap) with a random UCQ≠ over that instance's
    signature and random dyadic probabilities.
    """
    master = random.Random(seed)
    cases: list[WorkloadCase] = []
    for index in range(count):
        case_seed = master.randrange(10**9)
        generator = random.Random(case_seed)
        family = families[index % len(families)]
        instance = _family_instance(family, generator, max_facts)
        query = random_query(instance.signature, generator, max_atoms, max_variables)
        tid = random_dyadic_probabilities(instance, generator)
        cases.append(WorkloadCase(name=family, query=query, tid=tid, seed=case_seed))
    return cases


def random_safe_cq(
    generator: random.Random,
    max_atoms: int = 3,
    max_variables: int = 3,
    relation_prefix: str = "L",
) -> ConjunctiveQuery:
    """A random *guaranteed-liftable* self-join-free hierarchical CQ.

    Each atom's variable set is a prefix of the chain ``x1, ..., xk`` and
    relation symbols never repeat, so variable occurrence sets are nested
    (hierarchical) and every projection step finds a root — the query admits
    a lifted plan by construction.
    """
    variables = [Variable(f"x{i}") for i in range(1, max_variables + 1)]
    atom_count = generator.randint(1, max_atoms)
    atoms = []
    for index in range(atom_count):
        depth = generator.randint(1, max_variables)
        arguments = tuple(variables[:depth])
        atoms.append(Atom(f"{relation_prefix}{index}_{depth}", arguments))
    return ConjunctiveQuery(tuple(atoms))


def random_safe_query(
    generator: random.Random,
    max_atoms: int = 3,
    max_variables: int = 3,
    union_probability: float = 0.4,
) -> UnionOfConjunctiveQueries:
    """A random guaranteed-liftable UCQ.

    One safe CQ, or (with ``union_probability``) a union of two: either a
    homomorphically-redundant renamed copy of the first disjunct (exercising
    minimization — the union must still be liftable after coring) or a
    second safe CQ over disjoint relation symbols (exercising genuine
    inclusion–exclusion with independent terms).
    """
    first = random_safe_cq(generator, max_atoms, max_variables, relation_prefix="L")
    if generator.random() >= union_probability:
        return as_ucq(first)
    if generator.random() < 0.5:
        renaming = {v: Variable(f"{v.name}_r") for v in first.variables()}
        return ucq([first, first.rename_variables(renaming)])
    second = random_safe_cq(generator, max_atoms, max_variables, relation_prefix="M")
    return ucq([first, second])


def random_safe_workload(
    count: int,
    seed: int = 0,
    max_facts: int = 8,
    max_atoms: int = 3,
    max_variables: int = 3,
) -> list[WorkloadCase]:
    """``count`` seeded cases whose queries are liftable by construction.

    Instances are random facts over the query's own relations (each
    ``L{i}_{d}`` filled with tuples over a small domain), with random dyadic
    probabilities; every case's query satisfies ``is_liftable``, which the
    lifted tests assert as a sanity check on the generator itself.
    """
    from repro.data.instance import Fact

    master = random.Random(seed)
    cases: list[WorkloadCase] = []
    for index in range(count):
        case_seed = master.randrange(10**9)
        generator = random.Random(case_seed)
        query = random_safe_query(generator, max_atoms, max_variables)
        relations = sorted(
            {(a.relation, a.arity) for disjunct in query.disjuncts for a in disjunct.atoms}
        )
        domain = list(range(generator.randint(2, 3)))
        facts: list[Fact] = []
        for relation, arity in relations:
            tuples = {
                tuple(generator.choice(domain) for _ in range(arity))
                for _ in range(generator.randint(1, 3))
            }
            facts.extend(Fact(relation, arguments) for arguments in tuples)
        generator.shuffle(facts)
        instance = Instance(facts[:max_facts])
        tid = random_dyadic_probabilities(instance, generator)
        cases.append(WorkloadCase(name="safe", query=query, tid=tid, seed=case_seed))
    return cases


def workload_pairs(
    cases: Iterable[WorkloadCase],
) -> list[tuple[UnionOfConjunctiveQueries, ProbabilisticInstance]]:
    """The ``(query, tid)`` view of a workload, as consumed by the engines."""
    return [(case.query, case.tid) for case in cases]
