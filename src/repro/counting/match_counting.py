"""MSO match counting on treelike instances (Section 5.3, Theorem 5.7).

The match-counting problem asks, for an MSO formula q(X) with a free
second-order variable, how many interpretations A of X make the instance
satisfy q(A).  The upper bound of Theorem 5.7 (from [4]) is that this is
ra-linear on bounded-treewidth instances.

We instantiate the machinery on the classical representative used throughout
the literature: counting the sets A that are *independent sets* of the
instance's Gaifman graph (the formula q(X) saying "no two adjacent elements
are both in X").  Two implementations are provided:

* brute force over all subsets of the domain (the oracle);
* dynamic programming over a tree decomposition, linear in the instance for
  fixed width, exactly the Theorem 5.7 upper-bound algorithm specialized to
  this q.

A generic brute-force counter for arbitrary set predicates is also exposed for
experimentation with other MSO properties.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

from repro.data.gaifman import gaifman_graph
from repro.data.instance import Instance
from repro.structure.graph import Graph
from repro.structure.tree_decomposition import TreeDecomposition, tree_decomposition


def count_assignments_brute_force(
    instance: Instance, predicate: Callable[[Instance, frozenset], bool]
) -> int:
    """Count subsets A of the domain with predicate(instance, A) true (exponential)."""
    domain = list(instance.domain)
    if len(domain) > 20:
        raise ValueError("too many domain elements for brute-force assignment counting")
    count = 0
    for mask in range(1 << len(domain)):
        subset = frozenset(domain[i] for i in range(len(domain)) if mask >> i & 1)
        if predicate(instance, subset):
            count += 1
    return count


def is_independent_set(graph: Graph, subset: Iterable[Any]) -> bool:
    chosen = set(subset)
    return all(not (u in chosen and v in chosen) for u, v in graph.edges())


def count_independent_sets_brute_force(instance: Instance) -> int:
    graph = gaifman_graph(instance)
    return count_assignments_brute_force(
        instance, lambda _, subset: is_independent_set(graph, subset)
    )


def count_independent_sets_treewidth_dp(
    instance: Instance, decomposition: TreeDecomposition | None = None
) -> int:
    """Count independent sets of the Gaifman graph by DP over a tree decomposition.

    State at a bag: the subset of bag vertices chosen to be in A.  Each vertex
    is "decided" at every bag containing it, consistently, and counted exactly
    once thanks to the standard introduce/forget bookkeeping: when combining a
    child, assignments must agree on the shared vertices, and vertices private
    to the child's subtree have already been summed out.
    """
    graph = gaifman_graph(instance)
    if len(graph) == 0:
        return 1
    if decomposition is None:
        decomposition = tree_decomposition(graph)

    def solve(node: int) -> dict[frozenset, int]:
        bag = decomposition.bags[node]
        bag_list = sorted(bag, key=lambda v: (type(v).__name__, repr(v)))
        # All independent assignments of the bag itself.
        states: dict[frozenset, int] = {}
        for mask in range(1 << len(bag_list)):
            chosen = frozenset(bag_list[i] for i in range(len(bag_list)) if mask >> i & 1)
            if is_independent_set(graph.subgraph(bag), chosen):
                states[chosen] = 1
        for child in decomposition.children.get(node, []):
            child_states = solve(child)
            child_bag = decomposition.bags[child]
            shared = bag & child_bag
            # Sum the child's counts by the assignment of the shared vertices.
            summed: dict[frozenset, int] = {}
            for child_chosen, count in child_states.items():
                key = frozenset(child_chosen & shared)
                summed[key] = summed.get(key, 0) + count
            merged: dict[frozenset, int] = {}
            for chosen, count in states.items():
                key = frozenset(chosen & shared)
                if key in summed:
                    merged[chosen] = merged.get(chosen, 0) + count * summed[key]
            states = merged
        return states

    # Vertices not covered by the root bag have been summed out along the way;
    # the answer is the sum over root-bag assignments.
    root_states = solve(decomposition.root)
    counted = set()
    for bag in decomposition.bags.values():
        counted |= bag
    uncovered = set(graph.vertices) - counted
    result = sum(root_states.values())
    return result << len(uncovered)


def count_independent_sets(instance: Instance, method: str = "treewidth") -> int:
    """Count independent sets of the instance's Gaifman graph."""
    if method == "brute_force":
        return count_independent_sets_brute_force(instance)
    if method == "treewidth":
        return count_independent_sets_treewidth_dp(instance)
    raise ValueError(f"unknown counting method {method!r}")


def count_dominating_sets_brute_force(instance: Instance) -> int:
    """Count dominating sets (another MSO-definable match-counting example)."""
    graph = gaifman_graph(instance)

    def dominating(_, subset: frozenset) -> bool:
        chosen = set(subset)
        return all(v in chosen or (graph.neighbors(v) & chosen) for v in graph.vertices)

    return count_assignments_brute_force(instance, dominating)
