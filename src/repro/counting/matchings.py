"""Counting matchings of a graph (the hard problem behind Theorem 4.2).

A matching is a set of edges with no two incident edges.  Counting matchings
is #P-hard already on planar 3-regular graphs [52]; the hardness proof of
Theorem 4.2 reduces it to probability evaluation of the query q_h.  We provide
three independent implementations and the reduction itself:

* brute force over edge subsets (exponential; the testing oracle);
* dynamic programming over a tree decomposition of the graph (exponential in
  the treewidth only — the standard treelike-counting algorithm, which is also
  the Section 5.3 upper bound machinery specialized to matchings);
* via the probabilistic pipeline: matchings of G are exactly the possible
  worlds on which the "no two incident kept edges" property holds, so their
  number is the property's model count (footnote 3 of the paper).
"""

from __future__ import annotations

from typing import Iterable

from repro.data.instance import Instance
from repro.generators.grids import graph_to_instance
from repro.structure.graph import Graph, Vertex
from repro.structure.tree_decomposition import TreeDecomposition, tree_decomposition


def is_matching(graph: Graph, edges: Iterable[tuple[Vertex, Vertex]]) -> bool:
    """Check that the given edge set is a matching of the graph."""
    used: set[Vertex] = set()
    for u, v in edges:
        if not graph.has_edge(u, v):
            return False
        if u in used or v in used:
            return False
        used.add(u)
        used.add(v)
    return True


def count_matchings_brute_force(graph: Graph) -> int:
    """Count matchings by enumerating all edge subsets (small graphs only)."""
    edges = graph.edges()
    if len(edges) > 22:
        raise ValueError("too many edges for brute-force matching counting")
    count = 0
    for mask in range(1 << len(edges)):
        chosen = [edges[i] for i in range(len(edges)) if mask >> i & 1]
        if is_matching(graph, chosen):
            count += 1
    return count


def count_matchings_treewidth_dp(graph: Graph, decomposition: TreeDecomposition | None = None) -> int:
    """Count matchings by dynamic programming over a tree decomposition.

    State at a bag: the subset of bag vertices already saturated (matched) by
    edges introduced below.  Each edge is counted at its topmost covering bag.
    Complexity ``O(|T| * 4^{width})`` — linear in the graph for fixed width.
    """
    if len(graph) == 0:
        return 1
    if decomposition is None:
        decomposition = tree_decomposition(graph)
    order = decomposition.topological_order()
    position = {node: index for index, node in enumerate(order)}
    edges_at: dict[int, list[tuple[Vertex, Vertex]]] = {node: [] for node in decomposition.nodes()}
    for u, v in graph.edges():
        covering = [node for node in order if u in decomposition.bags[node] and v in decomposition.bags[node]]
        topmost = min(covering, key=lambda node: position[node])
        edges_at[topmost].append((u, v))

    def solve(node: int) -> dict[frozenset, int]:
        bag = decomposition.bags[node]
        # Combine children: vertices shared with a child keep their saturation
        # status; children cannot both saturate a shared vertex.
        states: dict[frozenset, int] = {frozenset(): 1}
        for child in decomposition.children.get(node, []):
            child_states = solve(child)
            child_bag = decomposition.bags[child]
            merged: dict[frozenset, int] = {}
            for saturated, count in states.items():
                for child_saturated, child_count in child_states.items():
                    # Saturated vertices leaving the child's bag are dropped;
                    # the ones still in this bag must not clash.
                    projected = frozenset(child_saturated & bag)
                    if projected & saturated:
                        continue
                    key = saturated | projected
                    merged[key] = merged.get(key, 0) + count * child_count
            states = merged
        # Introduce the edges attached to this bag, in all compatible ways.
        for u, v in edges_at[node]:
            updated: dict[frozenset, int] = {}
            for saturated, count in states.items():
                updated[saturated] = updated.get(saturated, 0) + count  # edge not taken
                if u not in saturated and v not in saturated:
                    key = saturated | {u, v}
                    updated[key] = updated.get(key, 0) + count  # edge taken
            states = updated
        return states

    root_states = solve(decomposition.root)
    return sum(root_states.values())


def count_matchings_via_lineage(graph: Graph) -> int:
    """Count matchings through the probabilistic pipeline (the Theorem 4.2 reduction).

    The matchings of G are the possible worlds of the edge-instance of G on
    which no two incident edges are kept, i.e. the models of the
    ``matching_world_automaton`` property; their number is obtained from the
    probability of the property under the all-1/2 valuation.
    """
    from repro.probability.model_counting import property_model_count
    from repro.provenance.mso_properties import matching_world_automaton

    instance = graph_to_instance(graph)
    return property_model_count(matching_world_automaton(), instance)


def count_matchings(graph: Graph, method: str = "treewidth") -> int:
    """Count the matchings of a graph with the selected method."""
    if method == "brute_force":
        return count_matchings_brute_force(graph)
    if method == "treewidth":
        return count_matchings_treewidth_dp(graph)
    if method == "lineage":
        return count_matchings_via_lineage(graph)
    raise ValueError(f"unknown matching counting method {method!r}")


def count_matchings_of_instance(instance: Instance, relation: str | None = None) -> int:
    """Count the matchings of the Gaifman graph of an instance restricted to binary facts."""
    graph = Graph()
    for f in instance:
        if f.arity == 2 and (relation is None or f.relation == relation):
            u, v = f.arguments
            graph.add_edge(u, v)
    return count_matchings_treewidth_dp(graph)
