"""Counting problems used in the paper's reductions and match-counting results."""

from repro.counting.hamiltonian import count_hamiltonian_cycles, has_hamiltonian_cycle
from repro.counting.match_counting import (
    count_assignments_brute_force,
    count_dominating_sets_brute_force,
    count_independent_sets,
    count_independent_sets_brute_force,
    count_independent_sets_treewidth_dp,
    is_independent_set,
)
from repro.counting.matchings import (
    count_matchings,
    count_matchings_brute_force,
    count_matchings_of_instance,
    count_matchings_treewidth_dp,
    count_matchings_via_lineage,
    is_matching,
)

__all__ = [
    "count_assignments_brute_force",
    "count_dominating_sets_brute_force",
    "count_hamiltonian_cycles",
    "count_independent_sets",
    "count_independent_sets_brute_force",
    "count_independent_sets_treewidth_dp",
    "count_matchings",
    "count_matchings_brute_force",
    "count_matchings_of_instance",
    "count_matchings_treewidth_dp",
    "count_matchings_via_lineage",
    "has_hamiltonian_cycle",
    "is_independent_set",
    "is_matching",
]
