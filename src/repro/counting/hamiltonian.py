"""Counting Hamiltonian cycles (the hard problem of Theorem 5.7).

The match-counting dichotomy of Section 5.3 reduces from counting Hamiltonian
cycles in planar 3-regular graphs [41].  We provide a brute-force counter used
by the match-counting benchmark to cross-check the treelike upper bound on the
small graphs we can afford.
"""

from __future__ import annotations

from itertools import permutations

from repro.structure.graph import Graph


def count_hamiltonian_cycles(graph: Graph) -> int:
    """Number of Hamiltonian cycles (as undirected vertex cycles, each counted once).

    Brute force over vertex permutations with the first vertex pinned and the
    two traversal directions identified; suitable for graphs of at most ~10
    vertices.
    """
    vertices = sorted(graph.vertices, key=lambda v: (type(v).__name__, repr(v)))
    n = len(vertices)
    if n < 3:
        return 0
    if n > 10:
        raise ValueError("too many vertices for brute-force Hamiltonian cycle counting")
    first = vertices[0]
    rest = vertices[1:]
    count = 0
    for permutation in permutations(rest):
        cycle = (first, *permutation)
        if all(graph.has_edge(cycle[i], cycle[(i + 1) % n]) for i in range(n)):
            count += 1
    return count // 2  # each undirected cycle is counted in both directions


def has_hamiltonian_cycle(graph: Graph) -> bool:
    """Whether the graph has a Hamiltonian cycle (brute force, small graphs)."""
    return count_hamiltonian_cycles(graph) > 0
