"""Cooperative deadlines and resource budgets for the exact kernels.

The tractability guarantees of the dichotomy hold only on the safe /
bounded-treewidth side; a route chosen by the router can still blow up on a
real workload (an OBDD explodes past the cost model's estimate, a lifted
plan enumerates far more rows than predicted).  This module is the *leaf*
layer of the resilience subsystem: a :class:`Deadline` (wall clock) and a
:class:`ResourceBudget` (node / row caps around a deadline) that the kernels
consult at cooperative checkpoints —

* :meth:`repro.booleans.obdd.OBDD.make_node` charges one node per unique
  allocation, which covers ``build_from_clauses``, every ``apply``, and
  every restriction through the single hash-consing choke point;
* the fused sweeps (object and columnar) tick the wall clock every few
  thousand nodes;
* the lifted executor charges one row per enumerated candidate fact.

Exhaustion raises the *typed* errors :class:`repro.errors.BudgetExceeded`
and :class:`repro.errors.DeadlineExceeded` — an aborted evaluation never
returns a partial value.  Budget caps are **per attempt** (the router's
failover chain calls :meth:`ResourceBudget.reset_usage` between routes);
the deadline is global to the call.

Activation is ambient, not threaded through every kernel signature: the
engine activates a budget around an evaluation (:func:`activate`), the
kernels read the module global :data:`ACTIVE` with a cheap ``is not None``
test on their hot paths, and nested activations restore the previous budget
on exit.  The design is deliberately single-threaded per process — workers
in :class:`repro.engine.parallel.ParallelEngine` each own their process and
therefore their own ambient slot.

This module sits *below* :mod:`repro.engine` (it imports only the error
hierarchy) so the kernels can use it without importing the engine package;
:mod:`repro.engine.resilience` re-exports everything here and adds the
engine-level failover and degradation machinery on top.
"""

from __future__ import annotations

from contextlib import AbstractContextManager, contextmanager
from time import monotonic
from typing import Iterator

from repro.errors import BudgetExceeded, CompilationError, DeadlineExceeded

#: How many charged units pass between wall-clock consultations; one
#: ``monotonic()`` call per interval keeps the checkpoint overhead on the
#: allocation path well under the benchmark gate.
CHECK_INTERVAL = 1024


class Deadline:
    """A wall-clock instant after which :meth:`check` raises.

    Built from :func:`time.monotonic` so system clock adjustments cannot
    fire (or defer) it; compare :meth:`remaining` for introspection.
    """

    __slots__ = ("expires_at",)

    def __init__(self, expires_at: float) -> None:
        self.expires_at = float(expires_at)

    @classmethod
    def after(cls, seconds: float) -> "Deadline":
        """The deadline ``seconds`` from now (must be positive)."""
        if seconds <= 0:
            raise CompilationError("deadline seconds must be positive")
        return cls(monotonic() + float(seconds))

    def remaining(self) -> float:
        """Seconds left (negative once expired)."""
        return self.expires_at - monotonic()

    def expired(self) -> bool:
        return monotonic() >= self.expires_at

    def check(self) -> None:
        """Raise :class:`~repro.errors.DeadlineExceeded` once expired."""
        overshoot = monotonic() - self.expires_at
        if overshoot >= 0:
            raise DeadlineExceeded(
                f"wall-clock deadline exceeded by {overshoot:.3f}s"
            )

    def __repr__(self) -> str:
        return f"Deadline(remaining={self.remaining():.3f}s)"


class ResourceBudget:
    """Caps on the work one evaluation attempt may perform.

    ``node_limit`` bounds OBDD node *allocations* (unique-table inserts:
    reduced and hash-consed, so re-derived nodes are free); ``row_limit``
    bounds the rows the lifted executor enumerates; ``deadline`` bounds
    wall-clock time, consulted every :data:`CHECK_INTERVAL` charged units
    and at every explicit :meth:`checkpoint`.  Any subset may be ``None``
    (uncapped).  ``timeout`` is a convenience spelling for
    ``deadline=Deadline.after(timeout)``.
    """

    __slots__ = ("node_limit", "row_limit", "deadline", "nodes_used", "rows_used", "_countdown")

    def __init__(
        self,
        node_limit: int | None = None,
        row_limit: int | None = None,
        deadline: Deadline | None = None,
        timeout: float | None = None,
    ) -> None:
        if node_limit is not None and node_limit < 1:
            raise CompilationError("node_limit must be at least 1")
        if row_limit is not None and row_limit < 1:
            raise CompilationError("row_limit must be at least 1")
        if timeout is not None:
            if deadline is not None:
                raise CompilationError("pass either deadline or timeout, not both")
            deadline = Deadline.after(timeout)
        self.node_limit = node_limit
        self.row_limit = row_limit
        self.deadline = deadline
        self.nodes_used = 0
        self.rows_used = 0
        self._countdown = CHECK_INTERVAL

    # -- charging (the kernel-facing hot path) ---------------------------------

    def charge_nodes(self, count: int = 1) -> None:
        """Account for ``count`` OBDD node allocations; raise when over cap."""
        self.nodes_used += count
        if self.node_limit is not None and self.nodes_used > self.node_limit:
            raise BudgetExceeded(
                f"node budget exhausted: {self.nodes_used} allocations"
                f" > limit {self.node_limit}"
            )
        self._countdown -= count
        if self._countdown <= 0:
            self._countdown = CHECK_INTERVAL
            if self.deadline is not None:
                self.deadline.check()

    def charge_rows(self, count: int = 1) -> None:
        """Account for ``count`` lifted-executor rows; raise when over cap."""
        self.rows_used += count
        if self.row_limit is not None and self.rows_used > self.row_limit:
            raise BudgetExceeded(
                f"row budget exhausted: {self.rows_used} rows"
                f" > limit {self.row_limit}"
            )
        self._countdown -= count
        if self._countdown <= 0:
            self._countdown = CHECK_INTERVAL
            if self.deadline is not None:
                self.deadline.check()

    def checkpoint(self) -> None:
        """An explicit wall-clock checkpoint (sweep loops call this)."""
        if self.deadline is not None:
            self.deadline.check()

    # -- lifecycle -------------------------------------------------------------

    def reset_usage(self) -> None:
        """Zero the usage counters (the failover chain resets per attempt).

        The deadline is deliberately *not* reset: caps bound each route
        attempt, the wall clock bounds the whole call.
        """
        self.nodes_used = 0
        self.rows_used = 0
        self._countdown = CHECK_INTERVAL

    def usage(self) -> dict[str, int]:
        """A snapshot of the charged counters (for reports and tests)."""
        return {"nodes": self.nodes_used, "rows": self.rows_used}

    def activate(self) -> "_Activation":
        """Make this the ambient budget for a ``with`` block."""
        return activate(self)

    def __repr__(self) -> str:
        return (
            f"ResourceBudget(nodes={self.nodes_used}/{self.node_limit},"
            f" rows={self.rows_used}/{self.row_limit},"
            f" deadline={self.deadline!r})"
        )


#: The ambient budget, or None.  Kernels read this directly (an ``is not
#: None`` attribute test per checkpoint site); everyone else goes through
#: :func:`active_budget` / :func:`activate`.  Single-threaded by design.
ACTIVE: ResourceBudget | None = None

_Activation = AbstractContextManager[ResourceBudget]


def active_budget() -> ResourceBudget | None:
    """The currently active ambient budget (None when none is active)."""
    return ACTIVE


@contextmanager
def activate(budget: ResourceBudget) -> Iterator[ResourceBudget]:
    """Install ``budget`` as the ambient budget; restore the previous on exit.

    Re-entrant: nested activations stack, so an engine call made while
    another budget is active sees only its own caps until it returns.
    """
    global ACTIVE
    previous = ACTIVE
    ACTIVE = budget
    try:
        yield budget
    finally:
        ACTIVE = previous
