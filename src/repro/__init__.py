"""repro — Tractable Lineages on Treelike Instances.

A faithful Python implementation of the constructions of Amarilli, Bourhis and
Senellart, *Tractable Lineages on Treelike Instances: Limits and Extensions*
(PODS 2016): relational instances and tuple-independent databases, tree/path
decompositions and tree-depth, lineage representations (circuits, formulas,
OBDDs, d-DNNFs), provenance constructions on tree encodings via deterministic
tree automata, exact probability evaluation, the intricacy meta-dichotomy, and
the unfolding technique for inversion-free (safe) queries.

For repeated workloads, :mod:`repro.engine` provides the
:class:`CompilationEngine` session object: per-instance structural artifacts
(Gaifman graph, decompositions, fact orders) and per-(query, instance)
lineages/OBDDs/probabilities are memoized behind content fingerprints, with
batched entry points ``compile_many`` and ``probability_many`` (see the
``repro.engine`` package docstring for the caching keys and invalidation
rules).  :class:`ParallelEngine` shards those batched workloads across
``multiprocessing`` workers, :mod:`repro.store` persists compiled artifacts
to a crash-safe checksummed disk tier shared across processes
(:class:`ArtifactStore`, accepted by both engines as ``store=``), and
:mod:`repro.testing` provides the
differential oracle (:class:`~repro.testing.ProbabilityOracle`) that
cross-checks every probability backend on seeded random workloads.

Quickstart::

    from repro import (
        ProbabilisticInstance, parse_cq, probability, rst_chain_instance,
    )

    instance = rst_chain_instance(4)
    query = parse_cq("R(x), S(x, y), T(y)")
    tid = ProbabilisticInstance.uniform(instance, 0.5)
    print(probability(query, tid))
"""

from repro.booleans import FBDD, OBDD, BooleanCircuit, DNNF, Formula, SweepResult
from repro.data import (
    Fact,
    Instance,
    PXMLDocument,
    ProbabilisticInstance,
    Signature,
    fact,
    gaifman_graph,
    graph_instance,
    instance_pathwidth,
    instance_tree_depth,
    instance_treewidth,
    pattern,
    pattern_probability,
    random_pxml_document,
)
from repro.data.io import load_instance, load_tid, save_instance
from repro.engine import CacheStats, CompilationEngine, ParallelEngine, default_engine
from repro.generators import (
    grid_instance,
    labelled_line_instance,
    probabilistic_xml_instance,
    rst_chain_instance,
    unary_instance,
)
from repro.probability import (
    dissociation_bounds,
    is_liftable,
    karp_luby_probability,
    lifted_probability,
    monte_carlo_probability,
    probability,
    safe_plan_probability,
)
from repro.provenance import (
    compile_query_to_dnnf,
    compile_query_to_obdd,
    lineage_of,
    provenance_dnnf,
    tree_encoding,
    ucq_lineage_dnnf,
)
from repro.queries import (
    ConjunctiveQuery,
    ConjunctiveRPQ,
    UnionOfConjunctiveQueries,
    c2rpq_lineage,
    is_intricate,
    is_inversion_free,
    parse_cq,
    parse_regex,
    parse_ucq,
    qp,
    rpq_pairs,
    two_incident_paths_query,
)
from repro.semirings import query_provenance_polynomial
from repro.store import ArtifactStore
from repro.structure import (
    clique_expression,
    pathwidth,
    tree_decomposition,
    tree_depth,
    treewidth,
)
from repro.unfold import unfold_instance, verify_unfolding

__version__ = "1.0.0"

__all__ = [
    "ArtifactStore",
    "BooleanCircuit",
    "CacheStats",
    "CompilationEngine",
    "ConjunctiveQuery",
    "ConjunctiveRPQ",
    "DNNF",
    "FBDD",
    "Fact",
    "Formula",
    "Instance",
    "OBDD",
    "PXMLDocument",
    "ParallelEngine",
    "ProbabilisticInstance",
    "Signature",
    "SweepResult",
    "UnionOfConjunctiveQueries",
    "__version__",
    "c2rpq_lineage",
    "clique_expression",
    "compile_query_to_dnnf",
    "compile_query_to_obdd",
    "default_engine",
    "dissociation_bounds",
    "fact",
    "gaifman_graph",
    "graph_instance",
    "grid_instance",
    "instance_pathwidth",
    "instance_tree_depth",
    "instance_treewidth",
    "is_intricate",
    "is_inversion_free",
    "is_liftable",
    "karp_luby_probability",
    "labelled_line_instance",
    "lifted_probability",
    "lineage_of",
    "load_instance",
    "load_tid",
    "monte_carlo_probability",
    "parse_cq",
    "parse_regex",
    "parse_ucq",
    "pathwidth",
    "pattern",
    "pattern_probability",
    "probabilistic_xml_instance",
    "probability",
    "provenance_dnnf",
    "qp",
    "query_provenance_polynomial",
    "random_pxml_document",
    "rpq_pairs",
    "rst_chain_instance",
    "safe_plan_probability",
    "save_instance",
    "tree_decomposition",
    "tree_depth",
    "tree_encoding",
    "treewidth",
    "two_incident_paths_query",
    "ucq_lineage_dnnf",
    "unary_instance",
    "unfold_instance",
    "verify_unfolding",
]
