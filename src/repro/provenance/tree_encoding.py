"""Tree encodings of treelike instances (the Γ-trees of [2], used in Section 6).

A bounded-treewidth instance is encoded as a rooted binary tree whose nodes
carry a *bag* of domain elements (of size at most width + 1) and at most one
fact of the instance whose elements all belong to the bag.  Every fact is
attached to exactly one node (its topmost covering bag), and the bags satisfy
the tree-decomposition conditions, so the occurrences of each element form a
connected subtree.

The provenance constructions (:mod:`repro.provenance.automaton_provenance`)
run bottom-up deterministic automata over these encodings, where the
uncertainty is whether each attached fact is kept or discarded — exactly the
uncertain-tree setting of [2].
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.data.gaifman import gaifman_graph
from repro.data.instance import Fact, Instance
from repro.errors import DecompositionError
from repro.structure.elimination import EliminationSweep, best_heuristic_sweep
from repro.structure.graph import Graph
from repro.structure.nice import binarize
from repro.structure.path_decomposition import PathDecomposition
from repro.structure.tree_decomposition import TreeDecomposition


@dataclass(frozen=True)
class EncodingNode:
    """A node of a tree encoding: a bag, an optional attached fact, children ids."""

    identifier: int
    bag: frozenset
    fact: Fact | None
    children: tuple[int, ...]


@dataclass
class TreeEncoding:
    """A binary tree encoding of an instance."""

    instance: Instance
    nodes: dict[int, EncodingNode]
    root: int

    @property
    def width(self) -> int:
        return max((len(node.bag) for node in self.nodes.values()), default=0) - 1

    def __len__(self) -> int:
        return len(self.nodes)

    def post_order(self) -> list[int]:
        order: list[int] = []
        stack: list[tuple[int, bool]] = [(self.root, False)]
        while stack:
            identifier, expanded = stack.pop()
            if expanded:
                order.append(identifier)
            else:
                stack.append((identifier, True))
                for child in reversed(self.nodes[identifier].children):
                    stack.append((child, False))
        return order

    def facts_in_order(self) -> list[Fact]:
        """Facts in post-order of their attachment nodes (a decomposition-derived order)."""
        return [
            self.nodes[identifier].fact
            for identifier in self.post_order()
            if self.nodes[identifier].fact is not None
        ]

    def validate(self) -> None:
        """Check the tree-decomposition conditions and the fact attachment."""
        attached = [node.fact for node in self.nodes.values() if node.fact is not None]
        if sorted(attached, key=_fact_key) != sorted(self.instance.facts, key=_fact_key):
            raise DecompositionError("attached facts do not match the instance's facts")
        for node in self.nodes.values():
            if node.fact is not None and not set(node.fact.elements()) <= node.bag:
                raise DecompositionError("a fact is attached to a bag not covering it")
            if len(node.children) > 2:
                raise DecompositionError("tree encoding must be binary")
        # connectivity of element occurrences
        parent: dict[int, int | None] = {self.root: None}
        for identifier, node in self.nodes.items():
            for child in node.children:
                parent[child] = identifier
        for element in self.instance.domain:
            occurrences = {i for i, node in self.nodes.items() if element in node.bag}
            if not occurrences:
                raise DecompositionError(f"element {element!r} appears in no bag")
            start = next(iter(occurrences))
            seen = {start}
            stack = [start]
            while stack:
                current = stack.pop()
                neighbors = list(self.nodes[current].children)
                if parent.get(current) is not None:
                    neighbors.append(parent[current])
                for other in neighbors:
                    if other in occurrences and other not in seen:
                        seen.add(other)
                        stack.append(other)
            if seen != occurrences:
                raise DecompositionError(f"occurrences of element {element!r} are not connected")

    def iter_nodes(self) -> Iterator[EncodingNode]:
        return iter(self.nodes.values())


def tree_encoding(
    instance: Instance, decomposition: TreeDecomposition | None = None
) -> TreeEncoding:
    """Build a tree encoding of the instance.

    Each fact is attached to one bag covering it; bags with several facts are
    expanded into chains of nodes carrying one fact each, so the encoding
    stays binary and its size is linear in ``|I| + |decomposition|``.

    Without an explicit decomposition, the encoding is built by the fused
    single-sweep pipeline (:func:`fused_tree_encoding`): the elimination
    sweep that computes the ordering also yields the bags, the tree
    structure, and the fact attachment, with no intermediate decomposition
    rewrites and no validation replay.  With an explicit decomposition, the
    seed semantics are kept (topmost covering bag per fact, inline
    binarization, full validation of the caller-provided decomposition).
    """
    if decomposition is None:
        return fused_tree_encoding(instance)
    return _encoding_from_decomposition(instance, decomposition)


def fused_tree_encoding(
    instance: Instance,
    graph: Graph | None = None,
    sweep: EliminationSweep | None = None,
) -> TreeEncoding:
    """The fused decomposition→encoding pipeline: one elimination sweep.

    The heap-driven sweep (:func:`repro.structure.elimination.
    best_heuristic_sweep`) already records each vertex's bag, so the
    decomposition tree (parent = earliest-eliminated remaining neighbor) and
    the binary encoding are emitted directly from the sweep, bottom-up, in a
    single pass — no ``TreeDecomposition`` object, no ``binarize`` rewrite,
    no relabeling.

    Facts attach to the bag of their earliest-eliminated element: a fact's
    elements form a clique in the Gaifman graph, so when its first element is
    eliminated the remaining ones are all neighbors, i.e. the bag covers the
    fact.  This replaces the seed's scan of every bag per fact.  The
    construction is correct by construction, so no validation replay runs;
    :meth:`TreeEncoding.validate` stays available for auditing.
    """
    if sweep is None:
        sweep = best_heuristic_sweep(gaifman_graph(instance) if graph is None else graph)
    order = sweep.order
    n = len(order)

    nodes: dict[int, EncodingNode] = {}
    counter = 0

    if n == 0:
        # No domain elements: only nullary facts can exist; chain them over a
        # single empty bag (the seed's single-bag decomposition did the same).
        current_children: tuple[int, ...] = ()
        empty = frozenset()
        for f in sorted(instance.facts, key=_fact_key):
            nodes[counter] = EncodingNode(counter, empty, f, current_children)
            current_children = (counter,)
            counter += 1
        if not nodes:
            nodes[0] = EncodingNode(0, empty, None, ())
            counter = 1
        return TreeEncoding(instance, nodes, counter - 1)

    position = {v: i for i, v in enumerate(order)}
    root = n - 1
    children = sweep.tree_children()

    facts_at: list[list[Fact]] = [[] for _ in range(n)]
    for f in instance:
        elements = f.elements()
        if elements:
            facts_at[min(position[e] for e in elements)].append(f)
        else:
            facts_at[root].append(f)

    # Children always carry a smaller elimination index than their parent, so
    # one ascending pass emits every subtree before it is consumed.
    encoded_root: list[int] = [0] * n
    for i in range(n):
        bag = sweep.bags[i]
        child_ids = [encoded_root[c] for c in children[i]]
        # Inline binarization: absorb surplus children into helper nodes that
        # repeat the same bag (connectivity of occurrences is preserved).
        while len(child_ids) > 2:
            nodes[counter] = EncodingNode(counter, bag, None, (child_ids[-2], child_ids[-1]))
            child_ids[-2:] = [counter]
            counter += 1
        current_children = tuple(child_ids)
        facts = sorted(facts_at[i], key=_fact_key)
        if not facts:
            nodes[counter] = EncodingNode(counter, bag, None, current_children)
            current_children = (counter,)
            counter += 1
        else:
            for f in facts:
                nodes[counter] = EncodingNode(counter, bag, f, current_children)
                current_children = (counter,)
                counter += 1
        encoded_root[i] = counter - 1
    return TreeEncoding(instance, nodes, encoded_root[root])


def _encoding_from_decomposition(
    instance: Instance, decomposition: TreeDecomposition
) -> TreeEncoding:
    """Encode against a caller-provided decomposition (seed semantics).

    Facts attach to their topmost covering bag, found through a per-element
    occurrence index instead of the seed's scan over every bag per fact; the
    result is validated, since the input decomposition is not trusted.
    """
    decomposition = binarize(decomposition)

    order = decomposition.topological_order()
    position = {node: index for index, node in enumerate(order)}
    occurrences: dict[object, list[int]] = {}
    for node in order:
        for element in decomposition.bags[node]:
            occurrences.setdefault(element, []).append(node)
    facts_at: dict[int, list[Fact]] = {node: [] for node in decomposition.nodes()}
    for f in instance:
        elements = set(f.elements())
        if elements:
            rarest = min(elements, key=lambda e: len(occurrences.get(e, ())))
            covering = [
                node
                for node in occurrences.get(rarest, ())
                if elements <= decomposition.bags[node]
            ]
        else:
            covering = order
        if not covering:
            raise DecompositionError(f"no bag covers fact {f}")
        topmost = min(covering, key=lambda node: position[node])
        facts_at[topmost].append(f)

    nodes: dict[int, EncodingNode] = {}
    counter = 0
    built: dict[int, int] = {}
    # Reversed pre-order visits children before parents (no recursion).
    for bag_node in reversed(order):
        bag = decomposition.bags[bag_node]
        child_ids = tuple(built[child] for child in decomposition.children.get(bag_node, []))
        facts = sorted(facts_at[bag_node], key=_fact_key)
        if not facts:
            nodes[counter] = EncodingNode(counter, bag, None, child_ids)
            built[bag_node] = counter
            counter += 1
        else:
            current_children = child_ids
            for f in facts:
                nodes[counter] = EncodingNode(counter, bag, f, current_children)
                current_children = (counter,)
                counter += 1
            built[bag_node] = counter - 1

    encoding = TreeEncoding(instance, nodes, built[decomposition.root])
    encoding.validate()
    return encoding


def path_encoding(instance: Instance, decomposition: PathDecomposition | None = None) -> TreeEncoding:
    """A tree encoding whose tree is a path, from a path decomposition.

    Used for the bounded-pathwidth results (Theorem 6.7 / Proposition 6.8):
    running the provenance construction over a path encoding yields
    bounded-pathwidth circuits and constant-width OBDDs.
    """
    from repro.structure.path_decomposition import path_decomposition as compute_path

    if decomposition is None:
        decomposition = compute_path(gaifman_graph(instance))
    return tree_encoding(instance, decomposition.to_tree_decomposition())


def _fact_key(f: Fact) -> tuple:
    return (f.relation, tuple(repr(a) for a in f.arguments))
