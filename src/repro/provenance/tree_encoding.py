"""Tree encodings of treelike instances (the Γ-trees of [2], used in Section 6).

A bounded-treewidth instance is encoded as a rooted binary tree whose nodes
carry a *bag* of domain elements (of size at most width + 1) and at most one
fact of the instance whose elements all belong to the bag.  Every fact is
attached to exactly one node (its topmost covering bag), and the bags satisfy
the tree-decomposition conditions, so the occurrences of each element form a
connected subtree.

The provenance constructions (:mod:`repro.provenance.automaton_provenance`)
run bottom-up deterministic automata over these encodings, where the
uncertainty is whether each attached fact is kept or discarded — exactly the
uncertain-tree setting of [2].
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.data.gaifman import gaifman_graph
from repro.data.instance import Fact, Instance
from repro.errors import DecompositionError
from repro.structure.nice import binarize
from repro.structure.path_decomposition import PathDecomposition
from repro.structure.tree_decomposition import TreeDecomposition, tree_decomposition


@dataclass(frozen=True)
class EncodingNode:
    """A node of a tree encoding: a bag, an optional attached fact, children ids."""

    identifier: int
    bag: frozenset
    fact: Fact | None
    children: tuple[int, ...]


@dataclass
class TreeEncoding:
    """A binary tree encoding of an instance."""

    instance: Instance
    nodes: dict[int, EncodingNode]
    root: int

    @property
    def width(self) -> int:
        return max((len(node.bag) for node in self.nodes.values()), default=0) - 1

    def __len__(self) -> int:
        return len(self.nodes)

    def post_order(self) -> list[int]:
        order: list[int] = []
        stack: list[tuple[int, bool]] = [(self.root, False)]
        while stack:
            identifier, expanded = stack.pop()
            if expanded:
                order.append(identifier)
            else:
                stack.append((identifier, True))
                for child in reversed(self.nodes[identifier].children):
                    stack.append((child, False))
        return order

    def facts_in_order(self) -> list[Fact]:
        """Facts in post-order of their attachment nodes (a decomposition-derived order)."""
        return [
            self.nodes[identifier].fact
            for identifier in self.post_order()
            if self.nodes[identifier].fact is not None
        ]

    def validate(self) -> None:
        """Check the tree-decomposition conditions and the fact attachment."""
        attached = [node.fact for node in self.nodes.values() if node.fact is not None]
        if sorted(attached, key=_fact_key) != sorted(self.instance.facts, key=_fact_key):
            raise DecompositionError("attached facts do not match the instance's facts")
        for node in self.nodes.values():
            if node.fact is not None and not set(node.fact.elements()) <= node.bag:
                raise DecompositionError("a fact is attached to a bag not covering it")
            if len(node.children) > 2:
                raise DecompositionError("tree encoding must be binary")
        # connectivity of element occurrences
        parent: dict[int, int | None] = {self.root: None}
        for identifier, node in self.nodes.items():
            for child in node.children:
                parent[child] = identifier
        for element in self.instance.domain:
            occurrences = {i for i, node in self.nodes.items() if element in node.bag}
            if not occurrences:
                raise DecompositionError(f"element {element!r} appears in no bag")
            start = next(iter(occurrences))
            seen = {start}
            stack = [start]
            while stack:
                current = stack.pop()
                neighbors = list(self.nodes[current].children)
                if parent.get(current) is not None:
                    neighbors.append(parent[current])
                for other in neighbors:
                    if other in occurrences and other not in seen:
                        seen.add(other)
                        stack.append(other)
            if seen != occurrences:
                raise DecompositionError(f"occurrences of element {element!r} are not connected")

    def iter_nodes(self) -> Iterator[EncodingNode]:
        return iter(self.nodes.values())


def tree_encoding(
    instance: Instance, decomposition: TreeDecomposition | None = None
) -> TreeEncoding:
    """Build a tree encoding of the instance from a tree decomposition.

    Each fact is attached to the topmost (closest to the root) bag covering
    it; bags with several facts are expanded into chains of nodes carrying one
    fact each, so the encoding stays binary and its size is linear in
    ``|I| + |decomposition|``.
    """
    if decomposition is None:
        decomposition = tree_decomposition(gaifman_graph(instance))
    decomposition = binarize(decomposition)

    order = decomposition.topological_order()
    position = {node: index for index, node in enumerate(order)}
    facts_at: dict[int, list[Fact]] = {node: [] for node in decomposition.nodes()}
    for f in instance:
        elements = set(f.elements())
        covering = [node for node in order if elements <= decomposition.bags[node]]
        if not covering:
            raise DecompositionError(f"no bag covers fact {f}")
        topmost = min(covering, key=lambda node: position[node])
        facts_at[topmost].append(f)

    nodes: dict[int, EncodingNode] = {}
    counter = [0]

    def fresh() -> int:
        counter[0] += 1
        return counter[0] - 1

    def build(bag_node: int) -> int:
        bag = decomposition.bags[bag_node]
        child_ids = tuple(build(child) for child in decomposition.children.get(bag_node, []))
        facts = sorted(facts_at[bag_node], key=_fact_key)
        if not facts:
            identifier = fresh()
            nodes[identifier] = EncodingNode(identifier, bag, None, child_ids)
            return identifier
        current_children = child_ids
        identifier = -1
        for f in facts:
            identifier = fresh()
            nodes[identifier] = EncodingNode(identifier, bag, f, current_children)
            current_children = (identifier,)
        return identifier

    root = build(decomposition.root)
    encoding = TreeEncoding(instance, nodes, root)
    encoding.validate()
    return encoding


def path_encoding(instance: Instance, decomposition: PathDecomposition | None = None) -> TreeEncoding:
    """A tree encoding whose tree is a path, from a path decomposition.

    Used for the bounded-pathwidth results (Theorem 6.7 / Proposition 6.8):
    running the provenance construction over a path encoding yields
    bounded-pathwidth circuits and constant-width OBDDs.
    """
    from repro.structure.path_decomposition import path_decomposition as compute_path

    if decomposition is None:
        decomposition = compute_path(gaifman_graph(instance))
    return tree_encoding(instance, decomposition.to_tree_decomposition())


def _fact_key(f: Fact) -> tuple:
    return (f.relation, tuple(repr(a) for a in f.arguments))
