"""Compiling UCQ≠ queries into deterministic tree automata on tree encodings.

This implements the dynamic programming that underlies the bounded-treewidth
lineage constructions for (unions of) conjunctive queries with disequalities:
the automaton state at an encoding node summarizes, for the facts kept in the
subtree, which *partial matches* of each disjunct exist, described only in
terms of the current bag.

A partial-match descriptor for a disjunct is a pair ``(A, mu)`` where ``A`` is
the set of atoms already matched by kept facts attached in the subtree and
``mu`` maps the *live* variables (those whose image lies in the current bag)
to bag elements.  Variables whose image has left the bag are "forgotten",
which is only allowed when all atoms containing them are already matched —
the usual treewidth argument guarantees this is sound and complete.
Disequalities are checked whenever both sides are live; when one side has
been forgotten the disequality is automatically satisfied because a forgotten
element can never reappear in a later bag (connectivity of occurrences).

Once some disjunct is fully matched the state collapses to the ``ACCEPT``
sink.  The automaton is deterministic by construction, so the provenance
construction of Theorem 6.11 applied to it yields a d-DNNF lineage, and the
state-space dynamic programming of :func:`repro.provenance.automata.
automaton_probability` evaluates query probability in one bottom-up pass.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from repro.data.instance import Instance
from repro.errors import QueryError
from repro.provenance.automata import FunctionalAutomaton, State
from repro.provenance.tree_encoding import EncodingNode, TreeEncoding, tree_encoding
from repro.queries.cq import ConjunctiveQuery
from repro.queries.ucq import UnionOfConjunctiveQueries, as_ucq

ACCEPT = "ACCEPT"

# A descriptor is (disjunct index, frozenset of matched atom indices,
#                  frozenset of (variable name, element) pairs for live variables).
Descriptor = tuple[int, frozenset, frozenset]


@dataclass(frozen=True)
class _DisjunctInfo:
    """Precomputed structural data about one disjunct."""

    atom_relations: tuple[str, ...]
    atom_variables: tuple[tuple[str, ...], ...]  # variable names per atom, in position order
    atoms_of_variable: dict[str, frozenset]  # variable name -> indices of atoms containing it
    disequalities: tuple[tuple[str, str], ...]
    atom_count: int


def _analyze(query: UnionOfConjunctiveQueries) -> list[_DisjunctInfo]:
    infos: list[_DisjunctInfo] = []
    for disjunct in query.disjuncts:
        atom_relations = tuple(a.relation for a in disjunct.atoms)
        atom_variables = tuple(tuple(v.name for v in a.arguments) for a in disjunct.atoms)
        atoms_of_variable: dict[str, set[int]] = {}
        for index, a in enumerate(disjunct.atoms):
            for v in a.variables():
                atoms_of_variable.setdefault(v.name, set()).add(index)
        disequalities = tuple((d.left.name, d.right.name) for d in disjunct.disequalities)
        infos.append(
            _DisjunctInfo(
                atom_relations=atom_relations,
                atom_variables=atom_variables,
                atoms_of_variable={k: frozenset(v) for k, v in atoms_of_variable.items()},
                disequalities=disequalities,
                atom_count=len(disjunct.atoms),
            )
        )
    return infos


def ucq_automaton(query: UnionOfConjunctiveQueries | ConjunctiveQuery) -> FunctionalAutomaton:
    """A deterministic tree automaton recognizing the possible worlds satisfying the UCQ≠."""
    query = as_ucq(query)
    infos = _analyze(query)

    def violates_disequality(info: _DisjunctInfo, live: dict[str, Any]) -> bool:
        for left, right in info.disequalities:
            if left in live and right in live and live[left] == live[right]:
                return True
        return False

    def reproject(descriptor: Descriptor, bag: frozenset) -> Descriptor | None:
        disjunct_index, matched, live_items = descriptor
        info = infos[disjunct_index]
        live = dict(live_items)
        for variable, element in live_items:
            if element not in bag:
                # forgetting: only allowed when every atom containing the variable is matched
                if not info.atoms_of_variable.get(variable, frozenset()) <= matched:
                    return None
                del live[variable]
        return (disjunct_index, matched, frozenset(live.items()))

    def combine(first: Descriptor, second: Descriptor) -> Descriptor | None:
        disjunct_index, matched_a, live_a = first
        _, matched_b, live_b = second
        info = infos[disjunct_index]
        live = dict(live_a)
        for variable, element in live_b:
            if variable in live:
                if live[variable] != element:
                    return None
            else:
                live[variable] = element
        # A variable used (matched) on both sides must be live on both sides
        # with the same value; being forgotten on either side means its images
        # would live in disjoint subtrees, hence differ.
        assigned_a = {v for index in matched_a for v in info.atom_variables[index]}
        assigned_b = {v for index in matched_b for v in info.atom_variables[index]}
        live_a_vars = {v for v, _ in live_a}
        live_b_vars = {v for v, _ in live_b}
        for variable in assigned_a & assigned_b:
            if variable not in live_a_vars or variable not in live_b_vars:
                return None
        if violates_disequality(info, live):
            return None
        return (disjunct_index, matched_a | matched_b, frozenset(live.items()))

    def extend_with_fact(descriptors: set[Descriptor], node: EncodingNode) -> tuple[set[Descriptor], bool]:
        """Saturate the descriptor set with matches using the node's (kept) fact."""
        fact = node.fact
        assert fact is not None
        accepted = False
        worklist = list(descriptors) + [
            (index, frozenset(), frozenset()) for index in range(len(infos))
        ]
        result = set(descriptors)
        while worklist:
            descriptor = worklist.pop()
            disjunct_index, matched, live_items = descriptor
            info = infos[disjunct_index]
            live = dict(live_items)
            assigned = {v for index in matched for v in info.atom_variables[index]}
            for atom_index, relation in enumerate(info.atom_relations):
                if relation != fact.relation or atom_index in matched:
                    continue
                variables = info.atom_variables[atom_index]
                if len(variables) != len(fact.arguments):
                    continue
                new_live = dict(live)
                consistent = True
                for variable, element in zip(variables, fact.arguments):
                    if variable in new_live:
                        if new_live[variable] != element:
                            consistent = False
                            break
                    elif variable in assigned:
                        # forgotten variable: its image is outside the bag, but the
                        # fact's elements are inside the bag, so they cannot match
                        consistent = False
                        break
                    else:
                        new_live[variable] = element
                if not consistent:
                    continue
                if violates_disequality(info, new_live):
                    continue
                new_matched = matched | {atom_index}
                if len(new_matched) == info.atom_count:
                    accepted = True
                new_descriptor = (disjunct_index, new_matched, frozenset(new_live.items()))
                if new_descriptor not in result:
                    result.add(new_descriptor)
                    worklist.append(new_descriptor)
        return result, accepted

    def transition(node: EncodingNode, fact_present: bool, child_states: Sequence[State]) -> State:
        if any(state == ACCEPT for state in child_states):
            return ACCEPT
        projected: list[set[Descriptor]] = []
        for state in child_states:
            current: set[Descriptor] = set()
            for descriptor in state:  # type: ignore[union-attr]
                reprojected = reproject(descriptor, node.bag)
                if reprojected is not None:
                    current.add(reprojected)
            projected.append(current)

        descriptors: set[Descriptor] = set()
        accepted = False
        for current in projected:
            descriptors |= current
        if len(projected) == 2:
            for first in projected[0]:
                for second in projected[1]:
                    if first[0] != second[0]:
                        continue
                    merged = combine(first, second)
                    if merged is None:
                        continue
                    descriptors.add(merged)
                    if len(merged[1]) == infos[merged[0]].atom_count:
                        accepted = True
        if node.fact is not None and fact_present:
            descriptors, fact_accepted = extend_with_fact(descriptors, node)
            accepted = accepted or fact_accepted
        # A descriptor may be complete even without new facts (e.g. completed by merging).
        if not accepted:
            accepted = any(len(matched) == infos[index].atom_count for index, matched, _ in descriptors)
        if accepted:
            return ACCEPT
        return frozenset(descriptors)

    def is_accepting(state: State) -> bool:
        return state == ACCEPT

    return FunctionalAutomaton(transition, is_accepting, name=f"ucq[{query}]")


def ucq_lineage_dnnf(
    query: UnionOfConjunctiveQueries | ConjunctiveQuery,
    instance: Instance,
    encoding: TreeEncoding | None = None,
):
    """The d-DNNF lineage of a UCQ≠ on a (treelike) instance via the automaton route."""
    from repro.provenance.automaton_provenance import provenance_dnnf

    if encoding is None:
        encoding = tree_encoding(instance)
    if encoding.instance != instance:
        raise QueryError("encoding does not encode the given instance")
    return provenance_dnnf(ucq_automaton(query), encoding)


def ucq_probability_via_automaton(
    query: UnionOfConjunctiveQueries | ConjunctiveQuery,
    probabilistic_instance,
    encoding: TreeEncoding | None = None,
):
    """Query probability by the state dynamic programming of Theorem 4.2 (upper bound)."""
    from repro.provenance.automata import automaton_probability

    if encoding is None:
        encoding = tree_encoding(probabilistic_instance.instance)
    return automaton_probability(ucq_automaton(query), encoding, probabilistic_instance)
