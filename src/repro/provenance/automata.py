"""Deterministic bottom-up automata over tree encodings.

The MSO-on-treelike-instances machinery of the paper ([2], Theorem 3.2,
Theorems 6.3/6.11) runs tree automata over tree encodings of the instance,
where each node's attached fact can be kept or discarded.  Full MSO-to-
automaton compilation is non-elementary, so — as the paper itself does in its
constructions — we work directly with *deterministic* bottom-up automata,
given as transition functions:

* concrete automata for the MSO properties the paper uses live in
  :mod:`repro.provenance.mso_properties`;
* UCQ≠ queries are compiled into (lazily determinized) automata in
  :mod:`repro.provenance.ucq_automaton`.

Because the automaton is deterministic, three things follow directly, and are
implemented here:

* model checking is a single bottom-up pass (linear time; Theorem 5.2 upper
  bound / Table 1);
* the probability of the property on a TID instance is computed by a single
  bottom-up dynamic programming pass over (node, state) pairs — the
  "ra-linear" evaluation of Theorem 3.2 / 4.2;
* the provenance circuit built per [2] is a d-DNNF of linear size
  (Theorem 6.11), constructed in :mod:`repro.provenance.automaton_provenance`.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from itertools import product
from typing import Callable, Hashable, Iterable, Mapping, Protocol, Sequence

from repro import resilience as _resilience
from repro.data.instance import Fact, Instance
from repro.data.tid import ProbabilisticInstance
from repro.errors import LineageError
from repro.provenance.tree_encoding import EncodingNode, TreeEncoding

State = Hashable


class TreeAutomaton(Protocol):
    """A deterministic bottom-up automaton over tree encodings.

    The transition receives the encoding node (bag and attached fact), whether
    the attached fact is kept in the current possible world, and the states of
    the node's children (left to right); it must return the node's state.
    Nodes without an attached fact are evaluated with ``fact_present=False``.
    """

    def transition(
        self, node: EncodingNode, fact_present: bool, child_states: Sequence[State]
    ) -> State:
        ...

    def is_accepting(self, state: State) -> bool:
        ...


@dataclass
class FunctionalAutomaton:
    """A tree automaton given by plain Python functions."""

    transition_function: Callable[[EncodingNode, bool, Sequence[State]], State]
    accepting: Callable[[State], bool]
    name: str = "automaton"

    def transition(self, node: EncodingNode, fact_present: bool, child_states: Sequence[State]) -> State:
        return self.transition_function(node, fact_present, child_states)

    def is_accepting(self, state: State) -> bool:
        return self.accepting(state)


def run_automaton(
    automaton: TreeAutomaton, encoding: TreeEncoding, world: Iterable[Fact] | Mapping[Fact, bool]
) -> State:
    """Run the automaton bottom-up on the encoding for a given possible world."""
    if isinstance(world, Mapping):
        present = {f for f, kept in world.items() if kept}
    else:
        present = set(world)
    states: dict[int, State] = {}
    for identifier in encoding.post_order():
        node = encoding.nodes[identifier]
        child_states = [states[child] for child in node.children]
        fact_present = node.fact is not None and node.fact in present
        states[identifier] = automaton.transition(node, fact_present, child_states)
    return states[encoding.root]


def accepts(
    automaton: TreeAutomaton, encoding: TreeEncoding, world: Iterable[Fact] | Mapping[Fact, bool]
) -> bool:
    """Model checking of the property on the given possible world (linear time)."""
    return automaton.is_accepting(run_automaton(automaton, encoding, world))


def model_check(automaton: TreeAutomaton, encoding: TreeEncoding) -> bool:
    """Model checking on the full instance (every fact present)."""
    return accepts(automaton, encoding, encoding.instance.facts)


def reachable_states(
    automaton: TreeAutomaton, encoding: TreeEncoding
) -> dict[int, set[State]]:
    """The set of states reachable at each node over all possible worlds.

    This is the key quantity of the provenance construction: its maximum per
    node bounds both the d-DNNF size factor and the OBDD width.  Child states
    are enumerated in first-reached order (no ``repr`` normalization); the
    seed pass survives as :func:`repro.provenance.reference.
    reachable_states_seed`.
    """
    reachable: dict[int, set[State]] = {}
    for identifier in encoding.post_order():
        node = encoding.nodes[identifier]
        child_state_sets = [reachable[child] for child in node.children]
        presence_options = (False, True) if node.fact is not None else (False,)
        states: set[State] = set()
        for combination in product(*child_state_sets):
            for fact_present in presence_options:
                states.add(automaton.transition(node, fact_present, combination))
        reachable[identifier] = states
    return reachable


def automaton_probability(
    automaton: TreeAutomaton,
    encoding: TreeEncoding,
    probabilistic_instance: ProbabilisticInstance,
) -> Fraction:
    """Probability that the property holds, by dynamic programming over states.

    This is the ra-linear probability evaluation of Theorems 3.2/4.2: a single
    bottom-up pass computing, for every node and reachable state, the
    probability that the subtree's facts produce that state.  Exact rational
    arithmetic throughout.
    """
    if probabilistic_instance.instance != encoding.instance:
        raise LineageError("the probabilistic instance does not match the encoding's instance")
    one = Fraction(1)
    budget = _resilience.ACTIVE
    distributions: dict[int, dict[State, Fraction]] = {}
    for identifier in encoding.post_order():
        node = encoding.nodes[identifier]
        children = node.children
        if budget is not None:
            budget.charge_nodes(1)
        # Weighted product over the children (any arity), without recursion;
        # a child's distribution is consumed exactly once (by its parent), so
        # it is freed immediately afterwards.
        combos: list[tuple[tuple[State, ...], Fraction]] = [((), one)]
        for child in children:
            combos = [
                ((*combination, state), weight * child_weight)
                for combination, weight in combos
                for state, child_weight in distributions[child].items()
                if child_weight != 0
            ]
            if budget is not None:
                # State combinations are this route's unit of work (they
                # explode exactly when the automaton state space does), so
                # they draw from the same node budget as OBDD allocations.
                budget.charge_nodes(len(combos))
        for child in children:
            del distributions[child]
        current: dict[State, Fraction] = {}
        if node.fact is not None:
            probability = probabilistic_instance.probability_of(node.fact)
            options = ((True, probability), (False, 1 - probability))
        else:
            options = ((False, one),)
        for combination, weight in combos:
            for fact_present, fact_weight in options:
                if fact_weight == 0:
                    continue
                state = automaton.transition(node, fact_present, combination)
                current[state] = current.get(state, Fraction(0)) + weight * fact_weight
        distributions[identifier] = current
    root_distribution = distributions[encoding.root]
    total = sum(root_distribution.values(), Fraction(0))
    if total != 1:
        raise LineageError("state distribution does not sum to 1; the automaton is not total")
    return sum(
        (probability for state, probability in root_distribution.items() if automaton.is_accepting(state)),
        Fraction(0),
    )


