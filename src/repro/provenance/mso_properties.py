"""Concrete MSO properties as deterministic tree automata.

The paper's constructions handle MSO queries through tree automata on tree
encodings (Section 6).  Compiling arbitrary MSO formulas is non-elementary, so
we follow the paper's own practice and define the MSO properties it actually
uses directly as deterministic bottom-up automata:

* :func:`parity_automaton` — "the number of kept facts of a unary relation is
  odd", the MSO property of Proposition 7.3 (restricted, as in the paper's
  proof, to worlds where the auxiliary edge relation is certain);
* :func:`incident_pair_automaton` — "two distinct kept binary facts share an
  element" (a path of length 2 in the Gaifman graph of the possible world),
  i.e. the violation of the world being a matching; this is the automaton
  counterpart of the query q_p of Theorem 8.1 and the workhorse of the
  matching-counting reduction of Theorem 4.2;
* :func:`threshold_automaton` — "at least k facts of a relation are kept"
  (k = 2 is the lineage of the CQ≠ of Proposition 7.1);
* :func:`fact_count_parity_automaton` — parity of all kept facts (any
  relation), used for ablation experiments;
* :func:`nonempty_automaton` — "some fact is kept".

All automata states are small hashable values, so the provenance construction
of Theorem 6.11 yields linear-size d-DNNFs over bounded-width encodings.
"""

from __future__ import annotations

from typing import Sequence

from repro.provenance.automata import FunctionalAutomaton, State
from repro.provenance.tree_encoding import EncodingNode

ACCEPT = "ACCEPT"


def parity_automaton(relation: str = "L") -> FunctionalAutomaton:
    """Odd number of kept facts of the given (typically unary) relation."""

    def transition(node: EncodingNode, fact_present: bool, child_states: Sequence[State]) -> State:
        parity = False
        for state in child_states:
            parity ^= bool(state)
        if fact_present and node.fact is not None and node.fact.relation == relation:
            parity ^= True
        return parity

    return FunctionalAutomaton(transition, lambda state: bool(state), name=f"parity[{relation}]")


def fact_count_parity_automaton() -> FunctionalAutomaton:
    """Odd number of kept facts (any relation)."""

    def transition(node: EncodingNode, fact_present: bool, child_states: Sequence[State]) -> State:
        parity = False
        for state in child_states:
            parity ^= bool(state)
        if fact_present:
            parity ^= True
        return parity

    return FunctionalAutomaton(transition, lambda state: bool(state), name="parity[*]")


def threshold_automaton(k: int, relation: str | None = None) -> FunctionalAutomaton:
    """At least ``k`` kept facts (of the given relation, or of any relation)."""

    def transition(node: EncodingNode, fact_present: bool, child_states: Sequence[State]) -> State:
        count = sum(int(state) for state in child_states)
        if fact_present and node.fact is not None and (relation is None or node.fact.relation == relation):
            count += 1
        return min(count, k)

    return FunctionalAutomaton(
        transition, lambda state: int(state) >= k, name=f"threshold[{k},{relation or '*'}]"
    )


def nonempty_automaton(relation: str | None = None) -> FunctionalAutomaton:
    """Some fact (of the given relation, or of any relation) is kept."""
    return threshold_automaton(1, relation)


def incident_pair_automaton(relations: Sequence[str] | None = None) -> FunctionalAutomaton:
    """Two distinct kept binary facts share a domain element.

    The state is either ``ACCEPT`` or the frozenset of *bag* elements that are
    already touched by at least one kept binary fact in the subtree; elements
    that leave the bag are dropped (any future fact is attached above, hence
    cannot mention them, so they can never witness a new incidence).
    Restricting ``relations`` limits which binary relations are considered.
    """

    def is_relevant(node: EncodingNode) -> bool:
        return (
            node.fact is not None
            and node.fact.arity == 2
            and (relations is None or node.fact.relation in relations)
        )

    def transition(node: EncodingNode, fact_present: bool, child_states: Sequence[State]) -> State:
        if any(state == ACCEPT for state in child_states):
            return ACCEPT
        touched: set = set()
        for state in child_states:
            projected = set(state) & set(node.bag)
            if touched & projected:
                # an element is touched from both children: two distinct facts
                # (attached in different subtrees) are incident to it
                return ACCEPT
            touched |= projected
        if fact_present and is_relevant(node):
            elements = set(node.fact.elements())
            if touched & elements:
                return ACCEPT
            touched |= elements
        return frozenset(touched)

    def accepting(state: State) -> bool:
        return state == ACCEPT

    return FunctionalAutomaton(transition, accepting, name="incident-pair")


def matching_world_automaton(relations: Sequence[str] | None = None) -> FunctionalAutomaton:
    """The complement property: the kept binary facts form a matching.

    Accepts exactly when no two distinct kept binary facts share an element;
    counting the models of this property is counting the matchings of the
    instance's (multi)graph, which is the #P-hard problem behind Theorem 4.2.
    """
    base = incident_pair_automaton(relations)
    return FunctionalAutomaton(
        base.transition_function, lambda state: state != ACCEPT, name="matching-world"
    )


def all_facts_present_automaton(relation: str | None = None) -> FunctionalAutomaton:
    """Every fact (of the given relation, or of any relation) is kept."""

    def transition(node: EncodingNode, fact_present: bool, child_states: Sequence[State]) -> State:
        kept_everywhere = all(bool(state) for state in child_states)
        if node.fact is not None and (relation is None or node.fact.relation == relation):
            kept_everywhere = kept_everywhere and fact_present
        return kept_everywhere

    return FunctionalAutomaton(
        transition, lambda state: bool(state), name=f"all-present[{relation or '*'}]"
    )
