"""Provenance circuits from deterministic tree automata (Theorems 6.3 and 6.11).

Given a deterministic bottom-up automaton A and a tree encoding E of an
instance, the construction of [2] builds, bottom-up, one gate ``g^q_n`` per
node n and reachable state q, meaning "in the current possible world, the run
of A assigns state q to node n".  The gate is an OR, over the combinations of
children states and fact-presence values leading to q, of the AND of the
children's gates and the fact literal (or its negation).

Because A is deterministic:

* the OR inputs are mutually exclusive (different combinations cannot hold in
  the same world), and
* the AND inputs depend on disjoint facts (left subtree, right subtree, and
  the node's own fact),

so the produced circuit is a d-DNNF (Theorem 6.11), of size linear in the
encoding (for a fixed automaton and width).  The same circuit viewed as a
plain Boolean circuit is the bounded-treewidth lineage circuit of
Theorem 6.3; over a path encoding it has bounded pathwidth (Proposition 6.8).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.booleans.circuit import BooleanCircuit
from repro.booleans.dnnf import DNNF
from repro.data.instance import Fact
from repro.errors import LineageError
from repro.provenance.automata import State, TreeAutomaton, reachable_states
from repro.provenance.tree_encoding import TreeEncoding


@dataclass
class ProvenanceResult:
    """The provenance of an automaton on an encoding, in both representations."""

    dnnf: DNNF
    circuit: BooleanCircuit
    reachable_state_counts: dict[int, int]

    @property
    def dnnf_size(self) -> int:
        return self.dnnf.size

    @property
    def circuit_size(self) -> int:
        return self.circuit.size

    @property
    def max_states_per_node(self) -> int:
        return max(self.reachable_state_counts.values(), default=0)


def provenance_dnnf(automaton: TreeAutomaton, encoding: TreeEncoding) -> DNNF:
    """The d-DNNF provenance of the automaton on the encoding (Theorem 6.11)."""
    return provenance(automaton, encoding).dnnf


def provenance_circuit(automaton: TreeAutomaton, encoding: TreeEncoding) -> BooleanCircuit:
    """The lineage circuit of the automaton on the encoding (Theorem 6.3)."""
    return provenance(automaton, encoding).circuit


def provenance(automaton: TreeAutomaton, encoding: TreeEncoding) -> ProvenanceResult:
    """Build the provenance d-DNNF and circuit in one bottom-up pass."""
    reachable = reachable_states(automaton, encoding)

    dnnf = DNNF()
    circuit = BooleanCircuit()

    # Per node: state -> d-DNNF node id / circuit gate id
    dnnf_gate: dict[int, dict[State, int]] = {}
    circuit_gate: dict[int, dict[State, int]] = {}

    for identifier in encoding.post_order():
        node = encoding.nodes[identifier]
        children = node.children
        child_states: list[list[State]] = [sorted(reachable[c], key=repr) for c in children]

        # collect, per resulting state, the list of (child-state combination, fact_present)
        combos_for_state: dict[State, list[tuple[tuple[State, ...], bool]]] = {}
        for combination in _product(child_states):
            presence_options = (False, True) if node.fact is not None else (False,)
            for fact_present in presence_options:
                state = automaton.transition(node, fact_present, combination)
                combos_for_state.setdefault(state, []).append((combination, fact_present))

        dnnf_gate[identifier] = {}
        circuit_gate[identifier] = {}
        for state, combos in combos_for_state.items():
            dnnf_terms: list[int] = []
            circuit_terms: list[int] = []
            for combination, fact_present in combos:
                dnnf_parts: list[int] = []
                circuit_parts: list[int] = []
                for child, child_state in zip(children, combination):
                    dnnf_parts.append(dnnf_gate[child][child_state])
                    circuit_parts.append(circuit_gate[child][child_state])
                if node.fact is not None:
                    dnnf_parts.append(dnnf.literal(node.fact, fact_present))
                    fact_gate = circuit.variable(node.fact)
                    circuit_parts.append(fact_gate if fact_present else circuit.negation(fact_gate))
                dnnf_terms.append(dnnf.conjunction(dnnf_parts))
                circuit_terms.append(circuit.conjunction(circuit_parts))
            dnnf_gate[identifier][state] = dnnf.disjunction(dnnf_terms)
            circuit_gate[identifier][state] = circuit.disjunction(circuit_terms)

    root_states = sorted(reachable[encoding.root], key=repr)
    accepting = [state for state in root_states if automaton.is_accepting(state)]
    dnnf.set_output(
        dnnf.disjunction([dnnf_gate[encoding.root][state] for state in accepting])
        if accepting
        else dnnf.constant(False)
    )
    circuit.set_output(
        circuit.disjunction([circuit_gate[encoding.root][state] for state in accepting])
        if accepting
        else circuit.constant(False)
    )

    counts = {identifier: len(states) for identifier, states in reachable.items()}
    return ProvenanceResult(dnnf=dnnf, circuit=circuit, reachable_state_counts=counts)


def provenance_obdd(automaton: TreeAutomaton, encoding: TreeEncoding):
    """An OBDD for the automaton's lineage, under the encoding's fact order.

    This realizes the Theorem 6.5 pipeline: the bounded-treewidth circuit of
    Theorem 6.3 compiled into an OBDD whose variable order follows the
    decomposition (facts in post-order of their attachment node).
    """
    from repro.provenance.compile_obdd import compile_circuit_to_obdd

    result = provenance(automaton, encoding)
    order: Sequence[Fact] = encoding.facts_in_order()
    missing = set(result.circuit.variables()) - set(order)
    if missing:
        raise LineageError("encoding fact order does not cover the circuit variables")
    # Facts never mentioned by the circuit are appended so that model counts
    # are taken over the full instance when needed.
    return compile_circuit_to_obdd(result.circuit, list(order))


def _product(sequences: Sequence[Sequence[State]]):
    if not sequences:
        yield ()
        return
    head, *tail = sequences
    for item in head:
        for rest in _product(tail):
            yield (item, *rest)
