"""Provenance circuits from deterministic tree automata (Theorems 6.3 and 6.11).

Given a deterministic bottom-up automaton A and a tree encoding E of an
instance, the construction of [2] builds, bottom-up, one gate ``g^q_n`` per
node n and reachable state q, meaning "in the current possible world, the run
of A assigns state q to node n".  The gate is an OR, over the combinations of
children states and fact-presence values leading to q, of the AND of the
children's gates and the fact literal (or its negation).

Because A is deterministic:

* the OR inputs are mutually exclusive (different combinations cannot hold in
  the same world), and
* the AND inputs depend on disjoint facts (left subtree, right subtree, and
  the node's own fact),

so the produced circuit is a d-DNNF (Theorem 6.11), of size linear in the
encoding (for a fixed automaton and width).  The same circuit viewed as a
plain Boolean circuit is the bounded-treewidth lineage circuit of
Theorem 6.3; over a path encoding it has bounded pathwidth (Proposition 6.8).

The construction runs as an indexed kernel:

* states get **dense integer ids** per node, in first-reached order, so no
  ``sorted(..., key=repr)`` normalization and no repeated hashing of
  composite state objects (the UCQ automaton's states are frozensets of
  descriptors) on the hot path;
* the bottom-up pass calls ``transition`` **once** per (child-combination,
  fact-presence) pair and records the result in a per-node transition table,
  instead of one reachability pass plus a second full product enumeration;
* a **top-down co-reachability pass** keeps only the states from which an
  accepting root state is still reachable, so gates are emitted only for
  combinations that can contribute to the output;
* per-child gate tables are **freed** as soon as the parent consumes them,
  and the peak number of live gate-table entries is reported in
  :class:`ProvenanceResult` (``peak_live_gates``) — on a path-shaped
  encoding the peak is O(states-per-node), not O(encoding).

The seed construction is preserved in :mod:`repro.provenance.reference` as a
differential baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product as _iter_product
from typing import Sequence

from repro.booleans.circuit import BooleanCircuit
from repro.booleans.dnnf import DNNF
from repro.data.instance import Fact
from repro.errors import LineageError
from repro.provenance.automata import State, TreeAutomaton
from repro.provenance.tree_encoding import TreeEncoding


@dataclass(slots=True)
class ProvenanceResult:
    """The provenance of an automaton on an encoding, in both representations."""

    dnnf: DNNF
    circuit: BooleanCircuit
    reachable_state_counts: dict[int, int]
    peak_live_gates: int = 0

    @property
    def dnnf_size(self) -> int:
        return self.dnnf.size

    @property
    def circuit_size(self) -> int:
        return self.circuit.size

    @property
    def max_states_per_node(self) -> int:
        return max(self.reachable_state_counts.values(), default=0)


def provenance_dnnf(automaton: TreeAutomaton, encoding: TreeEncoding) -> DNNF:
    """The d-DNNF provenance of the automaton on the encoding (Theorem 6.11)."""
    return provenance(automaton, encoding).dnnf


def provenance_circuit(automaton: TreeAutomaton, encoding: TreeEncoding) -> BooleanCircuit:
    """The lineage circuit of the automaton on the encoding (Theorem 6.3)."""
    return provenance(automaton, encoding).circuit


def reachability_tables(
    automaton: TreeAutomaton, encoding: TreeEncoding
) -> tuple[list[int], dict[int, list[State]], dict[int, list[list[tuple[tuple[int, ...], bool]]]]]:
    """Pass 1 of the indexed kernel: dense state ids and transition tables.

    Returns ``(post, states, combos)`` where ``post`` is the encoding's
    post-order, ``states[n]`` lists the reachable states of node n in
    first-reached order (the dense id of a state is its list position), and
    ``combos[n][q]`` indexes, per resulting state id q, the
    (child-state-id combination, fact_present) pairs whose transition reaches
    q — each combination is evaluated once.  Both the gate-emission passes
    below and the columnar probability product
    (:mod:`repro.provenance.columnar_product`) consume these tables.
    """
    post = encoding.post_order()
    nodes = encoding.nodes
    transition = automaton.transition
    states: dict[int, list[State]] = {}
    combos: dict[int, list[list[tuple[tuple[int, ...], bool]]]] = {}
    for identifier in post:
        node = nodes[identifier]
        child_state_lists = [states[child] for child in node.children]
        presence_options = (False, True) if node.fact is not None else (False,)
        intern: dict[State, int] = {}
        local_states: list[State] = []
        local_combos: list[list[tuple[tuple[int, ...], bool]]] = []
        for indexed in _iter_product(*(list(enumerate(s)) for s in child_state_lists)):
            combination = tuple(pair[0] for pair in indexed)
            actual = tuple(pair[1] for pair in indexed)
            for fact_present in presence_options:
                state = transition(node, fact_present, actual)
                state_id = intern.get(state)
                if state_id is None:
                    state_id = len(local_states)
                    intern[state] = state_id
                    local_states.append(state)
                    local_combos.append([])
                local_combos[state_id].append((combination, fact_present))
        states[identifier] = local_states
        combos[identifier] = local_combos
    return post, states, combos


def provenance(automaton: TreeAutomaton, encoding: TreeEncoding) -> ProvenanceResult:
    """Build the provenance d-DNNF and circuit with the indexed kernel."""
    nodes = encoding.nodes

    # -- pass 1: bottom-up reachability with dense state ids ------------------
    post, states, combos = reachability_tables(automaton, encoding)

    counts = {identifier: len(local) for identifier, local in states.items()}

    # -- pass 2: top-down co-reachability pruning -----------------------------
    # A (node, state) pair is useful iff some accepting root state is reachable
    # from it; only useful states get gates.  Reversed post-order visits every
    # parent before its children.
    useful: dict[int, set[int]] = {identifier: set() for identifier in post}
    root_states = states[encoding.root]
    useful[encoding.root] = {
        state_id for state_id, state in enumerate(root_states) if automaton.is_accepting(state)
    }
    for identifier in reversed(post):
        live = useful[identifier]
        if not live:
            continue
        children = nodes[identifier].children
        if not children:
            continue
        child_useful = [useful[child] for child in children]
        node_combos = combos[identifier]
        for state_id in live:
            for combination, _fact_present in node_combos[state_id]:
                for position, child_state_id in enumerate(combination):
                    child_useful[position].add(child_state_id)

    # -- pass 3: bottom-up gate emission with child-table freeing -------------
    dnnf = DNNF()
    circuit = BooleanCircuit()
    dnnf_gate: dict[int, dict[int, int]] = {}
    circuit_gate: dict[int, dict[int, int]] = {}
    live_gates = 0
    peak_live_gates = 0

    for identifier in post:
        node = nodes[identifier]
        children = node.children
        node_combos = combos[identifier]
        del combos[identifier]

        node_dnnf: dict[int, int] = {}
        node_circuit: dict[int, int] = {}
        for state_id in sorted(useful[identifier]):
            state_combos = node_combos[state_id]
            dnnf_terms: list[int] = []
            circuit_terms: list[int] = []
            for combination, fact_present in state_combos:
                dnnf_parts: list[int] = []
                circuit_parts: list[int] = []
                for position, child_state_id in enumerate(combination):
                    child = children[position]
                    dnnf_parts.append(dnnf_gate[child][child_state_id])
                    circuit_parts.append(circuit_gate[child][child_state_id])
                if node.fact is not None:
                    dnnf_parts.append(dnnf.literal(node.fact, fact_present))
                    fact_gate = circuit.variable(node.fact)
                    circuit_parts.append(fact_gate if fact_present else circuit.negation(fact_gate))
                dnnf_terms.append(dnnf.conjunction(dnnf_parts))
                circuit_terms.append(circuit.conjunction(circuit_parts))
            node_dnnf[state_id] = dnnf.disjunction(dnnf_terms)
            node_circuit[state_id] = circuit.disjunction(circuit_terms)
        dnnf_gate[identifier] = node_dnnf
        circuit_gate[identifier] = node_circuit
        live_gates += len(node_dnnf)
        if live_gates > peak_live_gates:
            peak_live_gates = live_gates
        # The parent above is the only consumer of these tables: free them.
        for child in children:
            live_gates -= len(dnnf_gate[child])
            del dnnf_gate[child]
            del circuit_gate[child]

    accepting_ids = sorted(useful[encoding.root])
    root_dnnf = dnnf_gate[encoding.root]
    root_circuit = circuit_gate[encoding.root]
    dnnf.set_output(
        dnnf.disjunction([root_dnnf[state_id] for state_id in accepting_ids])
        if accepting_ids
        else dnnf.constant(False)
    )
    circuit.set_output(
        circuit.disjunction([root_circuit[state_id] for state_id in accepting_ids])
        if accepting_ids
        else circuit.constant(False)
    )

    return ProvenanceResult(
        dnnf=dnnf,
        circuit=circuit,
        reachable_state_counts=counts,
        peak_live_gates=peak_live_gates,
    )


def provenance_obdd(automaton: TreeAutomaton, encoding: TreeEncoding):
    """An OBDD for the automaton's lineage, under the encoding's fact order.

    This realizes the Theorem 6.5 pipeline: the bounded-treewidth circuit of
    Theorem 6.3 compiled into an OBDD whose variable order follows the
    decomposition (facts in post-order of their attachment node).
    """
    from repro.provenance.compile_obdd import compile_circuit_to_obdd

    result = provenance(automaton, encoding)
    order: Sequence[Fact] = encoding.facts_in_order()
    missing = set(result.circuit.variables()) - set(order)
    if missing:
        raise LineageError("encoding fact order does not cover the circuit variables")
    # Facts never mentioned by the circuit are appended so that model counts
    # are taken over the full instance when needed.
    return compile_circuit_to_obdd(result.circuit, list(order))
